//! The appendix A.6 walkthrough: every intermediate representation of the
//! `addOne` function — AST (macro-expanded MExpr), untyped WIR, typed and
//! resolved TWIR, the C translation, the assembler listing, and the
//! exported library.
//!
//! Run with `cargo run --example intermediate_representations`.

use wolfram_language_compiler::compiler::{Compiler, CompilerOptions};
use wolfram_language_compiler::expr::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // In[1]:= addOne = Function[Typed[arg, "MachineInteger"], arg + 1];
    let add_one = parse("Function[{Typed[arg, \"MachineInteger\"]}, arg + 1]")?;
    let compiler = Compiler::new(CompilerOptions::default());

    // A.6.1 CompileToAST
    println!(
        "== CompileToAST ==\n{}\n",
        compiler.compile_to_ast(&add_one).to_input_form()
    );

    // A.6.2 CompileToIR with optimizations off: the untyped WIR.
    let wir = compiler.compile_to_ir(&add_one)?;
    println!("== WIR (untyped) ==\n{}", wir.to_text());

    // A.6.3 the typed, resolved TWIR. Note the mangled primitive, as in
    // the paper's checked_binary_plus_Integer64_Integer64.
    let twir = compiler.compile_to_twir(&add_one, None)?;
    println!("== TWIR ==\n{}", twir.to_text());

    // A.6.4 the C translation (the paper shows LLVM IR; the C backend is
    // this reproduction's portable equivalent).
    println!("== C source ==\n{}", compiler.export_string(&add_one, "C")?);

    // A.6.5 the assembler listing.
    println!(
        "== Assembler ==\n{}",
        compiler.export_string(&add_one, "Assembler")?
    );

    // The WVM backend (F4): the new compiler retargeting the legacy VM.
    println!(
        "== WVM bytecode ==\n{}",
        compiler.export_string(&add_one, "WVM")?
    );

    // A.6.6 FunctionCompileExportLibrary.
    let dir = std::env::temp_dir().join("wolfram-example-export");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("addOne.wxl");
    compiler.export_library(&add_one, &path)?;
    println!(
        "== Exported library ==\n{}",
        String::from_utf8_lossy(&std::fs::read(&path)?)
    );
    let loaded = compiler.load_library(&path)?;
    println!(
        "loaded and recompiled: addOne[41] = {}",
        loaded.call(&[wolfram_language_compiler::runtime::Value::I64(41)])?
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
