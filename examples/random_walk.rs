//! The Figure 1 notebook session: the same random-walk program evaluated
//! three ways — interpreted (In[1]), bytecode-compiled (In[2]), and
//! `FunctionCompile`d (In[3]) — with the relative timings printed.
//!
//! Run with `cargo run --release --example random_walk [len]`.

use std::time::Instant;
use wolfram_language_compiler::interp::Interpreter;

fn main() {
    let len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let suite = wolfram_bench::intro::WalkSuite::new();

    // In[1]: the interpreter evaluates the NestList program directly.
    let mut engine = Interpreter::new();
    engine.seed_random(7);
    let start = Instant::now();
    let walk = suite.run_interpreted(&mut engine, len as i64);
    let interp_secs = start.elapsed().as_secs_f64();
    println!(
        "In[1] interpreted:     {interp_secs:.4}s ({} points)",
        walk.length()
    );

    // In[2]: the bytecode compiler (structural modifications required).
    let start = Instant::now();
    let bc = suite.run_bytecode(len as i64);
    let bc_secs = start.elapsed().as_secs_f64();
    let t = bc.expect_tensor().expect("tensor result");
    println!(
        "In[2] bytecode:        {bc_secs:.4}s ({:?} tensor)  -> {:.2}x over interpreter",
        t.shape(),
        interp_secs / bc_secs
    );

    // In[3]: FunctionCompile.
    let start = Instant::now();
    let compiled = suite.run_compiled(len as i64);
    let new_secs = start.elapsed().as_secs_f64();
    let t = compiled.expect_tensor().expect("tensor result");
    println!(
        "In[3] FunctionCompile: {new_secs:.4}s ({:?} tensor)  -> {:.2}x over interpreter",
        t.shape(),
        interp_secs / new_secs
    );

    // In[4]: "ListLinePlot" — an ASCII rendering of the walk's bounding
    // box and endpoints stands in for the notebook graphic.
    let data = t.as_f64().expect("real tensor");
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for p in data.chunks(2) {
        min_x = min_x.min(p[0]);
        max_x = max_x.max(p[0]);
        min_y = min_y.min(p[1]);
        max_y = max_y.max(p[1]);
    }
    println!(
        "Out[4]: walk of {len} unit steps, bounding box x in [{min_x:.1}, {max_x:.1}], \
         y in [{min_y:.1}, {max_y:.1}], endpoint ({:.2}, {:.2})",
        data[data.len() - 2],
        data[data.len() - 1]
    );
}
