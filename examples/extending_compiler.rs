//! Extending the compiler (§4.7): "Users can extend the compiler by adding
//! new macro rules, type system definitions, or transformation passes."
//!
//! - registers a user macro (and a `Conditioned` CUDA-retargeting macro
//!   exactly like the paper's example);
//! - declares a user type class and a qualified polymorphic function with
//!   a Wolfram-source implementation (the paper's §4.4 `Min`);
//! - toggles compiler passes by name;
//! - plugs a custom textual backend into the backend registry (F4).
//!
//! Run with `cargo run --example extending_compiler`.

use std::rc::Rc;
use wolfram_language_compiler::codegen::Backend;
use wolfram_language_compiler::compiler::{Compiler, CompilerOptions, TargetSystem};
use wolfram_language_compiler::expr::parse;
use wolfram_language_compiler::runtime::Value;
use wolfram_language_compiler::types::FunctionImpl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- user macro rules ----
    let mut compiler = Compiler::default();
    compiler.macros.register_src("Square[x_] :> Times[x, x]");
    let cf =
        compiler.function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, Square[n] + 1]")?;
    println!("Square macro: f[6] = {}", cf.call(&[Value::I64(6)])?);

    // The paper's Conditioned CUDA macro: rewrite Map -> CUDA`Map only when
    // TargetSystem -> CUDA.
    let rule = wolfram_language_compiler::expr::Rule::from_expr(&parse(
        "Map[f_, lst_] :> CUDA`Map[f, lst]",
    )?)
    .expect("rule");
    compiler.macros.register(
        rule,
        Some(Rc::new(|opts: &CompilerOptions| {
            opts.target_system == TargetSystem::Cuda
        })),
    );
    let e = parse("Map[g, data]")?;
    println!(
        "Map macro, Native target: {}",
        compiler.macros.expand(&e, &CompilerOptions::default())
    );
    let cuda = CompilerOptions {
        target_system: TargetSystem::Cuda,
        ..Default::default()
    };
    println!(
        "Map macro, CUDA target:   {}",
        compiler.macros.expand(&e, &cuda)
    );

    // ---- user types: the §4.4 Min declaration, verbatim shape ----
    compiler.types.declare_function_expr(
        "MyMin",
        &parse("TypeForAll[{\"a\"}, {Element[\"a\", \"Ordered\"]}, {\"a\", \"a\"} -> \"a\"]")?,
        FunctionImpl::Source(parse("Function[{e1, e2}, If[e1 < e2, e1, e2]]")?),
    )?;
    let cf = compiler.function_compile_src(
        "Function[{Typed[i, \"MachineInteger\"], Typed[x, \"Real64\"]}, MyMin[i, 3] + Floor[MyMin[x, 2.5]]]",
    )?;
    println!(
        "MyMin (two instantiations): f[7, 9.0] = {}",
        cf.call(&[Value::I64(7), Value::F64(9.0)])?
    );
    // Complex numbers are not Ordered: the qualified declaration rejects them.
    let err = compiler
        .function_compile_src("Function[{Typed[z, \"ComplexReal64\"]}, MyMin[z, z]]")
        .unwrap_err();
    println!("MyMin on complex rejected: {err}");

    // ---- pass toggles ----
    let mut opts = CompilerOptions::default();
    opts.disabled_passes.insert("cse".into());
    opts.disabled_passes.insert("constant-fold".into());
    let no_opt = Compiler::new(opts);
    let f = parse("Function[{Typed[n, \"MachineInteger\"]}, (n*n) + (n*n) + 1 + 2]")?;
    let optimized = Compiler::default().compile_to_twir(&f, None)?;
    let unoptimized = no_opt.compile_to_twir(&f, None)?;
    println!(
        "pass toggles: {} instructions optimized vs {} with cse/constant-fold disabled",
        optimized.main().instr_count(),
        unoptimized.main().instr_count()
    );

    // ---- a user backend ----
    struct CountBackend;
    impl Backend for CountBackend {
        fn name(&self) -> &str {
            "OpCount"
        }
        fn generate(
            &self,
            module: &wolfram_language_compiler::ir::ProgramModule,
        ) -> Result<String, String> {
            Ok(format!(
                "{} functions, {} instructions\n",
                module.functions.len(),
                module
                    .functions
                    .iter()
                    .map(|f| f.instr_count())
                    .sum::<usize>()
            ))
        }
    }
    compiler
        .backends
        .register(std::sync::Arc::new(CountBackend));
    let report = compiler.export_string(&f, "OpCount")?;
    print!("custom backend: {report}");
    Ok(())
}
