//! Compiling higher-order functional programs.
//!
//! The paper's §4.5 function-resolution machinery instantiates *source*
//! implementations per monomorphic type. This example shows the pieces
//! working together:
//!
//! 1. `Range`/`Map`/`Fold`/`Total` compile to tight native loops — no
//!    interpreter in sight.
//! 2. Untyped lambdas passed to them are typed through the callee's
//!    signature (the closure's arrow type unifies with `{a, b} -> a`).
//! 3. The same `Fold` declaration instantiates at `Integer64` and
//!    `Real64` — written once, resolved per use.
//! 4. Tensor (+) scalar arithmetic broadcasts element-wise, with the
//!    scalar promoted to the element type.
//!
//! Run with `cargo run --example higher_order_functions`.

use wolfram_language_compiler::compiler::Compiler;
use wolfram_language_compiler::runtime::{Tensor, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiler = Compiler::default();

    // --- 1. Sum of squares via Fold over Range ------------------------
    // Only the *outer* parameter is annotated; the lambda's {a, b} are
    // inferred from Fold's signature {{a, b} -> a, a, Tensor[b, 1]} -> a.
    let sum_squares = compiler.function_compile_src(
        r#"Function[{Typed[n, "MachineInteger"]},
            Fold[Function[{acc, k}, acc + k*k], 0, Range[n]]]"#,
    )?;
    for n in [5i64, 10, 100] {
        let got = sum_squares.call(&[Value::I64(n)])?;
        println!(
            "sum of squares 1..{n}  = {got}  (closed form {})",
            n * (n + 1) * (2 * n + 1) / 6
        );
    }

    // --- 2. Map with promotion: the same pipeline at Real64 -----------
    let rms = compiler.function_compile_src(
        r#"Function[{Typed[v, "Tensor"["Real64", 1]]},
            Sqrt[Total[Map[Function[{x}, x*x], v]] / Length[v]]]"#,
    )?;
    let signal = Tensor::from_f64(vec![3.0, -4.0, 3.0, -4.0]);
    println!(
        "rms[{{3, -4, 3, -4}}] = {}",
        rms.call(&[Value::Tensor(signal)])?
    );

    // --- 3. Tensor (+) scalar broadcast --------------------------------
    // `v*2 + 1` : Times[Tensor, scalar] then Plus[Tensor, scalar]; the
    // integer literals promote to Real64 to match the element type.
    let affine =
        compiler.function_compile_src(r#"Function[{Typed[v, "Tensor"["Real64", 1]]}, v*2 + 1]"#)?;
    let out = affine.call(&[Value::Tensor(Tensor::from_f64(vec![0.0, 0.5, 1.0]))])?;
    println!("affine[{{0, 0.5, 1}}] = {out}");

    // --- 4. One declaration, two instantiations ------------------------
    // Fold$..$Integer64 and Fold$..$Real64 are distinct monomorphic
    // functions generated from the one stdlib source implementation; the
    // assembler listing shows both.
    let dot_with_self = compiler.function_compile_src(
        r#"Function[{Typed[v, "Tensor"["Real64", 1]]},
            Fold[Function[{acc, x}, acc + x*x], 0.0, v]]"#,
    )?;
    let v = Tensor::from_f64(vec![1.0, 2.0, 3.0]);
    println!("v.v = {}", dot_with_self.call(&[Value::Tensor(v)])?);

    let listing = compiler.export_string(
        &wolfram_language_compiler::expr::parse(
            r#"Function[{Typed[n, "MachineInteger"]},
                Fold[Function[{acc, k}, acc + k*k], 0, Range[n]]]"#,
        )?,
        "Assembler",
    )?;
    let instantiations: Vec<&str> = listing
        .lines()
        .filter(|l| l.starts_with('_') && l.ends_with(':'))
        .collect();
    println!("\ngenerated functions (monomorphic instantiations):");
    for f in instantiations {
        println!("  {f}");
    }
    Ok(())
}
