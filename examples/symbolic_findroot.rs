//! Symbolic computation and auto-compilation (§1, §2.1, F8).
//!
//! - `FindRoot[Sin[x] + E^x, {x, 0}]` symbolically differentiates the
//!   objective and runs Newton's method; installing the compiler's
//!   auto-compile hook transparently compiles the objective and its
//!   derivative (the paper's 1.6x speedup).
//! - A compiled function over the `"Expression"` type adds symbolic values
//!   (§4.5's `cf[x, Cos[y] + Sin[z]]` example).
//!
//! Run with `cargo run --release --example symbolic_findroot`.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;
use wolfram_language_compiler::compiler::Compiler;
use wolfram_language_compiler::expr::{parse, Expr};
use wolfram_language_compiler::interp::Interpreter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Symbolic differentiation (the machinery FindRoot uses internally).
    let mut engine = Interpreter::new();
    let d = engine.eval_src("D[Sin[x] + E^x, x]")?;
    println!("D[Sin[x] + E^x, x] = {d}");

    // FindRoot with the interpreted objective.
    let solves = 50;
    let start = Instant::now();
    let mut root = Expr::null();
    for _ in 0..solves {
        root = engine.eval_src("FindRoot[Sin[x] + E^x, {x, 0}]")?;
    }
    let interpreted = start.elapsed().as_secs_f64() / solves as f64;
    println!("FindRoot (interpreted objective):    {root}  [{interpreted:.6}s/solve]");

    // FindRoot with auto-compilation: the compiler package installs a hook
    // that compiles the objective and its symbolic derivative.
    let mut hosted = Interpreter::new();
    wolfram_bench::intro::install_cached_auto_compile(&mut hosted);
    hosted.eval_src("FindRoot[Sin[x] + E^x, {x, 0}]")?; // warm the code cache
    let start = Instant::now();
    for _ in 0..solves {
        root = hosted.eval_src("FindRoot[Sin[x] + E^x, {x, 0}]")?;
    }
    let compiled = start.elapsed().as_secs_f64() / solves as f64;
    println!(
        "FindRoot (auto-compiled objective):  {root}  [{compiled:.6}s/solve, {:.2}x speedup, \
         hook fired {} times]",
        interpreted / compiled,
        hosted.autocompile_hits
    );

    // Compiled symbolic computation: "Expression"-typed arguments (F8).
    let engine = Rc::new(RefCell::new(Interpreter::new()));
    let cf = Compiler::default()
        .function_compile(&parse(
            "Function[{Typed[arg1, \"Expression\"], Typed[arg2, \"Expression\"]}, arg1 + arg2]",
        )?)?
        .hosted(engine);
    println!("\ncompiled symbolic Plus:");
    for (a, b) in [("1", "2"), ("x", "y"), ("x", "Cos[y] + Sin[z]")] {
        let out = cf.call_exprs(&[parse(a)?, parse(b)?])?;
        println!("  cf[{a}, {b}] = {out}");
    }
    Ok(())
}
