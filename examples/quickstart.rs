//! Quickstart: compile and run Wolfram Language functions.
//!
//! Reproduces the paper's §4.1 `cfib` walkthrough: explicit compilation by
//! wrapping a `Function` with `FunctionCompile`, typed parameters via
//! `Typed`, recursion through the public binding, and the soft numeric
//! failure mode (F2) that reverts to the interpreter's arbitrary-precision
//! arithmetic on overflow.
//!
//! Run with `cargo run --example quickstart`.

use std::cell::RefCell;
use std::rc::Rc;
use wolfram_language_compiler::compiler::{Compiler, CompilerOptions};
use wolfram_language_compiler::expr::{parse, Expr};
use wolfram_language_compiler::interp::Interpreter;
use wolfram_language_compiler::runtime::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiler = Compiler::new(CompilerOptions::default());

    // In[1]:= cfib = FunctionCompile[Function[{Typed[n, "MachineInteger"]},
    //           If[n < 1, 1, cfib[n - 1] + cfib[n - 2]]]]
    let cfib_src = r#"
        Function[{Typed[n, "MachineInteger"]},
         If[n < 1, 1, cfib[n - 1] + cfib[n - 2]]]
    "#;
    let cfib = compiler.function_compile_named(&parse(cfib_src)?, Some("cfib"))?;
    println!("compiled {cfib:?}");
    for n in [0i64, 5, 10, 20] {
        println!("cfib[{n}] = {}", cfib.call(&[Value::I64(n)])?);
    }

    // Soft failure (F2): an iterative fib overflows machine integers around
    // n = 93; hosted in an engine, the call reverts to uncompiled
    // evaluation and returns the exact integer.
    let engine = Rc::new(RefCell::new(Interpreter::new()));
    let fib_src = r#"
        Function[{Typed[n, "MachineInteger"]},
         Module[{a = 0, b = 1, k = 0, t = 0},
          While[k < n, t = a + b; a = b; b = t; k = k + 1];
          a]]
    "#;
    let fib = compiler
        .function_compile_src(fib_src)?
        .hosted(engine.clone());
    println!(
        "\nfib[90]  = {} (native fast path)",
        fib.call_exprs(&[Expr::int(90)])?
    );
    println!(
        "fib[200] = {} (soft fallback)",
        fib.call_exprs(&[Expr::int(200)])?
    );
    for warning in engine.borrow_mut().take_output() {
        println!("  >> {warning}");
    }

    // Seamless interpreter integration (F1): install the compiled function
    // and call it from interpreted code like any other Wolfram function.
    fib.install("fastFib")?;
    let out = engine.borrow_mut().eval_src("Map[fastFib, {10, 20, 30}]")?;
    println!("\nMap[fastFib, {{10, 20, 30}}] = {out}");

    Ok(())
}
