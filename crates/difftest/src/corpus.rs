//! Replayable counterexample artifacts.
//!
//! Every divergence the fuzzer finds is persisted as a plain `.wl` file:
//! a comment header carrying the seed, a human note and the argument
//! set(s), followed by the (shrunk) function source. The committed corpus
//! under `difftest/corpus/` is replayed as a regression suite on every
//! `cargo test` run, so once-found divergences stay fixed.
//!
//! ```text
//! (* wolfram-difftest counterexample
//!    seed: 12345
//!    note: native+fusion returned 2 but the interpreter returned 0.
//!    args: {2, -4294967295}
//! *)
//! Function[{Typed[p1, "MachineInteger"], ...}, ...]
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use wolfram_expr::{parse, Expr};
use wolfram_runtime::Value;

/// One artifact: a function plus the argument sets that exposed it.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The generator seed that first produced the program (0 for
    /// hand-written entries).
    pub seed: u64,
    /// What diverged, in one line.
    pub note: String,
    /// The `Function[...]` under test.
    pub func: Expr,
    /// Argument tuples to replay.
    pub arg_sets: Vec<Vec<Value>>,
}

impl CorpusEntry {
    /// Serializes to the artifact format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("(* wolfram-difftest counterexample\n");
        out.push_str(&format!("   seed: {}\n", self.seed));
        out.push_str(&format!("   note: {}\n", self.note));
        for args in &self.arg_sets {
            let list = Expr::list(args.iter().map(Value::to_expr).collect::<Vec<_>>());
            out.push_str(&format!("   args: {}\n", list.to_input_form()));
        }
        out.push_str("*)\n");
        out.push_str(&self.func.to_input_form());
        out.push('\n');
        out
    }

    /// Parses the artifact format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_artifact(text: &str) -> Result<CorpusEntry, String> {
        let mut seed = 0u64;
        let mut note = String::new();
        let mut arg_sets = Vec::new();
        let mut source = String::new();
        let mut in_header = false;
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.starts_with("(*") {
                in_header = true;
                continue;
            }
            if in_header {
                if trimmed.starts_with("*)") {
                    in_header = false;
                } else if let Some(v) = trimmed.strip_prefix("seed:") {
                    seed = v
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad seed line: {e}"))?;
                } else if let Some(v) = trimmed.strip_prefix("note:") {
                    note = v.trim().to_owned();
                } else if let Some(v) = trimmed.strip_prefix("args:") {
                    let list = parse(v.trim()).map_err(|e| format!("bad args line {v:?}: {e}"))?;
                    if !list.has_head("List") {
                        return Err(format!("args line is not a list: {v}"));
                    }
                    arg_sets.push(list.args().iter().map(Value::from_expr).collect::<Vec<_>>());
                }
                continue;
            }
            source.push_str(line);
            source.push('\n');
        }
        let func =
            parse(source.trim()).map_err(|e| format!("artifact source does not parse: {e}"))?;
        if !func.has_head("Function") {
            return Err(format!(
                "artifact is not a Function: {}",
                func.to_input_form()
            ));
        }
        if arg_sets.is_empty() {
            return Err("artifact has no args lines".into());
        }
        Ok(CorpusEntry {
            seed,
            note,
            func,
            arg_sets,
        })
    }

    /// Writes the artifact into `dir` as `seed-<seed>.wl` (suffixed on
    /// collision), returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let mut path = dir.join(format!("seed-{}.wl", self.seed));
        let mut n = 1;
        while path.exists() {
            path = dir.join(format!("seed-{}-{n}.wl", self.seed));
            n += 1;
        }
        fs::write(&path, self.render())?;
        Ok(path)
    }
}

/// Loads every `.wl` artifact in `dir` (sorted by file name for
/// deterministic replay order). A missing directory is an empty corpus.
///
/// # Errors
///
/// Propagates filesystem errors; malformed artifacts are an `Err` with
/// the file name in the message.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|d| d.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "wl"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text =
                fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            let entry =
                CorpusEntry::parse_artifact(&text).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((p, entry))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_roundtrips() {
        let entry = CorpusEntry {
            seed: 99,
            note: "native+fusion returned 2 but the interpreter returned 0.".into(),
            func: parse("Function[{Typed[p1, \"MachineInteger\"]}, p1 ^ -1]").unwrap(),
            arg_sets: vec![vec![Value::I64(2)], vec![Value::I64(-3)]],
        };
        let text = entry.render();
        let back = CorpusEntry::parse_artifact(&text).unwrap();
        assert_eq!(back.seed, 99);
        assert_eq!(back.note, entry.note);
        assert_eq!(back.func, entry.func);
        assert_eq!(back.arg_sets, entry.arg_sets);
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(CorpusEntry::parse_artifact("1 + 1").is_err()); // not a Function
        assert!(CorpusEntry::parse_artifact(
            "(* wolfram-difftest counterexample\n   seed: 1\n*)\nFunction[{x}, x]"
        )
        .is_err()); // no args
    }
}
