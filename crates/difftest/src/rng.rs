//! A deterministic SplitMix64 generator.
//!
//! The fuzzer's whole value rests on replayability: `seed + iteration
//! index` must regenerate the identical program on every machine and every
//! run, so counterexample artifacts stay actionable. A tiny self-contained
//! PRNG guarantees that without tying program shapes to any external
//! crate's stream layout.

/// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
/// generators"): full 64-bit period, passes BigCrush, two multiplies per
/// draw.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift (Lemire); the slight modulo bias of the plain
        // approach would be harmless here, but this is just as cheap.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.i64_in(-5, 5);
            assert!((-5..=5).contains(&v));
            let u = r.below(3);
            assert!(u < 3);
            let f = r.f64_unit();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(Rng::new(1).next_u64(), Rng::new(2).next_u64());
    }
}
