//! `wolfram-difftest` — a tri-engine differential fuzzer.
//!
//! The repository carries three ways to evaluate the same Wolfram
//! Language subset: the tree-walking interpreter (the semantic oracle),
//! the legacy bytecode VM, and the native register machine the compiler
//! targets (with superinstruction fusion on or off). Any observable
//! disagreement between them on the common subset is a bug in at least
//! one engine; this crate generates programs, runs all configurations,
//! compares the outcomes under a documented equivalence relation
//! ([`oracle`]), greedily shrinks whatever diverges ([`shrink`]), and
//! persists counterexamples as replayable `.wl` artifacts ([`corpus`]).
//!
//! Three tiers use it:
//!
//! 1. a bounded deterministic smoke run inside `cargo test`,
//! 2. `reproduce -- difftest --iters N --seed S` for long local runs, and
//! 3. a scheduled CI job that uploads shrunk counterexamples.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use corpus::CorpusEntry;
pub use gen::Program;
pub use oracle::{
    outcomes_equivalent, outcomes_equivalent_within, prepare, prepare_with, values_equivalent,
    values_equivalent_within, verify_failure, Outcome, TriRun,
};
pub use shrink::Shrunk;

/// Fuzzing-run parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; iteration `i` fuzzes `Program::generate(derive(seed, i))`.
    pub seed: u64,
    /// Number of programs to generate.
    pub iters: u64,
    /// Whether to shrink divergences (off makes triage runs faster).
    pub shrink: bool,
    /// Whether to run the `wolfram-analyze` checkers after every compiler
    /// pass (`VerifyLevel::Full`) and report any finding as a divergence —
    /// the internal-consistency oracle. Off compiles with the SSA linter
    /// only.
    pub analyze: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xD1FF_7E57,
            iters: 300,
            shrink: true,
            analyze: true,
        }
    }
}

/// One confirmed divergence, shrunk and ready to persist.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The per-iteration seed that regenerates the original program.
    pub seed: u64,
    /// The original (unshrunk) source.
    pub original: String,
    /// The reduced artifact.
    pub shrunk: CorpusEntry,
}

/// Aggregate result of a fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Programs generated and compiled on all engines.
    pub programs_run: u64,
    /// Programs some compiled engine refused (subset holes, not
    /// divergences). Samples are in `prepare_samples`.
    pub prepare_failures: u64,
    /// Up to five prepare-failure messages with their seeds.
    pub prepare_samples: Vec<(u64, String)>,
    /// Programs whose printed source failed the parse→print fixpoint.
    pub roundtrip_failures: u64,
    /// Runs stopped by the per-engine watchdog ([`oracle::RUN_TIMEOUT`]);
    /// inconclusive, not divergent.
    pub timeouts: u64,
    /// Runs where the oracle answered symbolically (outside the numeric
    /// subset); inconclusive, not divergent.
    pub out_of_subset: u64,
    /// Confirmed divergences.
    pub divergences: Vec<Counterexample>,
}

impl FuzzReport {
    /// Divergences attributed to each engine configuration (in
    /// [`oracle::ENGINE_NAMES`] order), by the engine named in the
    /// counterexample note. The interpreter is the oracle, so its slot
    /// counts notes that name no compiled engine (analyzer findings and
    /// shrink residues).
    pub fn per_engine_divergences(&self) -> [usize; oracle::ENGINE_NAMES.len()] {
        let mut counts = [0usize; oracle::ENGINE_NAMES.len()];
        for case in &self.divergences {
            let slot = oracle::ENGINE_NAMES
                .iter()
                .enumerate()
                .skip(1)
                .find(|(_, name)| case.shrunk.note.starts_with(**name))
                .map_or(0, |(i, _)| i);
            counts[slot] += 1;
        }
        counts
    }

    /// One-paragraph human summary. The configuration count and the
    /// per-engine divergence breakdown are derived from
    /// [`oracle::ENGINE_NAMES`], so adding an engine configuration (as
    /// the data-parallel tier did for the fifth) extends this line
    /// automatically instead of silently undercounting.
    pub fn summary(&self) -> String {
        let counts = self.per_engine_divergences();
        let breakdown: Vec<String> = oracle::ENGINE_NAMES
            .iter()
            .zip(counts)
            .skip(1)
            .map(|(name, n)| format!("{name} {n}"))
            .chain((counts[0] > 0).then(|| format!("other {}", counts[0])))
            .collect();
        format!(
            "{} programs across {} engine configurations: {} divergences ({}), \
             {} prepare failures, {} round-trip failures, {} timeouts, \
             {} out-of-subset",
            self.programs_run,
            oracle::ENGINE_NAMES.len(),
            self.divergences.len(),
            breakdown.join(", "),
            self.prepare_failures,
            self.roundtrip_failures,
            self.timeouts,
            self.out_of_subset
        )
    }
}

/// Derives the per-iteration seed from the base seed. SplitMix64 of the
/// pair keeps neighbouring iterations statistically independent.
pub fn derive_seed(base: u64, iteration: u64) -> u64 {
    rng::Rng::new(base ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Runs the fuzzer. Deterministic in `cfg`.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..cfg.iters {
        let seed = derive_seed(cfg.seed, i);
        let program = Program::generate(seed);
        if program.roundtrip().is_err() {
            report.roundtrip_failures += 1;
            continue;
        }
        let verify = if cfg.analyze {
            wolfram_ir::VerifyLevel::Full
        } else {
            wolfram_ir::VerifyLevel::Ssa
        };
        let subject = match oracle::prepare_with(&program.func, verify) {
            Ok(s) => s,
            Err(e) => {
                let message = e.to_string();
                // Analyzer (or SSA linter) findings are not subset holes:
                // the compiler produced IR it cannot justify, which is a
                // reportable bug with the same shrink/artifact path as a
                // semantic divergence.
                if cfg.analyze && message.contains("IR verification failed") {
                    let shrunk = if cfg.shrink {
                        shrink::shrink_verify(&program.func)
                    } else {
                        None
                    };
                    let entry = match shrunk {
                        Some(s) => CorpusEntry {
                            seed,
                            note: s.note,
                            func: s.func,
                            arg_sets: vec![s.args],
                        },
                        None => CorpusEntry {
                            seed,
                            note: message,
                            func: program.func.clone(),
                            arg_sets: vec![Vec::new()],
                        },
                    };
                    report.divergences.push(Counterexample {
                        seed,
                        original: program.source(),
                        shrunk: entry,
                    });
                } else {
                    report.prepare_failures += 1;
                    if report.prepare_samples.len() < 5 {
                        report.prepare_samples.push((seed, message));
                    }
                }
                continue;
            }
        };
        report.programs_run += 1;
        let mut saw_timeout = false;
        let mut saw_symbolic = false;
        let diverging_set = program.arg_sets.iter().find_map(|args| {
            let run = subject.run(args);
            saw_timeout |= run.timed_out();
            saw_symbolic |= run.out_of_subset();
            run.divergence().map(|note| (args.clone(), note))
        });
        if saw_timeout {
            report.timeouts += 1;
        }
        if saw_symbolic {
            report.out_of_subset += 1;
        }
        if let Some((args, note)) = diverging_set {
            let shrunk = if cfg.shrink {
                shrink::shrink(&program.func, &program.arg_sets)
            } else {
                None
            };
            let entry = match shrunk {
                Some(s) => CorpusEntry {
                    seed,
                    note: s.note,
                    func: s.func,
                    arg_sets: vec![s.args],
                },
                None => CorpusEntry {
                    seed,
                    note,
                    func: program.func.clone(),
                    arg_sets: vec![args],
                },
            };
            report.divergences.push(Counterexample {
                seed,
                original: program.source(),
                shrunk: entry,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_spread() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tiny_fuzz_run_is_deterministic() {
        let cfg = FuzzConfig {
            seed: 7,
            iters: 20,
            shrink: false,
            analyze: true,
        };
        let r1 = run_fuzz(&cfg);
        let r2 = run_fuzz(&cfg);
        assert_eq!(r1.programs_run, r2.programs_run);
        assert_eq!(r1.divergences.len(), r2.divergences.len());
    }
}
