//! Greedy counterexample reduction.
//!
//! Given a diverging program, repeatedly try local simplifications of the
//! function body — replace a node by one of its children, by a small
//! literal, drop `CompoundExpression` statements and `Module` locals,
//! halve integer literals — keeping any candidate that still diverges.
//! Candidates that no longer compile on every engine are simply skipped
//! (the divergence predicate is only meaningful inside the common subset).
//!
//! The result is a *replayable* artifact: the shrunk source together with
//! the argument set that still distinguishes the engines.

use crate::oracle::{prepare, PreparedSubject};
use wolfram_expr::{parse, Expr, ExprKind};
use wolfram_runtime::Value;

/// Upper bound on oracle evaluations during one shrink, so pathological
/// cases cannot stall a fuzzing run.
const MAX_CHECKS: usize = 400;

/// The reduced counterexample.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// Canonical shrunk `Function[...]` (parses from its own source).
    pub func: Expr,
    /// The single argument set that still demonstrates the divergence.
    pub args: Vec<Value>,
    /// Description of the surviving divergence.
    pub note: String,
}

/// Shrinks `func` while `args` (some argument set in `arg_sets`) still
/// makes the engines disagree. Returns `None` when the input does not
/// diverge in the first place (nothing to shrink).
pub fn shrink(func: &Expr, arg_sets: &[Vec<Value>]) -> Option<Shrunk> {
    shrink_with(func, arg_sets, |f, sets, checks| {
        first_divergence(f, sets, checks)
    })
}

/// Shrinks `func` while the `wolfram-analyze` checkers still reject it
/// under the default pipeline ([`crate::oracle::verify_failure`]).
/// Analyzer findings need no argument set, so the artifact carries an
/// empty one.
pub fn shrink_verify(func: &Expr) -> Option<Shrunk> {
    shrink_with(func, &[Vec::new()], |f, _sets, checks| {
        *checks += 1;
        crate::oracle::verify_failure(f).map(|note| (Vec::new(), note))
    })
}

/// The generic greedy reducer: keeps any smaller candidate on which
/// `failing` still reports something. The predicate receives the
/// candidate, the argument sets to try, and the shared check budget
/// counter; it returns the argument set and note of a surviving failure.
fn shrink_with(
    func: &Expr,
    arg_sets: &[Vec<Value>],
    mut failing: impl FnMut(&Expr, &[Vec<Value>], &mut usize) -> Option<(Vec<Value>, String)>,
) -> Option<Shrunk> {
    let mut checks = 0usize;
    // Pin down one failing argument set first: shrinking against a
    // single set keeps the predicate stable and the artifact replayable.
    let (mut args, mut note) = failing(func, arg_sets, &mut checks)?;
    let mut best = func.clone();

    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if checks >= MAX_CHECKS {
                return Some(Shrunk {
                    func: best,
                    args,
                    note,
                });
            }
            if size(&candidate) >= size(&best) {
                continue;
            }
            // Canonicalize so the artifact source still reparses to the
            // tree we actually tested.
            let Ok(canon) = parse(&candidate.to_input_form()) else {
                continue;
            };
            if !is_well_scoped(&canon) {
                continue;
            }
            if let Some((a, n)) = failing(&canon, std::slice::from_ref(&args), &mut checks) {
                best = canon;
                args = a;
                note = n;
                improved = true;
                break; // restart the candidate scan from the smaller tree
            }
        }
        if !improved {
            return Some(Shrunk {
                func: best,
                args,
                note,
            });
        }
    }
}

/// Whether every symbol the candidate references is bound by a parameter
/// or an enclosing `Module`. A mutation can orphan a variable (dropping
/// its binding while a use survives in dead-statement position), and
/// engines disagree wildly outside the scoped subset — the interpreter
/// evaluates around a free symbol where the compiled engines raise a type
/// error — so such candidates are skipped rather than run.
fn is_well_scoped(func: &Expr) -> bool {
    let mut env: Vec<String> = Vec::new();
    if let Some(params) = func.args().first() {
        for p in params.args() {
            if let Some(name) = p.args().first().and_then(|s| s.as_symbol()) {
                env.push(name.name().to_owned());
            }
        }
    }
    func.args().get(1).is_none_or(|body| scoped(body, &mut env))
}

fn scoped(e: &Expr, env: &mut Vec<String>) -> bool {
    match e.kind() {
        ExprKind::Symbol(s) => {
            let name = s.name();
            matches!(name, "True" | "False" | "Null") || env.iter().any(|b| b == name)
        }
        ExprKind::Normal(n) => {
            if n.head().is_symbol("Module") && n.args().len() == 2 {
                let depth = env.len();
                for local in n.args()[0].args() {
                    let (name, init) = if local.has_head("Set") && local.length() == 2 {
                        (local.args()[0].as_symbol(), Some(&local.args()[1]))
                    } else {
                        (local.as_symbol(), None)
                    };
                    let init_ok = init.is_none_or(|i| scoped(i, env));
                    let Some(name) = name else {
                        env.truncate(depth);
                        return false;
                    };
                    if !init_ok {
                        env.truncate(depth);
                        return false;
                    }
                    env.push(name.name().to_owned());
                }
                let ok = scoped(&n.args()[1], env);
                env.truncate(depth);
                return ok;
            }
            n.args().iter().all(|a| scoped(a, env))
        }
        _ => true,
    }
}

/// Runs every argument set, returning the first that diverges.
fn first_divergence(
    func: &Expr,
    arg_sets: &[Vec<Value>],
    checks: &mut usize,
) -> Option<(Vec<Value>, String)> {
    let subject: PreparedSubject = prepare(func).ok()?;
    for args in arg_sets {
        *checks += 1;
        if let Some(note) = subject.run(args).divergence() {
            return Some((args.clone(), note));
        }
    }
    None
}

/// Total node count — the measure shrinking drives down.
fn size(e: &Expr) -> usize {
    match e.kind() {
        ExprKind::Normal(n) => 1 + size(n.head()) + n.args().iter().map(size).sum::<usize>(),
        _ => 1,
    }
}

/// All one-step simplifications of the *body* (parameter list is kept, so
/// the argument set stays applicable).
fn candidates(func: &Expr) -> Vec<Expr> {
    let params = func.args()[0].clone();
    let body = &func.args()[1];
    body_candidates(body)
        .into_iter()
        .map(|b| Expr::call("Function", [params.clone(), b]))
        .collect()
}

fn body_candidates(body: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    let n = count(body);
    for ix in 0..n {
        let node = get(body, ix).expect("index in range");
        // Hoist each child over the node.
        if let ExprKind::Normal(sub) = node.kind() {
            for child in sub.args() {
                out.push(replace(body, ix, child));
            }
            // Drop one argument of a statement sequence at a time.
            if sub.head().is_symbol("CompoundExpression") && sub.args().len() > 1 {
                for drop_i in 0..sub.args().len() {
                    let kept: Vec<Expr> = sub
                        .args()
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop_i)
                        .map(|(_, a)| a.clone())
                        .collect();
                    let slim = if kept.len() == 1 {
                        kept.into_iter().next().expect("one kept")
                    } else {
                        Expr::call("CompoundExpression", kept)
                    };
                    out.push(replace(body, ix, &slim));
                }
            }
            // Drop one Module local at a time.
            if sub.head().is_symbol("Module") && sub.args().len() == 2 {
                let locals = &sub.args()[0];
                if locals.has_head("List") && locals.length() > 0 {
                    for drop_i in 0..locals.args().len() {
                        let kept: Vec<Expr> = locals
                            .args()
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != drop_i)
                            .map(|(_, a)| a.clone())
                            .collect();
                        let slim = Expr::call("Module", [Expr::list(kept), sub.args()[1].clone()]);
                        out.push(replace(body, ix, &slim));
                    }
                }
            }
        }
        // Literal replacements and reductions.
        match node.kind() {
            ExprKind::Integer(v) if *v != 0 => {
                out.push(replace(body, ix, &Expr::int(0)));
                if v.abs() > 1 {
                    out.push(replace(body, ix, &Expr::int(v / 2)));
                }
            }
            ExprKind::Real(v) if *v != 0.0 => {
                out.push(replace(body, ix, &Expr::real(0.0)));
            }
            ExprKind::Normal(_) => {
                out.push(replace(body, ix, &Expr::int(1)));
            }
            _ => {}
        }
    }
    out
}

/// Preorder node count (heads are not positions; arguments are).
fn count(e: &Expr) -> usize {
    match e.kind() {
        ExprKind::Normal(n) => 1 + n.args().iter().map(count).sum::<usize>(),
        _ => 1,
    }
}

/// The node at preorder index `ix`.
fn get(e: &Expr, ix: usize) -> Option<&Expr> {
    fn go<'a>(e: &'a Expr, ix: &mut usize) -> Option<&'a Expr> {
        if *ix == 0 {
            return Some(e);
        }
        *ix -= 1;
        if let ExprKind::Normal(n) = e.kind() {
            for a in n.args() {
                if let Some(hit) = go(a, ix) {
                    return Some(hit);
                }
            }
        }
        None
    }
    let mut ix = ix;
    go(e, &mut ix)
}

/// A copy of `e` with the node at preorder index `ix` replaced.
fn replace(e: &Expr, ix: usize, new: &Expr) -> Expr {
    fn go(e: &Expr, ix: &mut usize, new: &Expr) -> Expr {
        if *ix == 0 {
            *ix = usize::MAX; // consumed
            return new.clone();
        }
        *ix -= 1;
        if let ExprKind::Normal(n) = e.kind() {
            let args: Vec<Expr> = n.args().iter().map(|a| go(a, ix, new)).collect();
            Expr::normal(n.head().clone(), args)
        } else {
            e.clone()
        }
    }
    let mut ix = ix;
    go(e, &mut ix, new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;

    #[test]
    fn tree_editing_roundtrips() {
        let e = parse("Plus[1, Times[2, 3]]").unwrap();
        assert_eq!(count(&e), 5); // Plus, 1, Times, 2, 3
        assert_eq!(get(&e, 0).unwrap(), &e);
        assert_eq!(get(&e, 1).unwrap(), &Expr::int(1));
        let swapped = replace(&e, 2, &Expr::int(7));
        assert_eq!(swapped, parse("Plus[1, 7]").unwrap());
    }

    #[test]
    fn non_diverging_input_yields_none() {
        let func = parse("Function[{Typed[p1, \"MachineInteger\"]}, p1 + 1]").unwrap();
        assert!(shrink(&func, &[vec![wolfram_runtime::Value::I64(3)]]).is_none());
    }
}
