//! Seeded program generation over the tri-engine subset.
//!
//! Every program this module emits must be *accepted* by all three engines
//! — the tree-walking interpreter, the bytecode VM, and the native register
//! machine — so the generator is deliberately conservative:
//!
//! - **Types.** Parameters are machine integers, machine reals, or rank-1
//!   packed arrays of either; booleans appear only as intermediate values
//!   (comparisons, `If`/`While` conditions, `Module` locals), because the
//!   compiled calling conventions have no boolean parameter kind.
//! - **Termination.** Every `While` gets a fresh counter local and a small
//!   literal (or `Min[var, literal]`) bound, so programs always halt.
//! - **Tensor safety.** Part indices are literals in `1..=len`, negative
//!   literals in `-len..=-1`, or `Mod[e, len] + 1` (in range because `Mod`
//!   takes the divisor's sign). Writes only target `Module`-local tensors
//!   allocated with `ConstantArray` — never parameters — so engines cannot
//!   disagree about aliasing.
//! - **Overflow on purpose.** Integer literals and arguments occasionally
//!   sit near `i64::MAX` so `Plus`/`Times`/`Power` cross the
//!   overflow-to-bignum boundary, exercising the soft-failure fallback
//!   (F2) against the interpreter's exact answer.
//!
//! Programs are canonicalized through a parse→print round trip at
//! generation time, so the printed source *is* the program: counterexample
//! artifacts replay bit-identically.

use crate::rng::Rng;
use wolfram_expr::{parse, Expr};
use wolfram_runtime::Value;

/// The value types the generator tracks while building expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Machine integer (`"MachineInteger"`).
    Int,
    /// Machine real (`"Real64"`).
    Real,
    /// Boolean — intermediate values only, never a parameter.
    Bool,
    /// Rank-1 integer packed array of the given length.
    TenInt(usize),
    /// Rank-1 real packed array of the given length.
    TenReal(usize),
}

impl Ty {
    /// The `Typed[...]` second-argument spec for this type.
    pub fn type_expr(self) -> Expr {
        match self {
            Ty::Int => Expr::string("MachineInteger"),
            Ty::Real => Expr::string("Real64"),
            Ty::Bool => Expr::string("Boolean"),
            Ty::TenInt(_) => Expr::normal(
                Expr::string("Tensor"),
                vec![Expr::string("Integer64"), Expr::int(1)],
            ),
            Ty::TenReal(_) => Expr::normal(
                Expr::string("Tensor"),
                vec![Expr::string("Real64"), Expr::int(1)],
            ),
        }
    }

    fn is_tensor(self) -> bool {
        matches!(self, Ty::TenInt(_) | Ty::TenReal(_))
    }
}

/// A generated program: a typed `Function[...]` plus argument sets to run
/// it on. `func` is canonical — it is the parse of its own printed form.
#[derive(Debug, Clone)]
pub struct Program {
    /// The seed that regenerates this exact program.
    pub seed: u64,
    /// Parameter names and types, in order.
    pub params: Vec<(String, Ty)>,
    /// `Function[{Typed[p1, ...], ...}, body]`, canonicalized.
    pub func: Expr,
    /// Concrete argument tuples to evaluate the function on.
    pub arg_sets: Vec<Vec<Value>>,
}

impl Program {
    /// Deterministically generates the program for `seed`.
    pub fn generate(seed: u64) -> Program {
        let mut g = Gen {
            rng: Rng::new(seed),
            scope: Vec::new(),
            counter: 0,
        };
        let (params, func) = g.function();
        let arg_sets = g.arg_sets(&params);
        // Canonicalize: the printed source is the artifact of record, so
        // the in-memory tree must be exactly what that source parses to
        // (n-ary `Plus`/`Times` re-flatten across printed parentheses).
        let func = parse(&func.to_input_form()).expect("generated program must parse");
        Program {
            seed,
            params,
            func,
            arg_sets,
        }
    }

    /// The replayable `.wl` source (InputForm of the function).
    pub fn source(&self) -> String {
        self.func.to_input_form()
    }

    /// The function body (params are referenced free in it).
    pub fn body(&self) -> &Expr {
        &self.func.args()[1]
    }

    /// Checks the print→parse→print fixpoint that makes counterexample
    /// artifacts trustworthy. Returns the failure description if broken.
    pub fn roundtrip(&self) -> Result<(), String> {
        let src = self.source();
        let reparsed = parse(&src).map_err(|e| format!("source does not reparse: {e}"))?;
        if reparsed != self.func {
            return Err(format!(
                "parse(source) differs from program tree:\n  source: {src}\n  reparse: {}",
                reparsed.to_full_form()
            ));
        }
        let reprinted = reparsed.to_input_form();
        if reprinted != src {
            return Err(format!(
                "printing is not a fixpoint:\n  {src}\n  {reprinted}"
            ));
        }
        Ok(())
    }
}

/// Integer literals that sit on overflow / sign boundaries.
const SPICY_INTS: &[i64] = &[
    i64::MAX,
    i64::MAX - 1,
    i64::MIN + 2,
    3_037_000_500, // ~sqrt(i64::MAX): Times overflows, Plus does not
    1 << 31,
    1 << 62,
    1_000_000_000_000_000_000,
    -1_000_000_000_000_000_000,
];

struct Gen {
    rng: Rng,
    /// Variables readable at the current point (params + Module locals).
    scope: Vec<(String, Ty)>,
    /// Fresh-name counter for locals.
    counter: u32,
}

impl Gen {
    fn function(&mut self) -> (Vec<(String, Ty)>, Expr) {
        let n_params = 1 + self.rng.below(3) as usize;
        let mut params = Vec::with_capacity(n_params);
        for i in 0..n_params {
            let ty = match self.rng.below(100) {
                0..=39 => Ty::Int,
                40..=64 => Ty::Real,
                65..=84 => Ty::TenInt(2 + self.rng.below(4) as usize),
                _ => Ty::TenReal(2 + self.rng.below(4) as usize),
            };
            params.push((format!("p{}", i + 1), ty));
        }
        self.scope = params.clone();

        let body = if self.rng.chance(60, 100) {
            self.module_body()
        } else {
            let ret = if self.rng.chance(60, 100) {
                Ty::Int
            } else {
                Ty::Real
            };
            self.expr(ret, 3)
        };

        let typed: Vec<Expr> = params
            .iter()
            .map(|(name, ty)| Expr::call("Typed", [Expr::sym(name), ty.type_expr()]))
            .collect();
        (
            params.clone(),
            Expr::call("Function", [Expr::list(typed), body]),
        )
    }

    /// `Module[{locals...}, stmt; ...; result]`.
    fn module_body(&mut self) -> Expr {
        let outer_scope = self.scope.len();
        let mut inits: Vec<Expr> = Vec::new();

        for _ in 0..1 + self.rng.below(3) {
            let name = self.fresh("v");
            let (ty, init) = match self.rng.below(10) {
                0..=4 => (Ty::Int, Expr::int(self.rng.i64_in(-9, 9))),
                5..=7 => (Ty::Real, real_lit(self.rng.i64_in(-20, 20))),
                _ => (
                    Ty::Bool,
                    Expr::sym(if self.rng.chance(1, 2) {
                        "True"
                    } else {
                        "False"
                    }),
                ),
            };
            inits.push(Expr::call("Set", [Expr::sym(&name), init]));
            self.scope.push((name, ty));
        }
        if self.rng.chance(55, 100) {
            let name = self.fresh("w");
            let len = 2 + self.rng.below(3) as usize;
            let (ty, fill) = if self.rng.chance(1, 2) {
                (Ty::TenInt(len), Expr::int(0))
            } else {
                (Ty::TenReal(len), Expr::real(0.0))
            };
            inits.push(Expr::call(
                "Set",
                [
                    Expr::sym(&name),
                    Expr::call("ConstantArray", [fill, Expr::list([Expr::int(len as i64)])]),
                ],
            ));
            self.scope.push((name, ty));
        }

        let mut stmts: Vec<Expr> = Vec::new();
        for _ in 0..1 + self.rng.below(4) {
            let (stmt, extra_locals) = self.stmt(2);
            inits.extend(extra_locals);
            stmts.push(stmt);
        }
        stmts.push(self.result_expr());

        let body = if stmts.len() == 1 {
            stmts.pop().expect("one statement")
        } else {
            Expr::call("CompoundExpression", stmts)
        };
        self.scope.truncate(outer_scope);
        Expr::call("Module", [Expr::list(inits), body])
    }

    /// The Module's result: usually a scalar expression, occasionally a
    /// whole tensor (exercising packed-array returns).
    fn result_expr(&mut self) -> Expr {
        if self.rng.chance(15, 100) {
            let tensors: Vec<String> = self
                .scope
                .iter()
                .filter(|(_, t)| t.is_tensor())
                .map(|(n, _)| n.clone())
                .collect();
            if let Some(name) = tensors.get(self.rng.below(tensors.len().max(1) as u64) as usize) {
                return Expr::sym(name);
            }
        }
        let ret = if self.rng.chance(60, 100) {
            Ty::Int
        } else {
            Ty::Real
        };
        self.expr(ret, 3)
    }

    /// One statement; may allocate loop-counter locals, returned as extra
    /// `Module` inits.
    fn stmt(&mut self, depth: u32) -> (Expr, Vec<Expr>) {
        let assignable: Vec<(String, Ty)> = self
            .scope
            .iter()
            .filter(|(n, _)| n.starts_with('v') || n.starts_with('w'))
            .cloned()
            .collect();
        match self.rng.below(100) {
            0..=49 if !assignable.is_empty() => {
                // Scalar assignment (or tensor element write, below).
                let (name, ty) = self.rng.pick(&assignable).clone();
                match ty {
                    Ty::TenInt(len) => {
                        let ix = self.index_expr(len);
                        let val = self.expr(Ty::Int, depth);
                        (set_part(&name, ix, val), vec![])
                    }
                    Ty::TenReal(len) => {
                        let ix = self.index_expr(len);
                        let val = self.expr(Ty::Real, depth);
                        (set_part(&name, ix, val), vec![])
                    }
                    scalar => {
                        let val = self.expr(scalar, depth);
                        (Expr::call("Set", [Expr::sym(&name), val]), vec![])
                    }
                }
            }
            50..=69 if !assignable.is_empty() => {
                // Conditional assignment. Both arms target the *same*
                // local so the native phi node unifies cleanly (arms of
                // different types are a compile error there, not a
                // semantic divergence).
                let (name, ty) = self.rng.pick(&assignable).clone();
                let cond = self.expr(Ty::Bool, depth.min(2));
                let scalar = match ty {
                    Ty::TenInt(_) => Ty::Int,
                    Ty::TenReal(_) => Ty::Real,
                    s => s,
                };
                let mk = |g: &mut Self, val: Expr| match ty {
                    Ty::TenInt(len) | Ty::TenReal(len) => {
                        let ix = g.index_expr(len);
                        set_part(&name, ix, val)
                    }
                    _ => Expr::call("Set", [Expr::sym(&name), val]),
                };
                let a = self.expr(scalar, depth.saturating_sub(1));
                let b = self.expr(scalar, depth.saturating_sub(1));
                let then = mk(self, a);
                let els = mk(self, b);
                (Expr::call("If", [cond, then, els]), vec![])
            }
            70..=89 => self.while_stmt(depth),
            _ => {
                let ty = if self.rng.chance(1, 2) {
                    Ty::Int
                } else {
                    Ty::Real
                };
                (self.expr(ty, depth), vec![]) // expression statement
            }
        }
    }

    /// `While[k < bound, body; k = k + 1]` with a fresh counter local.
    fn while_stmt(&mut self, depth: u32) -> (Expr, Vec<Expr>) {
        let k = self.fresh("k");
        let counter_init = Expr::call("Set", [Expr::sym(&k), Expr::int(0)]);
        // Bound: small literal, optionally clamped through an integer
        // variable so iteration count depends on the inputs.
        let lit = Expr::int(self.rng.i64_in(1, 6));
        let int_vars: Vec<String> = self
            .scope
            .iter()
            .filter(|(_, t)| *t == Ty::Int)
            .map(|(n, _)| n.clone())
            .collect();
        let bound = if !int_vars.is_empty() && self.rng.chance(40, 100) {
            let v = self.rng.pick(&int_vars).clone();
            Expr::call("Min", [Expr::sym(&v), lit])
        } else {
            lit
        };
        // Inner statements are generated *before* the counter enters
        // scope, so nothing can reassign it and termination is syntactic.
        let (inner, mut extra) = self.stmt(depth.saturating_sub(1));
        extra.push(counter_init);
        self.scope.push((k.clone(), Ty::Int));
        let body = Expr::call(
            "CompoundExpression",
            [
                inner,
                Expr::call(
                    "Set",
                    [
                        Expr::sym(&k),
                        Expr::call("Plus", [Expr::sym(&k), Expr::int(1)]),
                    ],
                ),
            ],
        );
        let cond = Expr::call("Less", [Expr::sym(&k), bound]);
        (Expr::call("While", [cond, body]), extra)
    }

    /// A typed expression of depth at most `depth`.
    fn expr(&mut self, ty: Ty, depth: u32) -> Expr {
        if depth == 0 || self.rng.chance(25, 100) {
            return self.leaf(ty);
        }
        match ty {
            Ty::Int => self.int_node(depth),
            Ty::Real => self.real_node(depth),
            Ty::Bool => self.bool_node(depth),
            // Tensor-typed expressions are only ever variables.
            other => self.leaf(other),
        }
    }

    fn int_node(&mut self, depth: u32) -> Expr {
        let d = depth - 1;
        match self.rng.below(100) {
            0..=54 => {
                let head = *self
                    .rng
                    .pick(&["Plus", "Subtract", "Times", "Min", "Max", "Quotient", "Mod"]);
                let a = self.expr(Ty::Int, d);
                let b = self.expr(Ty::Int, d);
                Expr::call(head, [a, b])
            }
            55..=64 => {
                // Power with a small literal exponent; occasionally
                // negative, which the interpreter evaluates as a real and
                // compiled code must soft-fail to match.
                let base = self.expr(Ty::Int, d);
                let exp = if self.rng.chance(1, 5) {
                    self.rng.i64_in(-3, -1)
                } else {
                    self.rng.i64_in(0, 5)
                };
                Expr::call("Power", [base, Expr::int(exp)])
            }
            65..=74 => Expr::call("Abs", [self.expr(Ty::Int, d)]),
            75..=89 => {
                let c = self.expr(Ty::Bool, d);
                let t = self.expr(Ty::Int, d);
                let e = self.expr(Ty::Int, d);
                Expr::call("If", [c, t, e])
            }
            _ => match self.tensor_read(false, d) {
                Some(e) => e,
                None => self.leaf(Ty::Int),
            },
        }
    }

    fn real_node(&mut self, depth: u32) -> Expr {
        let d = depth - 1;
        match self.rng.below(100) {
            0..=54 => {
                let head = *self
                    .rng
                    .pick(&["Plus", "Subtract", "Times", "Divide", "Min", "Max", "Mod"]);
                let a = self.expr(Ty::Real, d);
                let b = self.expr(Ty::Real, d);
                Expr::call(head, [a, b])
            }
            55..=64 => {
                let base = self.expr(Ty::Real, d);
                Expr::call("Power", [base, Expr::int(self.rng.i64_in(0, 3))])
            }
            65..=74 => Expr::call("Abs", [self.expr(Ty::Real, d)]),
            75..=89 => {
                let c = self.expr(Ty::Bool, d);
                let t = self.expr(Ty::Real, d);
                let e = self.expr(Ty::Real, d);
                Expr::call("If", [c, t, e])
            }
            _ => match self.tensor_read(true, d) {
                Some(e) => e,
                None => self.leaf(Ty::Real),
            },
        }
    }

    fn bool_node(&mut self, depth: u32) -> Expr {
        let d = depth - 1;
        match self.rng.below(100) {
            0..=59 => {
                let cmp = *self.rng.pick(&[
                    "Less",
                    "LessEqual",
                    "Greater",
                    "GreaterEqual",
                    "Equal",
                    "Unequal",
                ]);
                let ty = if self.rng.chance(70, 100) {
                    Ty::Int
                } else {
                    Ty::Real
                };
                let a = self.expr(ty, d);
                let b = self.expr(ty, d);
                Expr::call(cmp, [a, b])
            }
            60..=84 => {
                // Short-circuit operators: the right operand may error —
                // that is the point (HoldAll semantics differ from eager).
                let head = if self.rng.chance(1, 2) { "And" } else { "Or" };
                let a = self.expr(Ty::Bool, d);
                let b = self.expr(Ty::Bool, d);
                Expr::call(head, [a, b])
            }
            85..=94 => Expr::call("Not", [self.expr(Ty::Bool, d)]),
            _ => self.leaf(Ty::Bool),
        }
    }

    /// `t[[ix]]` over a scoped tensor of the requested element type.
    fn tensor_read(&mut self, real: bool, depth: u32) -> Option<Expr> {
        let candidates: Vec<(String, usize)> = self
            .scope
            .iter()
            .filter_map(|(n, t)| match (t, real) {
                (Ty::TenInt(l), false) | (Ty::TenReal(l), true) => Some((n.clone(), *l)),
                _ => None,
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let (name, len) = self.rng.pick(&candidates).clone();
        let ix = if depth == 0 {
            Expr::int(self.rng.i64_in(1, len as i64))
        } else {
            self.index_expr(len)
        };
        Some(Expr::call("Part", [Expr::sym(&name), ix]))
    }

    /// An always-in-range 1-based index for a tensor of length `len`.
    fn index_expr(&mut self, len: usize) -> Expr {
        let len = len as i64;
        match self.rng.below(10) {
            0..=5 => Expr::int(self.rng.i64_in(1, len)),
            6 => Expr::int(self.rng.i64_in(-len, -1)),
            _ => {
                // Mod[e, len] is in 0..len (divisor's sign), so +1 lands
                // in 1..=len whatever `e` evaluates to.
                let e = self.expr(Ty::Int, 1);
                Expr::call(
                    "Plus",
                    [Expr::call("Mod", [e, Expr::int(len)]), Expr::int(1)],
                )
            }
        }
    }

    fn leaf(&mut self, ty: Ty) -> Expr {
        // Prefer a scoped variable of the right type half the time.
        let vars: Vec<String> = self
            .scope
            .iter()
            .filter(|(_, t)| *t == ty)
            .map(|(n, _)| n.clone())
            .collect();
        if !vars.is_empty() && self.rng.chance(1, 2) {
            let name: &String = self.rng.pick(&vars);
            return Expr::sym(name);
        }
        match ty {
            Ty::Int => {
                let tensors: Vec<String> = self
                    .scope
                    .iter()
                    .filter(|(_, t)| t.is_tensor())
                    .map(|(n, _)| n.clone())
                    .collect();
                if !tensors.is_empty() && self.rng.chance(1, 10) {
                    let name: &String = self.rng.pick(&tensors);
                    return Expr::call("Length", [Expr::sym(name)]);
                }
                match self.rng.below(100) {
                    0..=74 => Expr::int(self.rng.i64_in(-20, 20)),
                    75..=84 => Expr::int(*self.rng.pick(SPICY_INTS)),
                    _ => Expr::int(self.rng.i64_in(-1_000_000, 1_000_000)),
                }
            }
            Ty::Real => real_lit(self.rng.i64_in(-40, 40)),
            Ty::Bool => Expr::sym(if self.rng.chance(1, 2) {
                "True"
            } else {
                "False"
            }),
            // No tensor variable in scope: fall back to a fresh literal
            // array (read-only, so sharing semantics are irrelevant).
            Ty::TenInt(len) => Expr::list(
                (0..len)
                    .map(|_| Expr::int(self.rng.i64_in(-9, 9)))
                    .collect::<Vec<_>>(),
            ),
            Ty::TenReal(len) => Expr::list(
                (0..len)
                    .map(|_| real_lit(self.rng.i64_in(-12, 12)))
                    .collect::<Vec<_>>(),
            ),
        }
    }

    fn arg_sets(&mut self, params: &[(String, Ty)]) -> Vec<Vec<Value>> {
        let n = 2 + self.rng.below(2) as usize;
        (0..n)
            .map(|_| params.iter().map(|(_, ty)| self.arg_value(*ty)).collect())
            .collect()
    }

    fn arg_value(&mut self, ty: Ty) -> Value {
        match ty {
            Ty::Int => Value::I64(match self.rng.below(10) {
                0..=5 => self.rng.i64_in(-10, 10),
                6..=7 => self.rng.i64_in(-1_000_000_000, 1_000_000_000),
                _ => *self.rng.pick(SPICY_INTS),
            }),
            Ty::Real => Value::F64(self.rng.i64_in(-40, 40) as f64 / 4.0),
            Ty::Bool => unreachable!("booleans are never parameters"),
            Ty::TenInt(len) => {
                let elems: Vec<Expr> = (0..len)
                    .map(|_| {
                        Expr::int(if self.rng.chance(1, 8) {
                            *self.rng.pick(SPICY_INTS)
                        } else {
                            self.rng.i64_in(-9, 9)
                        })
                    })
                    .collect();
                Value::from_expr(&Expr::list(elems))
            }
            Ty::TenReal(len) => {
                let elems: Vec<Expr> = (0..len)
                    .map(|_| real_lit(self.rng.i64_in(-12, 12)))
                    .collect();
                Value::from_expr(&Expr::list(elems))
            }
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }
}

/// `k/4` as a real literal: exactly representable and exactly reprintable.
fn real_lit(quarters: i64) -> Expr {
    Expr::real(quarters as f64 / 4.0)
}

fn set_part(name: &str, ix: Expr, val: Expr) -> Expr {
    Expr::call("Set", [Expr::call("Part", [Expr::sym(name), ix]), val])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            let a = Program::generate(seed);
            let b = Program::generate(seed);
            assert_eq!(a.source(), b.source(), "seed {seed}");
            assert_eq!(a.arg_sets, b.arg_sets, "seed {seed}");
        }
    }

    #[test]
    fn programs_roundtrip_through_the_printer() {
        for seed in 0..300 {
            let p = Program::generate(seed);
            if let Err(e) = p.roundtrip() {
                panic!("seed {seed}: {e}");
            }
        }
    }

    #[test]
    fn arg_sets_match_param_arity() {
        for seed in 0..100 {
            let p = Program::generate(seed);
            assert!(!p.arg_sets.is_empty());
            for set in &p.arg_sets {
                assert_eq!(set.len(), p.params.len());
            }
        }
    }
}
