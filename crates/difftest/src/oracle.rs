//! The tri-engine oracle and the equivalence relation it judges by.
//!
//! A program is run through six configurations:
//!
//! 1. the tree-walking **interpreter** (the language oracle),
//! 2. the **bytecode VM** (hosted, so numeric errors revert to the
//!    interpreter — F2),
//! 3. the **native register machine with superinstruction fusion**
//!    (hosted),
//! 4. the **native machine with fusion disabled** (hosted) — fusion is an
//!    ablation knob, so fused and unfused code must agree bit-for-bit,
//! 5. the **native machine with the data-parallel tier** (hosted) —
//!    fusion plus vectorized counted loops and chunked whole-tensor
//!    builtins on the worker pool, tuned aggressively (2 threads, tiny
//!    chunks) so even fuzz-sized tensors exercise the parallel paths, and
//! 6. the **native machine with range-check elision** (hosted) — the
//!    interval analysis proves bounds/overflow checks and refcount pairs
//!    redundant and the lowering drops them, on top of fusion and the
//!    aggressive parallel tier; a wrong proof shows up as a divergence
//!    (or a panic) against the fully checked engines. The other native
//!    configurations pin elision *off* so they stay checked baselines.
//!
//! # Equivalence relation
//!
//! Two outcomes are equivalent when:
//!
//! - both error with the same [`RuntimeError::tag`] (after soft-failure
//!   fallback, which is part of each hosted engine's semantics), or both
//!   succeed and their values match under:
//! - **exact** equality for integers, big integers, booleans, strings and
//!   `Null`;
//! - **≤ [`ULP_TOLERANCE`] ULP** for machine reals (`0.0 == -0.0`, and two
//!   NaNs are equal — the engines may legitimately differ in rounding
//!   across re-associated or fused operations, but not by more than a few
//!   ULP), **or** within an absolute allowance scaled to the largest
//!   number the program manipulates: the interpreter's Orderless `Plus`
//!   re-sorts numeric terms by runtime value while compiled code fixes the
//!   association at compile time, so catastrophic cancellation of large
//!   terms legitimately amplifies one rounding step at the *intermediate*
//!   magnitude into many ULP at the small final magnitude;
//! - an integer and a real compare **numerically** (a hosted engine that
//!   soft-failed may return the interpreter's exact integer where pure
//!   compiled code would have produced a real);
//! - complex numbers compare componentwise; tensors compare by shape and
//!   elementwise under the scalar rules; everything else falls back to
//!   structural expression equality.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use wolfram_bytecode::{ArgSpec, BytecodeCompiler};
use wolfram_compiler_core::{CompileError, Compiler, CompilerOptions};
use wolfram_expr::Expr;
use wolfram_interp::Interpreter;
use wolfram_ir::VerifyLevel;
use wolfram_runtime::{AbortSignal, ParallelConfig, RuntimeError, Value};

/// Maximum units-in-last-place distance at which two machine reals are
/// still considered the same answer.
pub const ULP_TOLERANCE: u64 = 8;

/// Relative factor for the cancellation allowance: two real results also
/// count as equal when they are within `CANCELLATION_EPS * M` of each
/// other, where `M` is the largest magnitude among the program's numeric
/// literals and the argument values. `2^-48` covers a handful of rounding
/// steps (each at most `2^-52 * M`) performed at the intermediate
/// magnitude before the terms cancel. Found by wolfram-difftest (seed
/// 7502226797392405932): `2^62 + p1 + (19^-3 - 2^62)` rounds once on a
/// 512-spaced grid under the interpreter's value-sorted fold and once on a
/// 1024-spaced grid under the compiled left fold — both IEEE-correct for
/// their association, 8e9 final ULP apart.
pub const CANCELLATION_EPS: f64 = f64::EPSILON * 16.0;

/// Wall-clock budget for one engine on one argument set. Generated
/// programs finish in microseconds; the budget only bites when a *shrink
/// mutation* breaks a `While` counter and the candidate loops forever. The
/// watchdog then fires the engine's [`AbortSignal`] (F3) and the run
/// reports as timed out rather than hanging the whole fuzz session.
pub const RUN_TIMEOUT: Duration = Duration::from_millis(300);

/// Runs `f` under an [`AbortSignal::deadline`] watchdog that triggers
/// `signal` if `f` has not finished within [`RUN_TIMEOUT`]. The signal is
/// reset afterwards so a shared host interpreter is reusable for the next
/// run.
fn with_watchdog<T>(signal: &AbortSignal, f: impl FnOnce() -> T) -> T {
    let guard = signal.deadline(RUN_TIMEOUT);
    let out = f();
    drop(guard);
    signal.reset();
    out
}

/// One engine's result for one (program, argument-set) evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Normal completion.
    Ok(Value),
    /// A runtime error, identified by its tag (e.g. `"DivideByZero"`).
    Err(String),
}

impl Outcome {
    fn from_run(r: Result<Value, RuntimeError>) -> Outcome {
        match r {
            Ok(v) => Outcome::Ok(v),
            Err(e) => Outcome::Err(e.tag().to_owned()),
        }
    }

    /// Short display form for reports.
    pub fn describe(&self) -> String {
        match self {
            Outcome::Ok(v) => v.to_expr().to_input_form(),
            Outcome::Err(tag) => format!("<error: {tag}>"),
        }
    }
}

/// The engine configurations under test, in report order.
pub const ENGINE_NAMES: [&str; 6] = [
    "interpreter",
    "bytecode",
    "native+fusion",
    "native-fusion",
    "native+parallel",
    "native+elision",
];

/// All six outcomes for one argument set.
#[derive(Debug, Clone)]
pub struct TriRun {
    /// Indexed as [`ENGINE_NAMES`].
    pub outcomes: [Outcome; 6],
    /// Absolute real-comparison allowance for this run:
    /// [`CANCELLATION_EPS`] times the largest magnitude among the
    /// program's literals and this argument set.
    pub abs_tol: f64,
}

impl TriRun {
    /// Whether any engine hit the [`RUN_TIMEOUT`] watchdog. A timed-out
    /// run is inconclusive, not a divergence: the engines were stopped at
    /// arbitrary points, so their outcomes are not comparable.
    pub fn timed_out(&self) -> bool {
        self.outcomes
            .iter()
            .any(|o| matches!(o, Outcome::Err(tag) if tag == "Aborted"))
    }

    /// Whether the interpreter produced a *symbolic* (unevaluated) result.
    /// The generator stays inside the numeric subset, so a symbolic oracle
    /// answer means the program (usually a shrink candidate) escaped the
    /// subset — e.g. a free variable after dropping a `Module` local, or
    /// an inert form like `Mod[x, 0.]` surviving soft fallback. Symbolic
    /// results also carry interpreter-session artifacts (Module renaming
    /// counters), so comparing them across engines is meaningless.
    pub fn out_of_subset(&self) -> bool {
        matches!(&self.outcomes[0], Outcome::Ok(Value::Expr(_)))
    }

    /// The first engine (by index) that disagrees with the interpreter,
    /// with a human-readable description.
    pub fn divergence(&self) -> Option<String> {
        if self.timed_out() || self.out_of_subset() {
            return None;
        }
        let oracle = &self.outcomes[0];
        for (i, got) in self.outcomes.iter().enumerate().skip(1) {
            if !outcomes_equivalent_within(oracle, got, self.abs_tol) {
                return Some(format!(
                    "{} returned {} but the interpreter returned {}",
                    ENGINE_NAMES[i],
                    got.describe(),
                    oracle.describe()
                ));
            }
        }
        None
    }
}

/// A program that one of the compiled engines refused to *compile* — not a
/// semantic divergence, but a hole in the common subset worth seeing.
#[derive(Debug, Clone)]
pub struct PrepareError {
    /// Which engine refused.
    pub engine: &'static str,
    /// The compiler's message.
    pub message: String,
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed to compile: {}", self.engine, self.message)
    }
}

/// A function compiled for all engine configurations, ready to run
/// argument sets through.
pub struct PreparedSubject {
    func: Expr,
    /// Largest magnitude among the program's numeric literals; feeds the
    /// per-run cancellation allowance (see [`CANCELLATION_EPS`]).
    literal_scale: f64,
    bytecode: wolfram_bytecode::CompiledFunction,
    native_fused: wolfram_compiler_core::CompiledCodeFunction,
    native_unfused: wolfram_compiler_core::CompiledCodeFunction,
    native_parallel: wolfram_compiler_core::CompiledCodeFunction,
    native_elision: wolfram_compiler_core::CompiledCodeFunction,
}

/// Largest magnitude among the numeric literals in `e`, recursively.
fn literal_scale(e: &Expr) -> f64 {
    use wolfram_expr::ExprKind;
    match e.kind() {
        ExprKind::Integer(i) => i.unsigned_abs() as f64,
        ExprKind::BigInteger(b) => b.to_f64().abs(),
        ExprKind::Real(r) => r.abs(),
        ExprKind::Complex(re, im) => re.abs().max(im.abs()),
        ExprKind::Normal(_) => {
            let head = literal_scale(&e.head());
            e.args().iter().map(literal_scale).fold(head, f64::max)
        }
        _ => 0.0,
    }
}

/// Largest magnitude inside one argument value.
fn value_scale(v: &Value) -> f64 {
    match v {
        Value::I64(i) => i.unsigned_abs() as f64,
        Value::F64(x) => x.abs(),
        Value::Big(b) => b.to_f64().abs(),
        Value::Complex(re, im) => re.abs().max(im.abs()),
        Value::Tensor(t) => {
            let ints = t
                .as_i64()
                .into_iter()
                .flatten()
                .map(|i| i.unsigned_abs() as f64);
            let reals = t.as_f64().into_iter().flatten().map(|x| x.abs());
            ints.chain(reals).fold(0.0, f64::max)
        }
        _ => 0.0,
    }
}

/// Derives the bytecode [`ArgSpec`] list from a `Function[{Typed[...]},
/// body]` expression (delegates to [`ArgSpec::from_function`], shared
/// with the serve bytecode tier).
///
/// # Errors
///
/// Returns a message for parameter forms outside the fuzzer's subset.
pub fn specs_from_function(func: &Expr) -> Result<Vec<ArgSpec>, String> {
    ArgSpec::from_function(func)
}

/// Compiles `func` for every engine configuration, with the per-pass
/// analyzer on (`VerifyLevel::Full`).
///
/// # Errors
///
/// Returns the first [`PrepareError`]; the interpreter needs no
/// preparation and cannot fail here.
pub fn prepare(func: &Expr) -> Result<PreparedSubject, PrepareError> {
    prepare_with(func, VerifyLevel::Full)
}

/// The analyzer's verdict on `func`: `Some(finding)` if compiling with the
/// default pipeline at `VerifyLevel::Full` trips the type or refcount
/// checkers (an internal-consistency bug, reportable like any other
/// divergence), `None` if the program is analyzer-clean or fails to
/// compile for an unrelated reason.
pub fn verify_failure(func: &Expr) -> Option<String> {
    match Compiler::new(CompilerOptions::default()).compile_to_twir(func, None) {
        Err(e @ CompileError::Verify(_)) => Some(e.to_string()),
        _ => None,
    }
}

/// [`prepare`] with an explicit per-pass verification level for the
/// native configurations.
///
/// # Errors
///
/// Returns the first [`PrepareError`].
pub fn prepare_with(func: &Expr, verify: VerifyLevel) -> Result<PreparedSubject, PrepareError> {
    let specs = specs_from_function(func).map_err(|message| PrepareError {
        engine: "bytecode",
        message,
    })?;
    let body = func.args().get(1).cloned().unwrap_or_else(|| Expr::int(0));
    let bytecode = BytecodeCompiler::new()
        .compile(&specs, &body)
        .map_err(|e| PrepareError {
            engine: "bytecode",
            message: e.to_string(),
        })?;

    let native = |engine: &'static str, options: CompilerOptions| -> Result<_, PrepareError> {
        Compiler::new(options)
            .function_compile(func)
            .map(|cf| cf.hosted(Rc::new(RefCell::new(Interpreter::new()))))
            .map_err(|e| PrepareError {
                engine,
                message: e.to_string(),
            })
    };
    // Elision stays off in the baselines (despite being the compiler
    // default) so they remain fully checked references for the dedicated
    // elision engine below.
    let opts = |fuse: bool| CompilerOptions {
        superinstruction_fusion: fuse,
        verify,
        range_checks_elision: false,
        ..CompilerOptions::default()
    };
    // Deliberately aggressive tuning: fuzz tensors are small, so the
    // production chunk threshold would route everything to the sequential
    // path and test nothing.
    let parallel_opts = CompilerOptions {
        data_parallel: true,
        parallel: ParallelConfig {
            num_threads: 2,
            min_elems_per_chunk: 16,
            simd: true,
        },
        ..opts(true)
    };
    let elision_opts = CompilerOptions {
        range_checks_elision: true,
        ..parallel_opts.clone()
    };

    Ok(PreparedSubject {
        func: func.clone(),
        literal_scale: literal_scale(func),
        bytecode,
        native_fused: native("native+fusion", opts(true))?,
        native_unfused: native("native-fusion", opts(false))?,
        native_parallel: native("native+parallel", parallel_opts)?,
        native_elision: native("native+elision", elision_opts)?,
    })
}

impl PreparedSubject {
    /// Runs one argument set through all six configurations.
    pub fn run(&self, args: &[Value]) -> TriRun {
        // Fresh interpreters per run: generated programs reuse local
        // names, and leaked definitions must not couple iterations. Each
        // engine runs under a watchdog so a non-terminating candidate
        // (possible after shrink mutations) aborts instead of hanging.
        let mut oracle = Interpreter::new();
        let call = Expr::normal(
            self.func.clone(),
            args.iter().map(Value::to_expr).collect::<Vec<_>>(),
        );
        let interp = with_watchdog(&oracle.abort_signal().clone(), || {
            Outcome::from_run(oracle.eval(&call).map(|e| Value::from_expr(&e)))
        });

        let mut host = Interpreter::new();
        let bytecode = with_watchdog(&host.abort_signal().clone(), || {
            Outcome::from_run(self.bytecode.run_with_engine(args, &mut host))
        });

        let fused = with_watchdog(&self.native_fused.abort.clone(), || {
            Outcome::from_run(self.native_fused.call(args))
        });
        let unfused = with_watchdog(&self.native_unfused.abort.clone(), || {
            Outcome::from_run(self.native_unfused.call(args))
        });
        let parallel = with_watchdog(&self.native_parallel.abort.clone(), || {
            Outcome::from_run(self.native_parallel.call(args))
        });
        let elision = with_watchdog(&self.native_elision.abort.clone(), || {
            Outcome::from_run(self.native_elision.call(args))
        });

        let scale = args
            .iter()
            .map(value_scale)
            .fold(self.literal_scale, f64::max);
        TriRun {
            outcomes: [interp, bytecode, fused, unfused, parallel, elision],
            abs_tol: CANCELLATION_EPS * scale,
        }
    }
}

/// Whether two outcomes agree under the documented equivalence relation,
/// with no absolute cancellation allowance.
pub fn outcomes_equivalent(a: &Outcome, b: &Outcome) -> bool {
    outcomes_equivalent_within(a, b, 0.0)
}

/// [`outcomes_equivalent`] with an absolute real-comparison allowance
/// (see [`CANCELLATION_EPS`]).
pub fn outcomes_equivalent_within(a: &Outcome, b: &Outcome, abs_tol: f64) -> bool {
    match (a, b) {
        (Outcome::Ok(x), Outcome::Ok(y)) => values_equivalent_within(x, y, abs_tol),
        (Outcome::Err(x), Outcome::Err(y)) => x == y,
        _ => false,
    }
}

/// The value half of the equivalence relation (see module docs), with no
/// absolute cancellation allowance.
pub fn values_equivalent(a: &Value, b: &Value) -> bool {
    values_equivalent_within(a, b, 0.0)
}

/// [`values_equivalent`] with an absolute real-comparison allowance.
pub fn values_equivalent_within(a: &Value, b: &Value, abs_tol: f64) -> bool {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => reals_close(*x, *y, abs_tol),
        // Integers are exact — except within the cancellation allowance:
        // a typed engine may route an integer computation through Real64
        // (e.g. `Quotient[2^63 - 1, realish]`) and floor back, landing a
        // few f64-resolution steps from the interpreter's exact answer.
        (Value::I64(x), Value::I64(y)) => {
            x == y || (*x as i128 - *y as i128).unsigned_abs() as f64 <= abs_tol
        }
        (Value::I64(x), Value::F64(y)) | (Value::F64(y), Value::I64(x)) => {
            reals_close(*x as f64, *y, abs_tol)
        }
        // The interpreter promotes overflowing sums to exact big integers
        // where typed compiled code stays in Real64 (e.g. `Max[8, 0.5]` is
        // the exact 8 for the interpreter but 8. under type promotion):
        // the comparison is numeric at machine precision.
        (Value::Big(x), Value::F64(y)) | (Value::F64(y), Value::Big(x)) => {
            reals_close(x.to_f64(), *y, abs_tol)
        }
        (Value::Complex(xr, xi), Value::Complex(yr, yi)) => {
            reals_close(*xr, *yr, abs_tol) && reals_close(*xi, *yi, abs_tol)
        }
        (Value::Tensor(x), Value::Tensor(y)) => tensors_equivalent(x, y, abs_tol),
        // Integers, big integers, booleans, strings, Null, expressions:
        // structural equality is the relation.
        _ => a == b,
    }
}

fn tensors_equivalent(
    a: &wolfram_runtime::Tensor,
    b: &wolfram_runtime::Tensor,
    abs_tol: f64,
) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(xs), Some(ys)) => xs.iter().zip(ys).all(|(x, y)| reals_close(*x, *y, abs_tol)),
        // Mixed storage class: a hosted engine may infer a Real64 tensor
        // where another keeps integers — e.g. a real element store later
        // overwritten by an integer. Numeric comparison, as for scalars.
        (Some(xs), None) => ints_close_to_reals(b.as_i64(), xs, abs_tol),
        (None, Some(ys)) => ints_close_to_reals(a.as_i64(), ys, abs_tol),
        (None, None) => a == b, // both integer: exact
    }
}

fn ints_close_to_reals(ints: Option<&[i64]>, reals: &[f64], abs_tol: f64) -> bool {
    ints.is_some_and(|is| {
        is.iter()
            .zip(reals)
            .all(|(i, y)| reals_close(*i as f64, *y, abs_tol))
    })
}

/// ULP-tolerant real comparison; both-NaN counts as equal. `abs_tol` is
/// the cancellation allowance — it may rescue sign-straddling pairs, since
/// cancellation to near zero can land the engines on opposite sides of it.
fn reals_close(x: f64, y: f64, abs_tol: f64) -> bool {
    if x == y || (x.is_nan() && y.is_nan()) {
        return true;
    }
    if x.is_nan() || y.is_nan() || x.is_infinite() || y.is_infinite() {
        return false;
    }
    if (x - y).abs() <= abs_tol {
        return true;
    }
    if x.signum() != y.signum() {
        // Straddling zero: only equal-enough if both are (sub)normal dust.
        return x.abs() < f64::MIN_POSITIVE && y.abs() < f64::MIN_POSITIVE;
    }
    ulp_distance(x, y) <= ULP_TOLERANCE
}

fn ulp_distance(x: f64, y: f64) -> u64 {
    // Same-sign finite values: the bit patterns are monotone in magnitude.
    let xb = x.abs().to_bits();
    let yb = y.abs().to_bits();
    xb.abs_diff(yb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;

    #[test]
    fn exact_for_integers_tolerant_for_reals() {
        assert!(values_equivalent(&Value::I64(3), &Value::I64(3)));
        assert!(!values_equivalent(&Value::I64(3), &Value::I64(4)));
        let x = 0.1_f64 + 0.2;
        assert!(values_equivalent(&Value::F64(x), &Value::F64(0.3)));
        assert!(!values_equivalent(
            &Value::F64(1.0),
            &Value::F64(1.0 + 1e-9)
        ));
        assert!(values_equivalent(
            &Value::F64(f64::NAN),
            &Value::F64(f64::NAN)
        ));
        assert!(values_equivalent(&Value::F64(0.0), &Value::F64(-0.0)));
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert!(values_equivalent(&Value::I64(2), &Value::F64(2.0)));
        assert!(!values_equivalent(&Value::I64(2), &Value::F64(2.5)));
    }

    #[test]
    fn tri_engines_agree_on_a_simple_program() {
        let func = parse(
            "Function[{Typed[p1, \"MachineInteger\"]}, Module[{v1 = 0}, \
             While[v1 < Min[p1, 5], v1 = v1 + 2]; v1 + Quotient[p1, 3]]]",
        )
        .unwrap();
        let subject = prepare(&func).expect("all engines compile");
        for args in [[Value::I64(7)], [Value::I64(-2)], [Value::I64(0)]] {
            let run = subject.run(&args);
            assert!(run.divergence().is_none(), "{:?}", run.outcomes);
        }
    }

    #[test]
    fn watchdog_unwinds_non_terminating_programs() {
        // A shrink mutation can break a While counter; the watchdog must
        // stop every engine and the run must report inconclusive.
        let func = parse(
            "Function[{Typed[p1, \"MachineInteger\"]}, Module[{v1 = 1}, \
             While[v1 > 0, v1 = v1 + 0]; v1]]",
        )
        .unwrap();
        let subject = prepare(&func).expect("compiles everywhere");
        let run = subject.run(&[Value::I64(1)]);
        assert!(run.timed_out(), "{:?}", run.outcomes);
        assert!(run.divergence().is_none());
    }

    #[test]
    fn cancellation_allowance_scales_with_magnitude() {
        // Seed 7502226797392405932: `2^62 + p1 + (19^-3 - 2^62)` — the
        // interpreter's value-sorted Plus and the compiled left fold each
        // round once at ~2^62 magnitude, landing 512 apart after the big
        // terms cancel. Equivalent under the scaled allowance, but the
        // same absolute gap at small scale stays a divergence.
        let a = Value::F64(451583488.0);
        let b = Value::F64(451584000.0);
        let tol = CANCELLATION_EPS * 4611686018427387904.0_f64;
        assert!(values_equivalent_within(&a, &b, tol));
        assert!(!values_equivalent_within(&a, &b, CANCELLATION_EPS * 1e6));
        assert!(!values_equivalent(&a, &b));
    }

    #[test]
    fn literal_scale_finds_the_spiciest_literal() {
        let func = parse(
            "Function[{Typed[p1, \"MachineInteger\"]}, \
             4611686018427387904 + p1 + Subtract[19^-3, 4611686018427387904]]",
        )
        .unwrap();
        let subject = prepare(&func).expect("compiles everywhere");
        let run = subject.run(&[Value::I64(451583650)]);
        assert!(run.divergence().is_none(), "{:?}", run.outcomes);
    }

    #[test]
    fn specs_cover_the_subset() {
        let func = parse(
            "Function[{Typed[a, \"MachineInteger\"], Typed[b, \"Real64\"], \
             Typed[c, \"Tensor\"[\"Integer64\", 1]], Typed[d, \"Tensor\"[\"Real64\", 1]]}, a]",
        )
        .unwrap();
        let specs = specs_from_function(&func).unwrap();
        assert_eq!(specs.len(), 4);
    }
}
