//! The evaluation harness (§6): regenerates every table and figure of the
//! paper.
//!
//! - [`programs`] — the seven benchmark programs as Wolfram source for the
//!   new compiler, their bytecode-compiler variants (with the paper's
//!   documented workarounds/limitations), and the hand-written native
//!   baselines standing in for the C implementations.
//! - [`workloads`] — seeded input generators for the paper's parameters.
//! - [`harness`] — timing utilities and the Figure 2 runner (normalized to
//!   the native baseline, bytecode slowdown capped at 2.5 for display with
//!   the true value annotated, QSort not representable in bytecode).
//! - [`table1`] — programmatic probes of the feature/objective matrix
//!   F1–F10.
//! - [`intro`] — the §1 in-text numbers: random-walk interpreter vs
//!   bytecode vs FunctionCompile, and `FindRoot` auto-compilation.
//! - [`ablations`] — §6 in-text ablations: abort checking, inlining,
//!   constant-array handling, mutability copies, superinstruction fusion.
//! - [`opstats`] — dynamic op/dyad frequency profiles of the seven
//!   benchmarks (the data superinstruction selection is driven by).
//! - [`serve_load`] — the closed-loop Zipf load generator for the
//!   `wolfram-serve` pool (`reproduce bench-serve`): throughput and tail
//!   latency at 1/4/8 workers with the artifact cache on vs off, plus the
//!   deadline/leak sub-experiment.

pub mod ablations;
pub mod harness;
pub mod intro;
pub mod native;
pub mod opstats;
pub mod parallel;
pub mod programs;
pub mod serve_load;
pub mod stream_bench;
pub mod table1;
pub mod workloads;

pub use harness::{bench_seconds, Figure2Row, Scale};
