//! The §1 in-text numbers: the Figure 1 random walk (interpreter vs
//! bytecode vs new compiler) and the `FindRoot` auto-compilation speedup.

use crate::harness::bench_seconds;
use std::cell::RefCell;
use std::rc::Rc;
use wolfram_bytecode::{ArgSpec, BytecodeCompiler, CompiledFunction};
use wolfram_compiler_core::{CompiledCodeFunction, Compiler};
use wolfram_expr::{parse, Expr};
use wolfram_interp::Interpreter;
use wolfram_runtime::Value;

/// The Figure 1 `In[1]` program: the interpreted random walk.
pub const WALK_INTERPRETED_SRC: &str = r#"
Function[{len},
 NestList[
  Module[{arg = RandomReal[{0, 2*Pi}]},
   {-Cos[arg], Sin[arg]} + #
  ] &,
  {0., 0.},
  len
 ]
]
"#;

/// The Figure 1 `In[2]` program: the bytecode random walk, "minor
/// modifications needed to explicitly call the compiler" — restructured
/// around the VM's datatypes.
pub const WALK_BYTECODE_BODY: &str = r#"
Module[{out, arg, i},
 out = ConstantArray[0., {len + 1, 2}];
 i = 1;
 While[i <= len,
  arg = RandomReal[{0., 6.283185307179586}];
  out[[i + 1, 1]] = out[[i, 1]] - Cos[arg];
  out[[i + 1, 2]] = out[[i, 2]] + Sin[arg];
  i = i + 1];
 out]
"#;

/// The Figure 1 `In[3]` program: `FunctionCompile` of the NestList form
/// (the lambda's parameter carries the one required type annotation).
pub const WALK_COMPILED_SRC: &str = r#"
Function[{Typed[len, "MachineInteger"]},
 NestList[
  Function[{Typed[p, "Tensor"["Real64", 1]]},
   Module[{arg = RandomReal[{0., 6.283185307179586}]},
    {-Cos[arg], Sin[arg]} + p]],
  {0., 0.},
  len]]
"#;

/// Timings of the three random-walk implementations.
#[derive(Debug, Clone)]
pub struct WalkTimings {
    /// Walk length.
    pub len: usize,
    /// Interpreter seconds.
    pub interpreted_secs: f64,
    /// Bytecode-compiled seconds.
    pub bytecode_secs: f64,
    /// FunctionCompile seconds.
    pub compiled_secs: f64,
}

impl WalkTimings {
    /// Bytecode speedup over the interpreter (the paper reports ~2x at
    /// len = 100,000).
    pub fn bytecode_speedup(&self) -> f64 {
        self.interpreted_secs / self.bytecode_secs
    }

    /// New-compiler speedup over the interpreter.
    pub fn compiled_speedup(&self) -> f64 {
        self.interpreted_secs / self.compiled_secs
    }
}

/// Compiles the three walk variants (reusable across lengths).
pub struct WalkSuite {
    interp_f: Expr,
    bytecode: CompiledFunction,
    compiled: CompiledCodeFunction,
}

impl Default for WalkSuite {
    fn default() -> Self {
        Self::new()
    }
}

impl WalkSuite {
    /// Builds all three implementations.
    ///
    /// # Panics
    ///
    /// Panics if any variant fails to build.
    pub fn new() -> Self {
        let interp_f = parse(WALK_INTERPRETED_SRC).expect("interpreted walk source");
        let bytecode = BytecodeCompiler::new()
            .compile(
                &[ArgSpec::int("len")],
                &parse(WALK_BYTECODE_BODY).expect("walk body"),
            )
            .expect("bytecode walk");
        let compiled = Compiler::default()
            .function_compile_src(WALK_COMPILED_SRC)
            .expect("compiled walk");
        WalkSuite {
            interp_f,
            bytecode,
            compiled,
        }
    }

    /// Runs the interpreted walk.
    ///
    /// # Panics
    ///
    /// Panics on evaluation failure.
    pub fn run_interpreted(&self, engine: &mut Interpreter, len: i64) -> Expr {
        let call = Expr::normal(self.interp_f.clone(), vec![Expr::int(len)]);
        engine.eval(&call).expect("interpreted walk")
    }

    /// Runs the bytecode walk.
    ///
    /// # Panics
    ///
    /// Panics on VM failure.
    pub fn run_bytecode(&self, len: i64) -> Value {
        self.bytecode
            .run(&[Value::I64(len)])
            .expect("bytecode walk")
    }

    /// Runs the compiled walk.
    ///
    /// # Panics
    ///
    /// Panics on machine failure.
    pub fn run_compiled(&self, len: i64) -> Value {
        self.compiled
            .call(&[Value::I64(len)])
            .expect("compiled walk")
    }

    /// Times all three at a given length.
    pub fn time(&self, len: usize, reps: usize) -> WalkTimings {
        let mut engine = Interpreter::new();
        engine.seed_random(7);
        WalkTimings {
            len,
            interpreted_secs: bench_seconds(reps, || {
                std::hint::black_box(self.run_interpreted(&mut engine, len as i64));
            }),
            bytecode_secs: bench_seconds(reps, || {
                std::hint::black_box(self.run_bytecode(len as i64));
            }),
            compiled_secs: bench_seconds(reps, || {
                std::hint::black_box(self.run_compiled(len as i64));
            }),
        }
    }
}

/// `FindRoot` auto-compilation (§1: "achieves a 1.6x speedup over an
/// uncompiled version"): times repeated solves of `Sin[x] + E^x == 0` with
/// the auto-compile hook off and on.
pub struct FindRootTimings {
    /// Seconds per solve, interpreted objective.
    pub interpreted_secs: f64,
    /// Seconds per solve, auto-compiled objective.
    pub autocompiled_secs: f64,
    /// Number of times the hook produced compiled code.
    pub autocompile_hits: u64,
}

impl FindRootTimings {
    /// The auto-compilation speedup.
    pub fn speedup(&self) -> f64 {
        self.interpreted_secs / self.autocompiled_secs
    }
}

/// Measures the FindRoot auto-compilation speedup over `solves` solves.
///
/// # Panics
///
/// Panics if the root diverges from the paper's `x ~ -0.588533`.
pub fn findroot_speedup(solves: usize) -> FindRootTimings {
    let src = "FindRoot[Sin[x] + E^x, {x, 0}]";
    let check = |out: &Expr| {
        let root = out.args()[0].args()[1].as_f64().expect("numeric root");
        assert!((root + 0.588_532_743_981_861_1).abs() < 1e-6, "root {root}");
    };

    // Interpreted objective.
    let mut plain = Interpreter::new();
    check(&plain.eval_src(src).unwrap());
    let interpreted_secs = bench_seconds(2, || {
        for _ in 0..solves {
            std::hint::black_box(plain.eval_src(src).unwrap());
        }
    }) / solves as f64;

    // Auto-compiled objective: the compiler package installs the hook,
    // with per-expression caching of compiled objectives.
    let mut hosted = Interpreter::new();
    install_cached_auto_compile(&mut hosted);
    check(&hosted.eval_src(src).unwrap());
    let autocompiled_secs = bench_seconds(2, || {
        for _ in 0..solves {
            std::hint::black_box(hosted.eval_src(src).unwrap());
        }
    }) / solves as f64;

    FindRootTimings {
        interpreted_secs,
        autocompiled_secs,
        autocompile_hits: hosted.autocompile_hits,
    }
}

/// Installs the auto-compile hook with a compiled-objective cache (repeat
/// solves of the same equation reuse the compiled code, as the production
/// compiler's code cache does).
pub fn install_cached_auto_compile(engine: &mut Interpreter) {
    let cache: Rc<
        RefCell<std::collections::HashMap<String, wolfram_interp::findroot::CompiledUnary>>,
    > = Rc::new(RefCell::new(std::collections::HashMap::new()));
    let hook: wolfram_interp::AutoCompileHook = Rc::new(move |body: &Expr, var| {
        let key = format!("{}@{}", var.name(), body.to_full_form());
        if let Some(hit) = cache.borrow().get(&key) {
            return Some(hit.clone());
        }
        let compiler = Compiler::default();
        let f = Expr::call(
            "Function",
            [
                Expr::list([Expr::call(
                    "Typed",
                    [Expr::symbol(var.clone()), Expr::string("Real64")],
                )]),
                body.clone(),
            ],
        );
        let compiled = Rc::new(compiler.function_compile(&f).ok()?);
        let entry: wolfram_interp::findroot::CompiledUnary =
            Rc::new(move |x: f64| compiled.call(&[Value::F64(x)])?.expect_f64());
        cache.borrow_mut().insert(key, entry.clone());
        Some(entry)
    });
    engine.auto_compile = Some(hook);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_walks_agree_in_shape() {
        let suite = WalkSuite::new();
        let len = 50i64;
        let mut engine = Interpreter::new();
        let interp = suite.run_interpreted(&mut engine, len);
        assert_eq!(interp.length(), len as usize + 1);
        let bc = suite.run_bytecode(len);
        assert_eq!(bc.expect_tensor().unwrap().shape(), &[len as usize + 1, 2]);
        let compiled = suite.run_compiled(len);
        let t = compiled.expect_tensor().unwrap();
        assert_eq!(t.shape(), &[len as usize + 1, 2]);
        // Every step has unit length (the walk invariant).
        let data = t.as_f64().unwrap();
        for i in 0..len as usize {
            let dx = data[(i + 1) * 2] - data[i * 2];
            let dy = data[(i + 1) * 2 + 1] - data[i * 2 + 1];
            assert!((dx.hypot(dy) - 1.0).abs() < 1e-9, "step {i}");
        }
    }

    #[test]
    fn walk_timings_produce_positive_numbers() {
        let suite = WalkSuite::new();
        let t = suite.time(500, 1);
        assert!(t.interpreted_secs > 0.0);
        assert!(t.bytecode_secs > 0.0);
        assert!(t.compiled_secs > 0.0);
    }

    #[test]
    fn findroot_autocompile_produces_same_root_and_hits() {
        let t = findroot_speedup(3);
        assert!(t.autocompile_hits >= 1, "hook must fire");
        assert!(t.interpreted_secs > 0.0 && t.autocompiled_secs > 0.0);
    }
}
