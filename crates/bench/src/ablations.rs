//! The §6 in-text ablations: abort-check overhead, inlining, constant-array
//! handling, the mutability copy, and superinstruction fusion.

use crate::harness::bench_seconds;
use crate::{native, programs, workloads};
use wolfram_compiler_core::{Compiler, CompilerOptions, InlinePolicy};
use wolfram_runtime::Value;

/// A named ablation measurement: baseline vs ablated seconds.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// What was toggled.
    pub name: &'static str,
    /// The paper's reported effect.
    pub paper_claim: &'static str,
    /// Seconds with the default configuration.
    pub default_secs: f64,
    /// Seconds with the ablated configuration.
    pub ablated_secs: f64,
}

impl Ablation {
    /// Slowdown of the ablated configuration.
    pub fn slowdown(&self) -> f64 {
        self.ablated_secs / self.default_secs
    }

    /// Renders one report line.
    pub fn render(&self) -> String {
        format!(
            "{:<28} {:>6.2}x slowdown (paper: {})",
            self.name,
            self.slowdown(),
            self.paper_claim
        )
    }
}

fn options(f: impl FnOnce(&mut CompilerOptions)) -> Compiler {
    // Ablations time steady-state execution; skip per-pass verification.
    let mut opts = CompilerOptions {
        verify: wolfram_ir::VerifyLevel::Off,
        ..CompilerOptions::default()
    };
    f(&mut opts);
    Compiler::new(opts)
}

/// §6: "disabling function inline within the new compiler results in a 10x
/// slowdown for Mandelbrot over the C implementation" — here measured as
/// never-inline vs automatic on the NestList-heavy random walk (whose
/// instantiated source functions are the inlining beneficiaries) and on
/// EvenQ-style trivial calls in a tight loop.
pub fn inline_ablation(iterations: i64, reps: usize) -> Ablation {
    const SRC: &str = "Function[{Typed[n, \"MachineInteger\"]}, \
                       Module[{s = 0, k = 0}, \
                        While[k < n, If[EvenQ[k], s = s + k]; k = k + 1]; s]]";
    let auto = options(|o| o.inline_policy = InlinePolicy::Automatic)
        .function_compile_src(SRC)
        .expect("inline auto");
    let never = options(|o| o.inline_policy = InlinePolicy::Never)
        .function_compile_src(SRC)
        .expect("inline never");
    let expected = auto.call(&[Value::I64(iterations)]).unwrap();
    assert_eq!(never.call(&[Value::I64(iterations)]).unwrap(), expected);
    Ablation {
        name: "inlining disabled",
        paper_claim: "~10x on Mandelbrot's tight loops",
        default_secs: bench_seconds(reps, || {
            auto.call(std::hint::black_box(&[Value::I64(iterations)]))
                .unwrap();
        }),
        ablated_secs: bench_seconds(reps, || {
            never
                .call(std::hint::black_box(&[Value::I64(iterations)]))
                .unwrap();
        }),
    }
}

/// §6: "abort checking inhibits vectorized loads" on Histogram; "abort
/// checking ... at the function header is insignificant" for Mandelbrot.
pub fn abort_ablation_histogram(n: usize, reps: usize) -> Ablation {
    let data = workloads::random_bytes_tensor(n, 17);
    let with = options(|_| {})
        .function_compile_src(programs::HISTOGRAM_SRC)
        .unwrap();
    let without = options(|o| o.abort_handling = false)
        .function_compile_src(programs::HISTOGRAM_SRC)
        .unwrap();
    let dv = Value::Tensor(data);
    Ablation {
        name: "abort checks (Histogram)",
        paper_claim: "memory-bound loops pay for the checks",
        // Note the inversion: the *default* here is checks ON; the ablation
        // (checks OFF) is faster, so slowdown() reports the abort cost.
        ablated_secs: bench_seconds(reps, || {
            with.call(std::hint::black_box(std::slice::from_ref(&dv)))
                .unwrap();
        }),
        default_secs: bench_seconds(reps, || {
            without
                .call(std::hint::black_box(std::slice::from_ref(&dv)))
                .unwrap();
        }),
    }
}

/// §6 PrimeQ: "Due to non-optimal handling of constant arrays, we observe
/// a 1.5x performance degradation" — naive constant arrays re-materialize
/// the 2^14 seed table on every load.
pub fn constant_array_ablation(limit: i64, reps: usize) -> Ablation {
    // A table-heavy variant: sums seed-table entries in a loop, so the
    // constant-array load sits on the hot path as in the unfixed compiler.
    let table = workloads::prime_seed_table();
    let src = programs::primeq_src(&table);
    let optimized = options(|_| {}).function_compile_src(&src).unwrap();
    let naive = options(|o| o.naive_constant_arrays = true)
        .function_compile_src(&src)
        .unwrap();
    let expected = optimized.call(&[Value::I64(limit)]).unwrap();
    assert_eq!(naive.call(&[Value::I64(limit)]).unwrap(), expected);
    Ablation {
        name: "naive constant arrays (PrimeQ)",
        paper_claim: "1.5x degradation (fixed in the next compiler version)",
        default_secs: bench_seconds(reps, || {
            optimized
                .call(std::hint::black_box(&[Value::I64(limit)]))
                .unwrap();
        }),
        ablated_secs: bench_seconds(reps, || {
            naive
                .call(std::hint::black_box(&[Value::I64(limit)]))
                .unwrap();
        }),
    }
}

/// §6 QSort: "the mutability semantics do not allow sorting to happen in
/// place and a copy of the input list is made" (~1.2x). The copy cost is
/// isolated at the algorithm level: the sort *with* the defensive copy
/// against the same sort reusing its buffer in place (the "hand-written C"
/// behavior). The compiled function's copy is verified to actually happen
/// via the runtime's copy-on-write instrumentation.
pub fn mutability_copy_ablation(n: usize, reps: usize) -> Ablation {
    let input = workloads::sorted_list(n);
    let data = input.as_i64().unwrap().to_vec();
    // Evidence that the compiled sort performs exactly one defensive copy.
    let cf = options(|_| {})
        .function_compile_src(programs::QSORT_SRC)
        .unwrap();
    wolfram_runtime::memory::reset_stats();
    cf.call(&[Value::Tensor(input.clone()), Value::Bool(true)])
        .unwrap();
    let copies = wolfram_runtime::memory::stats().tensor_copies;
    assert!(copies >= 1, "the F5 copy must happen (saw {copies})");
    // In-place: a persistent scratch buffer, re-derived per run from a
    // rotation so the sort does real work each time.
    let mut scratch = data.clone();
    Ablation {
        name: "mutability copy (QSort)",
        paper_claim: "1.2x over in-place C",
        default_secs: bench_seconds(reps, || {
            // In place: the pre-sorted workload stays sorted, so the
            // buffer is valid across repetitions with no copy at all.
            native::qsort_in_place(&mut scratch, native::less);
            std::hint::black_box(());
        }),
        ablated_secs: bench_seconds(reps, || {
            // With mutability semantics: the input is copied, then sorted.
            std::hint::black_box(native::qsort(&data, native::less));
        }),
    }
}

/// Superinstruction fusion (this reproduction's dispatch-loop analog of
/// the paper's JIT advantage): FNV1a with fusion on vs off. `opstats`
/// shows fusion removes ~40% of FNV1a's dispatches (cmp+brz+jmp headers,
/// `part1`+`bitxor`, `muli`+`modi`, paired phi moves).
pub fn fusion_ablation(string_len: usize, reps: usize) -> Ablation {
    let input = workloads::random_string(string_len, 0x5eed);
    let fused = options(|_| {})
        .function_compile_src(programs::FNV1A_SRC)
        .unwrap();
    let unfused = options(|o| o.superinstruction_fusion = false)
        .function_compile_src(programs::FNV1A_SRC)
        .unwrap();
    let arg = Value::Str(std::sync::Arc::new(input));
    let expected = fused.call(std::slice::from_ref(&arg)).unwrap();
    assert_eq!(unfused.call(std::slice::from_ref(&arg)).unwrap(), expected);
    Ablation {
        name: "superinstruction fusion off",
        paper_claim: "fused dispatch recovers ~40% of FNV1a's interpreter steps",
        default_secs: bench_seconds(reps, || {
            fused
                .call(std::hint::black_box(std::slice::from_ref(&arg)))
                .unwrap();
        }),
        ablated_secs: bench_seconds(reps, || {
            unfused
                .call(std::hint::black_box(std::slice::from_ref(&arg)))
                .unwrap();
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inlining_matters() {
        let a = inline_ablation(200_000, 1);
        assert!(
            a.slowdown() > 1.2,
            "never-inline must cost something: {:.2}x",
            a.slowdown()
        );
    }

    #[test]
    fn abort_checks_cost_on_memory_bound_loops() {
        // Min-of-5: a single rep flakes below the noise floor when the
        // test binary runs its threads in parallel.
        let a = abort_ablation_histogram(200_000, 5);
        // The check adds work; at minimum it must not speed things up
        // (beyond noise).
        assert!(a.slowdown() > 0.9, "{:.2}x", a.slowdown());
    }

    #[test]
    fn naive_constant_arrays_cost() {
        let a = constant_array_ablation(4000, 1);
        assert!(
            a.slowdown() > 1.1,
            "re-materializing the seed table must cost: {:.2}x",
            a.slowdown()
        );
    }

    #[test]
    fn fusion_on_is_not_slower() {
        let a = fusion_ablation(20_000, 2);
        // The ablated (unfused) configuration must not be faster than the
        // fused default beyond noise.
        assert!(a.slowdown() > 0.9, "{:.2}x", a.slowdown());
    }

    #[test]
    fn ablation_rendering() {
        let a = Ablation {
            name: "x",
            paper_claim: "y",
            default_secs: 1.0,
            ablated_secs: 1.5,
        };
        assert!(a.render().contains("1.50x"));
    }
}
