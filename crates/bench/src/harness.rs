//! The Figure 2 runner: seven benchmarks, three implementations each
//! (native baseline, bytecode compiler, new compiler with and without
//! abort handling), normalized to the native baseline.

use crate::{native, programs, workloads};
use std::sync::Arc;
use std::time::Instant;
use wolfram_bytecode::ArgSpec;
use wolfram_compiler_core::{Compiler, CompilerOptions};
use wolfram_runtime::Value;

/// Benchmark problem sizes. `paper()` reproduces the §6 parameters;
/// `quick()` shrinks them for tests and smoke runs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// FNV1a string length (paper: 1e6).
    pub string_len: usize,
    /// Mandelbrot grid resolution over [-1,1]x[-1,0.5] (paper: 0.1).
    pub mandelbrot_resolution: f64,
    /// Dot matrix dimension (paper: 1000).
    pub dot_n: usize,
    /// Blur image side (paper: 1000).
    pub blur_n: usize,
    /// Histogram element count (paper: 1e6).
    pub histogram_n: usize,
    /// PrimeQ upper limit (paper: 1e6).
    pub prime_limit: i64,
    /// QSort list length (paper: 2^15).
    pub qsort_n: usize,
    /// Timing repetitions (minimum taken).
    pub repetitions: usize,
}

impl Scale {
    /// The paper's §6 parameters.
    pub fn paper() -> Self {
        Scale {
            string_len: 1_000_000,
            mandelbrot_resolution: 0.1,
            dot_n: 1000,
            blur_n: 1000,
            histogram_n: 1_000_000,
            prime_limit: 1_000_000,
            qsort_n: 1 << 15,
            repetitions: 3,
        }
    }

    /// Reduced sizes for smoke runs and CI.
    pub fn quick() -> Self {
        Scale {
            string_len: 20_000,
            mandelbrot_resolution: 0.2,
            dot_n: 96,
            blur_n: 64,
            histogram_n: 20_000,
            prime_limit: 20_000,
            qsort_n: 1 << 10,
            repetitions: 2,
        }
    }
}

/// Times `f`, returning the minimum of `reps` runs in seconds (after one
/// warmup run).
pub fn bench_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// One Figure 2 row.
#[derive(Debug, Clone)]
pub struct Figure2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Native (hand-written) baseline seconds.
    pub native_secs: f64,
    /// New compiler (abortable) seconds.
    pub new_secs: f64,
    /// New compiler with abort handling disabled.
    pub new_noabort_secs: f64,
    /// Bytecode compiler seconds, when representable.
    pub bytecode_secs: Option<f64>,
    /// Why the bytecode compiler could not run this benchmark (QSort).
    pub bytecode_error: Option<String>,
}

impl Figure2Row {
    /// Normalized runtime (x / native).
    pub fn normalized(&self, secs: f64) -> f64 {
        secs / self.native_secs
    }

    /// Renders the row in the paper's display convention: bytecode bars are
    /// capped at 2.5 with the actual slowdown annotated.
    pub fn render(&self) -> String {
        let fmt_norm = |x: f64| format!("{x:.2}x");
        let bytecode = match (&self.bytecode_secs, &self.bytecode_error) {
            (Some(s), _) => {
                let norm = self.normalized(*s);
                if norm > 2.5 {
                    format!("2.50x (capped; actual {})", fmt_norm(norm))
                } else {
                    fmt_norm(norm)
                }
            }
            (None, Some(err)) => format!("not representable ({err})"),
            _ => "-".into(),
        };
        format!(
            "{:<11} | C {:>7} | new {:>7} | new(noabort) {:>7} | bytecode {}",
            self.name,
            format!("{:.4}s", self.native_secs),
            fmt_norm(self.normalized(self.new_secs)),
            fmt_norm(self.normalized(self.new_noabort_secs)),
            bytecode
        )
    }
}

fn compiler_with(abort: bool) -> Compiler {
    Compiler::new(CompilerOptions {
        abort_handling: abort,
        // Benchmarks measure steady-state execution; skip the per-pass
        // analyzer so compile time stays out of the way.
        verify: wolfram_ir::VerifyLevel::Off,
        ..CompilerOptions::default()
    })
}

/// Runs the full Figure 2 suite at the given scale.
///
/// # Panics
///
/// Panics if any benchmark miscompiles or produces a wrong answer (every
/// row is correctness-checked against the native baseline before timing).
#[allow(clippy::too_many_lines)]
pub fn figure2(scale: &Scale) -> Vec<Figure2Row> {
    let reps = scale.repetitions;
    let compiler = compiler_with(true);
    let compiler_noabort = compiler_with(false);
    let mut rows = Vec::new();

    // ---- FNV1a ----
    {
        let input = workloads::random_string(scale.string_len, 0x5eed);
        let expected = native::fnv1a32(input.as_bytes()) as i64;
        let new_cf = programs::compile_new(&compiler, programs::FNV1A_SRC);
        let new_cf_na = programs::compile_new(&compiler_noabort, programs::FNV1A_SRC);
        let bc = programs::compile_bytecode(
            &[ArgSpec::tensor_int("bytes")],
            programs::FNV1A_BYTECODE_BODY,
        )
        .expect("fnv1a bytecode");
        let s_value = Value::Str(Arc::new(input.clone()));
        let codes = Value::Tensor(wolfram_runtime::Tensor::from_i64(
            input.bytes().map(i64::from).collect(),
        ));
        assert_eq!(
            new_cf.call(std::slice::from_ref(&s_value)).unwrap(),
            Value::I64(expected)
        );
        assert_eq!(
            bc.run(std::slice::from_ref(&codes)).unwrap(),
            Value::I64(expected)
        );
        rows.push(Figure2Row {
            name: "FNV1a",
            native_secs: bench_seconds(reps, || {
                std::hint::black_box(native::fnv1a32(input.as_bytes()));
            }),
            new_secs: bench_seconds(reps, || {
                new_cf
                    .call(std::hint::black_box(std::slice::from_ref(&s_value)))
                    .unwrap();
            }),
            new_noabort_secs: bench_seconds(reps, || {
                new_cf_na
                    .call(std::hint::black_box(std::slice::from_ref(&s_value)))
                    .unwrap();
            }),
            bytecode_secs: Some(bench_seconds(reps, || {
                bc.run(std::hint::black_box(std::slice::from_ref(&codes)))
                    .unwrap();
            })),
            bytecode_error: None,
        });
    }

    // ---- Mandelbrot ----
    {
        let res = scale.mandelbrot_resolution;
        let new_cf = programs::compile_new(&compiler, programs::MANDELBROT_SRC);
        let new_cf_na = programs::compile_new(&compiler_noabort, programs::MANDELBROT_SRC);
        let bc = programs::compile_bytecode(
            &[ArgSpec::complex("pixel0")],
            programs::MANDELBROT_BYTECODE_BODY,
        )
        .expect("mandelbrot bytecode");
        let expected = native::mandelbrot_region(res, 1000);
        let grid: Vec<(f64, f64)> = {
            let mut pts = Vec::new();
            let mut re = -1.0;
            while re <= 1.0 + 1e-12 {
                let mut im = -1.0;
                while im <= 0.5 + 1e-12 {
                    pts.push((re, im));
                    im += res;
                }
                re += res;
            }
            pts
        };
        let run_compiled =
            |f: &dyn Fn(f64, f64) -> i64| -> i64 { grid.iter().map(|&(re, im)| f(re, im)).sum() };
        assert_eq!(
            run_compiled(&|re, im| new_cf
                .call(&[Value::Complex(re, im)])
                .unwrap()
                .expect_i64()
                .unwrap()),
            expected
        );
        rows.push(Figure2Row {
            name: "Mandelbrot",
            native_secs: bench_seconds(reps, || {
                std::hint::black_box(native::mandelbrot_region(res, 1000));
            }),
            new_secs: bench_seconds(reps, || {
                std::hint::black_box(run_compiled(&|re, im| {
                    new_cf
                        .call(&[Value::Complex(re, im)])
                        .unwrap()
                        .expect_i64()
                        .unwrap()
                }));
            }),
            new_noabort_secs: bench_seconds(reps, || {
                std::hint::black_box(run_compiled(&|re, im| {
                    new_cf_na
                        .call(&[Value::Complex(re, im)])
                        .unwrap()
                        .expect_i64()
                        .unwrap()
                }));
            }),
            bytecode_secs: Some(bench_seconds(reps, || {
                std::hint::black_box(run_compiled(&|re, im| {
                    bc.run(&[Value::Complex(re, im)])
                        .unwrap()
                        .expect_i64()
                        .unwrap()
                }));
            })),
            bytecode_error: None,
        });
    }

    // ---- Dot ----
    {
        let n = scale.dot_n;
        let a = workloads::random_matrix(n, 1);
        let b = workloads::random_matrix(n, 2);
        let new_cf = programs::compile_new(&compiler, programs::DOT_SRC);
        let new_cf_na = programs::compile_new(&compiler_noabort, programs::DOT_SRC);
        let bc = programs::compile_bytecode(
            &[ArgSpec::tensor_real("a"), ArgSpec::tensor_real("b")],
            "Dot[a, b]",
        )
        .expect("dot bytecode");
        let (av, bv) = (Value::Tensor(a.clone()), Value::Tensor(b.clone()));
        rows.push(Figure2Row {
            name: "Dot",
            native_secs: bench_seconds(reps, || {
                std::hint::black_box(native::dot(&a, &b));
            }),
            new_secs: bench_seconds(reps, || {
                new_cf
                    .call(std::hint::black_box(&[av.clone(), bv.clone()]))
                    .unwrap();
            }),
            new_noabort_secs: bench_seconds(reps, || {
                new_cf_na
                    .call(std::hint::black_box(&[av.clone(), bv.clone()]))
                    .unwrap();
            }),
            bytecode_secs: Some(bench_seconds(reps, || {
                bc.run(std::hint::black_box(&[av.clone(), bv.clone()]))
                    .unwrap();
            })),
            bytecode_error: None,
        });
    }

    // ---- Blur ----
    {
        let n = scale.blur_n;
        let img = workloads::random_matrix_hw(n, n, 3);
        let new_cf = programs::compile_new(&compiler, programs::BLUR_SRC);
        let new_cf_na = programs::compile_new(&compiler_noabort, programs::BLUR_SRC);
        let bc = programs::compile_bytecode(
            &[
                ArgSpec::tensor_real("img"),
                ArgSpec::int("h"),
                ArgSpec::int("w"),
            ],
            programs::BLUR_BYTECODE_BODY,
        )
        .expect("blur bytecode");
        let args = vec![
            Value::Tensor(img.clone()),
            Value::I64(n as i64),
            Value::I64(n as i64),
        ];
        rows.push(Figure2Row {
            name: "Blur",
            native_secs: bench_seconds(reps, || {
                std::hint::black_box(native::blur(&img, n, n));
            }),
            new_secs: bench_seconds(reps, || {
                new_cf.call(std::hint::black_box(&args)).unwrap();
            }),
            new_noabort_secs: bench_seconds(reps, || {
                new_cf_na.call(std::hint::black_box(&args)).unwrap();
            }),
            bytecode_secs: Some(bench_seconds(reps, || {
                bc.run(std::hint::black_box(&args)).unwrap();
            })),
            bytecode_error: None,
        });
    }

    // ---- Histogram ----
    {
        let data = workloads::random_bytes_tensor(scale.histogram_n, 4);
        let expected = native::histogram(data.as_i64().unwrap());
        let new_cf = programs::compile_new(&compiler, programs::HISTOGRAM_SRC);
        let new_cf_na = programs::compile_new(&compiler_noabort, programs::HISTOGRAM_SRC);
        let bc = programs::compile_bytecode(
            &[ArgSpec::tensor_int("data")],
            programs::HISTOGRAM_BYTECODE_BODY,
        )
        .expect("histogram bytecode");
        let dv = Value::Tensor(data.clone());
        assert_eq!(
            new_cf
                .call(std::slice::from_ref(&dv))
                .unwrap()
                .expect_tensor()
                .unwrap()
                .as_i64()
                .unwrap(),
            expected.as_slice()
        );
        rows.push(Figure2Row {
            name: "Histogram",
            native_secs: bench_seconds(reps, || {
                std::hint::black_box(native::histogram(data.as_i64().unwrap()));
            }),
            new_secs: bench_seconds(reps, || {
                new_cf
                    .call(std::hint::black_box(std::slice::from_ref(&dv)))
                    .unwrap();
            }),
            new_noabort_secs: bench_seconds(reps, || {
                new_cf_na
                    .call(std::hint::black_box(std::slice::from_ref(&dv)))
                    .unwrap();
            }),
            bytecode_secs: Some(bench_seconds(reps, || {
                bc.run(std::hint::black_box(std::slice::from_ref(&dv)))
                    .unwrap();
            })),
            bytecode_error: None,
        });
    }

    // ---- PrimeQ ----
    {
        let table = workloads::prime_seed_table();
        let src = programs::primeq_src(&table);
        let limit = scale.prime_limit;
        let expected = native::prime_count(limit as u64) as i64;
        let new_cf = programs::compile_new(&compiler, &src);
        let new_cf_na = programs::compile_new(&compiler_noabort, &src);
        let bc = programs::compile_bytecode(
            &[ArgSpec::int("limit")],
            &programs::primeq_bytecode_body(&table),
        )
        .expect("primeq bytecode");
        assert_eq!(
            new_cf.call(&[Value::I64(limit)]).unwrap(),
            Value::I64(expected)
        );
        rows.push(Figure2Row {
            name: "PrimeQ",
            native_secs: bench_seconds(reps, || {
                std::hint::black_box(native::prime_count(limit as u64));
            }),
            new_secs: bench_seconds(reps, || {
                new_cf
                    .call(std::hint::black_box(&[Value::I64(limit)]))
                    .unwrap();
            }),
            new_noabort_secs: bench_seconds(reps, || {
                new_cf_na
                    .call(std::hint::black_box(&[Value::I64(limit)]))
                    .unwrap();
            }),
            bytecode_secs: Some(bench_seconds(reps, || {
                bc.run(std::hint::black_box(&[Value::I64(limit)])).unwrap();
            })),
            bytecode_error: None,
        });
    }

    // ---- QSort ----
    {
        let input = workloads::sorted_list(scale.qsort_n);
        let new_cf = programs::compile_new(&compiler, programs::QSORT_SRC);
        let new_cf_na = programs::compile_new(&compiler_noabort, programs::QSORT_SRC);
        let bytecode_error = programs::compile_bytecode(
            &[ArgSpec::tensor_int("list")],
            programs::QSORT_BYTECODE_BODY,
        )
        .expect_err("QSort must not be representable in bytecode (L1)");
        let iv = Value::Tensor(input.clone());
        let sorted = new_cf
            .call(&[iv.clone(), Value::Bool(true)])
            .unwrap()
            .expect_tensor()
            .unwrap()
            .clone();
        assert_eq!(
            sorted.as_i64().unwrap(),
            native::qsort(input.as_i64().unwrap(), native::less)
        );
        rows.push(Figure2Row {
            name: "QSort",
            native_secs: bench_seconds(reps, || {
                std::hint::black_box(native::qsort(input.as_i64().unwrap(), native::less));
            }),
            new_secs: bench_seconds(reps, || {
                new_cf
                    .call(std::hint::black_box(&[iv.clone(), Value::Bool(true)]))
                    .unwrap();
            }),
            new_noabort_secs: bench_seconds(reps, || {
                new_cf_na
                    .call(std::hint::black_box(&[iv.clone(), Value::Bool(true)]))
                    .unwrap();
            }),
            bytecode_secs: None,
            bytecode_error: Some(bytecode_error.to_string()),
        });
    }

    rows
}

/// Renders the Figure 2 table.
pub fn render_figure2(rows: &[Figure2Row]) -> String {
    let mut out =
        String::from("Figure 2: normalized runtime (lower is better), bytecode capped at 2.5x\n");
    for r in rows {
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_runs_at_tiny_scale() {
        // A miniature end-to-end run: verifies every benchmark compiles,
        // agrees with the native implementation, and produces timings.
        let scale = Scale {
            string_len: 2000,
            mandelbrot_resolution: 0.5,
            dot_n: 24,
            blur_n: 24,
            histogram_n: 2000,
            prime_limit: 2000,
            qsort_n: 256,
            repetitions: 1,
        };
        let rows = figure2(&scale);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.native_secs > 0.0, "{}", r.name);
            assert!(r.new_secs > 0.0, "{}", r.name);
        }
        // QSort is the one benchmark the bytecode compiler cannot express.
        let qsort = rows.iter().find(|r| r.name == "QSort").unwrap();
        assert!(qsort.bytecode_secs.is_none());
        assert!(qsort.bytecode_error.is_some());
        let rendered = render_figure2(&rows);
        assert!(rendered.contains("QSort"), "{rendered}");
        assert!(rendered.contains("not representable"), "{rendered}");
    }

    #[test]
    fn row_rendering_caps_bytecode() {
        let row = Figure2Row {
            name: "X",
            native_secs: 1.0,
            new_secs: 1.1,
            new_noabort_secs: 1.05,
            bytecode_secs: Some(7.4),
            bytecode_error: None,
        };
        let text = row.render();
        assert!(text.contains("2.50x (capped; actual 7.40x)"), "{text}");
    }
}
