//! Data-parallel tier ablation: the PR-1 fused scalar baseline against
//! `data_parallel` with SIMD batching at 1/2/4/8 worker threads.
//!
//! Three workloads exercise the two halves of the tier:
//!
//! - **Blur** — the fused stencil loop, batched at compile time into a
//!   `vec.loop` plan (`wolfram_codegen::vectorize`); the main SIMD win.
//! - **Dot** — the chunked dgemm row-block path through the worker pool.
//! - **Listable** — whole-tensor elementwise arithmetic `(a + b) * a`
//!   over rank-1 tensors, the chunked zip/map builtin path.
//!
//! Every configuration is correctness-checked against the scalar
//! baseline before timing (the tier is bit-identical for all three
//! workloads: elementwise chunking and the vectorized loops preserve
//! evaluation order, and the per-row dot folds are not reassociated),
//! and the memory counters are balanced through
//! [`wolfram_runtime::memory::global_stats`] so worker threads cannot
//! leak acquires. `reproduce -- bench-parallel` renders the table and
//! optionally writes `BENCH_parallel.json`.

use crate::{harness, programs, workloads};
use wolfram_compiler_core::{Compiler, CompilerOptions};
use wolfram_runtime::{memory, ParallelConfig, Value};

/// One measured (benchmark, configuration) cell.
#[derive(Debug, Clone)]
pub struct ParRow {
    /// Benchmark name (`Blur`, `Dot`, `Listable`).
    pub bench: &'static str,
    /// Configuration label (`fused-scalar`, `simd t=1`, ...).
    pub config: String,
    /// Worker threads (0 for the scalar baseline).
    pub threads: usize,
    /// Whether the SIMD kernels were enabled.
    pub simd: bool,
    /// Nanoseconds per benchmark invocation (minimum over repetitions).
    pub ns_per_op: f64,
    /// Speedup vs the fused-scalar baseline of the same benchmark.
    pub speedup: f64,
}

/// The full ablation result plus the correctness gates CI asserts on.
#[derive(Debug, Clone)]
pub struct ParReport {
    /// All rows, grouped by benchmark in configuration order.
    pub rows: Vec<ParRow>,
    /// Configurations whose result differed from the scalar baseline.
    pub equivalence_failures: u32,
    /// Whether `global_stats()` balanced after flushing every thread.
    pub memory_balanced: bool,
}

/// Thread counts measured for the parallel configurations.
pub const THREAD_STEPS: [usize; 4] = [1, 2, 4, 8];

fn compiler_for(parallel: Option<ParallelConfig>) -> Compiler {
    let mut options = CompilerOptions {
        // Steady-state execution is what's measured; keep the per-pass
        // analyzer out of compile time like the Figure 2 harness does.
        verify: wolfram_ir::VerifyLevel::Off,
        ..CompilerOptions::default()
    };
    if let Some(cfg) = parallel {
        options.data_parallel = true;
        options.parallel = cfg;
    }
    Compiler::new(options)
}

/// A benchmark: source, arguments, and element count for context.
struct Workload {
    name: &'static str,
    src: String,
    args: Vec<Value>,
}

fn workloads_for(scale: &harness::Scale) -> Vec<Workload> {
    let blur_n = scale.blur_n;
    let dot_n = scale.dot_n;
    let list_n = scale.histogram_n;
    let img = workloads::random_matrix_hw(blur_n, blur_n, 3);
    let a = workloads::random_matrix(dot_n, 1);
    let b = workloads::random_matrix(dot_n, 2);
    let xs = workloads::random_matrix_hw(1, list_n, 5)
        .as_f64()
        .expect("real matrix")
        .to_vec();
    let ys = workloads::random_matrix_hw(1, list_n, 6)
        .as_f64()
        .expect("real matrix")
        .to_vec();
    vec![
        Workload {
            name: "Blur",
            src: programs::BLUR_SRC.into(),
            args: vec![
                Value::Tensor(img),
                Value::I64(blur_n as i64),
                Value::I64(blur_n as i64),
            ],
        },
        Workload {
            name: "Dot",
            src: programs::DOT_SRC.into(),
            args: vec![Value::Tensor(a), Value::Tensor(b)],
        },
        Workload {
            name: "Listable",
            src: r#"
Function[{Typed[a, "Tensor"["Real64", 1]], Typed[b, "Tensor"["Real64", 1]]},
    (a + b) * a]
"#
            .into(),
            args: vec![
                Value::Tensor(wolfram_runtime::Tensor::from_f64(xs)),
                Value::Tensor(wolfram_runtime::Tensor::from_f64(ys)),
            ],
        },
    ]
}

/// Exact structural equality: the tier is bit-identical to the scalar
/// path on these workloads, so no tolerance is needed (or wanted — a
/// single flipped bit is a routing bug worth failing on).
fn same_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Tensor(x), Value::Tensor(y)) => {
            x.shape() == y.shape()
                && match (x.as_f64(), y.as_f64()) {
                    (Some(xs), Some(ys)) => {
                        xs.iter().zip(ys).all(|(p, q)| p.to_bits() == q.to_bits())
                    }
                    _ => x.as_i64() == y.as_i64() && x.as_i64().is_some(),
                }
        }
        _ => a == b,
    }
}

/// Runs the ablation at the given scale and thread steps.
///
/// `min_elems_per_chunk` is lowered with `--quick` scales by the caller
/// via `min_chunk`; the paper scale uses a cache-friendly 4096.
///
/// # Panics
///
/// Panics if any configuration fails to compile or errors at runtime —
/// the workloads are total over their generated inputs.
pub fn run(scale: &harness::Scale, threads: &[usize], min_chunk: usize) -> ParReport {
    let reps = scale.repetitions;
    let mut rows = Vec::new();
    let mut equivalence_failures = 0u32;

    // Balance is judged over the whole run: reset both views, flush at
    // the end, and require acquires == releases across every thread.
    memory::reset_stats();
    memory::reset_global_stats();

    for w in workloads_for(scale) {
        let baseline = programs::compile_new(&compiler_for(None), &w.src);
        let expected = baseline.call(&w.args).expect("baseline runs");

        let base_secs = harness::bench_seconds(reps, || {
            baseline.call(std::hint::black_box(&w.args)).unwrap();
        });
        let base_ns = base_secs * 1e9;
        rows.push(ParRow {
            bench: w.name,
            config: "fused-scalar".into(),
            threads: 0,
            simd: false,
            ns_per_op: base_ns,
            speedup: 1.0,
        });

        for &t in threads {
            let cfg = ParallelConfig {
                num_threads: t,
                min_elems_per_chunk: min_chunk,
                simd: true,
            };
            let cf = programs::compile_new(&compiler_for(Some(cfg)), &w.src);
            let got = cf.call(&w.args).expect("parallel config runs");
            if !same_value(&got, &expected) {
                equivalence_failures += 1;
            }
            let secs = harness::bench_seconds(reps, || {
                cf.call(std::hint::black_box(&w.args)).unwrap();
            });
            rows.push(ParRow {
                bench: w.name,
                config: format!("simd t={t}"),
                threads: t,
                simd: true,
                ns_per_op: secs * 1e9,
                speedup: base_ns / (secs * 1e9).max(1e-9),
            });
        }
    }

    memory::flush_thread_stats();
    ParReport {
        rows,
        equivalence_failures,
        memory_balanced: memory::global_stats().balanced(),
    }
}

/// Renders the ablation as an aligned text table.
pub fn render(report: &ParReport) -> String {
    let mut out = String::from(
        "benchmark   | config        | ns/op          | speedup\n\
         ------------+---------------+----------------+--------\n",
    );
    for r in &report.rows {
        out.push_str(&format!(
            "{:<11} | {:<13} | {:>14.0} | {:>6.2}x\n",
            r.bench, r.config, r.ns_per_op, r.speedup
        ));
    }
    out.push_str(&format!(
        "equivalence failures: {}, memory balanced: {}\n",
        report.equivalence_failures, report.memory_balanced
    ));
    out
}

/// Serializes the report as the `BENCH_parallel.json` document: one row
/// object per (benchmark, configuration) cell. Hand-rolled — the numbers
/// are all finite floats and the labels are ASCII, so no escaping is
/// needed.
pub fn to_json(report: &ParReport, scale_label: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale_label}\",\n"));
    out.push_str(&format!(
        "  \"equivalence_failures\": {},\n  \"memory_balanced\": {},\n  \"rows\": [\n",
        report.equivalence_failures, report.memory_balanced
    ));
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"config\": \"{}\", \"threads\": {}, \
             \"simd\": {}, \"ns_per_op\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.bench,
            r.config,
            r.threads,
            r.simd,
            r.ns_per_op,
            r.speedup,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_and_matches_at_tiny_scale() {
        let scale = harness::Scale {
            string_len: 2000,
            mandelbrot_resolution: 0.5,
            dot_n: 24,
            blur_n: 24,
            histogram_n: 4000,
            prime_limit: 2000,
            qsort_n: 256,
            repetitions: 1,
        };
        let report = run(&scale, &[1, 2], 8);
        // 3 benchmarks x (baseline + 2 thread steps).
        assert_eq!(report.rows.len(), 9);
        assert_eq!(report.equivalence_failures, 0);
        for r in &report.rows {
            assert!(r.ns_per_op > 0.0, "{} {}", r.bench, r.config);
            assert!(r.speedup > 0.0, "{} {}", r.bench, r.config);
        }
        // Note: `memory_balanced` is asserted by the `bench-parallel`
        // binary, not here — the lib test binary runs tests concurrently
        // and other tests' pool workers flush into the same globals.
        let json = to_json(&report, "tiny");
        assert!(json.contains("\"bench\": \"Blur\""), "{json}");
        assert!(json.contains("\"speedup\""), "{json}");
        let rendered = render(&report);
        assert!(rendered.contains("fused-scalar"), "{rendered}");
    }
}
