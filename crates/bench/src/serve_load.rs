//! Closed-loop load generator for `wolfram-serve` (the `bench-serve`
//! subcommand).
//!
//! The workload models an evaluation service: a catalog of distinct
//! programs whose *execution* is cheap (microseconds) but whose
//! *compilation* is not (milliseconds), requested with a Zipf-skewed
//! popularity mix — a few hot programs dominate, a long tail recurs
//! rarely. That shape is exactly what a content-addressed compile cache
//! exploits, so the cache-on/cache-off throughput ratio is the headline
//! number.
//!
//! Every reply is checked against the ground-truth value computed in
//! Rust, which doubles as the cached-vs-uncached divergence check the CI
//! smoke step asserts on: a stale or mis-keyed cache entry would return
//! the *wrong program's* answer and show up as a divergence, not just a
//! slowdown.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use wolfram_serve::{fmt_ns, ServeConfig, ServeError, ServePool, ServeRequest};

/// Zipf(s) sampler over ranks `0..n` by inverse CDF on precomputed
/// cumulative weights `1/(r+1)^s`.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s` (s ≈ 1 is the classic
    /// heavy skew; larger `s` concentrates more mass on rank 0).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty catalog");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

/// The program catalog: `n` distinct functions, each a small accumulation
/// loop parameterized by a constant so every rank compiles to a distinct
/// artifact (distinct cache key) but executes in microseconds.
pub struct Catalog {
    sources: Vec<String>,
    /// Ground-truth result per rank for the fixed argument.
    expected: Vec<String>,
    arg: i64,
}

impl Catalog {
    /// Builds `n` programs evaluated at the fixed argument `arg`.
    pub fn new(n: usize, arg: i64) -> Catalog {
        let mut sources = Vec::with_capacity(n);
        let mut expected = Vec::with_capacity(n);
        for k in 0..n as i64 {
            sources.push(format!(
                "Function[{{Typed[n, \"MachineInteger\"]}}, \
                 Module[{{acc = 0, i = 0}}, \
                 While[i < n, acc = acc + i*i + {k}; i = i + 1]; acc]]"
            ));
            // sum_{i<arg} (i^2 + k)
            let truth: i64 = (0..arg).map(|i| i * i + k).sum();
            expected.push(truth.to_string());
        }
        Catalog {
            sources,
            expected,
            arg,
        }
    }

    /// Number of distinct programs.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The source text for a rank.
    pub fn source(&self, rank: usize) -> &str {
        &self.sources[rank]
    }

    /// The ground-truth result for a rank at the fixed argument.
    pub fn expected(&self, rank: usize) -> &str {
        &self.expected[rank]
    }

    /// The fixed argument every program is evaluated at.
    pub fn arg(&self) -> i64 {
        self.arg
    }
}

/// One load-generation run's results.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Worker threads the pool ran.
    pub workers: usize,
    /// Whether the artifact cache was enabled.
    pub cache_on: bool,
    /// Requests that completed with a value.
    pub ok: u64,
    /// Requests rejected at admission (closed-loop clients retry, so this
    /// stays 0 unless the queue bound is hit).
    pub rejected: u64,
    /// Replies whose value differed from ground truth.
    pub divergences: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Completed requests per second.
    pub throughput: f64,
    /// Median end-to-end latency (ns).
    pub p50_ns: u64,
    /// Tail end-to-end latency (ns).
    pub p99_ns: u64,
    /// Cache hit rate in [0, 1].
    pub hit_rate: f64,
    /// Compiles the pool performed.
    pub compiles: u64,
}

/// Drives `requests` Zipf-sampled calls through a fresh pool with
/// `clients` closed-loop client threads, checking every reply against
/// ground truth.
pub fn run_load(
    catalog: &Catalog,
    zipf: &Zipf,
    workers: usize,
    cache_on: bool,
    clients: usize,
    requests: u64,
    seed: u64,
) -> LoadReport {
    let pool = ServePool::start(ServeConfig {
        workers,
        cache_cap: if cache_on { 512 } else { 0 },
        ..ServeConfig::default()
    });
    let arg = catalog.arg.to_string();
    let issued = AtomicU64::new(0);
    let divergences = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let pool = &pool;
            let arg = &arg;
            let issued = &issued;
            let divergences = &divergences;
            let rejected = &rejected;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (client as u64).wrapping_mul(0x9E37));
                while issued.fetch_add(1, Ordering::Relaxed) < requests {
                    let rank = zipf.sample(&mut rng);
                    let req = ServeRequest::new(&catalog.sources[rank], [arg.as_str()]);
                    let reply = pool.call(req);
                    match &reply.result {
                        Ok(v) if *v == catalog.expected[rank] => {}
                        Ok(_) => {
                            divergences.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Overloaded) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            divergences.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let m = pool.metrics();
    let report = LoadReport {
        workers,
        cache_on,
        ok: m.ok.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        divergences: divergences.load(Ordering::Relaxed),
        wall_secs,
        throughput: m.ok.load(Ordering::Relaxed) as f64 / wall_secs.max(1e-9),
        p50_ns: m.request_latency.quantile_ns(0.50),
        p99_ns: m.request_latency.quantile_ns(0.99),
        hit_rate: m.hit_rate(),
        compiles: m.compiles.load(Ordering::Relaxed),
    };
    pool.shutdown();
    report
}

/// The deadline sub-experiment: spin requests with short budgets must all
/// come back `Aborted`, the pool must keep serving, and the process-wide
/// memory counters must balance (no leaks on the abort unwind).
#[derive(Debug, Clone)]
pub struct DeadlineReport {
    /// Deadline-bounded spin requests issued.
    pub issued: u64,
    /// How many were answered `Aborted`.
    pub aborted: u64,
    /// Whether a normal request succeeded afterwards.
    pub pool_alive: bool,
    /// Whether acquires == releases after shutdown.
    pub memory_balanced: bool,
}

/// Runs the deadline sub-experiment on a fresh 2-worker pool.
pub fn run_deadline_experiment(rounds: u64) -> DeadlineReport {
    wolfram_runtime::memory::reset_global_stats();
    let pool = ServePool::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let spin = "Function[{Typed[v, \"Tensor\"[\"Integer64\", 1]]}, \
                Module[{i = 0}, While[True, If[i > 3, i = i - 1, i = i + 1]]; v[[1]]]]";
    let mut aborted = 0;
    for _ in 0..rounds {
        let reply = pool
            .call(ServeRequest::new(spin, ["{1, 2, 3}"]).with_deadline(Duration::from_millis(40)));
        if reply.result == Err(ServeError::DeadlineExceeded) {
            aborted += 1;
        }
    }
    let alive = pool
        .call(ServeRequest::new(
            "Function[{Typed[n, \"MachineInteger\"]}, n + 1]",
            ["1"],
        ))
        .result
        .as_deref()
        == Ok("2");
    pool.shutdown();
    DeadlineReport {
        issued: rounds,
        aborted,
        pool_alive: alive,
        memory_balanced: wolfram_runtime::memory::global_stats().balanced(),
    }
}

/// One socket-load run's results: client-observed latencies (queue +
/// compile + execute + wire) plus the server's own `!stats` snapshot.
#[derive(Debug, Clone)]
pub struct NetLoadReport {
    /// Closed-loop client connections driven.
    pub clients: usize,
    /// Requests that completed with a value.
    pub ok: u64,
    /// Replies whose value differed from ground truth.
    pub divergences: u64,
    /// `err` replies (admission rejections and failures).
    pub errors: u64,
    /// Replies served from the in-memory artifact cache.
    pub mem_hits: u64,
    /// Replies served from the disk cache (warm-restart path).
    pub disk_hits: u64,
    /// Replies that compiled on demand.
    pub misses: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Completed requests per second.
    pub throughput: f64,
    /// Client-side p50 latency (ns).
    pub p50_ns: u64,
    /// Client-side p95 latency (ns).
    pub p95_ns: u64,
    /// Client-side p99 latency (ns).
    pub p99_ns: u64,
    /// The server's `!stats` counters after the run.
    pub server_stats: Vec<(String, u64)>,
}

impl NetLoadReport {
    /// Looks up one server counter by name (0 when absent).
    pub fn server_stat(&self, name: &str) -> u64 {
        self.server_stats
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drives `requests` Zipf-sampled calls against a *remote* serve process
/// at `addr` with `clients` closed-loop socket connections, checking
/// every reply against ground truth and measuring latency client-side.
///
/// # Errors
///
/// Connection or protocol failures (a dead or misbehaving server).
pub fn run_net_load(
    addr: &str,
    catalog: &Catalog,
    zipf: &Zipf,
    clients: usize,
    requests: u64,
    seed: u64,
) -> std::io::Result<NetLoadReport> {
    let arg = catalog.arg().to_string();
    let issued = AtomicU64::new(0);
    let divergences = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let mem_hits = AtomicU64::new(0);
    let disk_hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let start = Instant::now();
    let latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let arg = &arg;
                let issued = &issued;
                let divergences = &divergences;
                let errors = &errors;
                let ok = &ok;
                let mem_hits = &mem_hits;
                let disk_hits = &disk_hits;
                let misses = &misses;
                s.spawn(move || -> std::io::Result<Vec<u64>> {
                    let mut conn = wolfram_serve::NetClient::connect(addr)?;
                    let mut rng =
                        StdRng::seed_from_u64(seed ^ (client as u64).wrapping_mul(0x9E37));
                    let mut lats = Vec::new();
                    while issued.fetch_add(1, Ordering::Relaxed) < requests {
                        let rank = zipf.sample(&mut rng);
                        let line = format!("{{{}, {{{arg}}}}}", catalog.source(rank));
                        let sent = Instant::now();
                        let reply = conn.call(&line)?;
                        lats.push(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        match &reply.result {
                            Ok(v) if v == catalog.expected(rank) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                match reply.cache.as_str() {
                                    "hit" => mem_hits.fetch_add(1, Ordering::Relaxed),
                                    "disk" => disk_hits.fetch_add(1, Ordering::Relaxed),
                                    _ => misses.fetch_add(1, Ordering::Relaxed),
                                };
                            }
                            Ok(_) => {
                                divergences.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Ok(lats)
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut failure = None;
        for h in handles {
            match h.join().expect("net load client panicked") {
                Ok(lats) => all.extend(lats),
                Err(e) => failure = Some(e),
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(all),
        }
    })?;
    let wall_secs = start.elapsed().as_secs_f64();
    let mut sorted = latencies;
    sorted.sort_unstable();
    let server_stats = wolfram_serve::NetClient::connect(addr)?.stats()?;
    let completed = ok.load(Ordering::Relaxed);
    Ok(NetLoadReport {
        clients,
        ok: completed,
        divergences: divergences.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        mem_hits: mem_hits.load(Ordering::Relaxed),
        disk_hits: disk_hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
        wall_secs,
        throughput: completed as f64 / wall_secs.max(1e-9),
        p50_ns: percentile(&sorted, 0.50),
        p95_ns: percentile(&sorted, 0.95),
        p99_ns: percentile(&sorted, 0.99),
        server_stats,
    })
}

/// Renders the socket-load SLO summary.
pub fn render_net_report(r: &NetLoadReport) -> String {
    format!(
        "clients {:>2}  {:>7.1} req/s  p50 {:>9}  p95 {:>9}  p99 {:>9}  \
         mem-hits {:>5}  disk-hits {:>5}  misses {:>5}  divergences {}  errors {}",
        r.clients,
        r.throughput,
        fmt_ns(r.p50_ns),
        fmt_ns(r.p95_ns),
        fmt_ns(r.p99_ns),
        r.mem_hits,
        r.disk_hits,
        r.misses,
        r.divergences,
        r.errors,
    )
}

/// Serializes the socket-load report as the SLO JSON document CI uploads
/// as a workflow artifact.
pub fn net_report_to_json(r: &NetLoadReport, scale: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"clients\": {},\n", r.clients));
    out.push_str(&format!("  \"ok\": {},\n", r.ok));
    out.push_str(&format!("  \"divergences\": {},\n", r.divergences));
    out.push_str(&format!("  \"errors\": {},\n", r.errors));
    out.push_str(&format!("  \"mem_hits\": {},\n", r.mem_hits));
    out.push_str(&format!("  \"disk_hits\": {},\n", r.disk_hits));
    out.push_str(&format!("  \"misses\": {},\n", r.misses));
    out.push_str(&format!("  \"wall_secs\": {:.6},\n", r.wall_secs));
    out.push_str(&format!("  \"throughput_rps\": {:.3},\n", r.throughput));
    out.push_str(&format!("  \"latency_p50_ns\": {},\n", r.p50_ns));
    out.push_str(&format!("  \"latency_p95_ns\": {},\n", r.p95_ns));
    out.push_str(&format!("  \"latency_p99_ns\": {},\n", r.p99_ns));
    out.push_str("  \"server_stats\": {\n");
    for (i, (name, value)) in r.server_stats.iter().enumerate() {
        let comma = if i + 1 == r.server_stats.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Renders one row of the bench-serve table.
pub fn render_row(r: &LoadReport) -> String {
    format!(
        "workers {:>2}  cache {:<3}  {:>7.1} req/s  p50 {:>9}  p99 {:>9}  hit-rate {:>5.1}%  \
         compiles {:>5}  divergences {}",
        r.workers,
        if r.cache_on { "on" } else { "off" },
        r.throughput,
        fmt_ns(r.p50_ns),
        fmt_ns(r.p99_ns),
        r.hit_rate * 100.0,
        r.compiles,
        r.divergences,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_exhaustive() {
        let z = Zipf::new(8, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..4_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[7], "{counts:?}");
        assert!(
            counts[0] as f64 >= 0.25 * 4_000.0,
            "rank 0 should dominate: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0), "tail must occur: {counts:?}");
    }

    #[test]
    fn catalog_ground_truth_matches_served_results() {
        let catalog = Catalog::new(3, 16);
        let zipf = Zipf::new(catalog.len(), 1.1);
        let report = run_load(&catalog, &zipf, 2, true, 2, 30, 0xBEEF);
        assert_eq!(report.divergences, 0, "{report:?}");
        assert_eq!(report.ok, 30);
        assert!(report.hit_rate > 0.0);
        assert!(report.compiles >= catalog.len() as u64 / 2);
    }

    #[test]
    fn deadline_experiment_reports_clean() {
        let report = run_deadline_experiment(2);
        assert_eq!(report.aborted, report.issued, "{report:?}");
        assert!(report.pool_alive);
        assert!(report.memory_balanced);
    }
}
