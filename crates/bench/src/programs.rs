//! The seven §6 benchmarks as Wolfram programs, with compiled variants for
//! both compilers.

use std::fmt::Write as _;
use wolfram_bytecode::{ArgSpec, BytecodeCompiler, CompileError, CompiledFunction};
use wolfram_compiler_core::{CompiledCodeFunction, Compiler};
use wolfram_expr::parse;

/// FNV1a-32 over a string's UTF-8 bytes. "The new compiler has builtin
/// support for strings and operates on the UTF8 bytes within the string."
pub const FNV1A_SRC: &str = r#"
Function[{Typed[s, "String"]},
 Module[{bytes, h, i, n},
  bytes = ToCharacterCode[s];
  h = 2166136261;
  n = Length[bytes];
  i = 1;
  While[i <= n,
   h = BitXor[h, bytes[[i]]];
   h = Mod[h * 16777619, 4294967296];
   i = i + 1];
  h]]
"#;

/// The bytecode workaround (§6): "Since strings are not supported within
/// the bytecode compiler ... they are represented as an integer vector of
/// their character codes ... the bytecode compiled function operates on
/// int64 rather than uint8."
pub const FNV1A_BYTECODE_BODY: &str = r#"
Module[{h, i, n},
 h = 2166136261;
 n = Length[bytes];
 i = 1;
 While[i <= n,
  h = BitXor[h, bytes[[i]]];
  h = Mod[h * 16777619, 4294967296];
  i = i + 1];
 h]
"#;

/// Mandelbrot iteration count for one pixel — the appendix A.7
/// implementation, verbatim shape.
pub const MANDELBROT_SRC: &str = r#"
Function[{Typed[pixel0, "ComplexReal64"]},
 Module[{iters = 1, maxIters = 1000, pixel = pixel0},
  While[iters < maxIters && Abs[pixel] < 2.0,
   pixel = pixel^2 + pixel0;
   iters = iters + 1];
  iters]]
"#;

/// Same body for the bytecode compiler (complex is a supported datatype).
pub const MANDELBROT_BYTECODE_BODY: &str = r#"
Module[{iters = 1, maxIters = 1000, pixel = pixel0},
 While[iters < maxIters && Abs[pixel] < 2.0,
  pixel = pixel^2 + pixel0;
  iters = iters + 1];
 iters]
"#;

/// Dot of two real matrices: every implementation routes through the same
/// runtime `dgemm` (the paper's shared-MKL setup).
pub const DOT_SRC: &str = r#"
Function[{Typed[a, "Tensor"["Real64", 2]], Typed[b, "Tensor"["Real64", 2]]}, Dot[a, b]]
"#;

/// 3x3 Gaussian blur over a single-channel image.
pub const BLUR_SRC: &str = r#"
Function[{Typed[img, "Tensor"["Real64", 2]], Typed[h, "MachineInteger"], Typed[w, "MachineInteger"]},
 Module[{out, i, j, s},
  out = ConstantArray[0., {h, w}];
  i = 2;
  While[i < h,
   j = 2;
   While[j < w,
    s = img[[i - 1, j - 1]] + 2.0*img[[i - 1, j]] + img[[i - 1, j + 1]]
      + 2.0*img[[i, j - 1]] + 4.0*img[[i, j]] + 2.0*img[[i, j + 1]]
      + img[[i + 1, j - 1]] + 2.0*img[[i + 1, j]] + img[[i + 1, j + 1]];
    out[[i, j]] = s / 16.0;
    j = j + 1];
   i = i + 1];
  out]]
"#;

/// The same blur body for the bytecode compiler.
pub const BLUR_BYTECODE_BODY: &str = r#"
Module[{out, i, j, s},
 out = ConstantArray[0., {h, w}];
 i = 2;
 While[i < h,
  j = 2;
  While[j < w,
   s = img[[i - 1, j - 1]] + 2.0*img[[i - 1, j]] + img[[i - 1, j + 1]]
     + 2.0*img[[i, j - 1]] + 4.0*img[[i, j]] + 2.0*img[[i, j + 1]]
     + img[[i + 1, j - 1]] + 2.0*img[[i + 1, j]] + img[[i + 1, j + 1]];
   out[[i, j]] = s / 16.0;
   j = j + 1];
  i = i + 1];
 out]
"#;

/// 256-bin histogram of a list of integers in [0, 255].
pub const HISTOGRAM_SRC: &str = r#"
Function[{Typed[data, "Tensor"["Integer64", 1]]},
 Module[{bins, i, n, b},
  bins = ConstantArray[0, 256];
  n = Length[data];
  i = 1;
  While[i <= n,
   b = data[[i]] + 1;
   bins[[b]] = bins[[b]] + 1;
   i = i + 1];
  bins]]
"#;

/// The same histogram body for the bytecode compiler.
pub const HISTOGRAM_BYTECODE_BODY: &str = r#"
Module[{bins, i, n, b},
 bins = ConstantArray[0, 256];
 n = Length[data];
 i = 1;
 While[i <= n,
  b = data[[i]] + 1;
  bins[[b]] = bins[[b]] + 1;
  i = i + 1];
 bins]
"#;

/// Builds the PrimeQ benchmark source: Rabin–Miller over `[0, limit)` with
/// a 2^14 seed table "generated using the Wolfram interpreter and embedded
/// into the compiled code as a constant array" (§6). Returns the prime
/// count.
pub fn primeq_src(seed_table: &[i64]) -> String {
    let mut table = String::with_capacity(seed_table.len() * 2);
    for (ix, v) in seed_table.iter().enumerate() {
        if ix > 0 {
            table.push(',');
        }
        let _ = write!(table, "{v}");
    }
    format!(
        r#"
Function[{{Typed[limit, "MachineInteger"]}},
 Module[{{table, witnesses, count, k, isp, d, s, a, x, j, composite, wi}},
  table = {{{table}}};
  witnesses = {{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}};
  count = 0;
  k = 0;
  While[k < limit,
   If[k < 16384,
    isp = table[[k + 1]],
    Module[{{}},
     isp = 1;
     If[Mod[k, 2] == 0,
      isp = 0,
      d = k - 1; s = 0;
      While[Mod[d, 2] == 0, d = Quotient[d, 2]; s = s + 1];
      wi = 1;
      While[wi <= 12 && isp == 1,
       a = witnesses[[wi]];
       If[Mod[a, k] != 0,
        x = PowerMod[a, d, k];
        If[x != 1 && x != k - 1,
         j = 1; composite = 1;
         While[j < s,
          x = Mod[x*x, k];
          If[x == k - 1, composite = 0; j = s, j = j + 1]];
         If[composite == 1, isp = 0]]];
       wi = wi + 1]]]];
   count = count + isp;
   k = k + 1];
  count]]
"#
    )
}

/// The bytecode PrimeQ body (the table is "pasted in" the same way;
/// PowerMod is replaced by a hand-rolled modular exponentiation since the
/// VM's datatypes cover it for the benchmark's range).
pub fn primeq_bytecode_body(seed_table: &[i64]) -> String {
    let mut table = String::with_capacity(seed_table.len() * 2);
    for (ix, v) in seed_table.iter().enumerate() {
        if ix > 0 {
            table.push(',');
        }
        let _ = write!(table, "{v}");
    }
    format!(
        r#"
Module[{{table, witnesses, count, k, isp, d, s, a, x, j, composite, wi, base, e, acc}},
 table = {{{table}}};
 witnesses = {{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}};
 count = 0;
 k = 0;
 While[k < limit,
  If[k < 16384,
   isp = table[[k + 1]],
   Module[{{}},
    isp = 1;
    If[Mod[k, 2] == 0,
     isp = 0,
     d = k - 1; s = 0;
     While[Mod[d, 2] == 0, d = Quotient[d, 2]; s = s + 1];
     wi = 1;
     While[wi <= 12 && isp == 1,
      a = witnesses[[wi]];
      If[Mod[a, k] != 0,
       acc = 1; base = Mod[a, k]; e = d;
       While[e > 0,
        If[Mod[e, 2] == 1, acc = Mod[acc*base, k]];
        base = Mod[base*base, k];
        e = Quotient[e, 2]];
       x = acc;
       If[x != 1 && x != k - 1,
        j = 1; composite = 1;
        While[j < s,
         x = Mod[x*x, k];
         If[x == k - 1, composite = 0; j = s, j = j + 1]];
        If[composite == 1, isp = 0]]];
      wi = wi + 1]]]];
  count = count + isp;
  k = k + 1];
 count]
"#
    )
}

/// Textbook in-place quicksort (median-of-three, explicit stack) with a
/// user-supplied comparator — "the code is polymorphic and written in a
/// functional style, where users define and pass the comparator function
/// as an argument" (§6). The defensive copy required by mutability
/// semantics (F5) happens on the first in-place write.
pub const QSORT_SRC: &str = r#"
Function[{Typed[list, "Tensor"["Integer64", 1]], Typed[ascending, "Boolean"]},
 Module[{cmp, arr, stack, sp, lo, hi, mid, i, j, p, t},
  cmp = If[ascending,
   Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"]}, a < b],
   Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"]}, a > b]];
  arr = list;
  stack = ConstantArray[0, 4096];
  stack[[1]] = 1;
  stack[[2]] = Length[arr];
  sp = 2;
  While[sp > 0,
   hi = stack[[sp]];
   lo = stack[[sp - 1]];
   sp = sp - 2;
   If[lo < hi,
    mid = Quotient[lo + hi, 2];
    If[cmp[arr[[mid]], arr[[lo]]],
     t = arr[[mid]]; arr[[mid]] = arr[[lo]]; arr[[lo]] = t];
    If[cmp[arr[[hi]], arr[[lo]]],
     t = arr[[hi]]; arr[[hi]] = arr[[lo]]; arr[[lo]] = t];
    If[cmp[arr[[hi]], arr[[mid]]],
     t = arr[[hi]]; arr[[hi]] = arr[[mid]]; arr[[mid]] = t];
    t = arr[[mid]]; arr[[mid]] = arr[[hi]]; arr[[hi]] = t;
    p = arr[[hi]];
    i = lo - 1;
    j = lo;
    While[j < hi,
     If[cmp[arr[[j]], p],
      i = i + 1;
      t = arr[[i]]; arr[[i]] = arr[[j]]; arr[[j]] = t];
     j = j + 1];
    i = i + 1;
    t = arr[[i]]; arr[[i]] = arr[[hi]]; arr[[hi]] = t;
    stack[[sp + 1]] = lo; stack[[sp + 2]] = i - 1; sp = sp + 2;
    stack[[sp + 1]] = i + 1; stack[[sp + 2]] = hi; sp = sp + 2]];
  arr]]
"#;

/// The bytecode attempt at QSort: the comparator must be a `Function`
/// value, which the bytecode compiler cannot represent (L1) — compilation
/// is expected to fail.
pub const QSORT_BYTECODE_BODY: &str = r#"
Module[{cmp},
 cmp = Function[{a, b}, a < b];
 cmp[list[[1]], list[[2]]]]
"#;

/// Compiles a benchmark with the new compiler.
///
/// # Panics
///
/// Panics on compilation failure — the suite requires all seven programs
/// to compile.
pub fn compile_new(compiler: &Compiler, src: &str) -> CompiledCodeFunction {
    compiler
        .function_compile(&parse(src).unwrap_or_else(|e| panic!("benchmark source: {e}")))
        .unwrap_or_else(|e| panic!("benchmark failed to compile: {e}"))
}

/// Compiles a benchmark body with the bytecode compiler.
///
/// # Errors
///
/// Propagates the bytecode compiler's representability errors (QSort).
pub fn compile_bytecode(specs: &[ArgSpec], body: &str) -> Result<CompiledFunction, CompileError> {
    let body = parse(body).map_err(|e| CompileError::Malformed(e.to_string()))?;
    BytecodeCompiler::new().compile(specs, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use wolfram_runtime::Value;

    fn compiler() -> Compiler {
        Compiler::default()
    }

    #[test]
    fn fnv1a_matches_native() {
        let s = workloads::random_string(1000, 7);
        let cf = compile_new(&compiler(), FNV1A_SRC);
        let got = cf
            .call(&[Value::Str(std::sync::Arc::new(s.clone()))])
            .unwrap();
        assert_eq!(
            got.expect_i64().unwrap(),
            crate::native::fnv1a32(s.as_bytes()) as i64
        );
        // The bytecode workaround over int codes agrees.
        let bc = compile_bytecode(&[ArgSpec::tensor_int("bytes")], FNV1A_BYTECODE_BODY).unwrap();
        let codes: Vec<i64> = s.bytes().map(|b| b as i64).collect();
        let got_bc = bc
            .run(&[Value::Tensor(wolfram_runtime::Tensor::from_i64(codes))])
            .unwrap();
        assert_eq!(got_bc, got);
    }

    #[test]
    fn mandelbrot_matches_native() {
        let cf = compile_new(&compiler(), MANDELBROT_SRC);
        let bc = compile_bytecode(&[ArgSpec::complex("pixel0")], MANDELBROT_BYTECODE_BODY).unwrap();
        for (re, im) in [(0.0, 0.0), (-1.0, 0.3), (0.4, 0.4), (-0.5, 0.5), (1.0, 1.0)] {
            let want = crate::native::mandelbrot_iters(re, im, 1000);
            let got = cf
                .call(&[Value::Complex(re, im)])
                .unwrap()
                .expect_i64()
                .unwrap();
            assert_eq!(got, want, "new compiler at ({re},{im})");
            let got_bc = bc
                .run(&[Value::Complex(re, im)])
                .unwrap()
                .expect_i64()
                .unwrap();
            assert_eq!(got_bc, want, "bytecode at ({re},{im})");
        }
    }

    #[test]
    fn dot_matches_native() {
        let n = 8;
        let a = workloads::random_matrix(n, 3);
        let b = workloads::random_matrix(n, 4);
        let cf = compile_new(&compiler(), DOT_SRC);
        let got = cf
            .call(&[Value::Tensor(a.clone()), Value::Tensor(b.clone())])
            .unwrap();
        let want = crate::native::dot(&a, &b);
        let got_t = got.expect_tensor().unwrap();
        for (x, y) in got_t.as_f64().unwrap().iter().zip(want.as_f64().unwrap()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn blur_matches_native() {
        let (h, w) = (12, 10);
        let img = workloads::random_matrix_hw(h, w, 5);
        let cf = compile_new(&compiler(), BLUR_SRC);
        let got = cf
            .call(&[
                Value::Tensor(img.clone()),
                Value::I64(h as i64),
                Value::I64(w as i64),
            ])
            .unwrap();
        let want = crate::native::blur(&img, h, w);
        let got_t = got.expect_tensor().unwrap();
        for (x, y) in got_t.as_f64().unwrap().iter().zip(want.as_f64().unwrap()) {
            assert!((x - y).abs() < 1e-9);
        }
        // Bytecode agrees.
        let bc = compile_bytecode(
            &[
                ArgSpec::tensor_real("img"),
                ArgSpec::int("h"),
                ArgSpec::int("w"),
            ],
            BLUR_BYTECODE_BODY,
        )
        .unwrap();
        let got_bc = bc
            .run(&[
                Value::Tensor(img),
                Value::I64(h as i64),
                Value::I64(w as i64),
            ])
            .unwrap();
        let got_bc = got_bc.expect_tensor().unwrap();
        for (x, y) in got_bc.as_f64().unwrap().iter().zip(want.as_f64().unwrap()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_matches_native() {
        let data = workloads::random_bytes_tensor(5000, 11);
        let cf = compile_new(&compiler(), HISTOGRAM_SRC);
        let got = cf.call(&[Value::Tensor(data.clone())]).unwrap();
        let want = crate::native::histogram(data.as_i64().unwrap());
        assert_eq!(
            got.expect_tensor().unwrap().as_i64().unwrap(),
            want.as_slice()
        );
        let bc = compile_bytecode(&[ArgSpec::tensor_int("data")], HISTOGRAM_BYTECODE_BODY).unwrap();
        let got_bc = bc.run(&[Value::Tensor(data)]).unwrap();
        assert_eq!(
            got_bc.expect_tensor().unwrap().as_i64().unwrap(),
            want.as_slice()
        );
    }

    #[test]
    fn primeq_matches_native() {
        let table = workloads::prime_seed_table();
        assert_eq!(table.len(), 16384);
        let src = primeq_src(&table);
        let cf = compile_new(&compiler(), &src);
        // Checks spanning the table boundary exercise both paths.
        for limit in [100i64, 16384 + 500] {
            let got = cf.call(&[Value::I64(limit)]).unwrap().expect_i64().unwrap();
            let want = crate::native::prime_count(limit as u64);
            assert_eq!(got, want as i64, "limit {limit}");
        }
        let bc = compile_bytecode(&[ArgSpec::int("limit")], &primeq_bytecode_body(&table)).unwrap();
        let got_bc = bc
            .run(&[Value::I64(16384 + 500)])
            .unwrap()
            .expect_i64()
            .unwrap();
        assert_eq!(got_bc, crate::native::prime_count(16384 + 500) as i64);
    }

    #[test]
    fn qsort_sorts_and_preserves_input() {
        let cf = compile_new(&compiler(), QSORT_SRC);
        let input = wolfram_runtime::Tensor::from_i64(vec![5, 1, 4, 2, 3, 3, -7]);
        let got = cf
            .call(&[Value::Tensor(input.clone()), Value::Bool(true)])
            .unwrap();
        assert_eq!(
            got.expect_tensor().unwrap().as_i64().unwrap(),
            &[-7, 1, 2, 3, 3, 4, 5]
        );
        // The runtime-selected descending comparator sorts the other way.
        let got = cf
            .call(&[Value::Tensor(input.clone()), Value::Bool(false)])
            .unwrap();
        assert_eq!(
            got.expect_tensor().unwrap().as_i64().unwrap(),
            &[5, 4, 3, 3, 2, 1, -7]
        );
        // Mutability semantics: the caller's list is untouched (F5).
        assert_eq!(input.as_i64().unwrap(), &[5, 1, 4, 2, 3, 3, -7]);
        // Pre-sorted input (the paper's workload) stays correct.
        let sorted: Vec<i64> = (0..256).collect();
        let got = cf
            .call(&[
                Value::Tensor(wolfram_runtime::Tensor::from_i64(sorted.clone())),
                Value::Bool(true),
            ])
            .unwrap();
        assert_eq!(
            got.expect_tensor().unwrap().as_i64().unwrap(),
            sorted.as_slice()
        );
    }

    #[test]
    fn qsort_cannot_be_represented_in_bytecode() {
        // §6: "Function passing cannot be represented in the bytecode
        // compiler, and therefore this program cannot be represented."
        let err =
            compile_bytecode(&[ArgSpec::tensor_int("list")], QSORT_BYTECODE_BODY).unwrap_err();
        assert!(matches!(err, CompileError::Unsupported(_)), "{err}");
    }
}
