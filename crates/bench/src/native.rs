//! Hand-written native (Rust) implementations — the stand-ins for the
//! paper's "highly tuned hand-written C implementations" that Figure 2
//! normalizes against. They do not support abortability (as in the paper).

use wolfram_runtime::{linalg, Tensor, TensorData};

/// FNV1a-32 of a byte string.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 2_166_136_261;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(16_777_619);
    }
    h
}

/// Mandelbrot iteration count for one pixel.
pub fn mandelbrot_iters(re0: f64, im0: f64, max_iters: i64) -> i64 {
    let mut iters = 1i64;
    let (mut re, mut im) = (re0, im0);
    while iters < max_iters && (re * re + im * im).sqrt() < 2.0 {
        let nre = re * re - im * im + re0;
        let nim = 2.0 * re * im + im0;
        re = nre;
        im = nim;
        iters += 1;
    }
    iters
}

/// Sweeps the paper's region `[-1, 1] x [-1, 0.5]` at the given resolution,
/// summing iteration counts (so the result is checkable).
pub fn mandelbrot_region(resolution: f64, max_iters: i64) -> i64 {
    let mut total = 0i64;
    let mut re = -1.0;
    while re <= 1.0 + 1e-12 {
        let mut im = -1.0;
        while im <= 0.5 + 1e-12 {
            total += mandelbrot_iters(re, im, max_iters);
            im += resolution;
        }
        re += resolution;
    }
    total
}

/// Matrix product through the shared runtime `dgemm` (the paper's MKL).
pub fn dot(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0.0; m * n];
    linalg::dgemm(
        a.as_f64().expect("real matrix"),
        b.as_f64().expect("real matrix"),
        &mut out,
        m,
        k,
        n,
    );
    Tensor::with_shape(vec![m, n], TensorData::F64(out)).expect("shape")
}

/// 3x3 Gaussian blur matching the benchmark kernel.
pub fn blur(img: &Tensor, h: usize, w: usize) -> Tensor {
    let src = img.as_f64().expect("real image");
    let mut out = vec![0.0; h * w];
    for i in 1..h - 1 {
        for j in 1..w - 1 {
            let s = src[(i - 1) * w + j - 1]
                + 2.0 * src[(i - 1) * w + j]
                + src[(i - 1) * w + j + 1]
                + 2.0 * src[i * w + j - 1]
                + 4.0 * src[i * w + j]
                + 2.0 * src[i * w + j + 1]
                + src[(i + 1) * w + j - 1]
                + 2.0 * src[(i + 1) * w + j]
                + src[(i + 1) * w + j + 1];
            out[i * w + j] = s / 16.0;
        }
    }
    Tensor::with_shape(vec![h, w], TensorData::F64(out)).expect("shape")
}

/// 256-bin histogram.
pub fn histogram(data: &[i64]) -> Vec<i64> {
    let mut bins = vec![0i64; 256];
    for &v in data {
        bins[v as usize] += 1;
    }
    bins
}

/// Deterministic Miller–Rabin (mirrors the compiled program's algorithm).
pub fn is_prime(n: u64) -> bool {
    wolfram_interp::builtins::arithmetic::is_prime_u64(n)
}

/// Number of primes below `limit`, using the same seed-table + Rabin-Miller
/// split as the benchmark.
pub fn prime_count(limit: u64) -> u64 {
    (0..limit).filter(|&n| is_prime(n)).count() as u64
}

/// Textbook quicksort (median-of-three, explicit stack) with an indirect
/// comparator, mirroring the compiled program — including the defensive
/// copy of the input.
pub fn qsort(input: &[i64], cmp: fn(i64, i64) -> bool) -> Vec<i64> {
    let mut arr = input.to_vec(); // the defensive copy
    qsort_in_place(&mut arr, cmp);
    arr
}

/// The in-place variant (no defensive copy): the "hand-written C" behavior
/// the paper's QSort discussion compares against.
pub fn qsort_in_place(arr: &mut [i64], cmp: fn(i64, i64) -> bool) {
    if arr.is_empty() {
        return;
    }
    let mut stack: Vec<(isize, isize)> = vec![(0, arr.len() as isize - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if lo >= hi {
            continue;
        }
        let (l, h) = (lo as usize, hi as usize);
        let mid = (l + h) / 2;
        if cmp(arr[mid], arr[l]) {
            arr.swap(mid, l);
        }
        if cmp(arr[h], arr[l]) {
            arr.swap(h, l);
        }
        if cmp(arr[h], arr[mid]) {
            arr.swap(h, mid);
        }
        arr.swap(mid, h);
        let p = arr[h];
        let mut i = lo - 1;
        for j in l..h {
            if cmp(arr[j], p) {
                i += 1;
                arr.swap(i as usize, j);
            }
        }
        let pivot = (i + 1) as usize;
        arr.swap(pivot, h);
        stack.push((lo, pivot as isize - 1));
        stack.push((pivot as isize + 1, hi));
    }
}

/// Ascending comparator.
pub fn less(a: i64, b: i64) -> bool {
    a < b
}

/// The native random walk (the Figure 1 workload).
pub fn random_walk(len: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = seed | 1;
    let mut next = move || {
        rng = rng.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut out = Vec::with_capacity(len + 1);
    let (mut x, mut y) = (0.0f64, 0.0f64);
    out.push((x, y));
    for _ in 0..len {
        let arg = next() * std::f64::consts::TAU;
        x -= arg.cos();
        y += arg.sin();
        out.push((x, y));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV1a-32 test vectors.
        assert_eq!(fnv1a32(b""), 0x811c9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c292c);
        assert_eq!(fnv1a32(b"foobar"), 0xbf9cf968);
    }

    #[test]
    fn mandelbrot_basics() {
        // The origin never escapes.
        assert_eq!(mandelbrot_iters(0.0, 0.0, 1000), 1000);
        // Far outside escapes immediately.
        assert_eq!(mandelbrot_iters(2.0, 2.0, 1000), 1);
        assert!(mandelbrot_region(0.5, 100) > 0);
    }

    #[test]
    fn qsort_correct() {
        let sorted: Vec<i64> = (0..100).collect();
        assert_eq!(qsort(&sorted, less), sorted);
        let mut reversed: Vec<i64> = (0..100).rev().collect();
        assert_eq!(qsort(&reversed, less), sorted);
        reversed.push(50);
        let mut expected = reversed.clone();
        expected.sort_unstable();
        assert_eq!(qsort(&reversed, less), expected);
        assert_eq!(qsort(&[], less), Vec::<i64>::new());
        assert_eq!(qsort(&[7], less), vec![7]);
    }

    #[test]
    fn primes() {
        assert_eq!(prime_count(100), 25);
        assert_eq!(prime_count(0), 0);
    }

    #[test]
    fn histogram_sums() {
        let data = vec![0, 255, 255, 7];
        let bins = histogram(&data);
        assert_eq!(bins[0], 1);
        assert_eq!(bins[255], 2);
        assert_eq!(bins[7], 1);
        assert_eq!(bins.iter().sum::<i64>(), 4);
    }

    #[test]
    fn walk_length() {
        let w = random_walk(10, 42);
        assert_eq!(w.len(), 11);
        assert_eq!(w[0], (0.0, 0.0));
        // Each step has unit length.
        for pair in w.windows(2) {
            let dx = pair[1].0 - pair[0].0;
            let dy = pair[1].1 - pair[0].1;
            assert!((dx.hypot(dy) - 1.0).abs() < 1e-12);
        }
    }
}
