//! Table 1: the feature/objective matrix, probed programmatically.
//!
//! Each row runs actual code against both compilers and reports ✓ (full
//! support), ⋆ (limited/inefficient support), or ✗ (no support), matching
//! the paper's legend.

use std::cell::RefCell;
use wolfram_bytecode::{ArgSpec, BytecodeCompiler};
use wolfram_compiler_core::Compiler;
use wolfram_expr::{parse, Expr};
use wolfram_interp::Interpreter;
use wolfram_runtime::{RuntimeError, Value};

/// Support levels in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Full support (✓).
    Full,
    /// Limited or inefficient support (⋆).
    Limited,
    /// No support (✗).
    None,
}

impl std::fmt::Display for Support {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Support::Full => "\u{2713}",
            Support::Limited => "\u{22c6}",
            Support::None => "\u{2717}",
        })
    }
}

/// One probed feature row.
#[derive(Debug, Clone)]
pub struct FeatureRow {
    /// Feature id and name (`F1 Integration with Interpreter`, ...).
    pub feature: &'static str,
    /// New compiler support (measured).
    pub new_compiler: Support,
    /// Bytecode compiler support (measured where probeable; the paper's
    /// assessment where it is a design property).
    pub bytecode: Support,
    /// One-line evidence from the probe.
    pub evidence: String,
}

fn engine() -> std::rc::Rc<RefCell<Interpreter>> {
    std::rc::Rc::new(RefCell::new(Interpreter::new()))
}

/// Probes all ten feature rows. Each probe actually exercises the feature.
///
/// # Panics
///
/// Panics if a probe that must succeed fails — the suite treats feature
/// regressions as errors.
#[allow(clippy::too_many_lines)]
pub fn probe() -> Vec<FeatureRow> {
    let compiler = Compiler::default();
    let mut rows = Vec::new();

    // F1: integration with the interpreter.
    {
        let eng = engine();
        let cf = compiler
            .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, n + 1]")
            .unwrap()
            .hosted(eng.clone());
        cf.install("incr").unwrap();
        let out = eng.borrow_mut().eval_src("Map[incr, {1, 2}]").unwrap();
        assert_eq!(out.to_full_form(), "List[2, 3]");
        rows.push(FeatureRow {
            feature: "F1 Integration with Interpreter",
            new_compiler: Support::Full,
            bytecode: Support::Full,
            evidence: "installed compiled function callable from Map".into(),
        });
    }

    // F2: soft failure mode.
    {
        let eng = engine();
        let cf = compiler
            .function_compile_src(
                "Function[{Typed[n, \"MachineInteger\"]}, \
                 Module[{a = 0, b = 1, k = 0, t = 0}, \
                 While[k < n, t = a + b; a = b; b = t; k = k + 1]; a]]",
            )
            .unwrap()
            .hosted(eng.clone());
        let out = cf.call_exprs(&[Expr::int(100)]).unwrap();
        assert_eq!(out.to_full_form(), "354224848179261915075");
        rows.push(FeatureRow {
            feature: "F2 Soft Failure Mode",
            new_compiler: Support::Full,
            bytecode: Support::Full,
            evidence: "overflowing fib(100) reverted to bignum evaluation".into(),
        });
    }

    // F3: abortable evaluation.
    {
        let eng = engine();
        let cf = compiler
            .function_compile_src(
                "Function[{Typed[n, \"MachineInteger\"]}, \
                 Module[{i = 0}, While[True, i = i + 1]; i]]",
            )
            .unwrap()
            .hosted(eng.clone());
        eng.borrow().abort_signal().trigger();
        let err = cf.call(&[Value::I64(0)]).unwrap_err();
        assert_eq!(err, RuntimeError::Aborted);
        eng.borrow().abort_signal().reset();
        rows.push(FeatureRow {
            feature: "F3 Abortable Evaluation",
            new_compiler: Support::Full,
            bytecode: Support::Full,
            evidence: "infinite loop unwound by the shared abort signal".into(),
        });
    }

    // F4: backend support.
    {
        let f = parse("Function[{Typed[n, \"MachineInteger\"]}, n + 1]").unwrap();
        let mut supported = Vec::new();
        for backend in ["IR", "C", "Assembler", "WVM"] {
            if compiler.export_string(&f, backend).is_ok() {
                supported.push(backend);
            }
        }
        assert!(supported.len() >= 4);
        rows.push(FeatureRow {
            feature: "F4 Backends Support",
            new_compiler: Support::Full,
            bytecode: Support::Limited, // WVM or C only
            evidence: format!("textual backends: {supported:?} + native"),
        });
    }

    // F5: mutability semantics.
    {
        let cf = compiler
            .function_compile_src(
                "Function[{Typed[v, \"Tensor\"[\"Integer64\", 1]]}, \
                 Module[{w = v}, w[[1]] = 99; w]]",
            )
            .unwrap();
        let original = wolfram_runtime::Tensor::from_i64(vec![1, 2, 3]);
        let out = cf.call(&[Value::Tensor(original.clone())]).unwrap();
        assert_eq!(out.expect_tensor().unwrap().as_i64().unwrap(), &[99, 2, 3]);
        assert_eq!(original.as_i64().unwrap(), &[1, 2, 3]);
        rows.push(FeatureRow {
            feature: "F5 Mutability Semantics",
            new_compiler: Support::Full,
            bytecode: Support::Limited, // copying strategy is cruder
            evidence: "in-function mutation leaves the caller's list intact".into(),
        });
    }

    // F6: extensible user types.
    {
        let mut custom = Compiler::default();
        custom.types.classes.declare_class("MyClass");
        custom.types.classes.add_member("MyClass", "Integer64");
        custom
            .types
            .declare_function_expr(
                "Twice",
                &parse("TypeForAll[{\"a\"}, {Element[\"a\", \"MyClass\"]}, {\"a\"} -> \"a\"]")
                    .unwrap(),
                wolfram_types::FunctionImpl::Source(parse("Function[{x}, x + x]").unwrap()),
            )
            .unwrap();
        let cf = custom
            .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, Twice[n]]")
            .unwrap();
        assert_eq!(cf.call(&[Value::I64(21)]).unwrap(), Value::I64(42));
        // The bytecode compiler has no extension point at all.
        rows.push(FeatureRow {
            feature: "F6 Extensible User Types",
            new_compiler: Support::Full,
            bytecode: Support::None,
            evidence: "user class + qualified user function compiled".into(),
        });
    }

    // F7: automatic memory management.
    {
        wolfram_runtime::memory::reset_stats();
        let cf = compiler
            .function_compile_src("Function[{Typed[v, \"Tensor\"[\"Real64\", 1]]}, Length[v]]")
            .unwrap();
        cf.call(&[Value::Tensor(wolfram_runtime::Tensor::from_f64(vec![1.0]))])
            .unwrap();
        let stats = wolfram_runtime::memory::stats();
        assert!(stats.acquires > 0 && stats.balanced(), "{stats:?}");
        rows.push(FeatureRow {
            feature: "F7 Memory Management",
            new_compiler: Support::Full,
            bytecode: Support::Limited,
            evidence: format!(
                "acquire/release balanced ({} pairs) around managed intervals",
                stats.acquires
            ),
        });
    }

    // F8: symbolic computation.
    {
        let eng = engine();
        let cf = compiler
            .function_compile_src(
                "Function[{Typed[a, \"Expression\"], Typed[b, \"Expression\"]}, a + b]",
            )
            .unwrap()
            .hosted(eng);
        let out = cf.call_exprs(&[Expr::sym("x"), Expr::sym("y")]).unwrap();
        assert_eq!(out.to_full_form(), "Plus[x, y]");
        // The bytecode compiler rejects symbolic expressions outright.
        let err = BytecodeCompiler::new()
            .compile(&[ArgSpec::real("x")], &parse("\"a string\"").unwrap())
            .unwrap_err();
        rows.push(FeatureRow {
            feature: "F8 Symbolic Compute",
            new_compiler: Support::Full,
            bytecode: Support::None,
            evidence: format!("cf[x, y] -> x + y; bytecode: {err}"),
        });
    }

    // F9: gradual compilation.
    {
        let eng = engine();
        eng.borrow_mut().eval_src("userFunc[x_] := x * 10").unwrap();
        let cf = compiler
            .function_compile_src("Function[{Typed[n, \"MachineInteger\"]}, userFunc[n]]")
            .unwrap()
            .hosted(eng);
        let out = cf.call_exprs(&[Expr::int(7)]).unwrap();
        assert_eq!(out.as_i64(), Some(70));
        rows.push(FeatureRow {
            feature: "F9 Gradual Compilation",
            new_compiler: Support::Full,
            bytecode: Support::None,
            evidence: "undeclared userFunc escaped to the interpreter mid-function".into(),
        });
    }

    // F10: standalone export.
    {
        let f = parse("Function[{Typed[x, \"Real64\"]}, x*x]").unwrap();
        let dir = std::env::temp_dir().join("wolfram-table1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("square.wxl");
        compiler.export_library(&f, &path).unwrap();
        let loaded = compiler.load_library(&path).unwrap();
        assert!(loaded.standalone);
        assert_eq!(loaded.call(&[Value::F64(3.0)]).unwrap(), Value::F64(9.0));
        std::fs::remove_file(&path).ok();
        rows.push(FeatureRow {
            feature: "F10 Standalone Export",
            new_compiler: Support::Full,
            bytecode: Support::Limited, // C export only
            evidence: "library exported, reloaded, and executed standalone".into(),
        });
    }

    rows
}

/// Renders Table 1 in the paper's layout.
pub fn render(rows: &[FeatureRow]) -> String {
    let mut out = String::from(
        "Table 1: features and objectives (measured)\n\
         Objective                          | New | Bytecode\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<34} |  {}  |  {}   -- {}\n",
            r.feature, r.new_compiler, r.bytecode, r.evidence
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_features_probe_as_in_table1() {
        let rows = probe();
        assert_eq!(rows.len(), 10);
        // The new compiler column is all-checkmarks, as in the paper.
        assert!(rows.iter().all(|r| r.new_compiler == Support::Full));
        // The bytecode column matches the paper's ✓/⋆/✗ pattern.
        let bc: Vec<Support> = rows.iter().map(|r| r.bytecode).collect();
        use Support::{Full, Limited, None as No};
        assert_eq!(
            bc,
            [Full, Full, Full, Limited, Limited, No, Limited, No, No, Limited]
        );
        let text = render(&rows);
        assert!(text.contains("F6 Extensible User Types"), "{text}");
    }
}
