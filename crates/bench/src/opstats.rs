//! Dynamic op-frequency profiles for the seven §6 benchmarks.
//!
//! Superinstruction selection is driven by data, not guesses: this module
//! compiles each benchmark, runs it once with the machine's opt-in
//! profiler enabled, and reports the hottest mnemonics and consecutive
//! dyads, plus the frame-pool hit/miss counters. `reproduce -- opstats`
//! prints the result.

use crate::harness::Scale;
use crate::{programs, workloads};
use std::sync::Arc;
use wolfram_codegen::OpStats;
use wolfram_compiler_core::Compiler;
use wolfram_runtime::Value;

/// One benchmark's dynamic profile.
#[derive(Debug)]
pub struct BenchProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Counters collected over one profiled run.
    pub stats: OpStats,
}

/// Compiles and profiles all seven benchmarks at the given scale.
///
/// # Panics
///
/// Panics if any benchmark fails to compile or run — the suite requires
/// all seven.
pub fn collect(scale: &Scale) -> Vec<BenchProfile> {
    let compiler = Compiler::default();
    let mut out = Vec::new();
    let mut profile = |name: &'static str, src: &str, args: Vec<Value>| {
        let cf = programs::compile_new(&compiler, src);
        cf.profile_ops(true);
        cf.call(&args)
            .unwrap_or_else(|e| panic!("{name} failed under profiling: {e}"));
        let stats = cf.take_op_stats();
        cf.profile_ops(false);
        out.push(BenchProfile { name, stats });
    };

    profile(
        "FNV1a",
        programs::FNV1A_SRC,
        vec![Value::Str(Arc::new(workloads::random_string(
            scale.string_len,
            0x5eed,
        )))],
    );
    // One representative interior pixel iterates long enough to show the
    // loop body's mix.
    profile(
        "Mandelbrot",
        programs::MANDELBROT_SRC,
        vec![Value::Complex(-0.5, 0.3)],
    );
    profile("Dot", programs::DOT_SRC, {
        let n = scale.dot_n.min(64);
        vec![
            Value::Tensor(workloads::random_matrix(n, 1)),
            Value::Tensor(workloads::random_matrix(n, 2)),
        ]
    });
    profile("Blur", programs::BLUR_SRC, {
        let n = scale.blur_n;
        vec![
            Value::Tensor(workloads::random_matrix_hw(n, n, 3)),
            Value::I64(n as i64),
            Value::I64(n as i64),
        ]
    });
    profile(
        "Histogram",
        programs::HISTOGRAM_SRC,
        vec![Value::Tensor(workloads::random_bytes_tensor(
            scale.histogram_n,
            4,
        ))],
    );
    let table = workloads::prime_seed_table();
    profile(
        "PrimeQ",
        &programs::primeq_src(&table),
        vec![Value::I64(scale.prime_limit)],
    );
    profile(
        "QSort",
        programs::QSORT_SRC,
        vec![
            Value::Tensor(workloads::sorted_list(scale.qsort_n)),
            Value::Bool(true),
        ],
    );
    out
}

/// Renders each benchmark's hottest ops and dyads.
pub fn render(profiles: &[BenchProfile], top: usize) -> String {
    let mut out = String::new();
    for p in profiles {
        out.push_str(&format!(
            "{} — {} ops executed, frame pool {} hits / {} misses\n",
            p.name,
            p.stats.total(),
            p.stats.pool_hits,
            p.stats.pool_misses
        ));
        let total = p.stats.total().max(1) as f64;
        out.push_str("  hottest ops:\n");
        for (m, n) in p.stats.hottest_ops().into_iter().take(top) {
            out.push_str(&format!(
                "    {m:<14} {n:>12}  ({:.1}%)\n",
                100.0 * n as f64 / total
            ));
        }
        out.push_str("  hottest dyads:\n");
        for ((a, b), n) in p.stats.hottest_pairs().into_iter().take(top) {
            out.push_str(&format!(
                "    {:<28} {n:>12}  ({:.1}%)\n",
                format!("{a} -> {b}"),
                100.0 * n as f64 / total
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_all_benchmarks() {
        let profiles = collect(&Scale::quick());
        assert_eq!(profiles.len(), 7);
        for p in &profiles {
            assert!(p.stats.total() > 0, "{} profiled nothing", p.name);
            assert!(!p.stats.pairs.is_empty(), "{} has no dyads", p.name);
        }
        let rendered = render(&profiles, 5);
        assert!(rendered.contains("FNV1a"), "{rendered}");
        assert!(rendered.contains("hottest dyads"), "{rendered}");
    }
}
