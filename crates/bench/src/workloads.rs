//! Seeded workload generators for the paper's benchmark parameters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wolfram_runtime::{Tensor, TensorData};

/// A random alphanumeric string of `len` characters (FNV1a's 1e6 input).
pub fn random_string(len: usize, seed: u64) -> String {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| CHARSET[rng.gen_range(0..CHARSET.len())] as char)
        .collect()
}

/// A square random real matrix in [0, 1).
pub fn random_matrix(n: usize, seed: u64) -> Tensor {
    random_matrix_hw(n, n, seed)
}

/// A rectangular random real matrix in [0, 1).
pub fn random_matrix_hw(h: usize, w: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..h * w).map(|_| rng.gen::<f64>()).collect();
    Tensor::with_shape(vec![h, w], TensorData::F64(data)).expect("shape")
}

/// A uniform list of integers in [0, 255] (Histogram's 1e6 input).
pub fn random_bytes_tensor(n: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_i64((0..n).map(|_| rng.gen_range(0..256i64)).collect())
}

/// The pre-sorted list for QSort (the paper uses 2^15 elements).
pub fn sorted_list(n: usize) -> Tensor {
    Tensor::from_i64((0..n as i64).collect())
}

/// The PrimeQ 2^14 seed table, "generated using the Wolfram interpreter":
/// evaluates `Boole[PrimeQ[k]]` for k in [0, 16383] through the engine.
pub fn prime_seed_table() -> Vec<i64> {
    let mut engine = wolfram_interp::Interpreter::new();
    let list = engine
        .eval_src("Table[Boole[PrimeQ[k]], {k, 0, 16383}]")
        .expect("seed-table generation");
    list.args()
        .iter()
        .map(|e| e.as_i64().expect("Boole output"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(random_string(64, 1), random_string(64, 1));
        assert_ne!(random_string(64, 1), random_string(64, 2));
        assert_eq!(random_matrix(4, 9), random_matrix(4, 9));
    }

    #[test]
    fn shapes_and_ranges() {
        let m = random_matrix_hw(3, 5, 0);
        assert_eq!(m.shape(), &[3, 5]);
        assert!(m.as_f64().unwrap().iter().all(|v| (0.0..1.0).contains(v)));
        let b = random_bytes_tensor(100, 0);
        assert!(b.as_i64().unwrap().iter().all(|&v| (0..256).contains(&v)));
        assert_eq!(sorted_list(5).as_i64().unwrap(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn seed_table_matches_native() {
        let table = prime_seed_table();
        assert_eq!(table.len(), 16384);
        assert_eq!(table[2], 1);
        assert_eq!(table[4], 0);
        assert_eq!(table[16381], i64::from(crate::native::is_prime(16381)));
        let count: i64 = table.iter().sum();
        assert_eq!(count, crate::native::prime_count(16384) as i64);
    }
}
