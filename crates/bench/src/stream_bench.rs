//! Streaming-engine benchmark: compile once, evaluate millions.
//!
//! Three per-event workloads — the regime where call overhead, not the
//! body, dominates — are streamed through `wolfram_stream::run_stream`
//! at every tier:
//!
//! - **AddMul** — `3 n + 7` over machine integers: the smallest possible
//!   body, pure entry/exit overhead.
//! - **Poly** — a real cubic in Horner form: scalar float traffic.
//! - **Norm8** — squared norm of a length-8 real vector: a tensor
//!   argument per record, exercising the per-stream element checks.
//!
//! The baseline (`native call/rec`) feeds records one at a time through
//! the ordinary one-shot wrapper — per-call marshalling, per-call
//! argument validation, per-call frame acquisition — which is what a
//! caller gets without the streaming engine. The streamed
//! configurations batch records and reuse one validated frame per
//! worker; the headline number is their events/sec multiple over that
//! baseline. A tight one-shot loop (no pipeline at all) is printed as a
//! reference row so queue overhead in the baseline is visible rather
//! than hidden.
//!
//! Correctness is gated, not assumed: every configuration's output
//! sequence must be bit-identical to a one-shot loop of the same tier
//! over the same records, and the process-wide memory counters must
//! balance with frame resets actually recorded (the frame-reuse path
//! really ran). `reproduce bench-stream` renders the table, writes
//! `BENCH_stream.json`, and exits nonzero if any gate fails.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;
use wolfram_bytecode::{ArgSpec, BytecodeCompiler, CompiledFunction};
use wolfram_compiler_core::{CompiledArtifact, Compiler, CompilerOptions};
use wolfram_expr::{parse, Expr};
use wolfram_interp::Interpreter;
use wolfram_runtime::{memory, Tensor, Value};
use wolfram_stream::{run_stream, Record, StreamConfig, StreamFunction};

/// Record counts per workload class (streams are timed in one pass, so
/// the count is the scale knob).
#[derive(Debug, Clone, Copy)]
pub struct StreamScale {
    /// Records for the scalar workloads (AddMul, Poly).
    pub scalar_records: usize,
    /// Records for the tensor workload (Norm8).
    pub tensor_records: usize,
    /// Records for the interpreter rows (the interpreter is orders of
    /// magnitude slower per event; a subset keeps the run bounded).
    pub interp_records: usize,
}

impl StreamScale {
    /// CI smoke scale.
    pub fn quick() -> Self {
        StreamScale {
            scalar_records: 20_000,
            tensor_records: 4_000,
            interp_records: 1_500,
        }
    }

    /// Full evaluation scale.
    pub fn paper() -> Self {
        StreamScale {
            scalar_records: 400_000,
            tensor_records: 80_000,
            interp_records: 20_000,
        }
    }
}

/// One measured (benchmark, configuration) cell.
#[derive(Debug, Clone)]
pub struct StreamRow {
    /// Benchmark name (`AddMul`, `Poly`, `Norm8`).
    pub bench: &'static str,
    /// Configuration label (`native call/rec`, `native stream b=256`, ...).
    pub config: String,
    /// Tier (`native`, `bytecode`, `interp`).
    pub tier: &'static str,
    /// Batch size (0 for the tight-loop reference row).
    pub batch: usize,
    /// Executor worker threads (0 for the tight-loop reference row).
    pub workers: usize,
    /// Records evaluated.
    pub events: u64,
    /// Nanoseconds per event over the whole pass.
    pub ns_per_event: f64,
    /// Events per second over the whole pass.
    pub events_per_sec: f64,
    /// Events/sec multiple over this benchmark's `native call/rec` row.
    pub speedup: f64,
    /// Whether the output sequence was bit-identical to a one-shot loop
    /// of the same tier.
    pub equivalent: bool,
}

/// The full sweep plus the gates CI asserts on.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// All rows, grouped by benchmark in configuration order.
    pub rows: Vec<StreamRow>,
    /// Configurations whose output differed from their tier's one-shot
    /// loop (any difference, including errors, counts).
    pub equivalence_failures: u32,
    /// Whether `global_stats()` balanced after flushing every thread.
    pub memory_balanced: bool,
    /// Process-wide frame pool hits recorded during the sweep.
    pub frame_hits: u64,
    /// Process-wide streaming frame resets recorded during the sweep.
    pub frame_resets: u64,
    /// Best speedup among native streamed configurations — the headline
    /// the `bench-stream` gate checks against its floor.
    pub best_stream_speedup: f64,
}

struct Workload {
    name: &'static str,
    src: &'static str,
    records: Vec<Record>,
}

const ADDMUL_SRC: &str = r#"Function[{Typed[n, "MachineInteger"]}, 3*n + 7]"#;
const POLY_SRC: &str = r#"Function[{Typed[x, "Real64"]}, x*(x*(x - 2.5) + 1.25) + 0.5]"#;
const NORM8_SRC: &str = r#"
Function[{Typed[v, "Tensor"["Real64", 1]]},
 Module[{s, i, n},
  s = 0.0;
  n = Length[v];
  i = 1;
  While[i <= n, s = s + v[[i]]*v[[i]]; i = i + 1];
  s]]
"#;

fn workloads(scale: &StreamScale) -> Vec<Workload> {
    let ints = (0..scale.scalar_records)
        .map(|i| vec![Value::I64((i % 100_000) as i64 - 50_000)])
        .collect();
    let reals = (0..scale.scalar_records)
        .map(|i| vec![Value::F64((i % 2_000) as f64 * 0.003 - 3.0)])
        .collect();
    let vecs = (0..scale.tensor_records)
        .map(|i| {
            let xs: Vec<f64> = (0..8).map(|k| ((i * 8 + k) % 97) as f64 * 0.125).collect();
            vec![Value::Tensor(Tensor::from_f64(xs))]
        })
        .collect();
    vec![
        Workload {
            name: "AddMul",
            src: ADDMUL_SRC,
            records: ints,
        },
        Workload {
            name: "Poly",
            src: POLY_SRC,
            records: reals,
        },
        Workload {
            name: "Norm8",
            src: NORM8_SRC,
            records: vecs,
        },
    ]
}

/// Exact structural equality — streaming is an optimization, never a
/// semantic, so a single flipped float bit is a bug worth failing on.
fn same_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::Tensor(x), Value::Tensor(y)) => {
            x.shape() == y.shape()
                && match (x.as_f64(), y.as_f64()) {
                    (Some(xs), Some(ys)) => {
                        xs.iter().zip(ys).all(|(p, q)| p.to_bits() == q.to_bits())
                    }
                    _ => x.as_i64() == y.as_i64() && x.as_i64().is_some(),
                }
        }
        _ => a == b,
    }
}

fn compile_native(src: &str) -> CompiledArtifact {
    let compiler = Compiler::new(CompilerOptions {
        // Steady-state execution is what's measured; keep the per-pass
        // analyzer out of compile time like the other harnesses do.
        verify: wolfram_ir::VerifyLevel::Off,
        ..CompilerOptions::default()
    });
    compiler
        .function_compile_src(src)
        .expect("stream workload compiles")
        .artifact()
}

fn compile_bytecode(src: &str) -> Arc<CompiledFunction> {
    let func = parse(src).expect("stream workload parses");
    let specs = ArgSpec::from_function(&func).expect("bytecode arg specs");
    let body = func.args().get(1).cloned().expect("function body");
    Arc::new(
        BytecodeCompiler::new()
            .compile(&specs, &body)
            .expect("bytecode compiles stream workload"),
    )
}

/// Streams `records` through one configuration, returning elapsed
/// seconds and whether the output matched `expected` bit-for-bit.
fn run_config(
    func: &StreamFunction,
    batch: usize,
    workers: usize,
    records: &[Record],
    expected: &[Value],
) -> (f64, bool) {
    let cfg = StreamConfig {
        batch_size: batch,
        workers,
        queue_batches: 8,
    };
    let metrics = wolfram_stream::StreamMetrics::new();
    let stop = AtomicBool::new(false);
    let mut got: Vec<Option<Value>> = Vec::with_capacity(records.len());
    let t0 = Instant::now();
    let summary = run_stream(
        func,
        &cfg,
        records.iter().map(|r| Ok(r.clone())),
        &metrics,
        &stop,
        |r| got.push(r.ok()),
    );
    let secs = t0.elapsed().as_secs_f64();
    let equivalent = summary.records == expected.len() as u64
        && summary.errors == 0
        && got
            .iter()
            .zip(expected)
            .all(|(g, e)| g.as_ref().is_some_and(|v| same_value(v, e)));
    (secs, equivalent)
}

/// Runs the sweep. Single pass per configuration: streaming benchmarks
/// time a whole run over N records rather than repeating a fixed op.
///
/// # Panics
///
/// Panics if a workload fails to compile at any tier or a one-shot
/// evaluation errors — the workloads are total over their records.
pub fn run(scale: &StreamScale) -> StreamReport {
    let mut rows: Vec<StreamRow> = Vec::new();
    let mut equivalence_failures = 0u32;

    // Balance is judged over the whole sweep: reset both views, flush at
    // the end, and require acquires == releases across every thread.
    memory::reset_stats();
    memory::reset_global_stats();

    for w in workloads(scale) {
        let artifact = compile_native(w.src);
        let bytecode = compile_bytecode(w.src);
        let func_expr = parse(w.src).expect("stream workload parses");
        let interp_n = scale.interp_records.min(w.records.len());

        // Per-tier one-shot oracles (and the tight-loop reference time).
        let one_shot = artifact.instantiate();
        let t0 = Instant::now();
        let expected: Vec<Value> = w
            .records
            .iter()
            .map(|r| one_shot.call(r).expect("one-shot native runs"))
            .collect();
        let tight_secs = t0.elapsed().as_secs_f64();
        drop(one_shot);
        let expected_bc: Vec<Value> = w
            .records
            .iter()
            .map(|r| bytecode.run(r).expect("one-shot bytecode runs"))
            .collect();
        let mut engine = Interpreter::new();
        let expected_interp: Vec<Value> = w.records[..interp_n]
            .iter()
            .map(|r| {
                let call = Expr::normal(
                    func_expr.clone(),
                    r.iter().map(Value::to_expr).collect::<Vec<_>>(),
                );
                Value::from_expr(&engine.eval(&call).expect("interpreter runs"))
            })
            .collect();

        let push = |config: &str,
                    tier: &'static str,
                    batch: usize,
                    workers: usize,
                    events: usize,
                    secs: f64,
                    equivalent: bool,
                    rows: &mut Vec<StreamRow>| {
            let ns = secs * 1e9 / events.max(1) as f64;
            rows.push(StreamRow {
                bench: w.name,
                config: config.into(),
                tier,
                batch,
                workers,
                events: events as u64,
                ns_per_event: ns,
                events_per_sec: events as f64 / secs.max(1e-12),
                speedup: 0.0, // filled once the baseline row exists
                equivalent,
            });
        };

        // Baseline: per-record dispatch through the one-shot wrapper.
        let naive = StreamFunction::NativeNaive(artifact.clone());
        let (secs, eq) = run_config(&naive, 1, 1, &w.records, &expected);
        push(
            "native call/rec",
            "native",
            1,
            1,
            w.records.len(),
            secs,
            eq,
            &mut rows,
        );
        let base_idx = rows.len() - 1;

        // Reference: the same one-shot calls in a bare loop, no pipeline.
        push(
            "one-shot loop (ref)",
            "native",
            0,
            0,
            w.records.len(),
            tight_secs,
            true,
            &mut rows,
        );

        // Streamed native configurations: frame reuse + hoisted checks.
        let streamed = StreamFunction::Native(artifact.clone());
        for (batch, workers) in [(1, 1), (16, 1), (256, 1), (256, 4)] {
            let (secs, eq) = run_config(&streamed, batch, workers, &w.records, &expected);
            let label = if workers == 1 {
                format!("native stream b={batch}")
            } else {
                format!("native stream b={batch} w={workers}")
            };
            push(
                &label,
                "native",
                batch,
                workers,
                w.records.len(),
                secs,
                eq,
                &mut rows,
            );
        }

        // Bytecode tier: per-call entry vs register-file reuse.
        let bc_naive = StreamFunction::BytecodeNaive(Arc::clone(&bytecode));
        let (secs, eq) = run_config(&bc_naive, 1, 1, &w.records, &expected_bc);
        push(
            "bytecode call/rec",
            "bytecode",
            1,
            1,
            w.records.len(),
            secs,
            eq,
            &mut rows,
        );
        let bc_stream = StreamFunction::Bytecode(bytecode);
        let (secs, eq) = run_config(&bc_stream, 256, 1, &w.records, &expected_bc);
        push(
            "bytecode stream b=256",
            "bytecode",
            256,
            1,
            w.records.len(),
            secs,
            eq,
            &mut rows,
        );

        // Interpreter tier, on the reduced record set.
        let interp = StreamFunction::Interpreter(func_expr);
        let (secs, eq) = run_config(&interp, 256, 1, &w.records[..interp_n], &expected_interp);
        push(
            "interp stream b=256",
            "interp",
            256,
            1,
            interp_n,
            secs,
            eq,
            &mut rows,
        );

        // Fill speedups against this benchmark's baseline row.
        let base_ns = rows[base_idx].ns_per_event;
        for r in &mut rows[base_idx..] {
            r.speedup = base_ns / r.ns_per_event.max(1e-9);
        }
        equivalence_failures += rows[base_idx..].iter().filter(|r| !r.equivalent).count() as u32;
    }

    // Workers flushed on exit inside run_stream; fold this thread's
    // one-shot loops in too, then judge the process-wide totals.
    memory::flush_thread_stats();
    let stats = memory::global_stats();
    let best_stream_speedup = rows
        .iter()
        .filter(|r| r.tier == "native" && r.batch > 1)
        .map(|r| r.speedup)
        .fold(0.0, f64::max);
    StreamReport {
        rows,
        equivalence_failures,
        memory_balanced: stats.balanced(),
        frame_hits: stats.frame_hits,
        frame_resets: stats.frame_resets,
        best_stream_speedup,
    }
}

/// Renders the sweep as an aligned text table.
pub fn render(report: &StreamReport) -> String {
    let mut out = String::from(
        "benchmark | config                  | events  | ns/event | events/sec  | vs naive | ok\n\
         ----------+-------------------------+---------+----------+-------------+----------+---\n",
    );
    for r in &report.rows {
        out.push_str(&format!(
            "{:<9} | {:<23} | {:>7} | {:>8.0} | {:>11.0} | {:>7.2}x | {}\n",
            r.bench,
            r.config,
            r.events,
            r.ns_per_event,
            r.events_per_sec,
            r.speedup,
            if r.equivalent { "ok" } else { "NO" },
        ));
    }
    out.push_str(&format!(
        "equivalence failures: {}, memory balanced: {}, frame hits: {}, frame resets: {}\n\
         best streamed speedup vs native call/rec: {:.2}x\n",
        report.equivalence_failures,
        report.memory_balanced,
        report.frame_hits,
        report.frame_resets,
        report.best_stream_speedup,
    ));
    out
}

/// Serializes the report as the `BENCH_stream.json` document.
/// Hand-rolled — the numbers are finite floats and the labels ASCII.
pub fn to_json(report: &StreamReport, scale_label: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale_label}\",\n"));
    out.push_str(&format!(
        "  \"equivalence_failures\": {},\n  \"memory_balanced\": {},\n  \
         \"frame_hits\": {},\n  \"frame_resets\": {},\n  \
         \"best_stream_speedup\": {:.3},\n  \"rows\": [\n",
        report.equivalence_failures,
        report.memory_balanced,
        report.frame_hits,
        report.frame_resets,
        report.best_stream_speedup,
    ));
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"config\": \"{}\", \"tier\": \"{}\", \
             \"batch\": {}, \"workers\": {}, \"events\": {}, \"ns_per_event\": {:.1}, \
             \"events_per_sec\": {:.1}, \"speedup\": {:.3}, \"equivalent\": {}}}{}\n",
            r.bench,
            r.config,
            r.tier,
            r.batch,
            r.workers,
            r.events,
            r.ns_per_event,
            r.events_per_sec,
            r.speedup,
            r.equivalent,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_matches_at_tiny_scale() {
        let scale = StreamScale {
            scalar_records: 600,
            tensor_records: 200,
            interp_records: 60,
        };
        let report = run(&scale);
        // 3 benchmarks x (baseline + reference + 4 native streamed +
        // 2 bytecode + 1 interp).
        assert_eq!(report.rows.len(), 27);
        assert_eq!(report.equivalence_failures, 0);
        for r in &report.rows {
            assert!(r.ns_per_event > 0.0, "{} {}", r.bench, r.config);
            assert!(r.speedup > 0.0, "{} {}", r.bench, r.config);
            assert!(r.equivalent, "{} {}", r.bench, r.config);
        }
        // The streaming fast path must actually have exercised frame
        // reuse; at 600+ records per native config, resets dominate.
        assert!(report.frame_resets > 1_000, "{}", report.frame_resets);
        // Note: `memory_balanced` is asserted by the `bench-stream`
        // binary, not here — the lib test binary runs tests concurrently
        // and other tests flush into the same globals.
        let json = to_json(&report, "tiny");
        assert!(json.contains("\"bench\": \"AddMul\""), "{json}");
        assert!(json.contains("\"best_stream_speedup\""), "{json}");
        let rendered = render(&report);
        assert!(rendered.contains("native stream b=256"), "{rendered}");
        assert!(rendered.contains("interp stream b=256"), "{rendered}");
    }
}
