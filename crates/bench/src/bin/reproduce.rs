//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [figure2|table1|intro|ablations|opstats|compile-times|all] [--quick]
//! reproduce difftest [--iters N] [--seed S] [--out DIR] [--no-shrink]
//! ```
//!
//! `--quick` shrinks the workloads (CI-sized); without it the paper's §6
//! parameters are used. Build with `--release` for meaningful numbers.
//!
//! `difftest` runs the tri-engine differential fuzzer instead: it exits
//! nonzero if any divergence (or compile hole) survives, and writes shrunk
//! counterexample artifacts into `--out` (default `difftest/found`).

use wolfram_bench::{ablations, harness, intro, opstats, table1};
use wolfram_compiler_core::Compiler;

/// `difftest` subcommand: long-running differential fuzzing with artifact
/// output, used locally and by the scheduled CI job.
fn run_difftest(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let iters: u64 = flag("--iters").map_or(2_000, |v| v.parse().expect("--iters N"));
    let seed: u64 = flag("--seed").map_or(0xD1FF_7E57, |v| v.parse().expect("--seed S"));
    let out = std::path::PathBuf::from(flag("--out").unwrap_or_else(|| "difftest/found".into()));
    let shrink = !args.iter().any(|a| a == "--no-shrink");

    let cfg = wolfram_difftest::FuzzConfig {
        seed,
        iters,
        shrink,
    };
    println!("difftest: {iters} iterations from seed {seed:#x}");
    let start = std::time::Instant::now();
    let report = wolfram_difftest::run_fuzz(&cfg);
    println!(
        "{} in {:.1}s",
        report.summary(),
        start.elapsed().as_secs_f64()
    );

    for (s, msg) in &report.prepare_samples {
        println!("  prepare failure (seed {s}): {msg}");
    }
    for case in &report.divergences {
        println!("\nDIVERGENCE (seed {}):", case.seed);
        println!("  original: {}", case.original);
        println!("  shrunk:   {}", case.shrunk.func.to_input_form());
        println!("  note:     {}", case.shrunk.note);
        match case.shrunk.write_to(&out) {
            Ok(path) => println!("  artifact: {}", path.display()),
            Err(e) => println!("  artifact write failed: {e}"),
        }
    }
    let clean = report.divergences.is_empty()
        && report.prepare_failures == 0
        && report.roundtrip_failures == 0;
    std::process::exit(i32::from(!clean));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "difftest") {
        run_difftest(&args[1..]);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let scale = if quick {
        harness::Scale::quick()
    } else {
        harness::Scale::paper()
    };

    if matches!(what.as_str(), "figure2" | "all") {
        println!(
            "== Figure 2 ({} scale) ==",
            if quick { "quick" } else { "paper" }
        );
        let rows = harness::figure2(&scale);
        print!("{}", harness::render_figure2(&rows));
        println!();
    }

    if matches!(what.as_str(), "table1" | "all") {
        println!("== Table 1 ==");
        print!("{}", table1::render(&table1::probe()));
        println!();
    }

    if matches!(what.as_str(), "intro" | "all") {
        println!("== Section 1 in-text numbers ==");
        let suite = intro::WalkSuite::new();
        let len = if quick { 10_000 } else { 100_000 };
        let t = suite.time(len, scale.repetitions);
        println!(
            "random walk (len {}): interpreter {:.4}s | bytecode {:.4}s ({:.2}x, paper ~2x) | \
             FunctionCompile {:.4}s ({:.2}x)",
            t.len,
            t.interpreted_secs,
            t.bytecode_secs,
            t.bytecode_speedup(),
            t.compiled_secs,
            t.compiled_speedup()
        );
        let fr = intro::findroot_speedup(if quick { 20 } else { 200 });
        println!(
            "FindRoot[Sin[x] + E^x]: interpreted {:.6}s/solve | auto-compiled {:.6}s/solve \
             ({:.2}x, paper 1.6x; hook fired {} times)",
            fr.interpreted_secs,
            fr.autocompiled_secs,
            fr.speedup(),
            fr.autocompile_hits
        );
        println!();
    }

    if matches!(what.as_str(), "ablations" | "all") {
        println!("== Section 6 ablations ==");
        let (iters, hist_n, prime_n, qsort_n) = if quick {
            (200_000, 200_000, 20_000, 1 << 12)
        } else {
            (2_000_000, 1_000_000, 50_000, 1 << 15)
        };
        println!(
            "{}",
            ablations::inline_ablation(iters, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::abort_ablation_histogram(hist_n, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::constant_array_ablation(prime_n, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::mutability_copy_ablation(qsort_n, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::fusion_ablation(scale.string_len, scale.repetitions).render()
        );
        println!();
    }

    if matches!(what.as_str(), "opstats" | "all") {
        println!("== Dynamic op statistics (superinstruction selection data) ==");
        let profiles = opstats::collect(&scale);
        print!("{}", opstats::render(&profiles, 8));
        println!();
    }

    if matches!(what.as_str(), "compile-times" | "all") {
        println!("== Section 5: compilation time and per-pass timings ==");
        let compiler = Compiler::default();
        let table = wolfram_bench::workloads::prime_seed_table();
        let programs: Vec<(&str, String)> = vec![
            ("FNV1a", wolfram_bench::programs::FNV1A_SRC.into()),
            ("Mandelbrot", wolfram_bench::programs::MANDELBROT_SRC.into()),
            ("Dot", wolfram_bench::programs::DOT_SRC.into()),
            ("Blur", wolfram_bench::programs::BLUR_SRC.into()),
            ("Histogram", wolfram_bench::programs::HISTOGRAM_SRC.into()),
            ("PrimeQ", wolfram_bench::programs::primeq_src(&table)),
            ("QSort", wolfram_bench::programs::QSORT_SRC.into()),
        ];
        for (name, src) in &programs {
            let start = std::time::Instant::now();
            let _ = compiler.function_compile_src(src).expect("compiles");
            let total = start.elapsed();
            let mut timings = compiler.timings();
            timings.retain(|(_, d)| d.as_secs_f64() > 1e-4);
            let per_pass: Vec<String> = timings
                .into_iter()
                .map(|(pass, d)| format!("{pass} {:.2}ms", d.as_secs_f64() * 1e3))
                .collect();
            println!(
                "{name:<11} total {:>8.2}ms | {}",
                total.as_secs_f64() * 1e3,
                per_pass.join(", ")
            );
        }
    }
}
