//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [figure2|table1|intro|ablations|opstats|compile-times|all] [--quick]
//! reproduce difftest [--iters N] [--seed S] [--out DIR] [--no-shrink] [--no-analyze]
//! reproduce analyze [--ir-stage wir|twir|post-pipeline] <file.wl | source>
//! ```
//!
//! `--quick` shrinks the workloads (CI-sized); without it the paper's §6
//! parameters are used. Build with `--release` for meaningful numbers.
//!
//! `difftest` runs the tri-engine differential fuzzer instead: it exits
//! nonzero if any divergence (or compile hole) survives, and writes shrunk
//! counterexample artifacts into `--out` (default `difftest/found`).
//!
//! `analyze` compiles one program to the requested IR stage and prints
//! every `wolfram-analyze` diagnostic (type errors, refcount imbalance,
//! lints); it exits nonzero if any error-severity finding is reported.

use wolfram_bench::{ablations, harness, intro, opstats, table1};
use wolfram_compiler_core::{Compiler, CompilerOptions};
use wolfram_ir::VerifyLevel;

/// `analyze` subcommand: a CLI front end for the IR checkers.
fn run_analyze(args: &[String]) -> ! {
    let mut stage = String::from("post-pipeline");
    let mut input: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--ir-stage" {
            stage = it
                .next()
                .cloned()
                .expect("--ir-stage wir|twir|post-pipeline");
        } else if input.is_none() {
            input = Some(a.clone());
        }
    }
    let input = input.expect("usage: reproduce analyze [--ir-stage STAGE] <file.wl | source>");
    // A path argument is read from disk; anything else is inline source.
    let src = std::fs::read_to_string(&input).unwrap_or(input);
    let expr = match wolfram_expr::parse(&src) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };

    // Diagnostics are printed here, so compile with the SSA linter only:
    // `VerifyLevel::Full` would turn the first finding into a compile
    // error instead of a report.
    let pm = match stage.as_str() {
        "wir" => Compiler::new(CompilerOptions {
            verify: VerifyLevel::Ssa,
            ..CompilerOptions::default()
        })
        .compile_to_ir(&expr),
        "twir" => Compiler::new(CompilerOptions {
            optimization_level: 0,
            abort_handling: false,
            memory_management: false,
            verify: VerifyLevel::Ssa,
            ..CompilerOptions::default()
        })
        .compile_to_twir(&expr, None),
        "post-pipeline" => Compiler::new(CompilerOptions {
            verify: VerifyLevel::Ssa,
            ..CompilerOptions::default()
        })
        .compile_to_twir(&expr, None),
        other => {
            eprintln!("unknown --ir-stage `{other}` (expected wir, twir, or post-pipeline)");
            std::process::exit(2);
        }
    };
    let pm = match pm {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("compilation failed: {e}");
            std::process::exit(1);
        }
    };

    let diags = wolfram_analyze::analyze_module(&pm);
    let mut errors = 0usize;
    for d in &diags {
        let f = pm.functions.iter().find(|f| f.name == d.function);
        println!("{}", d.render(f));
        errors += usize::from(d.severity == wolfram_analyze::Severity::Error);
    }
    println!(
        "analyze ({stage}): {} function(s), {} finding(s), {errors} error(s)",
        pm.functions.len(),
        diags.len()
    );
    std::process::exit(i32::from(errors > 0));
}

/// `difftest` subcommand: long-running differential fuzzing with artifact
/// output, used locally and by the scheduled CI job.
fn run_difftest(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let iters: u64 = flag("--iters").map_or(2_000, |v| v.parse().expect("--iters N"));
    let seed: u64 = flag("--seed").map_or(0xD1FF_7E57, |v| v.parse().expect("--seed S"));
    let out = std::path::PathBuf::from(flag("--out").unwrap_or_else(|| "difftest/found".into()));
    let shrink = !args.iter().any(|a| a == "--no-shrink");
    let analyze = !args.iter().any(|a| a == "--no-analyze");

    let cfg = wolfram_difftest::FuzzConfig {
        seed,
        iters,
        shrink,
        analyze,
    };
    println!("difftest: {iters} iterations from seed {seed:#x}");
    let start = std::time::Instant::now();
    let report = wolfram_difftest::run_fuzz(&cfg);
    println!(
        "{} in {:.1}s",
        report.summary(),
        start.elapsed().as_secs_f64()
    );

    for (s, msg) in &report.prepare_samples {
        println!("  prepare failure (seed {s}): {msg}");
    }
    for case in &report.divergences {
        println!("\nDIVERGENCE (seed {}):", case.seed);
        println!("  original: {}", case.original);
        println!("  shrunk:   {}", case.shrunk.func.to_input_form());
        println!("  note:     {}", case.shrunk.note);
        match case.shrunk.write_to(&out) {
            Ok(path) => println!("  artifact: {}", path.display()),
            Err(e) => println!("  artifact write failed: {e}"),
        }
    }
    let clean = report.divergences.is_empty()
        && report.prepare_failures == 0
        && report.roundtrip_failures == 0;
    std::process::exit(i32::from(!clean));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "difftest") {
        run_difftest(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "analyze") {
        run_analyze(&args[1..]);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let scale = if quick {
        harness::Scale::quick()
    } else {
        harness::Scale::paper()
    };

    if matches!(what.as_str(), "figure2" | "all") {
        println!(
            "== Figure 2 ({} scale) ==",
            if quick { "quick" } else { "paper" }
        );
        let rows = harness::figure2(&scale);
        print!("{}", harness::render_figure2(&rows));
        println!();
    }

    if matches!(what.as_str(), "table1" | "all") {
        println!("== Table 1 ==");
        print!("{}", table1::render(&table1::probe()));
        println!();
    }

    if matches!(what.as_str(), "intro" | "all") {
        println!("== Section 1 in-text numbers ==");
        let suite = intro::WalkSuite::new();
        let len = if quick { 10_000 } else { 100_000 };
        let t = suite.time(len, scale.repetitions);
        println!(
            "random walk (len {}): interpreter {:.4}s | bytecode {:.4}s ({:.2}x, paper ~2x) | \
             FunctionCompile {:.4}s ({:.2}x)",
            t.len,
            t.interpreted_secs,
            t.bytecode_secs,
            t.bytecode_speedup(),
            t.compiled_secs,
            t.compiled_speedup()
        );
        let fr = intro::findroot_speedup(if quick { 20 } else { 200 });
        println!(
            "FindRoot[Sin[x] + E^x]: interpreted {:.6}s/solve | auto-compiled {:.6}s/solve \
             ({:.2}x, paper 1.6x; hook fired {} times)",
            fr.interpreted_secs,
            fr.autocompiled_secs,
            fr.speedup(),
            fr.autocompile_hits
        );
        println!();
    }

    if matches!(what.as_str(), "ablations" | "all") {
        println!("== Section 6 ablations ==");
        let (iters, hist_n, prime_n, qsort_n) = if quick {
            (200_000, 200_000, 20_000, 1 << 12)
        } else {
            (2_000_000, 1_000_000, 50_000, 1 << 15)
        };
        println!(
            "{}",
            ablations::inline_ablation(iters, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::abort_ablation_histogram(hist_n, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::constant_array_ablation(prime_n, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::mutability_copy_ablation(qsort_n, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::fusion_ablation(scale.string_len, scale.repetitions).render()
        );
        println!();
    }

    if matches!(what.as_str(), "opstats" | "all") {
        println!("== Dynamic op statistics (superinstruction selection data) ==");
        let profiles = opstats::collect(&scale);
        print!("{}", opstats::render(&profiles, 8));
        println!();
    }

    if matches!(what.as_str(), "compile-times" | "all") {
        println!("== Section 5: compilation time and per-pass timings ==");
        let compiler = Compiler::default();
        let table = wolfram_bench::workloads::prime_seed_table();
        let programs: Vec<(&str, String)> = vec![
            ("FNV1a", wolfram_bench::programs::FNV1A_SRC.into()),
            ("Mandelbrot", wolfram_bench::programs::MANDELBROT_SRC.into()),
            ("Dot", wolfram_bench::programs::DOT_SRC.into()),
            ("Blur", wolfram_bench::programs::BLUR_SRC.into()),
            ("Histogram", wolfram_bench::programs::HISTOGRAM_SRC.into()),
            ("PrimeQ", wolfram_bench::programs::primeq_src(&table)),
            ("QSort", wolfram_bench::programs::QSORT_SRC.into()),
        ];
        for (name, src) in &programs {
            let start = std::time::Instant::now();
            let _ = compiler.function_compile_src(src).expect("compiles");
            let total = start.elapsed();
            let mut timings = compiler.timings();
            timings.retain(|(_, d)| d.as_secs_f64() > 1e-4);
            let per_pass: Vec<String> = timings
                .into_iter()
                .map(|(pass, d)| format!("{pass} {:.2}ms", d.as_secs_f64() * 1e3))
                .collect();
            println!(
                "{name:<11} total {:>8.2}ms | {}",
                total.as_secs_f64() * 1e3,
                per_pass.join(", ")
            );
        }
    }
}
