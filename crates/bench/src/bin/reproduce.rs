//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [figure2|table1|intro|ablations|opstats|compile-times|all] [--quick]
//! reproduce difftest [--iters N] [--seed S] [--out DIR] [--no-shrink] [--no-analyze]
//! reproduce analyze [--ir-stage wir|twir|post-pipeline] <file.wl | source>
//! reproduce analyze --stats [<file.wl | source>] [--golden F] [--write-golden F]
//! reproduce serve [--workers N] [--cache-cap N] [--queue-cap N] [--deadline-ms N] [--tier T]
//!                 [--listen ADDR] [--cache-dir DIR]
//! reproduce bench-serve [--quick]
//! reproduce bench-serve --net ADDR [--quick] [--clients N] [--json [PATH]] [--expect-warm]
//! reproduce bench-parallel [--quick] [--json [PATH]] [--min-chunk N]
//! reproduce stream --function 'Function[...]' [--input FILE] [--tier T] [--batch N]
//!                  [--workers N]
//! reproduce bench-stream [--quick] [--json [PATH]]
//! ```
//!
//! `--quick` shrinks the workloads (CI-sized); without it the paper's §6
//! parameters are used. Build with `--release` for meaningful numbers.
//!
//! `difftest` runs the tri-engine differential fuzzer instead: it exits
//! nonzero if any divergence (or compile hole) survives, and writes shrunk
//! counterexample artifacts into `--out` (default `difftest/found`).
//!
//! `analyze` compiles one program to the requested IR stage and prints
//! every `wolfram-analyze` diagnostic (type errors, refcount imbalance,
//! lints); it exits nonzero if any error-severity finding is reported.
//! `analyze --stats` instead reports the interval-analysis elision
//! counters (Part bounds, integer overflow, refcount pairs) and per-lint
//! finding totals over the paper corpus, with a `--golden` CI gate.
//!
//! `serve` runs the concurrent compile-and-evaluate pool over stdin (one
//! request per line as a two-element list `{Function[...], {arg, ...}}`,
//! answered in input order) or, with `--listen ADDR`, over the
//! length-prefixed TCP wire protocol. `--cache-dir DIR` enables the
//! disk-backed second cache level so restarts start warm. Both modes
//! print the metrics table on graceful shutdown (EOF or SIGTERM).
//!
//! `bench-serve` drives the Zipf closed-loop load generator over the pool
//! at 1/4/8 workers with the artifact cache on vs off, then the deadline
//! sub-experiment; it exits nonzero on any divergence, a zero hit rate,
//! or leaked memory counters (the CI smoke gate). `bench-serve --net ADDR`
//! instead drives a *live* `serve --listen` process over sockets,
//! reporting client-observed latency percentiles (`--json` writes the SLO
//! artifact); `--expect-warm` additionally asserts the warm-restart
//! contract (zero compiles, disk hits observed).
//!
//! `bench-parallel` runs the data-parallel tier ablation (fused-scalar
//! baseline vs SIMD at 1/2/4/8 threads on Blur, Dot, and a Listable
//! zip); `--json` additionally writes `BENCH_parallel.json` (or the
//! given path). It exits nonzero if any configuration's result differs
//! from the scalar baseline or the memory counters end up imbalanced.
//!
//! `stream` compiles one function and streams line-delimited records from
//! stdin (or `--input FILE`) to stdout — one `ok <result>` / `err <msg>`
//! line per record, in input order. SIGTERM/SIGINT drains the in-flight
//! batches (every admitted record still reaches stdout) and the per-stage
//! metrics table is printed on stderr either way.
//!
//! `bench-stream` runs the streaming-engine sweep (per-event workloads at
//! interpreter/bytecode/native tiers, batched vs call-per-record);
//! `--json` additionally writes `BENCH_stream.json`. It exits nonzero if
//! any configuration's output differs from a one-shot loop of the same
//! tier, the memory counters end up imbalanced, no frame resets were
//! recorded (the fast path didn't run), or the best streamed speedup
//! falls below the floor (3x at paper scale, 1.5x sanity at `--quick`).

use wolfram_bench::{ablations, harness, intro, opstats, table1};
use wolfram_compiler_core::{Compiler, CompilerOptions};
use wolfram_ir::VerifyLevel;

/// `analyze` subcommand: a CLI front end for the IR checkers.
fn run_analyze(args: &[String]) -> ! {
    if args.iter().any(|a| a == "--stats") {
        run_analyze_stats(args);
    }
    let mut stage = String::from("post-pipeline");
    let mut input: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--ir-stage" {
            stage = it
                .next()
                .cloned()
                .expect("--ir-stage wir|twir|post-pipeline");
        } else if input.is_none() {
            input = Some(a.clone());
        }
    }
    let input = input.expect("usage: reproduce analyze [--ir-stage STAGE] <file.wl | source>");
    // A path argument is read from disk; anything else is inline source.
    let src = std::fs::read_to_string(&input).unwrap_or(input);
    let expr = match wolfram_expr::parse(&src) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };

    // Diagnostics are printed here, so compile with the SSA linter only:
    // `VerifyLevel::Full` would turn the first finding into a compile
    // error instead of a report.
    let pm = match stage.as_str() {
        "wir" => Compiler::new(CompilerOptions {
            verify: VerifyLevel::Ssa,
            ..CompilerOptions::default()
        })
        .compile_to_ir(&expr),
        "twir" => Compiler::new(CompilerOptions {
            optimization_level: 0,
            abort_handling: false,
            memory_management: false,
            verify: VerifyLevel::Ssa,
            ..CompilerOptions::default()
        })
        .compile_to_twir(&expr, None),
        "post-pipeline" => Compiler::new(CompilerOptions {
            verify: VerifyLevel::Ssa,
            ..CompilerOptions::default()
        })
        .compile_to_twir(&expr, None),
        other => {
            eprintln!("unknown --ir-stage `{other}` (expected wir, twir, or post-pipeline)");
            std::process::exit(2);
        }
    };
    let pm = match pm {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("compilation failed: {e}");
            std::process::exit(1);
        }
    };

    let diags = wolfram_analyze::analyze_module(&pm);
    let mut errors = 0usize;
    for d in &diags {
        let f = pm.functions.iter().find(|f| f.name == d.function);
        println!("{}", d.render(f));
        errors += usize::from(d.severity == wolfram_analyze::Severity::Error);
    }
    println!(
        "analyze ({stage}): {} function(s), {} finding(s), {errors} error(s)",
        pm.functions.len(),
        diags.len()
    );
    std::process::exit(i32::from(errors > 0));
}

/// `analyze --stats`: per-benchmark range-analysis elision counts and
/// per-lint finding totals over the paper corpus (or one given program).
///
/// The counters are read off the lowered `NativeFunc`s, so they report
/// what the backend actually emitted (after the range facts were keyed
/// through lowering), not what the analysis merely claimed. `--golden F`
/// compares the stable report against a committed file and exits nonzero
/// on drift; `--write-golden F` regenerates it.
fn run_analyze_stats(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let golden = flag("--golden");
    let write_golden = flag("--write-golden");
    let mut input: Option<String> = None;
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        match a.as_str() {
            "--stats" => {}
            "--golden" | "--write-golden" => skip = true,
            _ if input.is_none() && !a.starts_with("--") => input = Some(a.clone()),
            other => {
                eprintln!("analyze --stats: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        let _ = i;
    }

    let programs: Vec<(String, String)> = match input {
        Some(p) => {
            let src = std::fs::read_to_string(&p).unwrap_or_else(|_| p.clone());
            let name = std::path::Path::new(&p)
                .file_stem()
                .map_or_else(|| "input".into(), |s| s.to_string_lossy().into_owned());
            vec![(name, src)]
        }
        None => {
            let table = wolfram_bench::workloads::prime_seed_table();
            vec![
                ("FNV1a".into(), wolfram_bench::programs::FNV1A_SRC.into()),
                (
                    "Mandelbrot".into(),
                    wolfram_bench::programs::MANDELBROT_SRC.into(),
                ),
                ("Dot".into(), wolfram_bench::programs::DOT_SRC.into()),
                ("Blur".into(), wolfram_bench::programs::BLUR_SRC.into()),
                (
                    "Histogram".into(),
                    wolfram_bench::programs::HISTOGRAM_SRC.into(),
                ),
                ("PrimeQ".into(), wolfram_bench::programs::primeq_src(&table)),
                ("QSort".into(), wolfram_bench::programs::QSORT_SRC.into()),
            ]
        }
    };

    let compiler = Compiler::new(CompilerOptions {
        verify: VerifyLevel::Ssa,
        ..CompilerOptions::default()
    });
    let mut lines: Vec<String> = Vec::new();
    let mut lints: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    let (mut bt, mut be, mut ot, mut oe, mut rc) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for (name, src) in &programs {
        let expr = match wolfram_expr::parse(src) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{name}: parse error: {e}");
                std::process::exit(1);
            }
        };
        let pm = match compiler.compile_to_twir(&expr, None) {
            Ok(pm) => pm,
            Err(e) => {
                eprintln!("{name}: compilation failed: {e}");
                std::process::exit(1);
            }
        };
        for d in wolfram_analyze::analyze_module(&pm) {
            *lints.entry(d.code).or_insert(0) += 1;
        }
        let native = match compiler.generate_native(&pm) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{name}: codegen failed: {e}");
                std::process::exit(1);
            }
        };
        let (mut fbt, mut fbe, mut fot, mut foe, mut frc) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for f in &native.funcs {
            fbt += u64::from(f.elision.bounds_total);
            fbe += u64::from(f.elision.bounds_elided);
            fot += u64::from(f.elision.ovf_total);
            foe += u64::from(f.elision.ovf_elided);
            frc += u64::from(f.elision.rc_elided);
        }
        lines.push(format!(
            "{name:<11} bounds {fbe}/{fbt}  ovf {foe}/{fot}  rc-elided {frc}"
        ));
        bt += fbt;
        be += fbe;
        ot += fot;
        oe += foe;
        rc += frc;
    }
    let pct = |e: u64, t: u64| {
        if t == 0 {
            0.0
        } else {
            100.0 * e as f64 / t as f64
        }
    };
    lines.push(format!(
        "total       bounds {be}/{bt} ({:.0}%)  ovf {oe}/{ot} ({:.0}%)  rc-elided {rc}",
        pct(be, bt),
        pct(oe, ot)
    ));
    for (code, n) in &lints {
        lines.push(format!("lint {code} {n}"));
    }
    let report = format!("{}\n", lines.join("\n"));
    print!("== analyze --stats: range-check elision over the corpus ==\n{report}");

    if let Some(path) = write_golden {
        std::fs::write(&path, &report).expect("write golden");
        println!("wrote golden: {path}");
        std::process::exit(0);
    }
    if let Some(path) = golden {
        let want = std::fs::read_to_string(&path).expect("read golden");
        if want != report {
            eprintln!("analyze --stats: drift against golden {path}");
            eprintln!("--- golden ---\n{want}--- actual ---\n{report}");
            std::process::exit(1);
        }
        println!("golden match: {path}");
    }
    std::process::exit(0);
}

/// `difftest` subcommand: long-running differential fuzzing with artifact
/// output, used locally and by the scheduled CI job.
fn run_difftest(args: &[String]) -> ! {
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let iters: u64 = flag("--iters").map_or(2_000, |v| v.parse().expect("--iters N"));
    let seed: u64 = flag("--seed").map_or(0xD1FF_7E57, |v| v.parse().expect("--seed S"));
    let out = std::path::PathBuf::from(flag("--out").unwrap_or_else(|| "difftest/found".into()));
    let shrink = !args.iter().any(|a| a == "--no-shrink");
    let analyze = !args.iter().any(|a| a == "--no-analyze");

    let cfg = wolfram_difftest::FuzzConfig {
        seed,
        iters,
        shrink,
        analyze,
    };
    println!("difftest: {iters} iterations from seed {seed:#x}");
    let start = std::time::Instant::now();
    let report = wolfram_difftest::run_fuzz(&cfg);
    println!(
        "{} in {:.1}s",
        report.summary(),
        start.elapsed().as_secs_f64()
    );

    for (s, msg) in &report.prepare_samples {
        println!("  prepare failure (seed {s}): {msg}");
    }
    for case in &report.divergences {
        println!("\nDIVERGENCE (seed {}):", case.seed);
        println!("  original: {}", case.original);
        println!("  shrunk:   {}", case.shrunk.func.to_input_form());
        println!("  note:     {}", case.shrunk.note);
        match case.shrunk.write_to(&out) {
            Ok(path) => println!("  artifact: {}", path.display()),
            Err(e) => println!("  artifact write failed: {e}"),
        }
    }
    let clean = report.divergences.is_empty()
        && report.prepare_failures == 0
        && report.roundtrip_failures == 0;
    std::process::exit(i32::from(!clean));
}

/// Set by the SIGTERM/SIGINT handler; polled by both serve modes so a
/// graceful stop still prints the stats table.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn note_shutdown(_sig: i32) {
    SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers via raw `signal(2)` — the numbers are
/// stable POSIX, and the handler only flips an atomic.
#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, note_shutdown);
        signal(SIGINT, note_shutdown);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {
    let _ = note_shutdown; // EOF is the only graceful stop off unix
}

/// `serve` subcommand: the pool as a line-oriented service over stdin, or
/// (with `--listen`) over the length-prefixed TCP wire protocol. Both
/// modes print the metrics table on graceful shutdown (EOF or SIGTERM).
fn run_serve(args: &[String]) -> ! {
    use wolfram_serve::{ServeConfig, ServePool, TierPolicy};

    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let workers: usize = flag("--workers").map_or(4, |v| v.parse().expect("--workers N"));
    let cache_cap: usize = flag("--cache-cap").map_or(512, |v| v.parse().expect("--cache-cap N"));
    let queue_cap: usize = flag("--queue-cap").map_or(256, |v| v.parse().expect("--queue-cap N"));
    let deadline = flag("--deadline-ms")
        .map(|v| std::time::Duration::from_millis(v.parse().expect("--deadline-ms N")));
    let listen = flag("--listen");
    let cache_dir = flag("--cache-dir").map(std::path::PathBuf::from);
    let tier_policy = match flag("--tier").as_deref() {
        None | Some("native") => TierPolicy::NativeOnly,
        Some("bytecode") => TierPolicy::BytecodeOnly,
        Some("adaptive") => TierPolicy::Adaptive { promote_after: 2 },
        Some(other) => {
            eprintln!("unknown --tier `{other}` (expected native, bytecode, or adaptive)");
            std::process::exit(2);
        }
    };
    install_shutdown_handler();
    let pool = ServePool::start(ServeConfig {
        workers,
        queue_cap,
        cache_cap,
        default_deadline: deadline,
        tier_policy,
        disk_cache_dir: cache_dir.clone(),
    });
    eprintln!(
        "wolfram-serve: {workers} workers, cache {cache_cap}, queue {queue_cap}{}",
        cache_dir
            .as_ref()
            .map(|d| format!(", disk cache {}", d.display()))
            .unwrap_or_default()
    );

    if let Some(addr) = listen {
        // Socket mode: frames over TCP until SIGTERM/SIGINT.
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("wolfram-serve: cannot listen on {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("wolfram-serve: listening on {addr} (length-prefixed frames)");
        let pool = std::sync::Arc::new(pool);
        // `!stream` sessions compile at the pool's tier policy and run on
        // the connection thread through the streaming fast path.
        let net_config = wolfram_serve::NetConfig {
            stream: Some(std::sync::Arc::new(
                wolfram_stream::ServeStreamHandler::new(CompilerOptions::default(), tier_policy),
            )),
            ..Default::default()
        };
        if let Err(e) = wolfram_serve::net::serve_listener(listener, &pool, &SHUTDOWN, &net_config)
        {
            eprintln!("wolfram-serve: accept loop failed: {e}");
        }
        print!("{}", pool.metrics().render());
        std::process::exit(0);
    }

    // Stdin mode: one request per line, replies in input order. Lines
    // arrive via a channel so the loop can notice SIGTERM while stdin is
    // quiet.
    eprintln!("wolfram-serve: one `{{Function[...], {{args...}}}}` per line on stdin");
    let (line_tx, line_rx) = std::sync::mpsc::sync_channel::<String>(64);
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => break, // EOF: drop the sender
                Ok(_) => {
                    if line_tx.send(line.clone()).is_err() {
                        break;
                    }
                }
            }
        }
    });
    let mut lineno = 0u64;
    loop {
        if SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst) {
            break;
        }
        let line = match line_rx.recv_timeout(std::time::Duration::from_millis(100)) {
            Ok(line) => line,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        };
        lineno += 1;
        let text = line.trim();
        if text.is_empty() || text.starts_with("(*") {
            continue;
        }
        let req = match wolfram_serve::net::parse_request_line(text) {
            Ok(req) => req,
            Err(e) => {
                println!("{lineno}: request error: {e}");
                continue;
            }
        };
        let reply = pool.call(req);
        match &reply.result {
            Ok(v) => println!(
                "{lineno}: {v}  [{} {} compile {} execute {}]",
                reply.tier.map_or_else(|| "?".into(), |t| t.to_string()),
                match reply.cache {
                    wolfram_serve::CacheStatus::Hit => "hit",
                    wolfram_serve::CacheStatus::DiskHit => "disk",
                    wolfram_serve::CacheStatus::Miss => "miss",
                    wolfram_serve::CacheStatus::Unreached => "-",
                },
                wolfram_serve::fmt_ns(reply.compile_ns),
                wolfram_serve::fmt_ns(reply.execute_ns),
            ),
            Err(e) => println!("{lineno}: {e}"),
        }
    }
    print!("{}", pool.metrics().render());
    pool.shutdown();
    std::process::exit(0);
}

/// `bench-serve --net ADDR`: the socket-load experiment against a live
/// `reproduce serve --listen` process. Reports client-observed latency
/// percentiles (the SLO numbers), writes the SLO JSON artifact, and —
/// with `--expect-warm` — asserts the warm-restart guarantee: every
/// first-sight program served from the disk cache, zero compiles.
fn run_bench_serve_net(args: &[String], addr: &str) -> ! {
    use wolfram_bench::serve_load::{self, Catalog, Zipf};

    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
            .filter(|v| !v.starts_with("--"))
    };
    let quick = args.iter().any(|a| a == "--quick");
    let expect_warm = args.iter().any(|a| a == "--expect-warm");
    let (programs, requests) = if quick { (12, 240) } else { (24, 2_000) };
    let clients: usize = flag("--clients").map_or(4, |v| v.parse().expect("--clients N"));
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|_| flag("--json").unwrap_or_else(|| "BENCH_serve_net.json".into()));

    let catalog = Catalog::new(programs, 64);
    let zipf = Zipf::new(catalog.len(), 1.1);
    println!(
        "== bench-serve --net {addr} ({} scale): {programs} programs, Zipf s=1.1, \
         {requests} requests, {clients} clients ==",
        if quick { "quick" } else { "paper" },
    );
    let report =
        match serve_load::run_net_load(addr, &catalog, &zipf, clients, requests, 0x5E12_F00D) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-serve --net: load failed against {addr}: {e}");
                std::process::exit(1);
            }
        };
    println!("{}", serve_load::render_net_report(&report));
    println!(
        "server: compiles {}  cache-hits {}  disk-hits {}  disk-stores {}  disk-corrupt {}  \
         p50 {}  p99 {}",
        report.server_stat("compiles"),
        report.server_stat("cache_hits"),
        report.server_stat("disk_hits"),
        report.server_stat("disk_stores"),
        report.server_stat("disk_corrupt"),
        wolfram_serve::fmt_ns(report.server_stat("request_p50_ns")),
        wolfram_serve::fmt_ns(report.server_stat("request_p99_ns")),
    );
    if let Some(path) = json_path {
        let doc = serve_load::net_report_to_json(&report, if quick { "quick" } else { "paper" });
        match std::fs::write(&path, doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut failures = 0u32;
    if report.divergences > 0 || report.errors > 0 {
        failures += 1;
    }
    if report.ok == 0 {
        failures += 1;
    }
    if expect_warm {
        // The warm-restart contract: a restarted server over a populated
        // cache dir serves every first-sight program from disk and never
        // recompiles.
        if report.server_stat("compiles") != 0 {
            println!(
                "warm-restart violation: server compiled {} time(s)",
                report.server_stat("compiles")
            );
            failures += 1;
        }
        if report.server_stat("disk_hits") == 0 {
            println!("warm-restart violation: zero disk hits");
            failures += 1;
        }
    }
    println!(
        "bench-serve --net: {}",
        if failures == 0 { "PASS" } else { "FAIL" }
    );
    std::process::exit(i32::from(failures > 0));
}

/// `bench-serve` subcommand: the Zipf closed-loop experiment, also the CI
/// smoke gate (nonzero exit on divergence, zero hit rate, or leaks).
fn run_bench_serve(args: &[String]) -> ! {
    use wolfram_bench::serve_load::{self, Catalog, Zipf};

    if let Some(i) = args.iter().position(|a| a == "--net") {
        let addr = args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7788".into());
        run_bench_serve_net(args, &addr);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let (programs, requests, spin_rounds) = if quick { (12, 240, 2) } else { (24, 2_000, 6) };
    let catalog = Catalog::new(programs, 64);
    let zipf = Zipf::new(catalog.len(), 1.1);
    println!(
        "== bench-serve ({} scale): {} programs, Zipf s=1.1, {} requests/config ==",
        if quick { "quick" } else { "paper" },
        programs,
        requests
    );

    let mut failures = 0u32;
    let mut at8 = (0.0f64, 0.0f64); // (cache-off, cache-on) throughput
    for workers in [1usize, 4, 8] {
        for cache_on in [false, true] {
            let r = serve_load::run_load(
                &catalog,
                &zipf,
                workers,
                cache_on,
                workers * 2,
                requests,
                0x5E12_F00D,
            );
            println!("{}", serve_load::render_row(&r));
            if r.divergences > 0 {
                failures += 1;
            }
            if cache_on && r.hit_rate <= 0.0 {
                failures += 1;
            }
            if workers == 8 {
                if cache_on {
                    at8.1 = r.throughput;
                } else {
                    at8.0 = r.throughput;
                }
            }
        }
    }
    let speedup = at8.1 / at8.0.max(1e-9);
    println!(
        "cache speedup at 8 workers: {speedup:.2}x (acceptance floor 3x{})",
        if quick {
            "; advisory at quick scale"
        } else {
            ""
        }
    );
    if !quick && speedup < 3.0 {
        failures += 1;
    }

    let d = serve_load::run_deadline_experiment(spin_rounds);
    println!(
        "deadline experiment: {}/{} aborted, pool alive: {}, memory balanced: {}",
        d.aborted, d.issued, d.pool_alive, d.memory_balanced
    );
    if d.aborted != d.issued || !d.pool_alive || !d.memory_balanced {
        failures += 1;
    }
    println!(
        "bench-serve: {}",
        if failures == 0 { "PASS" } else { "FAIL" }
    );
    std::process::exit(i32::from(failures > 0));
}

/// `bench-parallel` subcommand: the data-parallel tier ablation, also a
/// CI smoke gate (nonzero exit on result divergence or counter leaks).
fn run_bench_parallel(args: &[String]) -> ! {
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        harness::Scale::quick()
    } else {
        harness::Scale::paper()
    };
    let next_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .filter(|v| !v.starts_with("--"))
            .cloned()
    };
    // Quick scale shrinks the tensors, so shrink the chunk floor with it
    // or the threaded paths never engage.
    let min_chunk: usize = next_value("--min-chunk").map_or_else(
        || if quick { 256 } else { 4096 },
        |v| v.parse().expect("--min-chunk N"),
    );
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|_| next_value("--json").unwrap_or_else(|| "BENCH_parallel.json".into()));

    println!(
        "== bench-parallel ({} scale): blur {n}x{n}, dot {d}x{d}, listable {l}; \
         min chunk {min_chunk} ==",
        if quick { "quick" } else { "paper" },
        n = scale.blur_n,
        d = scale.dot_n,
        l = scale.histogram_n,
    );
    let report =
        wolfram_bench::parallel::run(&scale, &wolfram_bench::parallel::THREAD_STEPS, min_chunk);
    print!("{}", wolfram_bench::parallel::render(&report));

    if let Some(path) = json_path {
        let doc = wolfram_bench::parallel::to_json(&report, if quick { "quick" } else { "paper" });
        match std::fs::write(&path, doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let clean = report.equivalence_failures == 0 && report.memory_balanced;
    println!("bench-parallel: {}", if clean { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!clean));
}

/// `stream` subcommand: compile once, evaluate a line-delimited record
/// stream. Results go to stdout in input order; diagnostics and the
/// per-stage metrics table go to stderr. SIGTERM/SIGINT drains in-flight
/// batches before the table prints (stop is a drain, not a loss).
fn run_stream_cmd(args: &[String]) -> ! {
    use wolfram_stream::{StreamConfig, StreamFunction, StreamMetrics};

    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let Some(src) = flag("--function") else {
        eprintln!("usage: reproduce stream --function 'Function[...]' [--input FILE]");
        eprintln!("       [--tier native|naive|bytecode|interp] [--batch N] [--workers N]");
        std::process::exit(2);
    };
    let batch: usize = flag("--batch").map_or(256, |v| v.parse().expect("--batch N"));
    let workers: usize = flag("--workers").map_or(1, |v| v.parse().expect("--workers N"));
    let tier = flag("--tier").unwrap_or_else(|| "native".into());

    let func = match tier.as_str() {
        "native" | "naive" => {
            let artifact = match Compiler::default().function_compile_src(&src) {
                Ok(cf) => cf.artifact(),
                Err(e) => {
                    eprintln!("stream: compile failed: {e}");
                    std::process::exit(1);
                }
            };
            if tier == "native" {
                StreamFunction::Native(artifact)
            } else {
                StreamFunction::NativeNaive(artifact)
            }
        }
        "bytecode" => {
            let compiled = wolfram_expr::parse(&src)
                .map_err(|e| e.to_string())
                .and_then(|f| {
                    let specs = wolfram_bytecode::ArgSpec::from_function(&f)?;
                    let body = f.args().get(1).cloned().ok_or("function has no body")?;
                    wolfram_bytecode::BytecodeCompiler::new()
                        .compile(&specs, &body)
                        .map_err(|e| e.to_string())
                });
            match compiled {
                Ok(cf) => StreamFunction::Bytecode(std::sync::Arc::new(cf)),
                Err(e) => {
                    eprintln!("stream: bytecode compile failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "interp" => match wolfram_expr::parse(&src) {
            Ok(f) => StreamFunction::Interpreter(f),
            Err(e) => {
                eprintln!("stream: parse failed: {e}");
                std::process::exit(1);
            }
        },
        other => {
            eprintln!("unknown --tier `{other}` (expected native, naive, bytecode, or interp)");
            std::process::exit(2);
        }
    };

    install_shutdown_handler();
    let cfg = StreamConfig {
        batch_size: batch,
        workers,
        queue_batches: 8,
    };
    let metrics = StreamMetrics::new();
    let mut out = std::io::BufWriter::new(std::io::stdout());
    let started = std::time::Instant::now();
    let run = |input, out: &mut _| {
        wolfram_stream::run_lines(&func, &cfg, input, out, &metrics, &SHUTDOWN)
    };
    let summary = match flag("--input") {
        Some(path) => match std::fs::File::open(&path) {
            Ok(f) => run(
                Box::new(std::io::BufReader::new(f)) as Box<dyn std::io::BufRead + Send>,
                &mut out,
            ),
            Err(e) => {
                eprintln!("stream: cannot open {path}: {e}");
                std::process::exit(1);
            }
        },
        None => run(
            Box::new(std::io::BufReader::new(std::io::stdin())),
            &mut out,
        ),
    };
    let elapsed = started.elapsed();
    use std::io::Write as _;
    let _ = out.flush();
    match summary {
        Ok(s) => {
            if s.stopped {
                eprintln!(
                    "stream: shutdown requested; drained {} in-flight record(s)",
                    s.records
                );
            }
            eprint!("{}", metrics.render(elapsed));
            std::process::exit(i32::from(s.errors > 0 && s.ok == 0));
        }
        Err(e) => {
            eprintln!("stream: output failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `bench-stream` subcommand: the streaming-engine sweep, also a CI
/// smoke gate (nonzero exit on divergence, counter leaks, a cold frame
/// pool, or a sub-floor streamed speedup).
fn run_bench_stream(args: &[String]) -> ! {
    use wolfram_bench::stream_bench;

    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        stream_bench::StreamScale::quick()
    } else {
        stream_bench::StreamScale::paper()
    };
    let next_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .filter(|v| !v.starts_with("--"))
            .cloned()
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|_| next_value("--json").unwrap_or_else(|| "BENCH_stream.json".into()));

    println!(
        "== bench-stream ({} scale): {} scalar, {} tensor, {} interp records ==",
        if quick { "quick" } else { "paper" },
        scale.scalar_records,
        scale.tensor_records,
        scale.interp_records,
    );
    let report = stream_bench::run(&scale);
    print!("{}", stream_bench::render(&report));

    if let Some(path) = json_path {
        let doc = stream_bench::to_json(&report, if quick { "quick" } else { "paper" });
        match std::fs::write(&path, doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    // Quick scale still gates throughput, at a sanity floor: tiny record
    // counts leave executor setup un-amortized, so the paper-scale 3x
    // claim is only asserted at paper scale.
    let floor = if quick { 1.5 } else { 3.0 };
    let throughput_ok = report.best_stream_speedup >= floor;
    if !throughput_ok {
        println!(
            "streamed speedup {:.2}x is below the {floor:.1}x floor",
            report.best_stream_speedup
        );
    }
    let clean = report.equivalence_failures == 0
        && report.memory_balanced
        && report.frame_resets > 0
        && throughput_ok;
    println!("bench-stream: {}", if clean { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!clean));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "difftest") {
        run_difftest(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "analyze") {
        run_analyze(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "serve") {
        run_serve(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "bench-serve") {
        run_bench_serve(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "bench-parallel") {
        run_bench_parallel(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "stream") {
        run_stream_cmd(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "bench-stream") {
        run_bench_stream(&args[1..]);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let scale = if quick {
        harness::Scale::quick()
    } else {
        harness::Scale::paper()
    };

    if matches!(what.as_str(), "figure2" | "all") {
        println!(
            "== Figure 2 ({} scale) ==",
            if quick { "quick" } else { "paper" }
        );
        let rows = harness::figure2(&scale);
        print!("{}", harness::render_figure2(&rows));
        println!();
    }

    if matches!(what.as_str(), "table1" | "all") {
        println!("== Table 1 ==");
        print!("{}", table1::render(&table1::probe()));
        println!();
    }

    if matches!(what.as_str(), "intro" | "all") {
        println!("== Section 1 in-text numbers ==");
        let suite = intro::WalkSuite::new();
        let len = if quick { 10_000 } else { 100_000 };
        let t = suite.time(len, scale.repetitions);
        println!(
            "random walk (len {}): interpreter {:.4}s | bytecode {:.4}s ({:.2}x, paper ~2x) | \
             FunctionCompile {:.4}s ({:.2}x)",
            t.len,
            t.interpreted_secs,
            t.bytecode_secs,
            t.bytecode_speedup(),
            t.compiled_secs,
            t.compiled_speedup()
        );
        let fr = intro::findroot_speedup(if quick { 20 } else { 200 });
        println!(
            "FindRoot[Sin[x] + E^x]: interpreted {:.6}s/solve | auto-compiled {:.6}s/solve \
             ({:.2}x, paper 1.6x; hook fired {} times)",
            fr.interpreted_secs,
            fr.autocompiled_secs,
            fr.speedup(),
            fr.autocompile_hits
        );
        println!();
    }

    if matches!(what.as_str(), "ablations" | "all") {
        println!("== Section 6 ablations ==");
        let (iters, hist_n, prime_n, qsort_n) = if quick {
            (200_000, 200_000, 20_000, 1 << 12)
        } else {
            (2_000_000, 1_000_000, 50_000, 1 << 15)
        };
        println!(
            "{}",
            ablations::inline_ablation(iters, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::abort_ablation_histogram(hist_n, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::constant_array_ablation(prime_n, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::mutability_copy_ablation(qsort_n, scale.repetitions).render()
        );
        println!(
            "{}",
            ablations::fusion_ablation(scale.string_len, scale.repetitions).render()
        );
        println!();
    }

    if matches!(what.as_str(), "opstats" | "all") {
        println!("== Dynamic op statistics (superinstruction selection data) ==");
        let profiles = opstats::collect(&scale);
        print!("{}", opstats::render(&profiles, 8));
        println!();
    }

    if matches!(what.as_str(), "compile-times" | "all") {
        println!("== Section 5: compilation time and per-pass timings ==");
        let compiler = Compiler::default();
        let table = wolfram_bench::workloads::prime_seed_table();
        let programs: Vec<(&str, String)> = vec![
            ("FNV1a", wolfram_bench::programs::FNV1A_SRC.into()),
            ("Mandelbrot", wolfram_bench::programs::MANDELBROT_SRC.into()),
            ("Dot", wolfram_bench::programs::DOT_SRC.into()),
            ("Blur", wolfram_bench::programs::BLUR_SRC.into()),
            ("Histogram", wolfram_bench::programs::HISTOGRAM_SRC.into()),
            ("PrimeQ", wolfram_bench::programs::primeq_src(&table)),
            ("QSort", wolfram_bench::programs::QSORT_SRC.into()),
        ];
        for (name, src) in &programs {
            let start = std::time::Instant::now();
            let _ = compiler.function_compile_src(src).expect("compiles");
            let total = start.elapsed();
            let mut timings = compiler.timings();
            timings.retain(|(_, d)| d.as_secs_f64() > 1e-4);
            let per_pass: Vec<String> = timings
                .into_iter()
                .map(|(pass, d)| format!("{pass} {:.2}ms", d.as_secs_f64() * 1e3))
                .collect();
            println!(
                "{name:<11} total {:>8.2}ms | {}",
                total.as_secs_f64() * 1e3,
                per_pass.join(", ")
            );
        }
    }
}
