//! Differential testing of superinstruction fusion: every §6 benchmark is
//! compiled twice — fusion on (default) and off — and the two engines must
//! produce bit-identical outputs on the same workloads. This is the
//! correctness contract the fusion pass is built on: fused ops perform all
//! the register writes of the sequences they replace, so turning the pass
//! off must change nothing but speed.

use std::sync::Arc;
use wolfram_bench::{programs, workloads};
use wolfram_compiler_core::{Compiler, CompilerOptions};
use wolfram_runtime::Value;

fn compilers() -> (Compiler, Compiler) {
    let fused = Compiler::default();
    let unfused = Compiler::new(CompilerOptions {
        superinstruction_fusion: false,
        ..CompilerOptions::default()
    });
    (fused, unfused)
}

/// Compiles `src` both ways and asserts identical results on every
/// argument list.
fn assert_agree(name: &str, src: &str, arg_sets: &[Vec<Value>]) {
    let (fused, unfused) = compilers();
    let on = programs::compile_new(&fused, src);
    let off = programs::compile_new(&unfused, src);
    for (ix, args) in arg_sets.iter().enumerate() {
        let a = on
            .call(args)
            .unwrap_or_else(|e| panic!("{name} fused run {ix}: {e}"));
        let b = off
            .call(args)
            .unwrap_or_else(|e| panic!("{name} unfused run {ix}: {e}"));
        assert_eq!(
            a, b,
            "{name}: fusion changed the result on argument set {ix}"
        );
    }
}

#[test]
fn fnv1a_agrees() {
    let args: Vec<Vec<Value>> = [0usize, 1, 97, 1000]
        .iter()
        .map(|&n| {
            vec![Value::Str(Arc::new(workloads::random_string(
                n,
                n as u64 + 3,
            )))]
        })
        .collect();
    assert_agree("FNV1a", programs::FNV1A_SRC, &args);
}

#[test]
fn mandelbrot_agrees() {
    let args: Vec<Vec<Value>> = [
        (0.0, 0.0),
        (-0.5, 0.3),
        (0.4, 0.4),
        (-1.0, 0.25),
        (2.0, 2.0),
    ]
    .iter()
    .map(|&(re, im)| vec![Value::Complex(re, im)])
    .collect();
    assert_agree("Mandelbrot", programs::MANDELBROT_SRC, &args);
}

#[test]
fn dot_agrees() {
    let a = workloads::random_matrix(24, 1);
    let b = workloads::random_matrix(24, 2);
    assert_agree(
        "Dot",
        programs::DOT_SRC,
        &[vec![Value::Tensor(a), Value::Tensor(b)]],
    );
}

#[test]
fn blur_agrees() {
    let n = 24;
    let img = workloads::random_matrix_hw(n, n, 3);
    assert_agree(
        "Blur",
        programs::BLUR_SRC,
        &[vec![
            Value::Tensor(img),
            Value::I64(n as i64),
            Value::I64(n as i64),
        ]],
    );
}

#[test]
fn histogram_agrees() {
    let data = workloads::random_bytes_tensor(4096, 4);
    assert_agree(
        "Histogram",
        programs::HISTOGRAM_SRC,
        &[vec![Value::Tensor(data)]],
    );
}

#[test]
fn primeq_agrees() {
    let table = workloads::prime_seed_table();
    let src = programs::primeq_src(&table);
    // Limits on both sides of the 2^14 table boundary exercise both the
    // table lookup and the Rabin–Miller loop under fusion.
    let args: Vec<Vec<Value>> = [100i64, 2000, 16384 + 300]
        .iter()
        .map(|&l| vec![Value::I64(l)])
        .collect();
    assert_agree("PrimeQ", &src, &args);
}

#[test]
fn qsort_agrees() {
    let args: Vec<Vec<Value>> = vec![
        vec![
            Value::Tensor(workloads::sorted_list(512)),
            Value::Bool(true),
        ],
        vec![
            Value::Tensor(workloads::sorted_list(512)),
            Value::Bool(false),
        ],
        vec![
            Value::Tensor(wolfram_runtime::Tensor::from_i64(vec![
                5, -1, 3, 3, 0, 9, 2,
            ])),
            Value::Bool(true),
        ],
    ];
    assert_agree("QSort", programs::QSORT_SRC, &args);
}

#[test]
fn fusion_actually_fires_on_the_benchmarks() {
    // Guard against the pass silently becoming a no-op: the fused engine
    // must execute strictly fewer dispatches than the unfused one.
    let (fused, unfused) = compilers();
    let on = programs::compile_new(&fused, programs::FNV1A_SRC);
    let off = programs::compile_new(&unfused, programs::FNV1A_SRC);
    let arg = vec![Value::Str(Arc::new(workloads::random_string(1000, 7)))];
    on.profile_ops(true);
    off.profile_ops(true);
    on.call(&arg).unwrap();
    off.call(&arg).unwrap();
    let (s_on, s_off) = (on.take_op_stats(), off.take_op_stats());
    assert!(
        s_on.total() < s_off.total(),
        "fusion did not reduce dispatches: {} vs {}",
        s_on.total(),
        s_off.total()
    );
    // The unfused stream must contain no superinstructions.
    const FUSED: &[&str] = &[
        "br.cmp.i",
        "br.cmp.f",
        "br.cmp.i.sel",
        "br.cmp.f.sel",
        "brz.jmp",
        "int.bin2",
        "int.bin.imm2",
        "int.bin.imm.jmp",
        "flt.bin2",
        "ten.part1.int.bin",
        "ten.part1.int.imm",
        "ten.part2.flt.bin",
        "take.ten.set1",
        "take.ten.set2",
        "mov.i.jmp",
        "mov2.i",
        "mov2.i.jmp",
        "release2",
        "abort.br.cmp.i.sel",
        "abort.br.cmp.i",
        "int.bin.imm.mov",
        "mov.c.jmp",
        "int.imm.mov2.jmp",
        "flt.cmp.mov",
        "flt.cmp.mov.jmp",
    ];
    assert!(
        s_off.ops.keys().all(|m| !FUSED.contains(m)),
        "unfused run executed fused ops: {:?}",
        s_off.hottest_ops()
    );
    // And the fused one must actually use some.
    assert!(
        s_on.ops.keys().any(|m| FUSED.contains(m)),
        "fused run executed no superinstructions: {:?}",
        s_on.hottest_ops()
    );
}
