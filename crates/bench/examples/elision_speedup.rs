//! Measures the range-check-elision speedup (interval analysis proving
//! Part bounds / overflow / refcount checks away) on the bounds-heavy
//! benchmarks, against the fully checked ablation baseline.

use std::time::Instant;
use wolfram_bench::{programs, workloads};
use wolfram_compiler_core::{Compiler, CompilerOptions};
use wolfram_runtime::Value;

const ROUNDS: usize = 9;

fn compilers() -> (Compiler, Compiler) {
    let elided = Compiler::default();
    let checked = Compiler::new(CompilerOptions {
        range_checks_elision: false,
        ..CompilerOptions::default()
    });
    (elided, checked)
}

/// Interleaved min-of-N: alternating elided/checked rounds so CPU
/// frequency drift and scheduler noise hit both engines equally.
fn bench_pair(mut on: impl FnMut(), mut off: impl FnMut()) -> (f64, f64) {
    on();
    off();
    let (mut t_on, mut t_off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        on();
        t_on = t_on.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        off();
        t_off = t_off.min(start.elapsed().as_secs_f64());
    }
    (t_on, t_off)
}

fn measure(name: &str, src: &str, args: Vec<Value>) -> f64 {
    let (ec, cc) = compilers();
    let on = programs::compile_new(&ec, src);
    let off = programs::compile_new(&cc, src);
    assert_eq!(on.call(&args).unwrap(), off.call(&args).unwrap(), "{name}");
    let (t_on, t_off) = bench_pair(
        || {
            on.call(std::hint::black_box(&args)).unwrap();
        },
        || {
            off.call(std::hint::black_box(&args)).unwrap();
        },
    );
    let s = t_off / t_on;
    println!("{name:<11} elided {t_on:.4}s | checked {t_off:.4}s | speedup {s:.3}x");
    s
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 200_000 } else { 1_000_000 };
    let bn = if quick { 256 } else { 700 };
    let table = workloads::prime_seed_table();
    let speedups = [
        measure(
            "FNV1a",
            programs::FNV1A_SRC,
            vec![Value::Str(std::sync::Arc::new(workloads::random_string(
                n, 0x5eed,
            )))],
        ),
        measure(
            "Blur",
            programs::BLUR_SRC,
            vec![
                Value::Tensor(workloads::random_matrix_hw(bn, bn, 3)),
                Value::I64(bn as i64),
                Value::I64(bn as i64),
            ],
        ),
        measure(
            "Histogram",
            programs::HISTOGRAM_SRC,
            vec![Value::Tensor(workloads::random_bytes_tensor(n, 4))],
        ),
        measure(
            "PrimeQ",
            &programs::primeq_src(&table),
            vec![Value::I64(if quick { 60_000 } else { 200_000 })],
        ),
        measure(
            "QSort",
            programs::QSORT_SRC,
            vec![
                Value::Tensor(workloads::sorted_list(if quick { 8_192 } else { 32_768 })),
                Value::Bool(false),
            ],
        ),
    ];
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("geomean {geomean:.3}x");
}
