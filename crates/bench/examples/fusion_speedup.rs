//! Measures the superinstruction-fusion speedup on the five
//! dispatch-bound benchmarks (acceptance: >=1.15x geomean on at least
//! three of them).

use std::sync::Arc;
use std::time::Instant;
use wolfram_bench::{programs, workloads};
use wolfram_compiler_core::{CompiledCodeFunction, Compiler, CompilerOptions};
use wolfram_runtime::Value;

const ROUNDS: usize = 9;

fn compilers() -> (Compiler, Compiler) {
    let fused = Compiler::default();
    let unfused = Compiler::new(CompilerOptions {
        superinstruction_fusion: false,
        ..CompilerOptions::default()
    });
    (fused, unfused)
}

/// Interleaved min-of-N: alternating fused/unfused rounds so CPU frequency
/// drift and scheduler noise hit both engines equally.
fn bench_pair(mut on: impl FnMut(), mut off: impl FnMut()) -> (f64, f64) {
    on();
    off();
    let (mut t_on, mut t_off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        on();
        t_on = t_on.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        off();
        t_off = t_off.min(start.elapsed().as_secs_f64());
    }
    (t_on, t_off)
}

fn measure(name: &str, src: &str, args: Vec<Value>) -> f64 {
    let (fc, uc) = compilers();
    let on = programs::compile_new(&fc, src);
    let off = programs::compile_new(&uc, src);
    assert_eq!(on.call(&args).unwrap(), off.call(&args).unwrap(), "{name}");
    let (t_on, t_off) = bench_pair(
        || {
            on.call(std::hint::black_box(&args)).unwrap();
        },
        || {
            off.call(std::hint::black_box(&args)).unwrap();
        },
    );
    report(name, t_on, t_off)
}

fn report(name: &str, t_on: f64, t_off: f64) -> f64 {
    let s = t_off / t_on;
    println!("{name:<11} fused {t_on:.4}s | unfused {t_off:.4}s | speedup {s:.3}x");
    s
}

fn mandelbrot(quick: bool) -> f64 {
    let (fc, uc) = compilers();
    let on = programs::compile_new(&fc, programs::MANDELBROT_SRC);
    let off = programs::compile_new(&uc, programs::MANDELBROT_SRC);
    let res = if quick { 0.05 } else { 0.02 };
    let mut grid = Vec::new();
    let mut re = -1.0;
    while re <= 1.0 {
        let mut im = -1.0;
        while im <= 0.5 {
            grid.push((re, im));
            im += res;
        }
        re += res;
    }
    let run = |cf: &CompiledCodeFunction| -> i64 {
        grid.iter()
            .map(|&(re, im)| {
                cf.call(&[Value::Complex(re, im)])
                    .unwrap()
                    .expect_i64()
                    .unwrap()
            })
            .sum()
    };
    assert_eq!(run(&on), run(&off));
    let (t_on, t_off) = bench_pair(
        || {
            std::hint::black_box(run(&on));
        },
        || {
            std::hint::black_box(run(&off));
        },
    );
    report("Mandelbrot", t_on, t_off)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 200_000 } else { 1_000_000 };
    let bn = if quick { 256 } else { 700 };
    let table = workloads::prime_seed_table();
    let speedups = [
        measure(
            "FNV1a",
            programs::FNV1A_SRC,
            vec![Value::Str(Arc::new(workloads::random_string(n, 0x5eed)))],
        ),
        mandelbrot(quick),
        measure(
            "Blur",
            programs::BLUR_SRC,
            vec![
                Value::Tensor(workloads::random_matrix_hw(bn, bn, 3)),
                Value::I64(bn as i64),
                Value::I64(bn as i64),
            ],
        ),
        measure(
            "Histogram",
            programs::HISTOGRAM_SRC,
            vec![Value::Tensor(workloads::random_bytes_tensor(n, 4))],
        ),
        measure(
            "PrimeQ",
            &programs::primeq_src(&table),
            vec![Value::I64(if quick { 60_000 } else { 200_000 })],
        ),
    ];
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let over = speedups.iter().filter(|s| **s >= 1.15).count();
    println!(
        "geomean {geomean:.3}x | benchmarks at >=1.15x: {over}/{}",
        speedups.len()
    );
}
