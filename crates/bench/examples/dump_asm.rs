use wolfram_bench::programs;
use wolfram_compiler_core::Compiler;
use wolfram_expr::parse;

fn main() {
    let compiler = Compiler::default();
    for (name, src) in [
        ("FNV1a", programs::FNV1A_SRC.to_string()),
        ("Mandelbrot", programs::MANDELBROT_SRC.to_string()),
        ("Histogram", programs::HISTOGRAM_SRC.to_string()),
        ("Blur", programs::BLUR_SRC.to_string()),
    ] {
        let f = parse(&src).unwrap();
        let asm = compiler.export_string(&f, "Assembler").unwrap();
        println!("==== {name} ====\n{asm}");
    }
}
