//! Criterion benches for Figure 2: one group per benchmark, one function
//! per implementation (native / new compiler / new without abort checks /
//! bytecode). Run with `cargo bench -p wolfram-bench --bench figure2`.
//!
//! Criterion's statistics complement the `reproduce` binary's min-of-N
//! runs; sizes here are reduced so a full sweep stays tractable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use wolfram_bench::{native, programs, workloads};
use wolfram_bytecode::ArgSpec;
use wolfram_compiler_core::{Compiler, CompilerOptions};
use wolfram_runtime::Value;

fn compiler(abort: bool) -> Compiler {
    Compiler::new(CompilerOptions {
        abort_handling: abort,
        ..CompilerOptions::default()
    })
}

fn bench_fnv1a(c: &mut Criterion) {
    let input = workloads::random_string(100_000, 1);
    let new_cf = programs::compile_new(&compiler(true), programs::FNV1A_SRC);
    let new_na = programs::compile_new(&compiler(false), programs::FNV1A_SRC);
    let bc = programs::compile_bytecode(
        &[ArgSpec::tensor_int("bytes")],
        programs::FNV1A_BYTECODE_BODY,
    )
    .unwrap();
    let sv = Value::Str(Arc::new(input.clone()));
    let codes = Value::Tensor(wolfram_runtime::Tensor::from_i64(
        input.bytes().map(i64::from).collect(),
    ));
    let mut g = c.benchmark_group("fnv1a");
    g.bench_function("native", |b| {
        b.iter(|| native::fnv1a32(std::hint::black_box(input.as_bytes())))
    });
    g.bench_function("new", |b| {
        b.iter(|| {
            new_cf
                .call(std::hint::black_box(std::slice::from_ref(&sv)))
                .unwrap()
        })
    });
    g.bench_function("new-noabort", |b| {
        b.iter(|| {
            new_na
                .call(std::hint::black_box(std::slice::from_ref(&sv)))
                .unwrap()
        })
    });
    g.bench_function("bytecode", |b| {
        b.iter(|| {
            bc.run(std::hint::black_box(std::slice::from_ref(&codes)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_mandelbrot(c: &mut Criterion) {
    let new_cf = programs::compile_new(&compiler(true), programs::MANDELBROT_SRC);
    let new_na = programs::compile_new(&compiler(false), programs::MANDELBROT_SRC);
    let bc = programs::compile_bytecode(
        &[ArgSpec::complex("pixel0")],
        programs::MANDELBROT_BYTECODE_BODY,
    )
    .unwrap();
    // One interior pixel (max iterations) — the hot case.
    let pt = Value::Complex(-0.5, 0.2);
    let mut g = c.benchmark_group("mandelbrot-pixel");
    g.bench_function("native", |b| {
        b.iter(|| native::mandelbrot_iters(-0.5, 0.2, 1000))
    });
    g.bench_function("new", |b| {
        b.iter(|| {
            new_cf
                .call(std::hint::black_box(std::slice::from_ref(&pt)))
                .unwrap()
        })
    });
    g.bench_function("new-noabort", |b| {
        b.iter(|| {
            new_na
                .call(std::hint::black_box(std::slice::from_ref(&pt)))
                .unwrap()
        })
    });
    g.bench_function("bytecode", |b| {
        b.iter(|| {
            bc.run(std::hint::black_box(std::slice::from_ref(&pt)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    let n = 200;
    let a = workloads::random_matrix(n, 1);
    let bm = workloads::random_matrix(n, 2);
    let new_cf = programs::compile_new(&compiler(true), programs::DOT_SRC);
    let bc = programs::compile_bytecode(
        &[ArgSpec::tensor_real("a"), ArgSpec::tensor_real("b")],
        "Dot[a, b]",
    )
    .unwrap();
    let (av, bv) = (Value::Tensor(a.clone()), Value::Tensor(bm.clone()));
    let mut g = c.benchmark_group("dot");
    g.sample_size(20);
    g.bench_function("native", |b| b.iter(|| native::dot(&a, &bm)));
    g.bench_function("new", |b| {
        b.iter(|| {
            new_cf
                .call(std::hint::black_box(&[av.clone(), bv.clone()]))
                .unwrap()
        })
    });
    g.bench_function("bytecode", |b| {
        b.iter(|| {
            bc.run(std::hint::black_box(&[av.clone(), bv.clone()]))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_blur(c: &mut Criterion) {
    let n = 128;
    let img = workloads::random_matrix_hw(n, n, 3);
    let new_cf = programs::compile_new(&compiler(true), programs::BLUR_SRC);
    let new_na = programs::compile_new(&compiler(false), programs::BLUR_SRC);
    let bc = programs::compile_bytecode(
        &[
            ArgSpec::tensor_real("img"),
            ArgSpec::int("h"),
            ArgSpec::int("w"),
        ],
        programs::BLUR_BYTECODE_BODY,
    )
    .unwrap();
    let args = vec![
        Value::Tensor(img.clone()),
        Value::I64(n as i64),
        Value::I64(n as i64),
    ];
    let mut g = c.benchmark_group("blur");
    g.sample_size(20);
    g.bench_function("native", |b| b.iter(|| native::blur(&img, n, n)));
    g.bench_function("new", |b| {
        b.iter(|| new_cf.call(std::hint::black_box(&args)).unwrap())
    });
    g.bench_function("new-noabort", |b| {
        b.iter(|| new_na.call(std::hint::black_box(&args)).unwrap())
    });
    g.bench_function("bytecode", |b| {
        b.iter(|| bc.run(std::hint::black_box(&args)).unwrap())
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let data = workloads::random_bytes_tensor(100_000, 4);
    let new_cf = programs::compile_new(&compiler(true), programs::HISTOGRAM_SRC);
    let new_na = programs::compile_new(&compiler(false), programs::HISTOGRAM_SRC);
    let bc = programs::compile_bytecode(
        &[ArgSpec::tensor_int("data")],
        programs::HISTOGRAM_BYTECODE_BODY,
    )
    .unwrap();
    let dv = Value::Tensor(data.clone());
    let mut g = c.benchmark_group("histogram");
    g.bench_function("native", |b| {
        b.iter(|| native::histogram(data.as_i64().unwrap()))
    });
    g.bench_function("new", |b| {
        b.iter(|| {
            new_cf
                .call(std::hint::black_box(std::slice::from_ref(&dv)))
                .unwrap()
        })
    });
    g.bench_function("new-noabort", |b| {
        b.iter(|| {
            new_na
                .call(std::hint::black_box(std::slice::from_ref(&dv)))
                .unwrap()
        })
    });
    g.bench_function("bytecode", |b| {
        b.iter(|| {
            bc.run(std::hint::black_box(std::slice::from_ref(&dv)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_primeq(c: &mut Criterion) {
    let table = workloads::prime_seed_table();
    let src = programs::primeq_src(&table);
    let limit = 60_000i64;
    let new_cf = programs::compile_new(&compiler(true), &src);
    let bc = programs::compile_bytecode(
        &[ArgSpec::int("limit")],
        &programs::primeq_bytecode_body(&table),
    )
    .unwrap();
    let mut g = c.benchmark_group("primeq");
    g.sample_size(10);
    g.bench_function("native", |b| b.iter(|| native::prime_count(limit as u64)));
    g.bench_function("new", |b| {
        b.iter(|| {
            new_cf
                .call(std::hint::black_box(&[Value::I64(limit)]))
                .unwrap()
        })
    });
    g.bench_function("bytecode", |b| {
        b.iter(|| bc.run(std::hint::black_box(&[Value::I64(limit)])).unwrap())
    });
    g.finish();
}

fn bench_qsort(c: &mut Criterion) {
    let input = workloads::sorted_list(1 << 13);
    let new_cf = programs::compile_new(&compiler(true), programs::QSORT_SRC);
    let iv = Value::Tensor(input.clone());
    let mut g = c.benchmark_group("qsort");
    g.sample_size(20);
    g.bench_function("native", |b| {
        b.iter(|| native::qsort(input.as_i64().unwrap(), native::less))
    });
    g.bench_function("new", |b| {
        b.iter(|| {
            new_cf
                .call(std::hint::black_box(&[iv.clone(), Value::Bool(true)]))
                .unwrap()
        })
    });
    // No bytecode variant: QSort cannot be represented (L1).
    g.finish();
}

criterion_group!(
    figure2,
    bench_fnv1a,
    bench_mandelbrot,
    bench_dot,
    bench_blur,
    bench_histogram,
    bench_primeq,
    bench_qsort
);
criterion_main!(figure2);
