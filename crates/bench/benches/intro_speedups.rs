//! Criterion benches for the §1 in-text numbers: the Figure 1 random walk
//! (interpreter vs bytecode vs FunctionCompile) and FindRoot
//! auto-compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use wolfram_bench::intro;
use wolfram_interp::Interpreter;

fn bench_random_walk(c: &mut Criterion) {
    let suite = intro::WalkSuite::new();
    let len = 10_000i64;
    let mut g = c.benchmark_group("random-walk-10k");
    g.sample_size(10);
    g.bench_function("interpreted", |b| {
        let mut engine = Interpreter::new();
        b.iter(|| std::hint::black_box(suite.run_interpreted(&mut engine, len)));
    });
    g.bench_function("bytecode", |b| {
        b.iter(|| std::hint::black_box(suite.run_bytecode(len)));
    });
    g.bench_function("function-compile", |b| {
        b.iter(|| std::hint::black_box(suite.run_compiled(len)));
    });
    g.finish();
}

fn bench_findroot(c: &mut Criterion) {
    let src = "FindRoot[Sin[x] + E^x, {x, 0}]";
    let mut g = c.benchmark_group("findroot");
    g.sample_size(20);
    g.bench_function("interpreted-objective", |b| {
        let mut engine = Interpreter::new();
        b.iter(|| std::hint::black_box(engine.eval_src(src).unwrap()));
    });
    g.bench_function("auto-compiled-objective", |b| {
        let mut engine = Interpreter::new();
        intro::install_cached_auto_compile(&mut engine);
        engine.eval_src(src).unwrap(); // populate the compile cache
        b.iter(|| std::hint::black_box(engine.eval_src(src).unwrap()));
    });
    g.finish();
}

criterion_group!(intro_speedups, bench_random_walk, bench_findroot);
criterion_main!(intro_speedups);
