//! Criterion benches for the §6 design ablations: abort checking, inlining
//! policy, constant-array handling, and the mutability copy.

use criterion::{criterion_group, criterion_main, Criterion};
use wolfram_bench::{native, programs, workloads};
use wolfram_compiler_core::{Compiler, CompilerOptions, InlinePolicy};
use wolfram_runtime::Value;

fn options(f: impl FnOnce(&mut CompilerOptions)) -> Compiler {
    let mut opts = CompilerOptions::default();
    f(&mut opts);
    Compiler::new(opts)
}

fn bench_abort_checking(c: &mut Criterion) {
    let data = workloads::random_bytes_tensor(100_000, 17);
    let with = options(|_| {})
        .function_compile_src(programs::HISTOGRAM_SRC)
        .unwrap();
    let without = options(|o| o.abort_handling = false)
        .function_compile_src(programs::HISTOGRAM_SRC)
        .unwrap();
    let dv = Value::Tensor(data);
    let mut g = c.benchmark_group("abort-checking-histogram");
    g.bench_function("abortable", |b| {
        b.iter(|| {
            with.call(std::hint::black_box(std::slice::from_ref(&dv)))
                .unwrap()
        })
    });
    g.bench_function("abort-inhibited", |b| {
        b.iter(|| {
            without
                .call(std::hint::black_box(std::slice::from_ref(&dv)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_inlining(c: &mut Criterion) {
    const SRC: &str = "Function[{Typed[n, \"MachineInteger\"]}, \
                       Module[{s = 0, k = 0}, \
                        While[k < n, If[EvenQ[k], s = s + k]; k = k + 1]; s]]";
    let auto = options(|o| o.inline_policy = InlinePolicy::Automatic)
        .function_compile_src(SRC)
        .unwrap();
    let never = options(|o| o.inline_policy = InlinePolicy::Never)
        .function_compile_src(SRC)
        .unwrap();
    let n = Value::I64(500_000);
    let mut g = c.benchmark_group("inlining");
    g.bench_function("automatic", |b| {
        b.iter(|| {
            auto.call(std::hint::black_box(std::slice::from_ref(&n)))
                .unwrap()
        })
    });
    g.bench_function("never", |b| {
        b.iter(|| {
            never
                .call(std::hint::black_box(std::slice::from_ref(&n)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_constant_arrays(c: &mut Criterion) {
    let table = workloads::prime_seed_table();
    let src = programs::primeq_src(&table);
    let optimized = options(|_| {}).function_compile_src(&src).unwrap();
    let naive = options(|o| o.naive_constant_arrays = true)
        .function_compile_src(&src)
        .unwrap();
    let limit = Value::I64(8_000);
    let mut g = c.benchmark_group("constant-arrays-primeq");
    g.sample_size(10);
    g.bench_function("optimized", |b| {
        b.iter(|| {
            optimized
                .call(std::hint::black_box(std::slice::from_ref(&limit)))
                .unwrap()
        })
    });
    g.bench_function("naive", |b| {
        b.iter(|| {
            naive
                .call(std::hint::black_box(std::slice::from_ref(&limit)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_mutability_copy(c: &mut Criterion) {
    let input = workloads::sorted_list(1 << 13);
    let cf = options(|_| {})
        .function_compile_src(programs::QSORT_SRC)
        .unwrap();
    let iv = Value::Tensor(input.clone());
    let mut g = c.benchmark_group("mutability-copy-qsort");
    g.sample_size(20);
    g.bench_function("compiled-with-copy", |b| {
        b.iter(|| {
            cf.call(std::hint::black_box(&[iv.clone(), Value::Bool(true)]))
                .unwrap()
        })
    });
    g.bench_function("native-in-place", |b| {
        let mut scratch = input.as_i64().unwrap().to_vec();
        b.iter(|| {
            scratch.copy_from_slice(input.as_i64().unwrap());
            std::hint::black_box(native::qsort(&scratch, native::less));
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_abort_checking,
    bench_inlining,
    bench_constant_arrays,
    bench_mutability_copy
);
criterion_main!(ablations);
