//! Property test: random straight-line integer/float programs must produce
//! identical results under fused and unfused dispatch — for *every*
//! observable register, not just a designated output. This pins down the
//! pass's dual-write invariant: a fused op performs all the register
//! writes of the pair it replaced.

use proptest::prelude::*;
use wolfram_codegen::fuse::fuse_function;
use wolfram_codegen::{ArgVal, Bank, Machine, NativeFunc, NativeProgram, RegOp, Slot};

const NI: usize = 6;
const NF: usize = 6;

/// Deterministic generator (split-mix style) so each proptest case is a
/// pure function of its seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn int_op(&mut self) -> wolfram_codegen::machine::IntOp {
        use wolfram_codegen::machine::IntOp;
        const OPS: &[IntOp] = &[
            IntOp::Add,
            IntOp::Sub,
            IntOp::Mul,
            IntOp::Min,
            IntOp::Max,
            IntOp::BitAnd,
            IntOp::BitOr,
            IntOp::BitXor,
            IntOp::Lt,
            IntOp::Le,
            IntOp::Gt,
            IntOp::Ge,
            IntOp::Eq,
            IntOp::Ne,
        ];
        OPS[self.below(OPS.len())]
    }

    fn flt_op(&mut self) -> wolfram_codegen::machine::FltOp {
        use wolfram_codegen::machine::FltOp;
        const OPS: &[FltOp] = &[FltOp::Add, FltOp::Sub, FltOp::Mul, FltOp::Min, FltOp::Max];
        OPS[self.below(OPS.len())]
    }

    fn flt_cmp(&mut self) -> wolfram_codegen::machine::CmpCode {
        use wolfram_codegen::machine::CmpCode;
        const OPS: &[CmpCode] = &[
            CmpCode::Lt,
            CmpCode::Le,
            CmpCode::Gt,
            CmpCode::Ge,
            CmpCode::Eq,
            CmpCode::Ne,
        ];
        OPS[self.below(OPS.len())]
    }
}

/// Builds a random straight-line body over `NI` int and `NF` float
/// registers, seeded with small constants.
fn random_body(rng: &mut Rng, len: usize) -> Vec<RegOp> {
    let mut code = Vec::new();
    for d in 0..NI {
        code.push(RegOp::LdcI {
            d,
            v: rng.below(201) as i64 - 100,
        });
    }
    for d in 0..NF {
        code.push(RegOp::LdcF {
            d,
            v: (rng.below(401) as f64 - 200.0) / 8.0,
        });
    }
    for _ in 0..len {
        let op = match rng.below(6) {
            0 => RegOp::MovI {
                d: rng.below(NI),
                s: rng.below(NI),
            },
            1 => RegOp::IntBin {
                op: rng.int_op(),
                d: rng.below(NI),
                a: rng.below(NI),
                b: rng.below(NI),
            },
            2 => RegOp::IntBinImm {
                op: rng.int_op(),
                d: rng.below(NI),
                a: rng.below(NI),
                imm: rng.below(15) as i64 - 7,
            },
            3 => RegOp::FltBin {
                op: rng.flt_op(),
                d: rng.below(NF),
                a: rng.below(NF),
                b: rng.below(NF),
            },
            4 => RegOp::FltCmp {
                op: rng.flt_cmp(),
                d: rng.below(NI),
                a: rng.below(NF),
                b: rng.below(NF),
            },
            _ => RegOp::MovF {
                d: rng.below(NF),
                s: rng.below(NF),
            },
        };
        code.push(op);
    }
    code
}

fn run(f: &NativeFunc) -> Result<ArgVal, String> {
    let prog = NativeProgram {
        parallel: None,
        funcs: vec![f.clone()],
    };
    let mut m = Machine::standalone();
    m.call_with_engine(&prog, 0, Vec::new(), None)
        .map_err(|e| format!("{e:?}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every register's final value agrees between the fused and unfused
    /// program (and errors, e.g. integer overflow from a Mul chain, are
    /// reported identically).
    #[test]
    fn straightline_programs_agree_under_fusion(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let len = 4 + rng.below(40);
        let body = random_body(&mut rng, len);
        let observables: Vec<Slot> = (0..NI)
            .map(|ix| Slot::new(Bank::I, ix))
            .chain((0..NF).map(|ix| Slot::new(Bank::F, ix)))
            .collect();
        for ret in observables {
            let mut code = body.clone();
            code.push(RegOp::Ret { s: ret });
            let unfused = NativeFunc {
                name: "Main".into(),
                code,
                n_int: NI,
                n_flt: NF,
                n_cpx: 0,
                n_val: 0,
                params: Vec::new(),
            elision: Default::default(),
            };
            let mut fused = unfused.clone();
            fuse_function(&mut fused);
            match (run(&unfused), run(&fused)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "register {:?}{}", ret.bank, ret.ix),
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors diverged"),
                (a, b) => prop_assert!(
                    false,
                    "one engine failed: unfused {a:?} vs fused {b:?} at {:?}{}",
                    ret.bank,
                    ret.ix
                ),
            }
        }
    }

    /// Fusion leaves the observable dispatch semantics intact even when
    /// programs contain branches over the straight-line segments: a small
    /// counted loop built from the same op pool.
    #[test]
    fn counted_loops_agree_under_fusion(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        // i = trip; do { body; i -= 1 } while (i != 0); return a register.
        // The loop counter lives in register NI, outside the random pool.
        let trip = 1 + rng.below(5) as i64;
        let mut code = vec![RegOp::LdcI { d: NI, v: trip }];
        let loop_top = code.len();
        let body_len = 2 + rng.below(8);
        code.extend(random_body(&mut rng, body_len));
        code.push(RegOp::IntBinImm {
            op: wolfram_codegen::machine::IntOp::Sub,
            d: NI,
            a: NI,
            imm: 1,
        });
        code.push(RegOp::Brz { c: NI, pc: code.len() + 2 });
        code.push(RegOp::Jmp { pc: loop_top });
        code.push(RegOp::Ret { s: Slot::new(Bank::I, rng.below(NI)) });
        let unfused = NativeFunc {
            name: "Main".into(),
            code,
            n_int: NI + 1,
            n_flt: NF,
            n_cpx: 0,
            n_val: 0,
            params: Vec::new(),
            elision: Default::default(),
        };
        let mut fused = unfused.clone();
        fuse_function(&mut fused);
        match (run(&unfused), run(&fused)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "one engine failed: {a:?} vs {b:?}"),
        }
    }
}
