//! Pins the native register machine's `Quotient`/`Mod`/`Power` semantics
//! on negative operands to the interpreter's answer, at the `RegOp` level
//! (the full `Function[...]` pipeline lives in `wolfram-compiler-core`;
//! these tests isolate the machine's arithmetic itself).

use wolfram_codegen::machine::{FltOp, IntOp};
use wolfram_codegen::{ArgVal, Bank, Machine, NativeFunc, NativeProgram, RegOp, Slot};
use wolfram_expr::parse;
use wolfram_interp::Interpreter;
use wolfram_runtime::{RuntimeError, Value};

/// A one-function program: `op(arg0, arg1)` over the given bank.
fn binprog(code: Vec<RegOp>, bank: Bank) -> NativeProgram {
    NativeProgram {
        parallel: None,
        funcs: vec![NativeFunc {
            name: "Main".into(),
            code,
            n_int: 3,
            n_flt: 3,
            n_cpx: 0,
            n_val: 0,
            params: vec![Slot::new(bank, 0), Slot::new(bank, 1)],
            elision: Default::default(),
        }],
    }
}

fn run_int(op: IntOp, x: i64, y: i64) -> Result<i64, RuntimeError> {
    let prog = binprog(
        vec![
            RegOp::IntBin {
                op,
                d: 2,
                a: 0,
                b: 1,
            },
            RegOp::Ret {
                s: Slot::new(Bank::I, 2),
            },
        ],
        Bank::I,
    );
    match Machine::standalone().call(&prog, 0, vec![ArgVal::I(x), ArgVal::I(y)])? {
        ArgVal::I(v) => Ok(v),
        other => panic!("integer op returned {other:?}"),
    }
}

fn run_flt(op: FltOp, x: f64, y: f64) -> Result<f64, RuntimeError> {
    let prog = binprog(
        vec![
            RegOp::FltBin {
                op,
                d: 2,
                a: 0,
                b: 1,
            },
            RegOp::Ret {
                s: Slot::new(Bank::F, 2),
            },
        ],
        Bank::F,
    );
    match Machine::standalone().call(&prog, 0, vec![ArgVal::F(x), ArgVal::F(y)])? {
        ArgVal::F(v) => Ok(v),
        other => panic!("real op returned {other:?}"),
    }
}

/// The interpreter's answer for `head[x, y]`.
fn oracle(head: &str, x: &Value, y: &Value) -> Value {
    let mut i = Interpreter::new();
    let e = parse(&format!(
        "{head}[{}, {}]",
        x.to_expr().to_input_form(),
        y.to_expr().to_input_form()
    ))
    .unwrap();
    Value::from_expr(&i.eval(&e).unwrap())
}

#[test]
fn quotient_floors_toward_negative_infinity() {
    for &(x, y) in &[
        (7i64, 2i64),
        (-7, 2),
        (7, -2),
        (-7, -2),
        (0, 3),
        (1, i64::MAX),
        (i64::MIN, 2),
        (i64::MIN + 1, -1),
    ] {
        let want = oracle("Quotient", &Value::I64(x), &Value::I64(y));
        assert_eq!(
            Value::I64(run_int(IntOp::Quot, x, y).unwrap()),
            want,
            "Quotient[{x}, {y}]"
        );
    }
}

#[test]
fn quotient_is_exact_above_2_to_53() {
    // The old f64 round-trip lost the low bits of large operands; the
    // interpreter (and `checked::quotient_i64`) never did.
    let big = (1i64 << 62) + 1;
    assert_eq!(run_int(IntOp::Quot, big, 1).unwrap(), big);
    assert_eq!(
        Value::I64(run_int(IntOp::Quot, big, 1).unwrap()),
        oracle("Quotient", &Value::I64(big), &Value::I64(1))
    );
    // i64::MIN / -1 must overflow, not saturate to i64::MAX.
    assert_eq!(
        run_int(IntOp::Quot, i64::MIN, -1),
        Err(RuntimeError::IntegerOverflow)
    );
}

#[test]
fn mod_takes_divisor_sign() {
    for &(x, y) in &[
        (7i64, 3i64),
        (-7, 3),
        (7, -3),
        (-7, -3),
        (0, 5),
        (i64::MIN, 3),
    ] {
        let want = oracle("Mod", &Value::I64(x), &Value::I64(y));
        assert_eq!(
            Value::I64(run_int(IntOp::Mod, x, y).unwrap()),
            want,
            "Mod[{x}, {y}]"
        );
    }
    assert_eq!(run_int(IntOp::Mod, 5, 0), Err(RuntimeError::DivideByZero));
    assert_eq!(run_int(IntOp::Quot, 5, 0), Err(RuntimeError::DivideByZero));
}

#[test]
fn integer_power_negative_exponent_is_a_soft_failure() {
    // The machine's integer bank cannot hold 2^-1 = 0.5; the error must be
    // *numeric* so the hosted wrapper reverts to the interpreter instead
    // of hard-erroring (a divergence the fuzzer caught on its first run).
    let err = run_int(IntOp::Pow, 2, -1).unwrap_err();
    assert!(matches!(err, RuntimeError::NumericDomain(_)), "{err:?}");
    assert!(
        err.is_numeric(),
        "negative exponent must trigger the interpreter fallback"
    );
}

#[test]
fn real_mod_matches_interpreter() {
    for &(x, y) in &[(7.5f64, 2.0f64), (-7.5, 2.0), (7.5, -2.0), (-7.5, -2.5)] {
        let want = oracle("Mod", &Value::F64(x), &Value::F64(y));
        assert_eq!(
            Value::F64(run_flt(FltOp::Mod, x, y).unwrap()),
            want,
            "Mod[{x}, {y}]"
        );
    }
}
