//! The native register machine: unboxed register banks and a monomorphic
//! instruction set. This is the execution substrate standing in for the
//! paper's LLVM-JITed native code (DESIGN.md §1).

use std::rc::Rc;
use wolfram_expr::Expr;
use wolfram_interp::Interpreter;
use wolfram_runtime::checked;
use wolfram_runtime::{AbortSignal, FunctionValue, RuntimeError, Tensor, TensorData, Value};

/// Register bank selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bank {
    /// Machine integers and booleans (0/1).
    I,
    /// Machine reals.
    F,
    /// Machine complex numbers.
    C,
    /// Managed values (tensors, strings, expressions, closures).
    V,
}

/// A typed register reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Which bank.
    pub bank: Bank,
    /// Index within the bank.
    pub ix: u32,
}

impl Slot {
    /// Constructs a slot.
    pub fn new(bank: Bank, ix: u32) -> Self {
        Slot { bank, ix }
    }
}

/// Integer binary opcodes (comparisons produce 0/1 in the integer bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IntOp {
    Add, Sub, Mul, Quot, Mod, Pow, Min, Max, Gcd,
    BitAnd, BitOr, BitXor, Shl, Shr,
    Lt, Le, Gt, Ge, Eq, Ne,
    And, Or,
}

/// Integer unary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IntUnOp {
    Neg, Abs, Not, Sign, Factorial,
}

/// Real binary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FltOp {
    Add, Sub, Mul, Div, Pow, Mod, Min, Max, ArcTan2,
}

/// Real unary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FltUnOp {
    Neg, Abs, Sqrt, Sin, Cos, Tan, Exp, Log, ArcTan, ArcSin, ArcCos, Sign,
}

/// Comparison codes shared by float compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpCode {
    Lt, Le, Gt, Ge, Eq, Ne,
}

/// Complex binary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CpxOp {
    Add, Sub, Mul, Div,
}

/// Tensor element kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ElemKind {
    I64, F64, C64,
}

/// Element-wise tensor opcodes (rank-1, same shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TenOp {
    Add, Sub, Mul,
}

/// Symbolic (Expression) binary opcodes — "threaded interpretation" (§4.5):
/// executed against the hosting engine without full top-level evaluation
/// re-entry per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ExprOp {
    Plus, Times, Subtract, Power,
}

/// A native machine instruction. Operand indices refer to the bank implied
/// by the opcode; all type resolution happened at compile time.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum RegOp {
    LdcI { d: u32, v: i64 },
    LdcF { d: u32, v: f64 },
    LdcC { d: u32, re: f64, im: f64 },
    LdcV { d: u32, v: Value },
    /// Loads a constant array by deep copy (the "non-optimal handling of
    /// constant arrays" ablation, §6: every load re-materializes the data).
    LdcArrayCopy { d: u32, v: Value },
    MovI { d: u32, s: u32 },
    MovF { d: u32, s: u32 },
    MovC { d: u32, s: u32 },
    MovV { d: u32, s: u32 },
    /// Moves a managed value out of a dead register (the compiler's
    /// copy/live analysis proved `s` is never read again, F5): the source
    /// slot is left Null so reference counts stay minimal and in-place
    /// mutation needs no copy.
    TakeV { d: u32, s: u32 },
    IntBin { op: IntOp, d: u32, a: u32, b: u32 },
    IntBinImm { op: IntOp, d: u32, a: u32, imm: i64 },
    IntUn { op: IntUnOp, d: u32, s: u32 },
    PowModI { d: u32, a: u32, b: u32, m: u32 },
    FltBin { op: FltOp, d: u32, a: u32, b: u32 },
    FltBinImm { op: FltOp, d: u32, a: u32, imm: f64 },
    FltCmp { op: CmpCode, d: u32, a: u32, b: u32 },
    FltUn { op: FltUnOp, d: u32, s: u32 },
    FloorFI { d: u32, s: u32 },
    CeilFI { d: u32, s: u32 },
    RoundFI { d: u32, s: u32 },
    IntToFlt { d: u32, s: u32 },
    IntToCpx { d: u32, s: u32 },
    FltToCpx { d: u32, s: u32 },
    CpxBin { op: CpxOp, d: u32, a: u32, b: u32 },
    CpxPowI { d: u32, a: u32, e: u32 },
    CpxAbs { d: u32, s: u32 },
    CpxMake { d: u32, re: u32, im: u32 },
    CpxRe { d: u32, s: u32 },
    CpxIm { d: u32, s: u32 },
    CpxConj { d: u32, s: u32 },
    CpxEq { d: u32, a: u32, b: u32 },
    TenLen { d: u32, t: u32 },
    TenPart1 { kind: ElemKind, d: u32, t: u32, i: u32 },
    TenPart2 { kind: ElemKind, d: u32, t: u32, i: u32, j: u32 },
    TenSet1 { kind: ElemKind, t: u32, i: u32, v: u32 },
    TenSet2 { kind: ElemKind, t: u32, i: u32, j: u32, v: u32 },
    TenFill1 { kind: ElemKind, d: u32, c: u32, n: u32 },
    TenFill2 { kind: ElemKind, d: u32, c: u32, n1: u32, n2: u32 },
    TenBin { op: TenOp, d: u32, a: u32, b: u32 },
    /// Tensor (+) scalar broadcast; `rev` computes `scalar (op) tensor`.
    TenScalar { op: TenOp, kind: ElemKind, d: u32, t: u32, s: u32, rev: bool },
    TenSetRow { t: u32, i: u32, row: u32 },
    TenFromList { kind: ElemKind, d: u32, items: Vec<u32> },
    DotVecF { d: u32, a: u32, b: u32 },
    DotVecI { d: u32, a: u32, b: u32 },
    DotMat { d: u32, a: u32, b: u32 },
    DotMatVec { d: u32, a: u32, b: u32 },
    StrLen { d: u32, s: u32 },
    StrToCodes { d: u32, s: u32 },
    StrFromCodes { d: u32, s: u32 },
    StrJoin { d: u32, a: u32, b: u32 },
    ExprBin { op: ExprOp, d: u32, a: u32, b: u32 },
    /// Symbolic unary application `head[a]`, normalized by the hosting
    /// engine (like [`RegOp::ExprBin`]).
    ExprUnary { head: Rc<str>, d: u32, a: u32 },
    BoolToExpr { d: u32, s: u32 },
    BoxIV { d: u32, s: u32 },
    BoxFV { d: u32, s: u32 },
    BoxCV { d: u32, s: u32 },
    RndUnit { d: u32 },
    RndRange { d: u32, a: u32, b: u32 },
    MakeClosure { d: u32, f: u32, captures: Vec<Slot> },
    CallFunc { f: u32, args: Vec<Slot>, ret: Slot },
    CallValue { fv: u32, args: Vec<Slot>, ret: Slot },
    CallKernel { head: Rc<str>, args: Vec<Slot>, ret: Slot },
    Jmp { pc: u32 },
    Brz { c: u32, pc: u32 },
    /// Fused compare-and-branch: jump to `pc` when the integer comparison
    /// is false.
    BrCmpIFalse { op: IntOp, a: u32, b: u32, pc: u32 },
    /// Fused compare-and-branch on reals.
    BrCmpFFalse { op: CmpCode, a: u32, b: u32, pc: u32 },
    AbortCheck,
    Acquire { v: u32 },
    Release { v: u32 },
    Ret { s: Slot },
    RetNull,
}

/// A compiled native function.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeFunc {
    /// Mangled name.
    pub name: String,
    /// Instruction stream.
    pub code: Vec<RegOp>,
    /// Bank sizes.
    pub n_int: u32,
    /// Real bank size.
    pub n_flt: u32,
    /// Complex bank size.
    pub n_cpx: u32,
    /// Value bank size.
    pub n_val: u32,
    /// Where incoming arguments are stored, in order.
    pub params: Vec<Slot>,
}

/// A compiled native program (a lowered program module).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NativeProgram {
    /// Functions; index 0 is the entry (`Main`).
    pub funcs: Vec<NativeFunc>,
}

impl NativeProgram {
    /// Finds a function by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }
}

/// A dynamically-typed argument/result crossing a function boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Integer / boolean.
    I(i64),
    /// Real.
    F(f64),
    /// Complex.
    C(f64, f64),
    /// Managed value.
    V(Value),
}

impl ArgVal {
    /// Boxes into a runtime [`Value`]. `bool_hint` renders integers as
    /// booleans when the static type said so.
    pub fn into_value(self, bool_hint: bool) -> Value {
        match self {
            ArgVal::I(v) => {
                if bool_hint {
                    Value::Bool(v != 0)
                } else {
                    Value::I64(v)
                }
            }
            ArgVal::F(v) => Value::F64(v),
            ArgVal::C(re, im) => Value::Complex(re, im),
            ArgVal::V(v) => v,
        }
    }

    /// Unboxes a runtime value into the bank expected by `slot`.
    ///
    /// # Errors
    ///
    /// Type error when the value does not fit the bank.
    pub fn from_value(v: &Value, bank: Bank) -> Result<ArgVal, RuntimeError> {
        Ok(match bank {
            Bank::I => match v {
                Value::I64(x) => ArgVal::I(*x),
                Value::Bool(b) => ArgVal::I(*b as i64),
                other => {
                    return Err(RuntimeError::Type(format!(
                        "expected machine integer, got {}",
                        other.type_name()
                    )))
                }
            },
            Bank::F => ArgVal::F(v.expect_f64()?),
            Bank::C => {
                let (re, im) = v.expect_complex()?;
                ArgVal::C(re, im)
            }
            Bank::V => ArgVal::V(v.clone()),
        })
    }
}

struct Frame {
    ints: Vec<i64>,
    flts: Vec<f64>,
    cpxs: Vec<(f64, f64)>,
    vals: Vec<Value>,
    /// Which value slots currently hold an acquired (refcount-bracketed)
    /// value — keeps acquire/release accounting balanced across `TakeV`.
    acquired: Vec<bool>,
}

impl Frame {
    fn new(f: &NativeFunc) -> Self {
        Frame {
            ints: vec![0; f.n_int as usize],
            flts: vec![0.0; f.n_flt as usize],
            cpxs: vec![(0.0, 0.0); f.n_cpx as usize],
            vals: vec![Value::Null; f.n_val as usize],
            acquired: vec![false; f.n_val as usize],
        }
    }

    /// Re-shapes a pooled frame for `f`, dropping any held values.
    fn reset(&mut self, f: &NativeFunc) {
        self.ints.clear();
        self.ints.resize(f.n_int as usize, 0);
        self.flts.clear();
        self.flts.resize(f.n_flt as usize, 0.0);
        self.cpxs.clear();
        self.cpxs.resize(f.n_cpx as usize, (0.0, 0.0));
        self.vals.clear();
        self.vals.resize(f.n_val as usize, Value::Null);
        self.acquired.clear();
        self.acquired.resize(f.n_val as usize, false);
    }

    fn store(&mut self, slot: Slot, v: ArgVal) -> Result<(), RuntimeError> {
        match (slot.bank, v) {
            (Bank::I, ArgVal::I(x)) => self.ints[slot.ix as usize] = x,
            (Bank::F, ArgVal::F(x)) => self.flts[slot.ix as usize] = x,
            (Bank::F, ArgVal::I(x)) => self.flts[slot.ix as usize] = x as f64,
            (Bank::C, ArgVal::C(re, im)) => self.cpxs[slot.ix as usize] = (re, im),
            (Bank::C, ArgVal::F(x)) => self.cpxs[slot.ix as usize] = (x, 0.0),
            (Bank::C, ArgVal::I(x)) => self.cpxs[slot.ix as usize] = (x as f64, 0.0),
            (Bank::V, ArgVal::V(v)) => self.vals[slot.ix as usize] = v,
            (Bank::V, other) => self.vals[slot.ix as usize] = other.into_value(false),
            (bank, v) => {
                return Err(RuntimeError::Type(format!("cannot store {v:?} into {bank:?} bank")))
            }
        }
        Ok(())
    }

    fn load(&self, slot: Slot) -> ArgVal {
        match slot.bank {
            Bank::I => ArgVal::I(self.ints[slot.ix as usize]),
            Bank::F => ArgVal::F(self.flts[slot.ix as usize]),
            Bank::C => {
                let (re, im) = self.cpxs[slot.ix as usize];
                ArgVal::C(re, im)
            }
            Bank::V => ArgVal::V(self.vals[slot.ix as usize].clone()),
        }
    }
}

/// The execution context: abort signal and the deterministic RNG. The
/// hosting engine (for kernel escapes and symbolic ops, absent in
/// standalone mode, F10) is threaded through each call as a reborrowable
/// parameter so installed compiled functions can re-enter the interpreter.
pub struct Machine {
    /// Abort flag checked by `AbortCheck` instructions.
    pub abort: AbortSignal,
    rng: u64,
    /// Recycled call frames (indirect calls in tight loops — the QSort
    /// comparator — would otherwise allocate per call).
    frame_pool: Vec<Frame>,
}

impl Machine {
    /// A machine with a private abort signal (standalone mode).
    pub fn standalone() -> Self {
        Machine { abort: AbortSignal::new(), rng: 0x2545F4914F6CDD1D, frame_pool: Vec::new() }
    }

    /// Seeds the machine RNG.
    pub fn seed(&mut self, seed: u64) {
        self.rng = seed | 1;
    }

    fn next_f64(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Calls function `fix` of `prog` with marshaled arguments, standalone.
    ///
    /// # Errors
    ///
    /// Numeric exceptions, aborts, and type errors propagate to the caller
    /// (the compiled-code wrapper decides about soft fallback).
    pub fn call(
        &mut self,
        prog: &NativeProgram,
        fix: usize,
        args: Vec<ArgVal>,
    ) -> Result<ArgVal, RuntimeError> {
        self.call_with_engine(prog, fix, args, None)
    }

    /// Calls with a hosting engine for kernel escapes and symbolic ops.
    ///
    /// # Errors
    ///
    /// As for [`Machine::call`].
    pub fn call_with_engine(
        &mut self,
        prog: &NativeProgram,
        fix: usize,
        args: Vec<ArgVal>,
        mut engine: Option<&mut Interpreter>,
    ) -> Result<ArgVal, RuntimeError> {
        let func = &prog.funcs[fix];
        if args.len() != func.params.len() {
            return Err(RuntimeError::Type(format!(
                "{} expected {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut frame = match self.frame_pool.pop() {
            Some(mut fr) => {
                fr.reset(func);
                fr
            }
            None => Frame::new(func),
        };
        for (slot, arg) in func.params.iter().zip(args) {
            frame.store(*slot, arg)?;
        }
        let out = self.run(prog, func, &mut frame, &mut engine);
        // Drop held values eagerly, then recycle the allocation.
        frame.vals.clear();
        if self.frame_pool.len() < 64 {
            self.frame_pool.push(frame);
        }
        out
    }

    #[allow(clippy::too_many_lines)]
    fn run(
        &mut self,
        prog: &NativeProgram,
        func: &NativeFunc,
        fr: &mut Frame,
        engine: &mut Option<&mut Interpreter>,
    ) -> Result<ArgVal, RuntimeError> {
        let code = &func.code;
        let mut pc = 0usize;
        loop {
            let op = &code[pc];
            pc += 1;
            match op {
                RegOp::LdcI { d, v } => fr.ints[*d as usize] = *v,
                RegOp::LdcF { d, v } => fr.flts[*d as usize] = *v,
                RegOp::LdcC { d, re, im } => fr.cpxs[*d as usize] = (*re, *im),
                RegOp::LdcV { d, v } => fr.vals[*d as usize] = v.clone(),
                RegOp::LdcArrayCopy { d, v } => {
                    fr.vals[*d as usize] = match v {
                        Value::Tensor(t) => {
                            let data = t.data().clone();
                            Value::Tensor(Tensor::with_shape(t.shape().to_vec(), data)?)
                        }
                        other => other.clone(),
                    };
                }
                RegOp::MovI { d, s } => fr.ints[*d as usize] = fr.ints[*s as usize],
                RegOp::MovF { d, s } => fr.flts[*d as usize] = fr.flts[*s as usize],
                RegOp::MovC { d, s } => fr.cpxs[*d as usize] = fr.cpxs[*s as usize],
                RegOp::MovV { d, s } => fr.vals[*d as usize] = fr.vals[*s as usize].clone(),
                RegOp::TakeV { d, s } => {
                    fr.vals[*d as usize] =
                        std::mem::replace(&mut fr.vals[*s as usize], Value::Null);
                }
                RegOp::IntBin { op, d, a, b } => {
                    let (x, y) = (fr.ints[*a as usize], fr.ints[*b as usize]);
                    fr.ints[*d as usize] = int_bin(*op, x, y)?;
                }
                RegOp::IntBinImm { op, d, a, imm } => {
                    let x = fr.ints[*a as usize];
                    fr.ints[*d as usize] = int_bin(*op, x, *imm)?;
                }
                RegOp::FltBinImm { op, d, a, imm } => {
                    let x = fr.flts[*a as usize];
                    fr.flts[*d as usize] = match op {
                        FltOp::Add => x + imm,
                        FltOp::Sub => x - imm,
                        FltOp::Mul => x * imm,
                        FltOp::Div => {
                            if *imm == 0.0 {
                                return Err(RuntimeError::DivideByZero);
                            }
                            x / imm
                        }
                        FltOp::Pow => x.powf(*imm),
                        FltOp::Mod => {
                            if *imm == 0.0 {
                                return Err(RuntimeError::DivideByZero);
                            }
                            x - imm * (x / imm).floor()
                        }
                        FltOp::Min => x.min(*imm),
                        FltOp::Max => x.max(*imm),
                        FltOp::ArcTan2 => imm.atan2(x),
                    };
                }
                RegOp::IntUn { op, d, s } => {
                    let x = fr.ints[*s as usize];
                    fr.ints[*d as usize] = match op {
                        IntUnOp::Neg => checked::neg_i64(x)?,
                        IntUnOp::Abs => checked::abs_i64(x)?,
                        IntUnOp::Not => (x == 0) as i64,
                        IntUnOp::Sign => x.signum(),
                        IntUnOp::Factorial => {
                            if x < 0 {
                                return Err(RuntimeError::Type(
                                    "Factorial of a negative machine integer".into(),
                                ));
                            }
                            let mut acc: i64 = 1;
                            for k in 2..=x {
                                acc = checked::mul_i64(acc, k)?;
                            }
                            acc
                        }
                    };
                }
                RegOp::PowModI { d, a, b, m } => {
                    let (x, y, md) =
                        (fr.ints[*a as usize], fr.ints[*b as usize], fr.ints[*m as usize]);
                    fr.ints[*d as usize] = pow_mod_i64(x, y, md)?;
                }
                RegOp::FltBin { op, d, a, b } => {
                    let (x, y) = (fr.flts[*a as usize], fr.flts[*b as usize]);
                    fr.flts[*d as usize] = match op {
                        FltOp::Add => x + y,
                        FltOp::Sub => x - y,
                        FltOp::Mul => x * y,
                        FltOp::Div => {
                            if y == 0.0 {
                                return Err(RuntimeError::DivideByZero);
                            }
                            x / y
                        }
                        FltOp::Pow => x.powf(y),
                        FltOp::Mod => {
                            if y == 0.0 {
                                return Err(RuntimeError::DivideByZero);
                            }
                            x - y * (x / y).floor()
                        }
                        FltOp::Min => x.min(y),
                        FltOp::Max => x.max(y),
                        FltOp::ArcTan2 => y.atan2(x),
                    };
                }
                RegOp::FltCmp { op, d, a, b } => {
                    let (x, y) = (fr.flts[*a as usize], fr.flts[*b as usize]);
                    fr.ints[*d as usize] = match op {
                        CmpCode::Lt => x < y,
                        CmpCode::Le => x <= y,
                        CmpCode::Gt => x > y,
                        CmpCode::Ge => x >= y,
                        CmpCode::Eq => x == y,
                        CmpCode::Ne => x != y,
                    } as i64;
                }
                RegOp::FltUn { op, d, s } => {
                    let x = fr.flts[*s as usize];
                    fr.flts[*d as usize] = match op {
                        FltUnOp::Neg => -x,
                        FltUnOp::Abs => x.abs(),
                        FltUnOp::Sqrt => x.sqrt(),
                        FltUnOp::Sin => x.sin(),
                        FltUnOp::Cos => x.cos(),
                        FltUnOp::Tan => x.tan(),
                        FltUnOp::Exp => x.exp(),
                        FltUnOp::Log => x.ln(),
                        FltUnOp::ArcTan => x.atan(),
                        FltUnOp::ArcSin => x.asin(),
                        FltUnOp::ArcCos => x.acos(),
                        FltUnOp::Sign => {
                            if x > 0.0 {
                                1.0
                            } else if x < 0.0 {
                                -1.0
                            } else {
                                0.0
                            }
                        }
                    };
                }
                RegOp::FloorFI { d, s } => fr.ints[*d as usize] = fr.flts[*s as usize].floor() as i64,
                RegOp::CeilFI { d, s } => fr.ints[*d as usize] = fr.flts[*s as usize].ceil() as i64,
                RegOp::RoundFI { d, s } => {
                    let v = fr.flts[*s as usize];
                    let r = v.round();
                    let r = if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                        r - v.signum()
                    } else {
                        r
                    };
                    fr.ints[*d as usize] = r as i64;
                }
                RegOp::IntToFlt { d, s } => fr.flts[*d as usize] = fr.ints[*s as usize] as f64,
                RegOp::IntToCpx { d, s } => {
                    fr.cpxs[*d as usize] = (fr.ints[*s as usize] as f64, 0.0)
                }
                RegOp::FltToCpx { d, s } => fr.cpxs[*d as usize] = (fr.flts[*s as usize], 0.0),
                RegOp::CpxBin { op, d, a, b } => {
                    let (x, y) = (fr.cpxs[*a as usize], fr.cpxs[*b as usize]);
                    fr.cpxs[*d as usize] = match op {
                        CpxOp::Add => (x.0 + y.0, x.1 + y.1),
                        CpxOp::Sub => (x.0 - y.0, x.1 - y.1),
                        CpxOp::Mul => checked::mul_complex(x, y),
                        CpxOp::Div => checked::div_complex(x, y),
                    };
                }
                RegOp::CpxPowI { d, a, e } => {
                    let base = fr.cpxs[*a as usize];
                    let exp = fr.ints[*e as usize];
                    let mut acc = (1.0f64, 0.0f64);
                    for _ in 0..exp.unsigned_abs() {
                        acc = checked::mul_complex(acc, base);
                    }
                    if exp < 0 {
                        acc = checked::div_complex((1.0, 0.0), acc);
                    }
                    fr.cpxs[*d as usize] = acc;
                }
                RegOp::CpxAbs { d, s } => {
                    let (re, im) = fr.cpxs[*s as usize];
                    fr.flts[*d as usize] = re.hypot(im);
                }
                RegOp::CpxMake { d, re, im } => {
                    fr.cpxs[*d as usize] = (fr.flts[*re as usize], fr.flts[*im as usize])
                }
                RegOp::CpxRe { d, s } => fr.flts[*d as usize] = fr.cpxs[*s as usize].0,
                RegOp::CpxIm { d, s } => fr.flts[*d as usize] = fr.cpxs[*s as usize].1,
                RegOp::CpxConj { d, s } => {
                    let (re, im) = fr.cpxs[*s as usize];
                    fr.cpxs[*d as usize] = (re, -im);
                }
                RegOp::CpxEq { d, a, b } => {
                    fr.ints[*d as usize] = (fr.cpxs[*a as usize] == fr.cpxs[*b as usize]) as i64;
                }
                RegOp::TenLen { d, t } => {
                    let t = fr.vals[*t as usize].expect_tensor()?;
                    fr.ints[*d as usize] = t.length() as i64;
                }
                RegOp::TenPart1 { kind, d, t, i } => {
                    let ix = fr.ints[*i as usize];
                    let t = fr.vals[*t as usize].expect_tensor()?;
                    let off = t.resolve_index(ix)?;
                    match (kind, t.data()) {
                        (ElemKind::I64, TensorData::I64(v)) => fr.ints[*d as usize] = v[off],
                        (ElemKind::F64, TensorData::F64(v)) => fr.flts[*d as usize] = v[off],
                        (ElemKind::F64, TensorData::I64(v)) => {
                            fr.flts[*d as usize] = v[off] as f64
                        }
                        (ElemKind::C64, TensorData::Complex(v)) => fr.cpxs[*d as usize] = v[off],
                        _ => {
                            return Err(RuntimeError::Type("tensor element kind mismatch".into()))
                        }
                    }
                }
                RegOp::TenPart2 { kind, d, t, i, j } => {
                    let (ix, jx) = (fr.ints[*i as usize], fr.ints[*j as usize]);
                    let t = fr.vals[*t as usize].expect_tensor()?;
                    if t.rank() != 2 {
                        return Err(RuntimeError::Type("Part[_,i,j] on non-matrix".into()));
                    }
                    let cols = t.shape()[1];
                    let r = checked::resolve_part_index(ix, t.shape()[0])?;
                    let c = checked::resolve_part_index(jx, cols)?;
                    let off = r * cols + c;
                    match (kind, t.data()) {
                        (ElemKind::I64, TensorData::I64(v)) => fr.ints[*d as usize] = v[off],
                        (ElemKind::F64, TensorData::F64(v)) => fr.flts[*d as usize] = v[off],
                        (ElemKind::F64, TensorData::I64(v)) => {
                            fr.flts[*d as usize] = v[off] as f64
                        }
                        (ElemKind::C64, TensorData::Complex(v)) => fr.cpxs[*d as usize] = v[off],
                        _ => {
                            return Err(RuntimeError::Type("tensor element kind mismatch".into()))
                        }
                    }
                }
                RegOp::TenSet1 { kind, t, i, v } => {
                    let ix = fr.ints[*i as usize];
                    let value = match kind {
                        ElemKind::I64 => ArgVal::I(fr.ints[*v as usize]),
                        ElemKind::F64 => ArgVal::F(fr.flts[*v as usize]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*v as usize];
                            ArgVal::C(re, im)
                        }
                    };
                    let Value::Tensor(tensor) = &mut fr.vals[*t as usize] else {
                        return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                    };
                    let off = tensor.resolve_index(ix)?;
                    tensor_store(tensor, off, value)?;
                }
                RegOp::TenSet2 { kind, t, i, j, v } => {
                    let (ix, jx) = (fr.ints[*i as usize], fr.ints[*j as usize]);
                    let value = match kind {
                        ElemKind::I64 => ArgVal::I(fr.ints[*v as usize]),
                        ElemKind::F64 => ArgVal::F(fr.flts[*v as usize]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*v as usize];
                            ArgVal::C(re, im)
                        }
                    };
                    let Value::Tensor(tensor) = &mut fr.vals[*t as usize] else {
                        return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                    };
                    if tensor.rank() != 2 {
                        return Err(RuntimeError::Type("SetPart2 on non-matrix".into()));
                    }
                    let cols = tensor.shape()[1];
                    let r = checked::resolve_part_index(ix, tensor.shape()[0])?;
                    let c = checked::resolve_part_index(jx, cols)?;
                    tensor_store(tensor, r * cols + c, value)?;
                }
                RegOp::TenFill1 { kind, d, c, n } => {
                    let n = fr.ints[*n as usize].max(0) as usize;
                    let data = match kind {
                        ElemKind::I64 => TensorData::I64(vec![fr.ints[*c as usize]; n]),
                        ElemKind::F64 => TensorData::F64(vec![fr.flts[*c as usize]; n]),
                        ElemKind::C64 => TensorData::Complex(vec![fr.cpxs[*c as usize]; n]),
                    };
                    fr.vals[*d as usize] = Value::Tensor(Tensor::with_shape(vec![n], data)?);
                }
                RegOp::TenFill2 { kind, d, c, n1, n2 } => {
                    let n1v = fr.ints[*n1 as usize].max(0) as usize;
                    let n2v = fr.ints[*n2 as usize].max(0) as usize;
                    let total = n1v * n2v;
                    let data = match kind {
                        ElemKind::I64 => TensorData::I64(vec![fr.ints[*c as usize]; total]),
                        ElemKind::F64 => TensorData::F64(vec![fr.flts[*c as usize]; total]),
                        ElemKind::C64 => TensorData::Complex(vec![fr.cpxs[*c as usize]; total]),
                    };
                    fr.vals[*d as usize] =
                        Value::Tensor(Tensor::with_shape(vec![n1v, n2v], data)?);
                }
                RegOp::TenBin { op, d, a, b } => {
                    let ta = fr.vals[*a as usize].expect_tensor()?;
                    let tb = fr.vals[*b as usize].expect_tensor()?;
                    fr.vals[*d as usize] = Value::Tensor(tensor_elementwise(*op, ta, tb)?);
                }
                RegOp::TenScalar { op, kind, d, t, s, rev } => {
                    let sv = match kind {
                        ElemKind::I64 => Value::I64(fr.ints[*s as usize]),
                        ElemKind::F64 => Value::F64(fr.flts[*s as usize]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*s as usize];
                            Value::Complex(re, im)
                        }
                    };
                    let ten = fr.vals[*t as usize].expect_tensor()?;
                    fr.vals[*d as usize] =
                        Value::Tensor(tensor_scalar_elementwise(*op, ten, &sv, *rev)?);
                }
                RegOp::TenSetRow { t, i, row } => {
                    let ix = fr.ints[*i as usize];
                    let row_t = fr.vals[*row as usize].expect_tensor()?.clone();
                    let Value::Tensor(tensor) = &mut fr.vals[*t as usize] else {
                        return Err(RuntimeError::Type("SetRow on non-tensor".into()));
                    };
                    if tensor.rank() != 2 || row_t.rank() != 1 {
                        return Err(RuntimeError::Type("SetRow rank mismatch".into()));
                    }
                    let cols = tensor.shape()[1];
                    if row_t.length() != cols {
                        return Err(RuntimeError::Type("SetRow width mismatch".into()));
                    }
                    let r = checked::resolve_part_index(ix, tensor.shape()[0])?;
                    match (tensor.data_mut(), row_t.data()) {
                        (TensorData::F64(dst), TensorData::F64(src)) => {
                            dst[r * cols..(r + 1) * cols].copy_from_slice(src);
                        }
                        (TensorData::I64(dst), TensorData::I64(src)) => {
                            dst[r * cols..(r + 1) * cols].copy_from_slice(src);
                        }
                        (TensorData::Complex(dst), TensorData::Complex(src)) => {
                            dst[r * cols..(r + 1) * cols].copy_from_slice(src);
                        }
                        _ => return Err(RuntimeError::Type("SetRow element mismatch".into())),
                    }
                }
                RegOp::TenFromList { kind, d, items } => {
                    let data = match kind {
                        ElemKind::I64 => TensorData::I64(
                            items.iter().map(|&s| fr.ints[s as usize]).collect(),
                        ),
                        ElemKind::F64 => TensorData::F64(
                            items.iter().map(|&s| fr.flts[s as usize]).collect(),
                        ),
                        ElemKind::C64 => TensorData::Complex(
                            items.iter().map(|&s| fr.cpxs[s as usize]).collect(),
                        ),
                    };
                    fr.vals[*d as usize] =
                        Value::Tensor(Tensor::with_shape(vec![items.len()], data)?);
                }
                RegOp::DotVecF { d, a, b } => {
                    let ta = fr.vals[*a as usize].expect_tensor()?.to_f64_tensor();
                    let tb = fr.vals[*b as usize].expect_tensor()?.to_f64_tensor();
                    let (x, y) = (ta.as_f64().expect("promoted"), tb.as_f64().expect("promoted"));
                    if x.len() != y.len() {
                        return Err(RuntimeError::Type("Dot length mismatch".into()));
                    }
                    fr.flts[*d as usize] = wolfram_runtime::linalg::ddot(x, y);
                }
                RegOp::DotVecI { d, a, b } => {
                    let ta = fr.vals[*a as usize].expect_tensor()?;
                    let tb = fr.vals[*b as usize].expect_tensor()?;
                    let (Some(x), Some(y)) = (ta.as_i64(), tb.as_i64()) else {
                        return Err(RuntimeError::Type("integer Dot on non-integer".into()));
                    };
                    if x.len() != y.len() {
                        return Err(RuntimeError::Type("Dot length mismatch".into()));
                    }
                    let mut acc = 0i64;
                    for (p, q) in x.iter().zip(y) {
                        acc = checked::add_i64(acc, checked::mul_i64(*p, *q)?)?;
                    }
                    fr.ints[*d as usize] = acc;
                }
                RegOp::DotMat { d, a, b } => {
                    let ta = fr.vals[*a as usize].expect_tensor()?.to_f64_tensor();
                    let tb = fr.vals[*b as usize].expect_tensor()?.to_f64_tensor();
                    if ta.rank() != 2 || tb.rank() != 2 || ta.shape()[1] != tb.shape()[0] {
                        return Err(RuntimeError::Type("Dot shape mismatch".into()));
                    }
                    let (m, k, n) = (ta.shape()[0], ta.shape()[1], tb.shape()[1]);
                    let mut out = vec![0.0; m * n];
                    wolfram_runtime::linalg::dgemm(
                        ta.as_f64().expect("promoted"),
                        tb.as_f64().expect("promoted"),
                        &mut out,
                        m,
                        k,
                        n,
                    );
                    fr.vals[*d as usize] =
                        Value::Tensor(Tensor::with_shape(vec![m, n], TensorData::F64(out))?);
                }
                RegOp::DotMatVec { d, a, b } => {
                    let ta = fr.vals[*a as usize].expect_tensor()?.to_f64_tensor();
                    let tb = fr.vals[*b as usize].expect_tensor()?.to_f64_tensor();
                    if ta.rank() != 2 || tb.rank() != 1 || ta.shape()[1] != tb.length() {
                        return Err(RuntimeError::Type("Dot shape mismatch".into()));
                    }
                    let (m, n) = (ta.shape()[0], ta.shape()[1]);
                    let mut out = vec![0.0; m];
                    wolfram_runtime::linalg::dgemv(
                        ta.as_f64().expect("promoted"),
                        tb.as_f64().expect("promoted"),
                        &mut out,
                        m,
                        n,
                    );
                    fr.vals[*d as usize] = Value::Tensor(Tensor::from_f64(out));
                }
                RegOp::StrLen { d, s } => {
                    let s = fr.vals[*s as usize].expect_str()?;
                    fr.ints[*d as usize] = s.chars().count() as i64;
                }
                RegOp::StrToCodes { d, s } => {
                    let s = fr.vals[*s as usize].expect_str()?;
                    let codes: Vec<i64> = s.bytes().map(|b| b as i64).collect();
                    fr.vals[*d as usize] = Value::Tensor(Tensor::from_i64(codes));
                }
                RegOp::StrFromCodes { d, s } => {
                    let t = fr.vals[*s as usize].expect_tensor()?;
                    let Some(codes) = t.as_i64() else {
                        return Err(RuntimeError::Type("FromCharacterCode codes".into()));
                    };
                    let mut out = String::new();
                    for &c in codes {
                        let ch = u32::try_from(c)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or_else(|| RuntimeError::Type(format!("invalid char code {c}")))?;
                        out.push(ch);
                    }
                    fr.vals[*d as usize] = Value::Str(Rc::new(out));
                }
                RegOp::StrJoin { d, a, b } => {
                    let x = fr.vals[*a as usize].expect_str()?;
                    let y = fr.vals[*b as usize].expect_str()?;
                    let mut out = String::with_capacity(x.len() + y.len());
                    out.push_str(x);
                    out.push_str(y);
                    fr.vals[*d as usize] = Value::Str(Rc::new(out));
                }
                RegOp::ExprBin { op, d, a, b } => {
                    let x = fr.vals[*a as usize].to_expr();
                    let y = fr.vals[*b as usize].to_expr();
                    let head = match op {
                        ExprOp::Plus => "Plus",
                        ExprOp::Times => "Times",
                        ExprOp::Subtract => "Subtract",
                        ExprOp::Power => "Power",
                    };
                    let combined = Expr::call(head, [x, y]);
                    // Threaded interpretation: one normalization step via
                    // the hosting engine's evaluator.
                    let result = match engine.as_deref_mut() {
                        Some(eng) => eng.eval(&combined)?,
                        None => {
                            return Err(RuntimeError::Other(
                                "symbolic operations require a hosting Wolfram Engine".into(),
                            ))
                        }
                    };
                    fr.vals[*d as usize] = Value::Expr(result);
                }
                RegOp::ExprUnary { head, d, a } => {
                    let x = fr.vals[*a as usize].to_expr();
                    let combined = Expr::call(head, [x]);
                    let result = match engine.as_deref_mut() {
                        Some(eng) => eng.eval(&combined)?,
                        None => {
                            return Err(RuntimeError::Other(
                                "symbolic operations require a hosting Wolfram Engine".into(),
                            ))
                        }
                    };
                    fr.vals[*d as usize] = Value::Expr(result);
                }
                RegOp::BoolToExpr { d, s } => {
                    fr.vals[*d as usize] = Value::Expr(Expr::bool(fr.ints[*s as usize] != 0));
                }
                RegOp::BoxIV { d, s } => {
                    fr.vals[*d as usize] = Value::I64(fr.ints[*s as usize]);
                }
                RegOp::BoxFV { d, s } => {
                    fr.vals[*d as usize] = Value::F64(fr.flts[*s as usize]);
                }
                RegOp::BoxCV { d, s } => {
                    let (re, im) = fr.cpxs[*s as usize];
                    fr.vals[*d as usize] = Value::Complex(re, im);
                }
                RegOp::RndUnit { d } => fr.flts[*d as usize] = self.next_f64(),
                RegOp::RndRange { d, a, b } => {
                    let (lo, hi) = (fr.flts[*a as usize], fr.flts[*b as usize]);
                    fr.flts[*d as usize] = lo + (hi - lo) * self.next_f64();
                }
                RegOp::MakeClosure { d, f, captures } => {
                    let caps: Vec<Value> = captures
                        .iter()
                        .map(|s| fr.load(*s).into_value(false))
                        .collect();
                    fr.vals[*d as usize] = Value::Function(Rc::new(FunctionValue {
                        name: Rc::from(prog.funcs[*f as usize].name.as_str()),
                        index: *f as usize,
                        captures: caps,
                    }));
                }
                RegOp::CallFunc { f, args, ret } => {
                    let argv: Vec<ArgVal> = args.iter().map(|s| fr.load(*s)).collect();
                    let out = self.call_with_engine(prog, *f as usize, argv, engine.as_deref_mut())?;
                    fr.store(*ret, out)?;
                }
                RegOp::CallValue { fv, args, ret } => {
                    let fval = fr.vals[*fv as usize].expect_function()?.clone();
                    let mut argv: Vec<ArgVal> =
                        fval.captures.iter().map(|c| ArgVal::V(c.clone())).collect();
                    // Marshal each arg into the callee's expected bank.
                    let callee = &prog.funcs[fval.index];
                    let skip = argv.len();
                    for (s, param) in args.iter().zip(callee.params.iter().skip(skip)) {
                        let raw = fr.load(*s);
                        let v = match (param.bank, raw) {
                            (Bank::V, ArgVal::V(v)) => ArgVal::V(v),
                            (_, other) => other,
                        };
                        argv.push(v);
                    }
                    // Captures must be re-marshaled from boxed to banks.
                    let mut marshaled = Vec::with_capacity(argv.len());
                    for (v, param) in argv.into_iter().zip(callee.params.iter()) {
                        marshaled.push(match v {
                            ArgVal::V(boxed) if param.bank != Bank::V => {
                                ArgVal::from_value(&boxed, param.bank)?
                            }
                            other => other,
                        });
                    }
                    let out =
                        self.call_with_engine(prog, fval.index, marshaled, engine.as_deref_mut())?;
                    fr.store(*ret, out)?;
                }
                RegOp::CallKernel { head, args, ret } => {
                    let Some(eng) = engine.as_deref_mut() else {
                        return Err(RuntimeError::Other(
                            "KernelFunction requires a hosting Wolfram Engine (disabled in \
                             standalone mode)"
                                .into(),
                        ));
                    };
                    let arg_exprs: Vec<Expr> = args
                        .iter()
                        .map(|s| fr.load(*s).into_value(false).to_expr())
                        .collect();
                    let call = Expr::call(head, arg_exprs);
                    let result = eng.eval(&call)?;
                    fr.store(*ret, ArgVal::V(Value::from_expr(&result)))?;
                }
                RegOp::Jmp { pc: t } => pc = *t as usize,
                RegOp::Brz { c, pc: t } => {
                    if fr.ints[*c as usize] == 0 {
                        pc = *t as usize;
                    }
                }
                RegOp::BrCmpIFalse { op, a, b, pc: t } => {
                    let (x, y) = (fr.ints[*a as usize], fr.ints[*b as usize]);
                    let cond = match op {
                        IntOp::Lt => x < y,
                        IntOp::Le => x <= y,
                        IntOp::Gt => x > y,
                        IntOp::Ge => x >= y,
                        IntOp::Eq => x == y,
                        IntOp::Ne => x != y,
                        _ => int_bin(*op, x, y)? != 0,
                    };
                    if !cond {
                        pc = *t as usize;
                    }
                }
                RegOp::BrCmpFFalse { op, a, b, pc: t } => {
                    let (x, y) = (fr.flts[*a as usize], fr.flts[*b as usize]);
                    let cond = match op {
                        CmpCode::Lt => x < y,
                        CmpCode::Le => x <= y,
                        CmpCode::Gt => x > y,
                        CmpCode::Ge => x >= y,
                        CmpCode::Eq => x == y,
                        CmpCode::Ne => x != y,
                    };
                    if !cond {
                        pc = *t as usize;
                    }
                }
                RegOp::AbortCheck => self.abort.check()?,
                RegOp::Acquire { v } => {
                    if fr.vals[*v as usize].is_managed() {
                        wolfram_runtime::memory::record_acquire();
                        fr.acquired[*v as usize] = true;
                    }
                }
                RegOp::Release { v } => {
                    // Balanced with the acquire even if the value has been
                    // moved out of the slot meanwhile (TakeV).
                    if fr.acquired[*v as usize] {
                        wolfram_runtime::memory::record_release();
                        fr.acquired[*v as usize] = false;
                    }
                }
                RegOp::Ret { s } => return Ok(fr.load(*s)),
                RegOp::RetNull => return Ok(ArgVal::V(Value::Null)),
            }
        }
    }
}

fn int_bin(op: IntOp, x: i64, y: i64) -> Result<i64, RuntimeError> {
    Ok(match op {
        IntOp::Add => checked::add_i64(x, y)?,
        IntOp::Sub => checked::sub_i64(x, y)?,
        IntOp::Mul => checked::mul_i64(x, y)?,
        IntOp::Quot => {
            if y == 0 {
                return Err(RuntimeError::DivideByZero);
            }
            (x as f64 / y as f64).floor() as i64
        }
        IntOp::Mod => checked::mod_i64(x, y)?,
        IntOp::Pow => checked::pow_i64(x, y)?,
        IntOp::Min => x.min(y),
        IntOp::Max => x.max(y),
        IntOp::Gcd => {
            let (mut a, mut b) = (x.unsigned_abs(), y.unsigned_abs());
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a as i64
        }
        IntOp::BitAnd => x & y,
        IntOp::BitOr => x | y,
        IntOp::BitXor => x ^ y,
        IntOp::Shl => x.checked_shl(y as u32).ok_or(RuntimeError::IntegerOverflow)?,
        IntOp::Shr => x >> y.clamp(0, 63),
        IntOp::Lt => (x < y) as i64,
        IntOp::Le => (x <= y) as i64,
        IntOp::Gt => (x > y) as i64,
        IntOp::Ge => (x >= y) as i64,
        IntOp::Eq => (x == y) as i64,
        IntOp::Ne => (x != y) as i64,
        IntOp::And => ((x != 0) && (y != 0)) as i64,
        IntOp::Or => ((x != 0) || (y != 0)) as i64,
    })
}

fn pow_mod_i64(base: i64, exp: i64, m: i64) -> Result<i64, RuntimeError> {
    if m <= 0 {
        return Err(RuntimeError::Type("PowerMod modulus must be positive".into()));
    }
    if exp < 0 {
        return Err(RuntimeError::Type("PowerMod negative exponent".into()));
    }
    let m = m as u128;
    let mut base = (base.rem_euclid(m as i64)) as u128;
    let mut exp = exp as u64;
    let mut acc: u128 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % m;
        }
        base = base * base % m;
        exp >>= 1;
    }
    Ok(acc as i64)
}

fn tensor_store(t: &mut Tensor, off: usize, v: ArgVal) -> Result<(), RuntimeError> {
    match (t.data_mut(), v) {
        (TensorData::I64(data), ArgVal::I(x)) => data[off] = x,
        (TensorData::F64(data), ArgVal::F(x)) => data[off] = x,
        (TensorData::F64(data), ArgVal::I(x)) => data[off] = x as f64,
        (TensorData::Complex(data), ArgVal::C(re, im)) => data[off] = (re, im),
        _ => return Err(RuntimeError::Type("tensor element kind mismatch".into())),
    }
    Ok(())
}

fn tensor_elementwise(op: TenOp, a: &Tensor, b: &Tensor) -> Result<Tensor, RuntimeError> {
    if a.shape() != b.shape() {
        return Err(RuntimeError::Type("tensor shape mismatch".into()));
    }
    match (a.data(), b.data()) {
        (TensorData::I64(x), TensorData::I64(y)) => {
            let mut out = Vec::with_capacity(x.len());
            for (p, q) in x.iter().zip(y) {
                out.push(match op {
                    TenOp::Add => checked::add_i64(*p, *q)?,
                    TenOp::Sub => checked::sub_i64(*p, *q)?,
                    TenOp::Mul => checked::mul_i64(*p, *q)?,
                });
            }
            Tensor::with_shape(a.shape().to_vec(), TensorData::I64(out))
        }
        (TensorData::Complex(x), TensorData::Complex(y)) => {
            let out: Vec<(f64, f64)> = x
                .iter()
                .zip(y)
                .map(|(p, q)| match op {
                    TenOp::Add => (p.0 + q.0, p.1 + q.1),
                    TenOp::Sub => (p.0 - q.0, p.1 - q.1),
                    TenOp::Mul => checked::mul_complex(*p, *q),
                })
                .collect();
            Tensor::with_shape(a.shape().to_vec(), TensorData::Complex(out))
        }
        _ => {
            let fa = a.to_f64_tensor();
            let fb = b.to_f64_tensor();
            let (x, y) = (fa.as_f64().expect("promoted"), fb.as_f64().expect("promoted"));
            let out: Vec<f64> = x
                .iter()
                .zip(y)
                .map(|(p, q)| match op {
                    TenOp::Add => p + q,
                    TenOp::Sub => p - q,
                    TenOp::Mul => p * q,
                })
                .collect();
            Tensor::with_shape(a.shape().to_vec(), TensorData::F64(out))
        }
    }
}

fn tensor_scalar_elementwise(
    op: TenOp,
    t: &Tensor,
    s: &Value,
    rev: bool,
) -> Result<Tensor, RuntimeError> {
    match (t.data(), s) {
        (TensorData::I64(x), Value::I64(q)) => {
            let mut out = Vec::with_capacity(x.len());
            for p in x {
                let (a, b) = if rev { (*q, *p) } else { (*p, *q) };
                out.push(match op {
                    TenOp::Add => checked::add_i64(a, b)?,
                    TenOp::Sub => checked::sub_i64(a, b)?,
                    TenOp::Mul => checked::mul_i64(a, b)?,
                });
            }
            Tensor::with_shape(t.shape().to_vec(), TensorData::I64(out))
        }
        (TensorData::Complex(x), Value::Complex(re, im)) => {
            let q = (*re, *im);
            let out: Vec<(f64, f64)> = x
                .iter()
                .map(|p| {
                    let (a, b) = if rev { (q, *p) } else { (*p, q) };
                    match op {
                        TenOp::Add => (a.0 + b.0, a.1 + b.1),
                        TenOp::Sub => (a.0 - b.0, a.1 - b.1),
                        TenOp::Mul => checked::mul_complex(a, b),
                    }
                })
                .collect();
            Tensor::with_shape(t.shape().to_vec(), TensorData::Complex(out))
        }
        _ => {
            let ft = t.to_f64_tensor();
            let x = ft.as_f64().expect("promoted");
            let q = match s {
                Value::I64(v) => *v as f64,
                Value::F64(v) => *v,
                other => {
                    return Err(RuntimeError::Type(format!(
                        "scalar broadcast with {}",
                        other.type_name()
                    )))
                }
            };
            let out: Vec<f64> = x
                .iter()
                .map(|p| {
                    let (a, b) = if rev { (q, *p) } else { (*p, q) };
                    match op {
                        TenOp::Add => a + b,
                        TenOp::Sub => a - b,
                        TenOp::Mul => a * b,
                    }
                })
                .collect();
            Tensor::with_shape(t.shape().to_vec(), TensorData::F64(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn onefunc(code: Vec<RegOp>, params: Vec<Slot>, banks: (u32, u32, u32, u32)) -> NativeProgram {
        NativeProgram {
            funcs: vec![NativeFunc {
                name: "Main".into(),
                code,
                n_int: banks.0,
                n_flt: banks.1,
                n_cpx: banks.2,
                n_val: banks.3,
                params,
            }],
        }
    }

    #[test]
    fn add_one() {
        // The appendix's addOne: arg + 1.
        let prog = onefunc(
            vec![
                RegOp::LdcI { d: 1, v: 1 },
                RegOp::IntBin { op: IntOp::Add, d: 2, a: 0, b: 1 },
                RegOp::Ret { s: Slot::new(Bank::I, 2) },
            ],
            vec![Slot::new(Bank::I, 0)],
            (3, 0, 0, 0),
        );
        let mut m = Machine::standalone();
        let out = m.call(&prog, 0, vec![ArgVal::I(41)]).unwrap();
        assert_eq!(out, ArgVal::I(42));
    }

    #[test]
    fn overflow_is_checked() {
        let prog = onefunc(
            vec![
                RegOp::IntBin { op: IntOp::Add, d: 1, a: 0, b: 0 },
                RegOp::Ret { s: Slot::new(Bank::I, 1) },
            ],
            vec![Slot::new(Bank::I, 0)],
            (2, 0, 0, 0),
        );
        let mut m = Machine::standalone();
        assert_eq!(
            m.call(&prog, 0, vec![ArgVal::I(i64::MAX)]),
            Err(RuntimeError::IntegerOverflow)
        );
    }

    #[test]
    fn loop_with_abort() {
        // while (true) {} — must unwind on abort.
        let prog = onefunc(
            vec![RegOp::AbortCheck, RegOp::Jmp { pc: 0 }],
            vec![],
            (0, 0, 0, 0),
        );
        let mut m = Machine::standalone();
        m.abort.trigger();
        assert_eq!(m.call(&prog, 0, vec![]), Err(RuntimeError::Aborted));
    }

    #[test]
    fn complex_ops() {
        // |(0+1i)^2| == 1
        let prog = onefunc(
            vec![
                RegOp::LdcC { d: 0, re: 0.0, im: 1.0 },
                RegOp::LdcI { d: 0, v: 2 },
                RegOp::CpxPowI { d: 1, a: 0, e: 0 },
                RegOp::CpxAbs { d: 0, s: 1 },
                RegOp::Ret { s: Slot::new(Bank::F, 0) },
            ],
            vec![],
            (1, 1, 2, 0),
        );
        let mut m = Machine::standalone();
        assert_eq!(m.call(&prog, 0, vec![]).unwrap(), ArgVal::F(1.0));
    }

    #[test]
    fn tensor_part_and_set() {
        let t = Tensor::from_i64(vec![10, 20, 30]);
        let prog = onefunc(
            vec![
                RegOp::LdcI { d: 0, v: 2 },
                RegOp::LdcI { d: 1, v: 99 },
                RegOp::TenSet1 { kind: ElemKind::I64, t: 0, i: 0, v: 1 },
                RegOp::TenPart1 { kind: ElemKind::I64, d: 2, t: 0, i: 0 },
                RegOp::Ret { s: Slot::new(Bank::I, 2) },
            ],
            vec![Slot::new(Bank::V, 0)],
            (3, 0, 0, 1),
        );
        let mut m = Machine::standalone();
        let alias = t.clone();
        let out = m.call(&prog, 0, vec![ArgVal::V(Value::Tensor(t))]).unwrap();
        assert_eq!(out, ArgVal::I(99));
        // Caller's alias untouched: copy-on-write fired inside the machine.
        assert_eq!(alias.as_i64().unwrap(), &[10, 20, 30]);
    }

    #[test]
    fn closures_and_indirect_calls() {
        // f(x) = x*2; main calls it through a function value.
        let double = NativeFunc {
            name: "double".into(),
            code: vec![
                RegOp::LdcI { d: 1, v: 2 },
                RegOp::IntBin { op: IntOp::Mul, d: 2, a: 0, b: 1 },
                RegOp::Ret { s: Slot::new(Bank::I, 2) },
            ],
            n_int: 3,
            n_flt: 0,
            n_cpx: 0,
            n_val: 0,
            params: vec![Slot::new(Bank::I, 0)],
        };
        let main = NativeFunc {
            name: "Main".into(),
            code: vec![
                RegOp::MakeClosure { d: 0, f: 1, captures: vec![] },
                RegOp::CallValue {
                    fv: 0,
                    args: vec![Slot::new(Bank::I, 0)],
                    ret: Slot::new(Bank::I, 1),
                },
                RegOp::Ret { s: Slot::new(Bank::I, 1) },
            ],
            n_int: 2,
            n_flt: 0,
            n_cpx: 0,
            n_val: 1,
            params: vec![Slot::new(Bank::I, 0)],
        };
        let prog = NativeProgram { funcs: vec![main, double] };
        let mut m = Machine::standalone();
        assert_eq!(m.call(&prog, 0, vec![ArgVal::I(21)]).unwrap(), ArgVal::I(42));
    }

    #[test]
    fn kernel_requires_engine() {
        let prog = onefunc(
            vec![
                RegOp::CallKernel {
                    head: Rc::from("Plus"),
                    args: vec![],
                    ret: Slot::new(Bank::V, 0),
                },
                RegOp::Ret { s: Slot::new(Bank::V, 0) },
            ],
            vec![],
            (0, 0, 0, 1),
        );
        let mut m = Machine::standalone();
        assert!(m.call(&prog, 0, vec![]).is_err());
        let mut engine = Interpreter::new();
        let out = m.call_with_engine(&prog, 0, vec![], Some(&mut engine)).unwrap();
        assert_eq!(out, ArgVal::V(Value::I64(0)));
    }

    #[test]
    fn powmod() {
        assert_eq!(pow_mod_i64(2, 10, 1000).unwrap(), 24);
        assert_eq!(pow_mod_i64(3, 0, 7).unwrap(), 1);
        // Large values route through u128 without overflow.
        assert_eq!(pow_mod_i64(1_000_000_007, 2, 1_000_000_009).unwrap(), 4);
        assert!(pow_mod_i64(2, -1, 7).is_err());
        assert!(pow_mod_i64(2, 3, 0).is_err());
    }
}
