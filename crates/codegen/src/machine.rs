//! The native register machine: unboxed register banks and a monomorphic
//! instruction set. This is the execution substrate standing in for the
//! paper's LLVM-JITed native code (DESIGN.md §1).

use std::collections::HashMap;
use std::sync::Arc;
use wolfram_expr::Expr;
use wolfram_interp::Interpreter;
use wolfram_runtime::checked;
use wolfram_runtime::simd::SimdOp;
use wolfram_runtime::{
    parallel, AbortSignal, FunctionValue, ParallelConfig, RuntimeError, Tensor, TensorData, Value,
};

/// Register bank selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bank {
    /// Machine integers and booleans (0/1).
    I,
    /// Machine reals.
    F,
    /// Machine complex numbers.
    C,
    /// Managed values (tensors, strings, expressions, closures).
    V,
}

/// A typed register reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Which bank.
    pub bank: Bank,
    /// Index within the bank.
    pub ix: usize,
}

impl Slot {
    /// Constructs a slot.
    pub fn new(bank: Bank, ix: usize) -> Self {
        Slot { bank, ix }
    }
}

/// Integer binary opcodes (comparisons produce 0/1 in the integer bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IntOp {
    Add,
    Sub,
    Mul,
    // Unchecked forms: the interval analysis proved the operation cannot
    // overflow, so the wrapping result equals the mathematical one.
    AddU,
    SubU,
    MulU,
    Quot,
    Mod,
    Pow,
    Min,
    Max,
    Gcd,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Integer unary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IntUnOp {
    Neg,
    Abs,
    Not,
    Sign,
    Factorial,
}

/// Real binary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FltOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Mod,
    Min,
    Max,
    ArcTan2,
}

/// Real unary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FltUnOp {
    Neg,
    Abs,
    Sqrt,
    Sin,
    Cos,
    Tan,
    Exp,
    Log,
    ArcTan,
    ArcSin,
    ArcCos,
    Sign,
}

/// Comparison codes shared by float compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpCode {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Complex binary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CpxOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Tensor element kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ElemKind {
    I64,
    F64,
    C64,
}

/// Element-wise tensor opcodes (rank-1, same shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TenOp {
    Add,
    Sub,
    Mul,
}

/// Symbolic (Expression) binary opcodes — "threaded interpretation" (§4.5):
/// executed against the hosting engine without full top-level evaluation
/// re-entry per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ExprOp {
    Plus,
    Times,
    Subtract,
    Power,
}

/// A native machine instruction. Operand indices refer to the bank implied
/// by the opcode; all type resolution happened at compile time.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum RegOp {
    LdcI {
        d: usize,
        v: i64,
    },
    LdcF {
        d: usize,
        v: f64,
    },
    LdcC {
        d: usize,
        re: f64,
        im: f64,
    },
    LdcV {
        d: usize,
        v: Value,
    },
    /// Loads a constant array by deep copy (the "non-optimal handling of
    /// constant arrays" ablation, §6: every load re-materializes the data).
    LdcArrayCopy {
        d: usize,
        v: Value,
    },
    MovI {
        d: usize,
        s: usize,
    },
    MovF {
        d: usize,
        s: usize,
    },
    MovC {
        d: usize,
        s: usize,
    },
    MovV {
        d: usize,
        s: usize,
    },
    /// Moves a managed value out of a dead register (the compiler's
    /// copy/live analysis proved `s` is never read again, F5): the source
    /// slot is left Null so reference counts stay minimal and in-place
    /// mutation needs no copy.
    TakeV {
        d: usize,
        s: usize,
    },
    IntBin {
        op: IntOp,
        d: usize,
        a: usize,
        b: usize,
    },
    IntBinImm {
        op: IntOp,
        d: usize,
        a: usize,
        imm: i64,
    },
    IntUn {
        op: IntUnOp,
        d: usize,
        s: usize,
    },
    PowModI {
        d: usize,
        a: usize,
        b: usize,
        m: usize,
    },
    FltBin {
        op: FltOp,
        d: usize,
        a: usize,
        b: usize,
    },
    FltBinImm {
        op: FltOp,
        d: usize,
        a: usize,
        imm: f64,
    },
    FltCmp {
        op: CmpCode,
        d: usize,
        a: usize,
        b: usize,
    },
    FltUn {
        op: FltUnOp,
        d: usize,
        s: usize,
    },
    FloorFI {
        d: usize,
        s: usize,
    },
    CeilFI {
        d: usize,
        s: usize,
    },
    RoundFI {
        d: usize,
        s: usize,
    },
    IntToFlt {
        d: usize,
        s: usize,
    },
    IntToCpx {
        d: usize,
        s: usize,
    },
    FltToCpx {
        d: usize,
        s: usize,
    },
    CpxBin {
        op: CpxOp,
        d: usize,
        a: usize,
        b: usize,
    },
    CpxPowI {
        d: usize,
        a: usize,
        e: usize,
    },
    CpxAbs {
        d: usize,
        s: usize,
    },
    CpxMake {
        d: usize,
        re: usize,
        im: usize,
    },
    CpxRe {
        d: usize,
        s: usize,
    },
    CpxIm {
        d: usize,
        s: usize,
    },
    CpxConj {
        d: usize,
        s: usize,
    },
    CpxEq {
        d: usize,
        a: usize,
        b: usize,
    },
    TenLen {
        d: usize,
        t: usize,
    },
    TenPart1 {
        kind: ElemKind,
        d: usize,
        t: usize,
        i: usize,
    },
    TenPart2 {
        kind: ElemKind,
        d: usize,
        t: usize,
        i: usize,
        j: usize,
    },
    TenSet1 {
        kind: ElemKind,
        t: usize,
        i: usize,
        v: usize,
    },
    TenSet2 {
        kind: ElemKind,
        t: usize,
        i: usize,
        j: usize,
        v: usize,
    },
    /// [`RegOp::TenPart1`] with the bounds check elided: the interval
    /// analysis proved `i ∈ [-len,-1] ∪ [1,len]`, so execution only
    /// resolves the sign (negative indices count from the end) without
    /// validating the range.
    TenPart1U {
        kind: ElemKind,
        d: usize,
        t: usize,
        i: usize,
    },
    /// [`RegOp::TenPart2`] with both bounds checks elided.
    TenPart2U {
        kind: ElemKind,
        d: usize,
        t: usize,
        i: usize,
        j: usize,
    },
    /// [`RegOp::TenSet1`] with the bounds check elided.
    TenSet1U {
        kind: ElemKind,
        t: usize,
        i: usize,
        v: usize,
    },
    /// [`RegOp::TenSet2`] with both bounds checks elided.
    TenSet2U {
        kind: ElemKind,
        t: usize,
        i: usize,
        j: usize,
        v: usize,
    },
    TenFill1 {
        kind: ElemKind,
        d: usize,
        c: usize,
        n: usize,
    },
    TenFill2 {
        kind: ElemKind,
        d: usize,
        c: usize,
        n1: usize,
        n2: usize,
    },
    TenBin {
        op: TenOp,
        d: usize,
        a: usize,
        b: usize,
    },
    /// Tensor (+) scalar broadcast; `rev` computes `scalar (op) tensor`.
    TenScalar {
        op: TenOp,
        kind: ElemKind,
        d: usize,
        t: usize,
        s: usize,
        rev: bool,
    },
    TenSetRow {
        t: usize,
        i: usize,
        row: usize,
    },
    TenFromList {
        kind: ElemKind,
        d: usize,
        items: Vec<usize>,
    },
    DotVecF {
        d: usize,
        a: usize,
        b: usize,
    },
    DotVecI {
        d: usize,
        a: usize,
        b: usize,
    },
    DotMat {
        d: usize,
        a: usize,
        b: usize,
    },
    DotMatVec {
        d: usize,
        a: usize,
        b: usize,
    },
    StrLen {
        d: usize,
        s: usize,
    },
    StrToCodes {
        d: usize,
        s: usize,
    },
    StrFromCodes {
        d: usize,
        s: usize,
    },
    StrJoin {
        d: usize,
        a: usize,
        b: usize,
    },
    ExprBin {
        op: ExprOp,
        d: usize,
        a: usize,
        b: usize,
    },
    /// Symbolic unary application `head[a]`, normalized by the hosting
    /// engine (like [`RegOp::ExprBin`]).
    ExprUnary {
        head: Arc<str>,
        d: usize,
        a: usize,
    },
    BoolToExpr {
        d: usize,
        s: usize,
    },
    BoxIV {
        d: usize,
        s: usize,
    },
    BoxFV {
        d: usize,
        s: usize,
    },
    BoxCV {
        d: usize,
        s: usize,
    },
    RndUnit {
        d: usize,
    },
    RndRange {
        d: usize,
        a: usize,
        b: usize,
    },
    MakeClosure {
        d: usize,
        f: usize,
        captures: Vec<Slot>,
    },
    CallFunc {
        f: usize,
        args: Box<[Slot]>,
        ret: Slot,
    },
    CallValue {
        fv: usize,
        args: Box<[Slot]>,
        ret: Slot,
    },
    CallKernel {
        head: Arc<str>,
        args: Box<[Slot]>,
        ret: Slot,
    },
    Jmp {
        pc: usize,
    },
    Brz {
        c: usize,
        pc: usize,
    },
    // ---- Superinstructions (see `fuse`) ----
    //
    // Every fused op performs *all* the register writes of the sequence it
    // replaces (the pass needs no liveness analysis to stay bit-identical),
    // and no jump target may land inside a fused group.
    //
    // Fused variants use `u32` register/pc fields and `i32` immediates so
    // they stay within the enum's pre-fusion payload: growing `RegOp` would
    // tax the fetch of *every* op in the code array. The pass refuses to
    // fuse on overflow (fuse::narrow/narrow_imm); the interpreter widens
    // with zero-extending casts.
    /// Fused compare-and-branch: `d = a (op) b`, then jump to `pc` when
    /// the result is zero (comparison false).
    BrCmpIFalse {
        op: IntOp,
        a: u32,
        b: u32,
        d: u32,
        pc: u32,
    },
    /// Fused compare-and-branch on reals.
    BrCmpFFalse {
        op: CmpCode,
        a: u32,
        b: u32,
        d: u32,
        pc: u32,
    },
    /// Fused compare + two-way branch (cmp, brz, jmp): `d = a (op) b`,
    /// then jump to `pc_true` when nonzero, `pc_false` when zero.
    BrCmpISel {
        op: IntOp,
        a: u32,
        b: u32,
        d: u32,
        pc_false: u32,
        pc_true: u32,
    },
    /// [`RegOp::BrCmpISel`] on reals.
    BrCmpFSel {
        op: CmpCode,
        a: u32,
        b: u32,
        d: u32,
        pc_false: u32,
        pc_true: u32,
    },
    /// Fused brz + jmp: a two-way branch on a materialized condition.
    BrzJmp {
        c: u32,
        pc_z: u32,
        pc_nz: u32,
    },
    /// Two integer binary ops in one dispatch (covers integer
    /// multiply-add chains).
    IntBin2 {
        op1: IntOp,
        d1: u32,
        a1: u32,
        b1: u32,
        op2: IntOp,
        d2: u32,
        a2: u32,
        b2: u32,
    },
    /// Two immediate-form integer ops in one dispatch (FNV1a's
    /// `muli`+`modi` hash step).
    IntBinImm2 {
        op1: IntOp,
        d1: u32,
        a1: u32,
        imm1: i32,
        op2: IntOp,
        d2: u32,
        a2: u32,
        imm2: i32,
    },
    /// Immediate-folded loop-counter increment fused with the loop
    /// back-edge.
    IntBinImmJmp {
        op: IntOp,
        d: u32,
        a: u32,
        imm: i32,
        pc: u32,
    },
    /// Two real binary ops in one dispatch (covers float multiply-add).
    FltBin2 {
        op1: FltOp,
        d1: u32,
        a1: u32,
        b1: u32,
        op2: FltOp,
        d2: u32,
        a2: u32,
        b2: u32,
    },
    /// Integer tensor element load feeding an integer op (load-op).
    TenPart1IntBin {
        e: u32,
        t: u32,
        i: u32,
        op: IntOp,
        d: u32,
        a: u32,
        b: u32,
    },
    /// Integer tensor element load feeding an immediate-form integer op.
    TenPart1IntBinImm {
        e: u32,
        t: u32,
        i: u32,
        op: IntOp,
        d: u32,
        a: u32,
        imm: i32,
    },
    /// Real matrix element load feeding a real op (Blur's stencil taps).
    TenPart2FltBin {
        e: u32,
        t: u32,
        i: u32,
        j: u32,
        op: FltOp,
        d: u32,
        a: u32,
        b: u32,
    },
    /// Take-move + element store (op-store around in-place mutation).
    TakeVTenSet1 {
        dv: u32,
        sv: u32,
        kind: ElemKind,
        t: u32,
        i: u32,
        v: u32,
    },
    /// [`RegOp::TakeVTenSet1`] for matrices.
    TakeVTenSet2 {
        dv: u32,
        sv: u32,
        kind: ElemKind,
        t: u32,
        i: u32,
        j: u32,
        v: u32,
    },
    /// [`RegOp::TenPart1IntBin`] over an unchecked element load.
    TenPart1IntBinU {
        e: u32,
        t: u32,
        i: u32,
        op: IntOp,
        d: u32,
        a: u32,
        b: u32,
    },
    /// [`RegOp::TenPart1IntBinImm`] over an unchecked element load.
    TenPart1IntBinImmU {
        e: u32,
        t: u32,
        i: u32,
        op: IntOp,
        d: u32,
        a: u32,
        imm: i32,
    },
    /// [`RegOp::TenPart2FltBin`] over an unchecked element load.
    TenPart2FltBinU {
        e: u32,
        t: u32,
        i: u32,
        j: u32,
        op: FltOp,
        d: u32,
        a: u32,
        b: u32,
    },
    /// [`RegOp::TakeVTenSet2`] with both bounds checks elided.
    TakeVTenSet2U {
        dv: u32,
        sv: u32,
        kind: ElemKind,
        t: u32,
        i: u32,
        j: u32,
        v: u32,
    },
    /// Phi edge-move fused with the loop back-edge.
    MovIJmp {
        d: u32,
        s: u32,
        pc: u32,
    },
    /// Two integer moves in one dispatch (adjacent phi edge-moves).
    Mov2I {
        d1: u32,
        s1: u32,
        d2: u32,
        s2: u32,
    },
    /// Two phi edge-moves fused with the loop back-edge (the full latch
    /// block of a two-variable loop in one dispatch).
    Mov2IJmp {
        d1: u32,
        s1: u32,
        d2: u32,
        s2: u32,
        pc: u32,
    },
    /// Two reference-count releases in one dispatch (function epilogues).
    Release2 {
        v1: u32,
        v2: u32,
    },
    /// Abort poll + compare + two-way branch: a full `While` loop header
    /// (abort.check, cmp, brz, jmp) in one dispatch.
    AbortBrCmpISel {
        op: IntOp,
        a: u32,
        b: u32,
        d: u32,
        pc_false: u32,
        pc_true: u32,
    },
    /// Abort poll + fused compare-and-branch (header without the trailing
    /// jump).
    AbortBrCmpIFalse {
        op: IntOp,
        a: u32,
        b: u32,
        d: u32,
        pc: u32,
    },
    /// Immediate-form integer op feeding a phi move (`t = i + 1; i = t`).
    IntBinImmMovI {
        op: IntOp,
        d: u32,
        a: u32,
        imm: i32,
        d2: u32,
        s2: u32,
    },
    /// Complex phi edge-move fused with the loop back-edge.
    MovCJmp {
        d: u32,
        s: u32,
        pc: u32,
    },
    /// A whole integer loop latch in one dispatch: immediate-form op +
    /// two phi edge-moves + back-edge (`t = i + 1; i = t; s = u; jmp`).
    #[allow(clippy::too_many_arguments)]
    IntBinImmMov2IJmp {
        op: IntOp,
        d: u32,
        a: u32,
        imm: i32,
        d2: u32,
        s2: u32,
        d3: u32,
        s3: u32,
        pc: u32,
    },
    /// Real compare feeding a phi move of the condition.
    FltCmpMovI {
        op: CmpCode,
        d: u32,
        a: u32,
        b: u32,
        d2: u32,
        s2: u32,
    },
    /// [`RegOp::FltCmpMovI`] fused with the following jump (Mandelbrot's
    /// short-circuit `And` arm).
    FltCmpMovIJmp {
        op: CmpCode,
        d: u32,
        a: u32,
        b: u32,
        d2: u32,
        s2: u32,
        pc: u32,
    },
    AbortCheck,
    /// Batched execution of the counted scalar loop whose header starts at
    /// the next instruction (planned by `crate::vectorize`). Runs all but
    /// the final iteration through SIMD kernels when the runtime prechecks
    /// in the plan hold, then falls through to the scalar header for the
    /// last iteration and loop exit; otherwise it is a pure no-op and the
    /// scalar loop executes unchanged. Ignored unless the program carries a
    /// [`ParallelConfig`].
    VecLoop {
        plan: Arc<crate::vectorize::VecPlan>,
    },
    Acquire {
        v: usize,
    },
    Release {
        v: usize,
    },
    Ret {
        s: Slot,
    },
    RetNull,
}

impl RegOp {
    /// Short mnemonic for the op-frequency profiler and opstats reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            RegOp::LdcI { .. } => "ldc.i",
            RegOp::LdcF { .. } => "ldc.f",
            RegOp::LdcC { .. } => "ldc.c",
            RegOp::LdcV { .. } => "ldc.v",
            RegOp::LdcArrayCopy { .. } => "ldc.copy",
            RegOp::MovI { .. } => "mov.i",
            RegOp::MovF { .. } => "mov.f",
            RegOp::MovC { .. } => "mov.c",
            RegOp::MovV { .. } => "mov.v",
            RegOp::TakeV { .. } => "take.v",
            RegOp::IntBin { .. } => "int.bin",
            RegOp::IntBinImm { .. } => "int.bin.imm",
            RegOp::IntUn { .. } => "int.un",
            RegOp::PowModI { .. } => "powmod.i",
            RegOp::FltBin { .. } => "flt.bin",
            RegOp::FltBinImm { .. } => "flt.bin.imm",
            RegOp::FltCmp { .. } => "flt.cmp",
            RegOp::FltUn { .. } => "flt.un",
            RegOp::FloorFI { .. } => "floor.fi",
            RegOp::CeilFI { .. } => "ceil.fi",
            RegOp::RoundFI { .. } => "round.fi",
            RegOp::IntToFlt { .. } => "cvt.if",
            RegOp::IntToCpx { .. } => "cvt.ic",
            RegOp::FltToCpx { .. } => "cvt.fc",
            RegOp::CpxBin { .. } => "cpx.bin",
            RegOp::CpxPowI { .. } => "cpx.powi",
            RegOp::CpxAbs { .. } => "cpx.abs",
            RegOp::CpxMake { .. } => "cpx.make",
            RegOp::CpxRe { .. } => "cpx.re",
            RegOp::CpxIm { .. } => "cpx.im",
            RegOp::CpxConj { .. } => "cpx.conj",
            RegOp::CpxEq { .. } => "cpx.eq",
            RegOp::TenLen { .. } => "ten.len",
            RegOp::TenPart1 { .. } => "ten.part1",
            RegOp::TenPart2 { .. } => "ten.part2",
            RegOp::TenSet1 { .. } => "ten.set1",
            RegOp::TenSet2 { .. } => "ten.set2",
            RegOp::TenPart1U { .. } => "ten.part1.u",
            RegOp::TenPart2U { .. } => "ten.part2.u",
            RegOp::TenSet1U { .. } => "ten.set1.u",
            RegOp::TenSet2U { .. } => "ten.set2.u",
            RegOp::TenFill1 { .. } => "ten.fill1",
            RegOp::TenFill2 { .. } => "ten.fill2",
            RegOp::TenBin { .. } => "ten.bin",
            RegOp::TenScalar { .. } => "ten.scalar",
            RegOp::TenSetRow { .. } => "ten.setrow",
            RegOp::TenFromList { .. } => "ten.fromlist",
            RegOp::DotVecF { .. } => "dot.vec.f",
            RegOp::DotVecI { .. } => "dot.vec.i",
            RegOp::DotMat { .. } => "dot.mat",
            RegOp::DotMatVec { .. } => "dot.matvec",
            RegOp::StrLen { .. } => "str.len",
            RegOp::StrToCodes { .. } => "str.tocodes",
            RegOp::StrFromCodes { .. } => "str.fromcodes",
            RegOp::StrJoin { .. } => "str.join",
            RegOp::ExprBin { .. } => "expr.bin",
            RegOp::ExprUnary { .. } => "expr.un",
            RegOp::BoolToExpr { .. } => "box.bool",
            RegOp::BoxIV { .. } => "box.iv",
            RegOp::BoxFV { .. } => "box.fv",
            RegOp::BoxCV { .. } => "box.cv",
            RegOp::RndUnit { .. } => "rnd.unit",
            RegOp::RndRange { .. } => "rnd.range",
            RegOp::MakeClosure { .. } => "closure",
            RegOp::CallFunc { .. } => "call.func",
            RegOp::CallValue { .. } => "call.value",
            RegOp::CallKernel { .. } => "call.kernel",
            RegOp::Jmp { .. } => "jmp",
            RegOp::Brz { .. } => "brz",
            RegOp::BrCmpIFalse { .. } => "br.cmp.i",
            RegOp::BrCmpFFalse { .. } => "br.cmp.f",
            RegOp::BrCmpISel { .. } => "br.cmp.i.sel",
            RegOp::BrCmpFSel { .. } => "br.cmp.f.sel",
            RegOp::BrzJmp { .. } => "brz.jmp",
            RegOp::IntBin2 { .. } => "int.bin2",
            RegOp::IntBinImm2 { .. } => "int.bin.imm2",
            RegOp::IntBinImmJmp { .. } => "int.bin.imm.jmp",
            RegOp::FltBin2 { .. } => "flt.bin2",
            RegOp::TenPart1IntBin { .. } => "ten.part1.int.bin",
            RegOp::TenPart1IntBinImm { .. } => "ten.part1.int.imm",
            RegOp::TenPart2FltBin { .. } => "ten.part2.flt.bin",
            RegOp::TakeVTenSet1 { .. } => "take.ten.set1",
            RegOp::TakeVTenSet2 { .. } => "take.ten.set2",
            RegOp::TenPart1IntBinU { .. } => "ten.part1.int.bin.u",
            RegOp::TenPart1IntBinImmU { .. } => "ten.part1.int.imm.u",
            RegOp::TenPart2FltBinU { .. } => "ten.part2.flt.bin.u",
            RegOp::TakeVTenSet2U { .. } => "take.ten.set2.u",
            RegOp::MovIJmp { .. } => "mov.i.jmp",
            RegOp::Mov2I { .. } => "mov2.i",
            RegOp::Mov2IJmp { .. } => "mov2.i.jmp",
            RegOp::Release2 { .. } => "release2",
            RegOp::AbortBrCmpISel { .. } => "abort.br.cmp.i.sel",
            RegOp::AbortBrCmpIFalse { .. } => "abort.br.cmp.i",
            RegOp::IntBinImmMovI { .. } => "int.bin.imm.mov",
            RegOp::MovCJmp { .. } => "mov.c.jmp",
            RegOp::IntBinImmMov2IJmp { .. } => "int.imm.mov2.jmp",
            RegOp::FltCmpMovI { .. } => "flt.cmp.mov",
            RegOp::FltCmpMovIJmp { .. } => "flt.cmp.mov.jmp",
            RegOp::AbortCheck => "abort.check",
            RegOp::VecLoop { .. } => "vec.loop",
            RegOp::Acquire { .. } => "acquire",
            RegOp::Release { .. } => "release",
            RegOp::Ret { .. } => "ret",
            RegOp::RetNull => "ret.null",
        }
    }
}

/// Clones a runtime value, short-circuiting the cheap scalar variants so
/// the hot `LdcV`/`MovV` paths skip the full `Value::clone` (which must
/// consider every managed variant before bumping a refcount).
#[inline]
fn clone_cheap(v: &Value) -> Value {
    match v {
        Value::Null => Value::Null,
        Value::Bool(b) => Value::Bool(*b),
        Value::I64(x) => Value::I64(*x),
        Value::F64(x) => Value::F64(*x),
        other => other.clone(),
    }
}

/// Per-function counts of runtime checks the interval analysis let the
/// lowering elide (and the totals they are drawn from), for
/// observability: `reproduce analyze --stats` and the CI golden gate
/// read these instead of grepping op listings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElisionCounters {
    /// Part bounds checks elided at lowering (unchecked tensor ops).
    pub bounds_elided: u32,
    /// Part-checked tensor ops lowered in total.
    pub bounds_total: u32,
    /// Overflow-checked integer ops promoted to unchecked forms.
    pub ovf_elided: u32,
    /// Overflow-checked integer ops (add/sub/mul) lowered in total.
    pub ovf_total: u32,
    /// `Acquire`/`Release` ops skipped as provably redundant.
    pub rc_elided: u32,
}

/// A compiled native function.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeFunc {
    /// Mangled name.
    pub name: String,
    /// Instruction stream.
    pub code: Vec<RegOp>,
    /// Bank sizes.
    pub n_int: usize,
    /// Real bank size.
    pub n_flt: usize,
    /// Complex bank size.
    pub n_cpx: usize,
    /// Value bank size.
    pub n_val: usize,
    /// Where incoming arguments are stored, in order.
    pub params: Vec<Slot>,
    /// Check-elision statistics fixed at lowering; all zero when the
    /// range analysis is off.
    pub elision: ElisionCounters,
}

/// A compiled native program (a lowered program module).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NativeProgram {
    /// Functions; index 0 is the entry (`Main`).
    pub funcs: Vec<NativeFunc>,
    /// Data-parallel runtime configuration. `None` (the default) executes
    /// every op on the scalar path; `Some` routes whole-tensor builtins
    /// through the chunked worker pool and arms `VecLoop` batching.
    pub parallel: Option<ParallelConfig>,
}

impl NativeProgram {
    /// Finds a function by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }
}

/// A dynamically-typed argument/result crossing a function boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Integer / boolean.
    I(i64),
    /// Real.
    F(f64),
    /// Complex.
    C(f64, f64),
    /// Managed value.
    V(Value),
}

impl ArgVal {
    /// Boxes into a runtime [`Value`]. `bool_hint` renders integers as
    /// booleans when the static type said so.
    pub fn into_value(self, bool_hint: bool) -> Value {
        match self {
            ArgVal::I(v) => {
                if bool_hint {
                    Value::Bool(v != 0)
                } else {
                    Value::I64(v)
                }
            }
            ArgVal::F(v) => Value::F64(v),
            ArgVal::C(re, im) => Value::Complex(re, im),
            ArgVal::V(v) => v,
        }
    }

    /// Unboxes a runtime value into the bank expected by `slot`.
    ///
    /// # Errors
    ///
    /// Type error when the value does not fit the bank.
    pub fn from_value(v: &Value, bank: Bank) -> Result<ArgVal, RuntimeError> {
        Ok(match bank {
            Bank::I => match v {
                Value::I64(x) => ArgVal::I(*x),
                Value::Bool(b) => ArgVal::I(*b as i64),
                other => {
                    return Err(RuntimeError::Type(format!(
                        "expected machine integer, got {}",
                        other.type_name()
                    )))
                }
            },
            Bank::F => ArgVal::F(v.expect_f64()?),
            Bank::C => {
                let (re, im) = v.expect_complex()?;
                ArgVal::C(re, im)
            }
            Bank::V => ArgVal::V(v.clone()),
        })
    }
}

struct Frame {
    ints: Vec<i64>,
    flts: Vec<f64>,
    cpxs: Vec<(f64, f64)>,
    vals: Vec<Value>,
    /// Which value slots currently hold an acquired (refcount-bracketed)
    /// value — keeps acquire/release accounting balanced across `TakeV`.
    acquired: Vec<bool>,
}

impl Frame {
    fn new(f: &NativeFunc) -> Self {
        Frame {
            ints: vec![0; f.n_int],
            flts: vec![0.0; f.n_flt],
            cpxs: vec![(0.0, 0.0); f.n_cpx],
            vals: vec![Value::Null; f.n_val],
            acquired: vec![false; f.n_val],
        }
    }

    /// Re-shapes a pooled frame for `f`, dropping any held values.
    fn reset(&mut self, f: &NativeFunc) {
        self.ints.clear();
        self.ints.resize(f.n_int, 0);
        self.flts.clear();
        self.flts.resize(f.n_flt, 0.0);
        self.cpxs.clear();
        self.cpxs.resize(f.n_cpx, (0.0, 0.0));
        self.vals.clear();
        self.vals.resize(f.n_val, Value::Null);
        self.acquired.clear();
        self.acquired.resize(f.n_val, false);
    }

    fn store(&mut self, slot: Slot, v: ArgVal) -> Result<(), RuntimeError> {
        match (slot.bank, v) {
            (Bank::I, ArgVal::I(x)) => self.ints[slot.ix] = x,
            (Bank::F, ArgVal::F(x)) => self.flts[slot.ix] = x,
            (Bank::F, ArgVal::I(x)) => self.flts[slot.ix] = x as f64,
            (Bank::C, ArgVal::C(re, im)) => self.cpxs[slot.ix] = (re, im),
            (Bank::C, ArgVal::F(x)) => self.cpxs[slot.ix] = (x, 0.0),
            (Bank::C, ArgVal::I(x)) => self.cpxs[slot.ix] = (x as f64, 0.0),
            (Bank::V, ArgVal::V(v)) => self.vals[slot.ix] = v,
            (Bank::V, other) => self.vals[slot.ix] = other.into_value(false),
            (bank, v) => {
                return Err(RuntimeError::Type(format!(
                    "cannot store {v:?} into {bank:?} bank"
                )))
            }
        }
        Ok(())
    }

    fn load(&self, slot: Slot) -> ArgVal {
        match slot.bank {
            Bank::I => ArgVal::I(self.ints[slot.ix]),
            Bank::F => ArgVal::F(self.flts[slot.ix]),
            Bank::C => {
                let (re, im) = self.cpxs[slot.ix];
                ArgVal::C(re, im)
            }
            Bank::V => ArgVal::V(self.vals[slot.ix].clone()),
        }
    }
}

/// Most frames a machine keeps pooled for reuse. Indirect calls in tight
/// loops (the QSort comparator) recycle frames from this pool instead of
/// allocating; recursion deeper than the cap falls back to fresh frames.
pub const FRAME_POOL_CAP: usize = 64;

/// A dedicated entry frame for a run of repeated calls to one function
/// (the `wolfram-stream` executor). The first call through
/// [`Machine::call_streaming`] allocates the frame (a recorded miss);
/// every later call resets and reuses it (a recorded reset), bypassing
/// the machine's shared pool entirely. Inner indirect calls made *during*
/// execution still go through the pool as before.
#[derive(Default)]
pub struct CallSession {
    frame: Option<Frame>,
}

impl CallSession {
    /// A session with no frame yet; the first call allocates it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Execution statistics: dynamic op/dyad frequencies (populated only while
/// [`Machine::profile_ops`] is enabled) and the always-on frame-pool
/// hit/miss counters.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    /// Executed instruction count per mnemonic.
    pub ops: HashMap<&'static str, u64>,
    /// Executed consecutive-pair (dyad) count — the data that drives
    /// superinstruction selection.
    pub pairs: HashMap<(&'static str, &'static str), u64>,
    /// Calls served by a pooled frame.
    pub pool_hits: u64,
    /// Calls that had to allocate a fresh frame.
    pub pool_misses: u64,
}

impl OpStats {
    /// Mnemonics sorted by descending execution count.
    pub fn hottest_ops(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.ops.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Dyads sorted by descending execution count.
    pub fn hottest_pairs(&self) -> Vec<((&'static str, &'static str), u64)> {
        let mut v: Vec<_> = self.pairs.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Total executed instructions.
    pub fn total(&self) -> u64 {
        self.ops.values().sum()
    }
}

/// Per-run profiling state, boxed so the disabled case costs one
/// null-check per dispatched instruction.
#[derive(Debug, Default)]
struct ProfileState {
    ops: HashMap<&'static str, u64>,
    pairs: HashMap<(&'static str, &'static str), u64>,
    last: Option<&'static str>,
}

impl ProfileState {
    #[inline]
    fn record(&mut self, m: &'static str) {
        *self.ops.entry(m).or_insert(0) += 1;
        if let Some(prev) = self.last.replace(m) {
            *self.pairs.entry((prev, m)).or_insert(0) += 1;
        }
    }
}

/// The execution context: abort signal and the deterministic RNG. The
/// hosting engine (for kernel escapes and symbolic ops, absent in
/// standalone mode, F10) is threaded through each call as a reborrowable
/// parameter so installed compiled functions can re-enter the interpreter.
pub struct Machine {
    /// Abort flag checked by `AbortCheck` instructions.
    pub abort: AbortSignal,
    rng: u64,
    /// Recycled call frames (indirect calls in tight loops — the QSort
    /// comparator — would otherwise allocate per call).
    frame_pool: Vec<Frame>,
    pool_hits: u64,
    pool_misses: u64,
    profile: Option<Box<ProfileState>>,
}

impl Machine {
    /// A machine with a private abort signal (standalone mode).
    pub fn standalone() -> Self {
        Machine {
            abort: AbortSignal::new(),
            rng: 0x2545F4914F6CDD1D,
            frame_pool: Vec::new(),
            pool_hits: 0,
            pool_misses: 0,
            profile: None,
        }
    }

    /// Turns the op-frequency/dyad profiler on or off. Profiling adds a
    /// hash update per dispatched instruction; it is meant for
    /// `reproduce -- opstats`, not for benchmarking runs.
    pub fn profile_ops(&mut self, enable: bool) {
        self.profile = enable.then(Box::<ProfileState>::default);
    }

    /// Takes the accumulated statistics, resetting all counters.
    pub fn take_stats(&mut self) -> OpStats {
        let (ops, pairs) = match self.profile.as_deref_mut() {
            Some(p) => (std::mem::take(&mut p.ops), std::mem::take(&mut p.pairs)),
            None => Default::default(),
        };
        if let Some(p) = self.profile.as_deref_mut() {
            p.last = None;
        }
        let stats = OpStats {
            ops,
            pairs,
            pool_hits: self.pool_hits,
            pool_misses: self.pool_misses,
        };
        self.pool_hits = 0;
        self.pool_misses = 0;
        stats
    }

    /// Seeds the machine RNG.
    pub fn seed(&mut self, seed: u64) {
        self.rng = seed | 1;
    }

    fn next_f64(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Calls function `fix` of `prog` with marshaled arguments, standalone.
    ///
    /// # Errors
    ///
    /// Numeric exceptions, aborts, and type errors propagate to the caller
    /// (the compiled-code wrapper decides about soft fallback).
    pub fn call(
        &mut self,
        prog: &NativeProgram,
        fix: usize,
        args: Vec<ArgVal>,
    ) -> Result<ArgVal, RuntimeError> {
        self.call_with_engine(prog, fix, args, None)
    }

    /// Calls with a hosting engine for kernel escapes and symbolic ops.
    ///
    /// # Errors
    ///
    /// As for [`Machine::call`].
    pub fn call_with_engine(
        &mut self,
        prog: &NativeProgram,
        fix: usize,
        args: Vec<ArgVal>,
        mut engine: Option<&mut Interpreter>,
    ) -> Result<ArgVal, RuntimeError> {
        let func = &prog.funcs[fix];
        if args.len() != func.params.len() {
            return Err(RuntimeError::Type(format!(
                "{} expected {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut frame = match self.frame_pool.pop() {
            Some(mut fr) => {
                self.pool_hits += 1;
                wolfram_runtime::memory::record_frame_hit();
                fr.reset(func);
                fr
            }
            None => {
                self.pool_misses += 1;
                wolfram_runtime::memory::record_frame_miss();
                Frame::new(func)
            }
        };
        for (slot, arg) in func.params.iter().zip(args) {
            frame.store(*slot, arg)?;
        }
        let out = self.run(prog, func, &mut frame, &mut engine);
        if out.is_err() {
            // Unwind accounting (F7): an abort or runtime error skips the
            // remaining MemoryRelease instructions, but the held values are
            // dropped just below — record those releases so acquire/release
            // accounting stays balanced across unwinds (the serve pool
            // asserts this after deadline-aborted requests).
            for ac in &mut frame.acquired {
                if std::mem::take(ac) {
                    wolfram_runtime::memory::record_release();
                }
            }
        }
        // Drop held values eagerly, then recycle the allocation.
        frame.vals.clear();
        if self.frame_pool.len() < FRAME_POOL_CAP {
            self.frame_pool.push(frame);
        }
        out
    }

    /// Calls function `fix` through a [`CallSession`], resetting and
    /// reusing the session's dedicated frame instead of cycling it through
    /// the machine pool. This is the `wolfram-stream` entry path: a stream
    /// applies one compiled function to millions of records, so the frame
    /// shape never changes between calls and the pop/push plus full
    /// re-shape of [`Machine::call_with_engine`] is pure overhead.
    ///
    /// The refcount-balance invariant is identical to the pooled path: an
    /// error unwind drains the frame's `acquired` flags through
    /// `record_release`, and held values are dropped before the frame goes
    /// back into the session, so an aborted record cannot poison the next.
    ///
    /// # Errors
    ///
    /// As for [`Machine::call`]. `args` is drained on every path, including
    /// errors, so the caller can keep reusing its argument buffer.
    pub fn call_streaming(
        &mut self,
        prog: &NativeProgram,
        fix: usize,
        session: &mut CallSession,
        args: &mut Vec<ArgVal>,
        mut engine: Option<&mut Interpreter>,
    ) -> Result<ArgVal, RuntimeError> {
        let func = &prog.funcs[fix];
        if args.len() != func.params.len() {
            args.clear();
            return Err(RuntimeError::Type(format!(
                "{} expected {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut frame = match session.frame.take() {
            Some(mut fr) => {
                wolfram_runtime::memory::record_frame_reset();
                fr.reset(func);
                fr
            }
            None => {
                wolfram_runtime::memory::record_frame_miss();
                Frame::new(func)
            }
        };
        let mut stored = Ok(());
        for (slot, arg) in func.params.iter().zip(args.drain(..)) {
            if stored.is_ok() {
                stored = frame.store(*slot, arg);
            }
        }
        let out = match stored {
            Ok(()) => self.run(prog, func, &mut frame, &mut engine),
            Err(e) => Err(e),
        };
        if out.is_err() {
            // Same unwind accounting as `call_with_engine` (F7).
            for ac in &mut frame.acquired {
                if std::mem::take(ac) {
                    wolfram_runtime::memory::record_release();
                }
            }
        }
        frame.vals.clear();
        session.frame = Some(frame);
        out
    }

    #[allow(clippy::too_many_lines)]
    fn run(
        &mut self,
        prog: &NativeProgram,
        func: &NativeFunc,
        fr: &mut Frame,
        engine: &mut Option<&mut Interpreter>,
    ) -> Result<ArgVal, RuntimeError> {
        let code = &func.code;
        let par = prog.parallel;
        let mut pc = 0usize;
        loop {
            let op = &code[pc];
            pc += 1;
            if let Some(p) = self.profile.as_deref_mut() {
                p.record(op.mnemonic());
            }
            match op {
                RegOp::LdcI { d, v } => fr.ints[*d] = *v,
                RegOp::LdcF { d, v } => fr.flts[*d] = *v,
                RegOp::LdcC { d, re, im } => fr.cpxs[*d] = (*re, *im),
                RegOp::LdcV { d, v } => fr.vals[*d] = clone_cheap(v),
                RegOp::LdcArrayCopy { d, v } => {
                    fr.vals[*d] = match v {
                        Value::Tensor(t) => {
                            let data = t.data().clone();
                            Value::Tensor(Tensor::with_shape(t.shape().to_vec(), data)?)
                        }
                        other => other.clone(),
                    };
                }
                RegOp::MovI { d, s } => fr.ints[*d] = fr.ints[*s],
                RegOp::MovF { d, s } => fr.flts[*d] = fr.flts[*s],
                RegOp::MovC { d, s } => fr.cpxs[*d] = fr.cpxs[*s],
                RegOp::MovV { d, s } => {
                    let v = clone_cheap(&fr.vals[*s]);
                    fr.vals[*d] = v;
                }
                RegOp::TakeV { d, s } => {
                    fr.vals[*d] = std::mem::replace(&mut fr.vals[*s], Value::Null);
                }
                RegOp::IntBin { op, d, a, b } => {
                    let (x, y) = (fr.ints[*a], fr.ints[*b]);
                    fr.ints[*d] = int_bin(*op, x, y)?;
                }
                RegOp::IntBinImm { op, d, a, imm } => {
                    let x = fr.ints[*a];
                    fr.ints[*d] = int_bin(*op, x, *imm)?;
                }
                RegOp::FltBinImm { op, d, a, imm } => {
                    let x = fr.flts[*a];
                    fr.flts[*d] = flt_bin(*op, x, *imm)?;
                }
                RegOp::IntUn { op, d, s } => {
                    let x = fr.ints[*s];
                    fr.ints[*d] = match op {
                        IntUnOp::Neg => checked::neg_i64(x)?,
                        IntUnOp::Abs => checked::abs_i64(x)?,
                        IntUnOp::Not => (x == 0) as i64,
                        IntUnOp::Sign => x.signum(),
                        IntUnOp::Factorial => {
                            if x < 0 {
                                return Err(RuntimeError::Type(
                                    "Factorial of a negative machine integer".into(),
                                ));
                            }
                            let mut acc: i64 = 1;
                            for k in 2..=x {
                                acc = checked::mul_i64(acc, k)?;
                            }
                            acc
                        }
                    };
                }
                RegOp::PowModI { d, a, b, m } => {
                    let (x, y, md) = (fr.ints[*a], fr.ints[*b], fr.ints[*m]);
                    fr.ints[*d] = pow_mod_i64(x, y, md)?;
                }
                RegOp::FltBin { op, d, a, b } => {
                    let (x, y) = (fr.flts[*a], fr.flts[*b]);
                    fr.flts[*d] = flt_bin(*op, x, y)?;
                }
                RegOp::FltCmp { op, d, a, b } => {
                    let (x, y) = (fr.flts[*a], fr.flts[*b]);
                    fr.ints[*d] = flt_cmp(*op, x, y) as i64;
                }
                RegOp::FltUn { op, d, s } => {
                    let x = fr.flts[*s];
                    fr.flts[*d] = match op {
                        FltUnOp::Neg => -x,
                        FltUnOp::Abs => x.abs(),
                        FltUnOp::Sqrt => x.sqrt(),
                        FltUnOp::Sin => x.sin(),
                        FltUnOp::Cos => x.cos(),
                        FltUnOp::Tan => x.tan(),
                        FltUnOp::Exp => x.exp(),
                        FltUnOp::Log => x.ln(),
                        FltUnOp::ArcTan => x.atan(),
                        FltUnOp::ArcSin => x.asin(),
                        FltUnOp::ArcCos => x.acos(),
                        FltUnOp::Sign => {
                            if x > 0.0 {
                                1.0
                            } else if x < 0.0 {
                                -1.0
                            } else {
                                0.0
                            }
                        }
                    };
                }
                RegOp::FloorFI { d, s } => fr.ints[*d] = fr.flts[*s].floor() as i64,
                RegOp::CeilFI { d, s } => fr.ints[*d] = fr.flts[*s].ceil() as i64,
                RegOp::RoundFI { d, s } => {
                    let v = fr.flts[*s];
                    let r = v.round();
                    let r = if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                        r - v.signum()
                    } else {
                        r
                    };
                    fr.ints[*d] = r as i64;
                }
                RegOp::IntToFlt { d, s } => fr.flts[*d] = fr.ints[*s] as f64,
                RegOp::IntToCpx { d, s } => fr.cpxs[*d] = (fr.ints[*s] as f64, 0.0),
                RegOp::FltToCpx { d, s } => fr.cpxs[*d] = (fr.flts[*s], 0.0),
                RegOp::CpxBin { op, d, a, b } => {
                    let (x, y) = (fr.cpxs[*a], fr.cpxs[*b]);
                    fr.cpxs[*d] = match op {
                        CpxOp::Add => (x.0 + y.0, x.1 + y.1),
                        CpxOp::Sub => (x.0 - y.0, x.1 - y.1),
                        CpxOp::Mul => checked::mul_complex(x, y),
                        CpxOp::Div => checked::div_complex(x, y),
                    };
                }
                RegOp::CpxPowI { d, a, e } => {
                    let base = fr.cpxs[*a];
                    let exp = fr.ints[*e];
                    let mut acc = (1.0f64, 0.0f64);
                    for _ in 0..exp.unsigned_abs() {
                        acc = checked::mul_complex(acc, base);
                    }
                    if exp < 0 {
                        acc = checked::div_complex((1.0, 0.0), acc);
                    }
                    fr.cpxs[*d] = acc;
                }
                RegOp::CpxAbs { d, s } => {
                    let (re, im) = fr.cpxs[*s];
                    fr.flts[*d] = re.hypot(im);
                }
                RegOp::CpxMake { d, re, im } => fr.cpxs[*d] = (fr.flts[*re], fr.flts[*im]),
                RegOp::CpxRe { d, s } => fr.flts[*d] = fr.cpxs[*s].0,
                RegOp::CpxIm { d, s } => fr.flts[*d] = fr.cpxs[*s].1,
                RegOp::CpxConj { d, s } => {
                    let (re, im) = fr.cpxs[*s];
                    fr.cpxs[*d] = (re, -im);
                }
                RegOp::CpxEq { d, a, b } => {
                    fr.ints[*d] = (fr.cpxs[*a] == fr.cpxs[*b]) as i64;
                }
                RegOp::TenLen { d, t } => {
                    let t = fr.vals[*t].expect_tensor()?;
                    fr.ints[*d] = t.length() as i64;
                }
                RegOp::TenPart1 { kind, d, t, i } => {
                    let ix = fr.ints[*i];
                    let t = fr.vals[*t].expect_tensor()?;
                    let off = t.resolve_index(ix)?;
                    match (kind, t.data()) {
                        (ElemKind::I64, TensorData::I64(v)) => fr.ints[*d] = v[off],
                        (ElemKind::F64, TensorData::F64(v)) => fr.flts[*d] = v[off],
                        (ElemKind::F64, TensorData::I64(v)) => fr.flts[*d] = v[off] as f64,
                        (ElemKind::C64, TensorData::Complex(v)) => fr.cpxs[*d] = v[off],
                        _ => return Err(RuntimeError::Type("tensor element kind mismatch".into())),
                    }
                }
                RegOp::TenPart2 { kind, d, t, i, j } => {
                    let (ix, jx) = (fr.ints[*i], fr.ints[*j]);
                    let t = fr.vals[*t].expect_tensor()?;
                    if t.rank() != 2 {
                        return Err(RuntimeError::Type("Part[_,i,j] on non-matrix".into()));
                    }
                    let cols = t.shape()[1];
                    let r = checked::resolve_part_index(ix, t.shape()[0])?;
                    let c = checked::resolve_part_index(jx, cols)?;
                    let off = r * cols + c;
                    match (kind, t.data()) {
                        (ElemKind::I64, TensorData::I64(v)) => fr.ints[*d] = v[off],
                        (ElemKind::F64, TensorData::F64(v)) => fr.flts[*d] = v[off],
                        (ElemKind::F64, TensorData::I64(v)) => fr.flts[*d] = v[off] as f64,
                        (ElemKind::C64, TensorData::Complex(v)) => fr.cpxs[*d] = v[off],
                        _ => return Err(RuntimeError::Type("tensor element kind mismatch".into())),
                    }
                }
                RegOp::TenSet1 { kind, t, i, v } => {
                    let ix = fr.ints[*i];
                    let value = match kind {
                        ElemKind::I64 => ArgVal::I(fr.ints[*v]),
                        ElemKind::F64 => ArgVal::F(fr.flts[*v]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*v];
                            ArgVal::C(re, im)
                        }
                    };
                    let Value::Tensor(tensor) = &mut fr.vals[*t] else {
                        return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                    };
                    let off = tensor.resolve_index(ix)?;
                    tensor_store(tensor, off, value)?;
                }
                RegOp::TenSet2 { kind, t, i, j, v } => {
                    let (ix, jx) = (fr.ints[*i], fr.ints[*j]);
                    let value = match kind {
                        ElemKind::I64 => ArgVal::I(fr.ints[*v]),
                        ElemKind::F64 => ArgVal::F(fr.flts[*v]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*v];
                            ArgVal::C(re, im)
                        }
                    };
                    let Value::Tensor(tensor) = &mut fr.vals[*t] else {
                        return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                    };
                    if tensor.rank() != 2 {
                        return Err(RuntimeError::Type("SetPart2 on non-matrix".into()));
                    }
                    let cols = tensor.shape()[1];
                    let r = checked::resolve_part_index(ix, tensor.shape()[0])?;
                    let c = checked::resolve_part_index(jx, cols)?;
                    tensor_store(tensor, r * cols + c, value)?;
                }
                RegOp::TenPart1U { kind, d, t, i } => {
                    let ix = fr.ints[*i];
                    let t = fr.vals[*t].expect_tensor()?;
                    let off = unchecked_index(ix, t.length());
                    match (kind, t.data()) {
                        (ElemKind::I64, TensorData::I64(v)) => fr.ints[*d] = v[off],
                        (ElemKind::F64, TensorData::F64(v)) => fr.flts[*d] = v[off],
                        (ElemKind::F64, TensorData::I64(v)) => fr.flts[*d] = v[off] as f64,
                        (ElemKind::C64, TensorData::Complex(v)) => fr.cpxs[*d] = v[off],
                        _ => return Err(RuntimeError::Type("tensor element kind mismatch".into())),
                    }
                }
                RegOp::TenPart2U { kind, d, t, i, j } => {
                    let (ix, jx) = (fr.ints[*i], fr.ints[*j]);
                    let t = fr.vals[*t].expect_tensor()?;
                    let cols = t.shape()[1];
                    let off = unchecked_index(ix, t.shape()[0]) * cols + unchecked_index(jx, cols);
                    match (kind, t.data()) {
                        (ElemKind::I64, TensorData::I64(v)) => fr.ints[*d] = v[off],
                        (ElemKind::F64, TensorData::F64(v)) => fr.flts[*d] = v[off],
                        (ElemKind::F64, TensorData::I64(v)) => fr.flts[*d] = v[off] as f64,
                        (ElemKind::C64, TensorData::Complex(v)) => fr.cpxs[*d] = v[off],
                        _ => return Err(RuntimeError::Type("tensor element kind mismatch".into())),
                    }
                }
                RegOp::TenSet1U { kind, t, i, v } => {
                    let ix = fr.ints[*i];
                    let value = match kind {
                        ElemKind::I64 => ArgVal::I(fr.ints[*v]),
                        ElemKind::F64 => ArgVal::F(fr.flts[*v]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*v];
                            ArgVal::C(re, im)
                        }
                    };
                    let Value::Tensor(tensor) = &mut fr.vals[*t] else {
                        return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                    };
                    let off = unchecked_index(ix, tensor.length());
                    tensor_store(tensor, off, value)?;
                }
                RegOp::TenSet2U { kind, t, i, j, v } => {
                    let (ix, jx) = (fr.ints[*i], fr.ints[*j]);
                    let value = match kind {
                        ElemKind::I64 => ArgVal::I(fr.ints[*v]),
                        ElemKind::F64 => ArgVal::F(fr.flts[*v]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*v];
                            ArgVal::C(re, im)
                        }
                    };
                    let Value::Tensor(tensor) = &mut fr.vals[*t] else {
                        return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                    };
                    let cols = tensor.shape()[1];
                    let off =
                        unchecked_index(ix, tensor.shape()[0]) * cols + unchecked_index(jx, cols);
                    tensor_store(tensor, off, value)?;
                }
                RegOp::TenFill1 { kind, d, c, n } => {
                    let n = fr.ints[*n].max(0) as usize;
                    let data = match kind {
                        ElemKind::I64 => TensorData::I64(vec![fr.ints[*c]; n]),
                        ElemKind::F64 => TensorData::F64(vec![fr.flts[*c]; n]),
                        ElemKind::C64 => TensorData::Complex(vec![fr.cpxs[*c]; n]),
                    };
                    fr.vals[*d] = Value::Tensor(Tensor::with_shape(vec![n], data)?);
                }
                RegOp::TenFill2 { kind, d, c, n1, n2 } => {
                    let n1v = fr.ints[*n1].max(0) as usize;
                    let n2v = fr.ints[*n2].max(0) as usize;
                    let total = n1v * n2v;
                    let data = match kind {
                        ElemKind::I64 => TensorData::I64(vec![fr.ints[*c]; total]),
                        ElemKind::F64 => TensorData::F64(vec![fr.flts[*c]; total]),
                        ElemKind::C64 => TensorData::Complex(vec![fr.cpxs[*c]; total]),
                    };
                    fr.vals[*d] = Value::Tensor(Tensor::with_shape(vec![n1v, n2v], data)?);
                }
                RegOp::TenBin { op, d, a, b } => {
                    let ta = fr.vals[*a].expect_tensor()?;
                    let tb = fr.vals[*b].expect_tensor()?;
                    fr.vals[*d] = Value::Tensor(tensor_elementwise(*op, ta, tb, par.as_ref())?);
                }
                RegOp::TenScalar {
                    op,
                    kind,
                    d,
                    t,
                    s,
                    rev,
                } => {
                    let sv = match kind {
                        ElemKind::I64 => Value::I64(fr.ints[*s]),
                        ElemKind::F64 => Value::F64(fr.flts[*s]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*s];
                            Value::Complex(re, im)
                        }
                    };
                    let ten = fr.vals[*t].expect_tensor()?;
                    fr.vals[*d] = Value::Tensor(tensor_scalar_elementwise(
                        *op,
                        ten,
                        &sv,
                        *rev,
                        par.as_ref(),
                    )?);
                }
                RegOp::TenSetRow { t, i, row } => {
                    let ix = fr.ints[*i];
                    let row_t = fr.vals[*row].expect_tensor()?.clone();
                    let Value::Tensor(tensor) = &mut fr.vals[*t] else {
                        return Err(RuntimeError::Type("SetRow on non-tensor".into()));
                    };
                    if tensor.rank() != 2 || row_t.rank() != 1 {
                        return Err(RuntimeError::Type("SetRow rank mismatch".into()));
                    }
                    let cols = tensor.shape()[1];
                    if row_t.length() != cols {
                        return Err(RuntimeError::Type("SetRow width mismatch".into()));
                    }
                    let r = checked::resolve_part_index(ix, tensor.shape()[0])?;
                    match (tensor.data_mut(), row_t.data()) {
                        (TensorData::F64(dst), TensorData::F64(src)) => {
                            dst[r * cols..(r + 1) * cols].copy_from_slice(src);
                        }
                        (TensorData::I64(dst), TensorData::I64(src)) => {
                            dst[r * cols..(r + 1) * cols].copy_from_slice(src);
                        }
                        (TensorData::Complex(dst), TensorData::Complex(src)) => {
                            dst[r * cols..(r + 1) * cols].copy_from_slice(src);
                        }
                        _ => return Err(RuntimeError::Type("SetRow element mismatch".into())),
                    }
                }
                RegOp::TenFromList { kind, d, items } => {
                    let data = match kind {
                        ElemKind::I64 => {
                            TensorData::I64(items.iter().map(|&s| fr.ints[s]).collect())
                        }
                        ElemKind::F64 => {
                            TensorData::F64(items.iter().map(|&s| fr.flts[s]).collect())
                        }
                        ElemKind::C64 => {
                            TensorData::Complex(items.iter().map(|&s| fr.cpxs[s]).collect())
                        }
                    };
                    fr.vals[*d] = Value::Tensor(Tensor::with_shape(vec![items.len()], data)?);
                }
                RegOp::DotVecF { d, a, b } => {
                    let ta = fr.vals[*a].expect_tensor()?.to_f64_tensor();
                    let tb = fr.vals[*b].expect_tensor()?.to_f64_tensor();
                    let (x, y) = (ta.expect_f64()?, tb.expect_f64()?);
                    if x.len() != y.len() {
                        return Err(RuntimeError::Type("Dot length mismatch".into()));
                    }
                    fr.flts[*d] = match par.as_ref() {
                        Some(cfg) => parallel::dot_f64(cfg, x, y),
                        None => wolfram_runtime::linalg::ddot(x, y),
                    };
                }
                RegOp::DotVecI { d, a, b } => {
                    let ta = fr.vals[*a].expect_tensor()?;
                    let tb = fr.vals[*b].expect_tensor()?;
                    let (Some(x), Some(y)) = (ta.as_i64(), tb.as_i64()) else {
                        return Err(RuntimeError::Type("integer Dot on non-integer".into()));
                    };
                    if x.len() != y.len() {
                        return Err(RuntimeError::Type("Dot length mismatch".into()));
                    }
                    let mut acc = 0i64;
                    for (p, q) in x.iter().zip(y) {
                        acc = checked::add_i64(acc, checked::mul_i64(*p, *q)?)?;
                    }
                    fr.ints[*d] = acc;
                }
                RegOp::DotMat { d, a, b } => {
                    let ta = fr.vals[*a].expect_tensor()?.to_f64_tensor();
                    let tb = fr.vals[*b].expect_tensor()?.to_f64_tensor();
                    if ta.rank() != 2 || tb.rank() != 2 || ta.shape()[1] != tb.shape()[0] {
                        return Err(RuntimeError::Type("Dot shape mismatch".into()));
                    }
                    let (m, k, n) = (ta.shape()[0], ta.shape()[1], tb.shape()[1]);
                    let mut out = vec![0.0; m * n];
                    match par.as_ref() {
                        Some(cfg) => {
                            parallel::dgemm(
                                cfg,
                                ta.expect_f64()?,
                                tb.expect_f64()?,
                                &mut out,
                                m,
                                k,
                                n,
                            );
                        }
                        None => {
                            wolfram_runtime::linalg::dgemm(
                                ta.expect_f64()?,
                                tb.expect_f64()?,
                                &mut out,
                                m,
                                k,
                                n,
                            );
                        }
                    }
                    fr.vals[*d] =
                        Value::Tensor(Tensor::with_shape(vec![m, n], TensorData::F64(out))?);
                }
                RegOp::DotMatVec { d, a, b } => {
                    let ta = fr.vals[*a].expect_tensor()?.to_f64_tensor();
                    let tb = fr.vals[*b].expect_tensor()?.to_f64_tensor();
                    if ta.rank() != 2 || tb.rank() != 1 || ta.shape()[1] != tb.length() {
                        return Err(RuntimeError::Type("Dot shape mismatch".into()));
                    }
                    let (m, n) = (ta.shape()[0], ta.shape()[1]);
                    let mut out = vec![0.0; m];
                    match par.as_ref() {
                        Some(cfg) => {
                            parallel::dgemv(
                                cfg,
                                ta.expect_f64()?,
                                tb.expect_f64()?,
                                &mut out,
                                m,
                                n,
                            );
                        }
                        None => {
                            wolfram_runtime::linalg::dgemv(
                                ta.expect_f64()?,
                                tb.expect_f64()?,
                                &mut out,
                                m,
                                n,
                            );
                        }
                    }
                    fr.vals[*d] = Value::Tensor(Tensor::from_f64(out));
                }
                RegOp::StrLen { d, s } => {
                    let s = fr.vals[*s].expect_str()?;
                    fr.ints[*d] = s.chars().count() as i64;
                }
                RegOp::StrToCodes { d, s } => {
                    let s = fr.vals[*s].expect_str()?;
                    let codes: Vec<i64> = s.bytes().map(|b| b as i64).collect();
                    fr.vals[*d] = Value::Tensor(Tensor::from_i64(codes));
                }
                RegOp::StrFromCodes { d, s } => {
                    let t = fr.vals[*s].expect_tensor()?;
                    let Some(codes) = t.as_i64() else {
                        return Err(RuntimeError::Type("FromCharacterCode codes".into()));
                    };
                    let mut out = String::new();
                    for &c in codes {
                        let ch = u32::try_from(c)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or_else(|| RuntimeError::Type(format!("invalid char code {c}")))?;
                        out.push(ch);
                    }
                    fr.vals[*d] = Value::Str(Arc::new(out));
                }
                RegOp::StrJoin { d, a, b } => {
                    let x = fr.vals[*a].expect_str()?;
                    let y = fr.vals[*b].expect_str()?;
                    let mut out = String::with_capacity(x.len() + y.len());
                    out.push_str(x);
                    out.push_str(y);
                    fr.vals[*d] = Value::Str(Arc::new(out));
                }
                RegOp::ExprBin { op, d, a, b } => {
                    let x = fr.vals[*a].to_expr();
                    let y = fr.vals[*b].to_expr();
                    let head = match op {
                        ExprOp::Plus => "Plus",
                        ExprOp::Times => "Times",
                        ExprOp::Subtract => "Subtract",
                        ExprOp::Power => "Power",
                    };
                    let combined = Expr::call(head, [x, y]);
                    // Threaded interpretation: one normalization step via
                    // the hosting engine's evaluator.
                    let result = match engine.as_deref_mut() {
                        Some(eng) => eng.eval(&combined)?,
                        None => {
                            return Err(RuntimeError::Other(
                                "symbolic operations require a hosting Wolfram Engine".into(),
                            ))
                        }
                    };
                    fr.vals[*d] = Value::Expr(result);
                }
                RegOp::ExprUnary { head, d, a } => {
                    let x = fr.vals[*a].to_expr();
                    let combined = Expr::call(head, [x]);
                    let result = match engine.as_deref_mut() {
                        Some(eng) => eng.eval(&combined)?,
                        None => {
                            return Err(RuntimeError::Other(
                                "symbolic operations require a hosting Wolfram Engine".into(),
                            ))
                        }
                    };
                    fr.vals[*d] = Value::Expr(result);
                }
                RegOp::BoolToExpr { d, s } => {
                    fr.vals[*d] = Value::Expr(Expr::bool(fr.ints[*s] != 0));
                }
                RegOp::BoxIV { d, s } => {
                    fr.vals[*d] = Value::I64(fr.ints[*s]);
                }
                RegOp::BoxFV { d, s } => {
                    fr.vals[*d] = Value::F64(fr.flts[*s]);
                }
                RegOp::BoxCV { d, s } => {
                    let (re, im) = fr.cpxs[*s];
                    fr.vals[*d] = Value::Complex(re, im);
                }
                RegOp::RndUnit { d } => fr.flts[*d] = self.next_f64(),
                RegOp::RndRange { d, a, b } => {
                    let (lo, hi) = (fr.flts[*a], fr.flts[*b]);
                    fr.flts[*d] = lo + (hi - lo) * self.next_f64();
                }
                RegOp::MakeClosure { d, f, captures } => {
                    let caps: Vec<Value> = captures
                        .iter()
                        .map(|s| fr.load(*s).into_value(false))
                        .collect();
                    fr.vals[*d] = Value::Function(Arc::new(FunctionValue {
                        name: Arc::from(prog.funcs[*f].name.as_str()),
                        index: *f,
                        captures: caps,
                    }));
                }
                RegOp::CallFunc { f, args, ret } => {
                    let argv: Vec<ArgVal> = args.iter().map(|s| fr.load(*s)).collect();
                    let out = self.call_with_engine(prog, *f, argv, engine.as_deref_mut())?;
                    fr.store(*ret, out)?;
                }
                RegOp::CallValue { fv, args, ret } => {
                    let fval = fr.vals[*fv].expect_function()?.clone();
                    let mut argv: Vec<ArgVal> =
                        fval.captures.iter().map(|c| ArgVal::V(c.clone())).collect();
                    // Marshal each arg into the callee's expected bank.
                    let callee = &prog.funcs[fval.index];
                    let skip = argv.len();
                    for (s, param) in args.iter().zip(callee.params.iter().skip(skip)) {
                        let raw = fr.load(*s);
                        let v = match (param.bank, raw) {
                            (Bank::V, ArgVal::V(v)) => ArgVal::V(v),
                            (_, other) => other,
                        };
                        argv.push(v);
                    }
                    // Captures must be re-marshaled from boxed to banks.
                    let mut marshaled = Vec::with_capacity(argv.len());
                    for (v, param) in argv.into_iter().zip(callee.params.iter()) {
                        marshaled.push(match v {
                            ArgVal::V(boxed) if param.bank != Bank::V => {
                                ArgVal::from_value(&boxed, param.bank)?
                            }
                            other => other,
                        });
                    }
                    let out =
                        self.call_with_engine(prog, fval.index, marshaled, engine.as_deref_mut())?;
                    fr.store(*ret, out)?;
                }
                RegOp::CallKernel { head, args, ret } => {
                    let Some(eng) = engine.as_deref_mut() else {
                        return Err(RuntimeError::Other(
                            "KernelFunction requires a hosting Wolfram Engine (disabled in \
                             standalone mode)"
                                .into(),
                        ));
                    };
                    let arg_exprs: Vec<Expr> = args
                        .iter()
                        .map(|s| fr.load(*s).into_value(false).to_expr())
                        .collect();
                    let call = Expr::call(head, arg_exprs);
                    let result = eng.eval(&call)?;
                    fr.store(*ret, ArgVal::V(Value::from_expr(&result)))?;
                }
                RegOp::Jmp { pc: t } => pc = *t,
                RegOp::Brz { c, pc: t } => {
                    if fr.ints[*c] == 0 {
                        pc = *t;
                    }
                }
                RegOp::BrCmpIFalse { op, a, b, d, pc: t } => {
                    let v = int_bin(*op, fr.ints[*a as usize], fr.ints[*b as usize])?;
                    fr.ints[*d as usize] = v;
                    if v == 0 {
                        pc = *t as usize;
                    }
                }
                RegOp::BrCmpFFalse { op, a, b, d, pc: t } => {
                    let cond = flt_cmp(*op, fr.flts[*a as usize], fr.flts[*b as usize]);
                    fr.ints[*d as usize] = cond as i64;
                    if !cond {
                        pc = *t as usize;
                    }
                }
                RegOp::BrCmpISel {
                    op,
                    a,
                    b,
                    d,
                    pc_false,
                    pc_true,
                } => {
                    let v = int_bin(*op, fr.ints[*a as usize], fr.ints[*b as usize])?;
                    fr.ints[*d as usize] = v;
                    pc = if v == 0 {
                        *pc_false as usize
                    } else {
                        *pc_true as usize
                    };
                }
                RegOp::BrCmpFSel {
                    op,
                    a,
                    b,
                    d,
                    pc_false,
                    pc_true,
                } => {
                    let cond = flt_cmp(*op, fr.flts[*a as usize], fr.flts[*b as usize]);
                    fr.ints[*d as usize] = cond as i64;
                    pc = if cond {
                        *pc_true as usize
                    } else {
                        *pc_false as usize
                    };
                }
                RegOp::BrzJmp { c, pc_z, pc_nz } => {
                    pc = if fr.ints[*c as usize] == 0 {
                        *pc_z as usize
                    } else {
                        *pc_nz as usize
                    };
                }
                RegOp::IntBin2 {
                    op1,
                    d1,
                    a1,
                    b1,
                    op2,
                    d2,
                    a2,
                    b2,
                } => {
                    fr.ints[*d1 as usize] =
                        int_bin(*op1, fr.ints[*a1 as usize], fr.ints[*b1 as usize])?;
                    fr.ints[*d2 as usize] =
                        int_bin(*op2, fr.ints[*a2 as usize], fr.ints[*b2 as usize])?;
                }
                RegOp::IntBinImm2 {
                    op1,
                    d1,
                    a1,
                    imm1,
                    op2,
                    d2,
                    a2,
                    imm2,
                } => {
                    fr.ints[*d1 as usize] = int_bin(*op1, fr.ints[*a1 as usize], *imm1 as i64)?;
                    fr.ints[*d2 as usize] = int_bin(*op2, fr.ints[*a2 as usize], *imm2 as i64)?;
                }
                RegOp::IntBinImmJmp {
                    op,
                    d,
                    a,
                    imm,
                    pc: t,
                } => {
                    fr.ints[*d as usize] = int_bin(*op, fr.ints[*a as usize], *imm as i64)?;
                    pc = *t as usize;
                }
                RegOp::FltBin2 {
                    op1,
                    d1,
                    a1,
                    b1,
                    op2,
                    d2,
                    a2,
                    b2,
                } => {
                    fr.flts[*d1 as usize] =
                        flt_bin(*op1, fr.flts[*a1 as usize], fr.flts[*b1 as usize])?;
                    fr.flts[*d2 as usize] =
                        flt_bin(*op2, fr.flts[*a2 as usize], fr.flts[*b2 as usize])?;
                }
                RegOp::TenPart1IntBin {
                    e,
                    t,
                    i,
                    op,
                    d,
                    a,
                    b,
                } => {
                    let ix = fr.ints[*i as usize];
                    let tt = fr.vals[*t as usize].expect_tensor()?;
                    let off = tt.resolve_index(ix)?;
                    let TensorData::I64(v) = tt.data() else {
                        return Err(RuntimeError::Type("tensor element kind mismatch".into()));
                    };
                    fr.ints[*e as usize] = v[off];
                    fr.ints[*d as usize] =
                        int_bin(*op, fr.ints[*a as usize], fr.ints[*b as usize])?;
                }
                RegOp::TenPart1IntBinImm {
                    e,
                    t,
                    i,
                    op,
                    d,
                    a,
                    imm,
                } => {
                    let ix = fr.ints[*i as usize];
                    let tt = fr.vals[*t as usize].expect_tensor()?;
                    let off = tt.resolve_index(ix)?;
                    let TensorData::I64(v) = tt.data() else {
                        return Err(RuntimeError::Type("tensor element kind mismatch".into()));
                    };
                    fr.ints[*e as usize] = v[off];
                    fr.ints[*d as usize] = int_bin(*op, fr.ints[*a as usize], *imm as i64)?;
                }
                RegOp::TenPart2FltBin {
                    e,
                    t,
                    i,
                    j,
                    op,
                    d,
                    a,
                    b,
                } => {
                    let (ix, jx) = (fr.ints[*i as usize], fr.ints[*j as usize]);
                    let tt = fr.vals[*t as usize].expect_tensor()?;
                    if tt.rank() != 2 {
                        return Err(RuntimeError::Type("Part[_,i,j] on non-matrix".into()));
                    }
                    let cols = tt.shape()[1];
                    let r = checked::resolve_part_index(ix, tt.shape()[0])?;
                    let c = checked::resolve_part_index(jx, cols)?;
                    let off = r * cols + c;
                    fr.flts[*e as usize] = match tt.data() {
                        TensorData::F64(v) => v[off],
                        TensorData::I64(v) => v[off] as f64,
                        _ => return Err(RuntimeError::Type("tensor element kind mismatch".into())),
                    };
                    fr.flts[*d as usize] =
                        flt_bin(*op, fr.flts[*a as usize], fr.flts[*b as usize])?;
                }
                RegOp::TakeVTenSet1 {
                    dv,
                    sv,
                    kind,
                    t,
                    i,
                    v,
                } => {
                    fr.vals[*dv as usize] =
                        std::mem::replace(&mut fr.vals[*sv as usize], Value::Null);
                    let ix = fr.ints[*i as usize];
                    let value = match kind {
                        ElemKind::I64 => ArgVal::I(fr.ints[*v as usize]),
                        ElemKind::F64 => ArgVal::F(fr.flts[*v as usize]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*v as usize];
                            ArgVal::C(re, im)
                        }
                    };
                    let Value::Tensor(tensor) = &mut fr.vals[*t as usize] else {
                        return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                    };
                    let off = tensor.resolve_index(ix)?;
                    tensor_store(tensor, off, value)?;
                }
                RegOp::TakeVTenSet2 {
                    dv,
                    sv,
                    kind,
                    t,
                    i,
                    j,
                    v,
                } => {
                    fr.vals[*dv as usize] =
                        std::mem::replace(&mut fr.vals[*sv as usize], Value::Null);
                    let (ix, jx) = (fr.ints[*i as usize], fr.ints[*j as usize]);
                    let value = match kind {
                        ElemKind::I64 => ArgVal::I(fr.ints[*v as usize]),
                        ElemKind::F64 => ArgVal::F(fr.flts[*v as usize]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*v as usize];
                            ArgVal::C(re, im)
                        }
                    };
                    let Value::Tensor(tensor) = &mut fr.vals[*t as usize] else {
                        return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                    };
                    if tensor.rank() != 2 {
                        return Err(RuntimeError::Type("SetPart2 on non-matrix".into()));
                    }
                    let cols = tensor.shape()[1];
                    let r = checked::resolve_part_index(ix, tensor.shape()[0])?;
                    let c = checked::resolve_part_index(jx, cols)?;
                    tensor_store(tensor, r * cols + c, value)?;
                }
                RegOp::TenPart1IntBinU {
                    e,
                    t,
                    i,
                    op,
                    d,
                    a,
                    b,
                } => {
                    let ix = fr.ints[*i as usize];
                    let tt = fr.vals[*t as usize].expect_tensor()?;
                    let off = unchecked_index(ix, tt.length());
                    let TensorData::I64(v) = tt.data() else {
                        return Err(RuntimeError::Type("tensor element kind mismatch".into()));
                    };
                    fr.ints[*e as usize] = v[off];
                    fr.ints[*d as usize] =
                        int_bin(*op, fr.ints[*a as usize], fr.ints[*b as usize])?;
                }
                RegOp::TenPart1IntBinImmU {
                    e,
                    t,
                    i,
                    op,
                    d,
                    a,
                    imm,
                } => {
                    let ix = fr.ints[*i as usize];
                    let tt = fr.vals[*t as usize].expect_tensor()?;
                    let off = unchecked_index(ix, tt.length());
                    let TensorData::I64(v) = tt.data() else {
                        return Err(RuntimeError::Type("tensor element kind mismatch".into()));
                    };
                    fr.ints[*e as usize] = v[off];
                    fr.ints[*d as usize] = int_bin(*op, fr.ints[*a as usize], *imm as i64)?;
                }
                RegOp::TenPart2FltBinU {
                    e,
                    t,
                    i,
                    j,
                    op,
                    d,
                    a,
                    b,
                } => {
                    let (ix, jx) = (fr.ints[*i as usize], fr.ints[*j as usize]);
                    let tt = fr.vals[*t as usize].expect_tensor()?;
                    let cols = tt.shape()[1];
                    let off = unchecked_index(ix, tt.shape()[0]) * cols + unchecked_index(jx, cols);
                    fr.flts[*e as usize] = match tt.data() {
                        TensorData::F64(v) => v[off],
                        TensorData::I64(v) => v[off] as f64,
                        _ => return Err(RuntimeError::Type("tensor element kind mismatch".into())),
                    };
                    fr.flts[*d as usize] =
                        flt_bin(*op, fr.flts[*a as usize], fr.flts[*b as usize])?;
                }
                RegOp::TakeVTenSet2U {
                    dv,
                    sv,
                    kind,
                    t,
                    i,
                    j,
                    v,
                } => {
                    fr.vals[*dv as usize] =
                        std::mem::replace(&mut fr.vals[*sv as usize], Value::Null);
                    let (ix, jx) = (fr.ints[*i as usize], fr.ints[*j as usize]);
                    let value = match kind {
                        ElemKind::I64 => ArgVal::I(fr.ints[*v as usize]),
                        ElemKind::F64 => ArgVal::F(fr.flts[*v as usize]),
                        ElemKind::C64 => {
                            let (re, im) = fr.cpxs[*v as usize];
                            ArgVal::C(re, im)
                        }
                    };
                    let Value::Tensor(tensor) = &mut fr.vals[*t as usize] else {
                        return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                    };
                    let cols = tensor.shape()[1];
                    let off =
                        unchecked_index(ix, tensor.shape()[0]) * cols + unchecked_index(jx, cols);
                    tensor_store(tensor, off, value)?;
                }
                RegOp::MovIJmp { d, s, pc: t } => {
                    fr.ints[*d as usize] = fr.ints[*s as usize];
                    pc = *t as usize;
                }
                RegOp::Mov2I { d1, s1, d2, s2 } => {
                    fr.ints[*d1 as usize] = fr.ints[*s1 as usize];
                    fr.ints[*d2 as usize] = fr.ints[*s2 as usize];
                }
                RegOp::Mov2IJmp {
                    d1,
                    s1,
                    d2,
                    s2,
                    pc: t,
                } => {
                    fr.ints[*d1 as usize] = fr.ints[*s1 as usize];
                    fr.ints[*d2 as usize] = fr.ints[*s2 as usize];
                    pc = *t as usize;
                }
                RegOp::Release2 { v1, v2 } => {
                    for v in [*v1 as usize, *v2 as usize] {
                        if fr.acquired[v] {
                            wolfram_runtime::memory::record_release();
                            fr.acquired[v] = false;
                        }
                    }
                }
                RegOp::AbortBrCmpISel {
                    op,
                    a,
                    b,
                    d,
                    pc_false,
                    pc_true,
                } => {
                    self.abort.check()?;
                    let v = int_bin(*op, fr.ints[*a as usize], fr.ints[*b as usize])?;
                    fr.ints[*d as usize] = v;
                    pc = if v == 0 {
                        *pc_false as usize
                    } else {
                        *pc_true as usize
                    };
                }
                RegOp::AbortBrCmpIFalse { op, a, b, d, pc: t } => {
                    self.abort.check()?;
                    let v = int_bin(*op, fr.ints[*a as usize], fr.ints[*b as usize])?;
                    fr.ints[*d as usize] = v;
                    if v == 0 {
                        pc = *t as usize;
                    }
                }
                RegOp::IntBinImmMovI {
                    op,
                    d,
                    a,
                    imm,
                    d2,
                    s2,
                } => {
                    fr.ints[*d as usize] = int_bin(*op, fr.ints[*a as usize], *imm as i64)?;
                    fr.ints[*d2 as usize] = fr.ints[*s2 as usize];
                }
                RegOp::MovCJmp { d, s, pc: t } => {
                    fr.cpxs[*d as usize] = fr.cpxs[*s as usize];
                    pc = *t as usize;
                }
                RegOp::IntBinImmMov2IJmp {
                    op,
                    d,
                    a,
                    imm,
                    d2,
                    s2,
                    d3,
                    s3,
                    pc: t,
                } => {
                    fr.ints[*d as usize] = int_bin(*op, fr.ints[*a as usize], *imm as i64)?;
                    fr.ints[*d2 as usize] = fr.ints[*s2 as usize];
                    fr.ints[*d3 as usize] = fr.ints[*s3 as usize];
                    pc = *t as usize;
                }
                RegOp::FltCmpMovI {
                    op,
                    d,
                    a,
                    b,
                    d2,
                    s2,
                } => {
                    fr.ints[*d as usize] =
                        flt_cmp(*op, fr.flts[*a as usize], fr.flts[*b as usize]) as i64;
                    fr.ints[*d2 as usize] = fr.ints[*s2 as usize];
                }
                RegOp::FltCmpMovIJmp {
                    op,
                    d,
                    a,
                    b,
                    d2,
                    s2,
                    pc: t,
                } => {
                    fr.ints[*d as usize] =
                        flt_cmp(*op, fr.flts[*a as usize], fr.flts[*b as usize]) as i64;
                    fr.ints[*d2 as usize] = fr.ints[*s2 as usize];
                    pc = *t as usize;
                }
                RegOp::AbortCheck => self.abort.check()?,
                RegOp::VecLoop { plan } => {
                    if let Some(cfg) = par.as_ref() {
                        crate::vectorize::exec_batch(
                            plan,
                            cfg,
                            &self.abort,
                            &mut fr.ints,
                            &fr.flts,
                            &mut fr.vals,
                        )?;
                    }
                }
                RegOp::Acquire { v } => {
                    if fr.vals[*v].is_managed() {
                        wolfram_runtime::memory::record_acquire();
                        fr.acquired[*v] = true;
                    }
                }
                RegOp::Release { v } => {
                    // Balanced with the acquire even if the value has been
                    // moved out of the slot meanwhile (TakeV).
                    if fr.acquired[*v] {
                        wolfram_runtime::memory::record_release();
                        fr.acquired[*v] = false;
                    }
                }
                RegOp::Ret { s } => return Ok(fr.load(*s)),
                RegOp::RetNull => return Ok(ArgVal::V(Value::Null)),
            }
        }
    }
}

/// Resolves a 1-based, possibly negative Part index whose validity the
/// interval analysis proved at compile time: sign resolution only, no
/// range check. If a proof were ever wrong, the subsequent slice access
/// still panics safely (no undefined behavior) instead of reading out of
/// bounds.
#[inline(always)]
fn unchecked_index(ix: i64, len: usize) -> usize {
    if ix > 0 {
        (ix - 1) as usize
    } else {
        (len as i64 + ix) as usize
    }
}

fn int_bin(op: IntOp, x: i64, y: i64) -> Result<i64, RuntimeError> {
    Ok(match op {
        IntOp::Add => checked::add_i64(x, y)?,
        IntOp::Sub => checked::sub_i64(x, y)?,
        IntOp::Mul => checked::mul_i64(x, y)?,
        // The range analysis proved these cannot overflow; wrapping is
        // only a belt-and-braces way to avoid the branch.
        IntOp::AddU => x.wrapping_add(y),
        IntOp::SubU => x.wrapping_sub(y),
        IntOp::MulU => x.wrapping_mul(y),
        // Exact flooring division via the shared checked helper. The f64
        // round-trip this replaces lost precision above 2^53 and saturated
        // on `i64::MIN / -1` instead of raising overflow — both silent
        // divergences from the interpreter.
        IntOp::Quot => checked::quotient_i64(x, y)?,
        IntOp::Mod => checked::mod_i64(x, y)?,
        IntOp::Pow => checked::pow_i64(x, y)?,
        IntOp::Min => x.min(y),
        IntOp::Max => x.max(y),
        IntOp::Gcd => {
            let (mut a, mut b) = (x.unsigned_abs(), y.unsigned_abs());
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a as i64
        }
        IntOp::BitAnd => x & y,
        IntOp::BitOr => x | y,
        IntOp::BitXor => x ^ y,
        IntOp::Shl => x
            .checked_shl(y as u32)
            .ok_or(RuntimeError::IntegerOverflow)?,
        IntOp::Shr => x >> y.clamp(0, 63),
        IntOp::Lt => (x < y) as i64,
        IntOp::Le => (x <= y) as i64,
        IntOp::Gt => (x > y) as i64,
        IntOp::Ge => (x >= y) as i64,
        IntOp::Eq => (x == y) as i64,
        IntOp::Ne => (x != y) as i64,
        IntOp::And => ((x != 0) && (y != 0)) as i64,
        IntOp::Or => ((x != 0) || (y != 0)) as i64,
    })
}

#[inline(always)]
fn flt_bin(op: FltOp, x: f64, y: f64) -> Result<f64, RuntimeError> {
    Ok(match op {
        FltOp::Add => x + y,
        FltOp::Sub => x - y,
        FltOp::Mul => x * y,
        FltOp::Div => {
            if y == 0.0 {
                return Err(RuntimeError::DivideByZero);
            }
            x / y
        }
        FltOp::Pow => x.powf(y),
        FltOp::Mod => {
            if y == 0.0 {
                return Err(RuntimeError::DivideByZero);
            }
            x - y * (x / y).floor()
        }
        FltOp::Min => x.min(y),
        FltOp::Max => x.max(y),
        FltOp::ArcTan2 => y.atan2(x),
    })
}

#[inline(always)]
fn flt_cmp(op: CmpCode, x: f64, y: f64) -> bool {
    match op {
        CmpCode::Lt => x < y,
        CmpCode::Le => x <= y,
        CmpCode::Gt => x > y,
        CmpCode::Ge => x >= y,
        CmpCode::Eq => x == y,
        CmpCode::Ne => x != y,
    }
}

fn pow_mod_i64(base: i64, exp: i64, m: i64) -> Result<i64, RuntimeError> {
    if m <= 0 {
        return Err(RuntimeError::Type(
            "PowerMod modulus must be positive".into(),
        ));
    }
    if exp < 0 {
        return Err(RuntimeError::Type("PowerMod negative exponent".into()));
    }
    let m = m as u128;
    let mut base = (base.rem_euclid(m as i64)) as u128;
    let mut exp = exp as u64;
    let mut acc: u128 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % m;
        }
        base = base * base % m;
        exp >>= 1;
    }
    Ok(acc as i64)
}

fn tensor_store(t: &mut Tensor, off: usize, v: ArgVal) -> Result<(), RuntimeError> {
    match (t.data_mut(), v) {
        (TensorData::I64(data), ArgVal::I(x)) => data[off] = x,
        (TensorData::F64(data), ArgVal::F(x)) => data[off] = x,
        (TensorData::F64(data), ArgVal::I(x)) => data[off] = x as f64,
        (TensorData::Complex(data), ArgVal::C(re, im)) => data[off] = (re, im),
        _ => return Err(RuntimeError::Type("tensor element kind mismatch".into())),
    }
    Ok(())
}

fn tensor_elementwise(
    op: TenOp,
    a: &Tensor,
    b: &Tensor,
    par: Option<&ParallelConfig>,
) -> Result<Tensor, RuntimeError> {
    if a.shape() != b.shape() {
        return Err(RuntimeError::Type("tensor shape mismatch".into()));
    }
    match (a.data(), b.data()) {
        (TensorData::I64(x), TensorData::I64(y)) => {
            let mut out = Vec::with_capacity(x.len());
            for (p, q) in x.iter().zip(y) {
                out.push(match op {
                    TenOp::Add => checked::add_i64(*p, *q)?,
                    TenOp::Sub => checked::sub_i64(*p, *q)?,
                    TenOp::Mul => checked::mul_i64(*p, *q)?,
                });
            }
            Tensor::with_shape(a.shape().to_vec(), TensorData::I64(out))
        }
        (TensorData::Complex(x), TensorData::Complex(y)) => {
            let out: Vec<(f64, f64)> = x
                .iter()
                .zip(y)
                .map(|(p, q)| match op {
                    TenOp::Add => (p.0 + q.0, p.1 + q.1),
                    TenOp::Sub => (p.0 - q.0, p.1 - q.1),
                    TenOp::Mul => checked::mul_complex(*p, *q),
                })
                .collect();
            Tensor::with_shape(a.shape().to_vec(), TensorData::Complex(out))
        }
        // The f64 arm is unchecked IEEE arithmetic, so chunked parallel
        // execution is bit-identical to the sequential loop (the checked
        // integer arm above must stay sequential: first-overflow-wins).
        _ => {
            let fa = a.to_f64_tensor();
            let fb = b.to_f64_tensor();
            let (x, y) = (fa.expect_f64()?, fb.expect_f64()?);
            let sop = ten_simd_op(op);
            let mut out = vec![0.0; x.len()];
            match par {
                Some(cfg) => parallel::zip_f64(cfg, sop, x, y, &mut out),
                None => {
                    for ((o, p), q) in out.iter_mut().zip(x).zip(y) {
                        *o = sop.apply(*p, *q);
                    }
                }
            }
            Tensor::with_shape(a.shape().to_vec(), TensorData::F64(out))
        }
    }
}

/// The [`SimdOp`] carrying the same scalar meaning as a float [`TenOp`].
fn ten_simd_op(op: TenOp) -> SimdOp {
    match op {
        TenOp::Add => SimdOp::Add,
        TenOp::Sub => SimdOp::Sub,
        TenOp::Mul => SimdOp::Mul,
    }
}

fn tensor_scalar_elementwise(
    op: TenOp,
    t: &Tensor,
    s: &Value,
    rev: bool,
    par: Option<&ParallelConfig>,
) -> Result<Tensor, RuntimeError> {
    match (t.data(), s) {
        (TensorData::I64(x), Value::I64(q)) => {
            let mut out = Vec::with_capacity(x.len());
            for p in x {
                let (a, b) = if rev { (*q, *p) } else { (*p, *q) };
                out.push(match op {
                    TenOp::Add => checked::add_i64(a, b)?,
                    TenOp::Sub => checked::sub_i64(a, b)?,
                    TenOp::Mul => checked::mul_i64(a, b)?,
                });
            }
            Tensor::with_shape(t.shape().to_vec(), TensorData::I64(out))
        }
        (TensorData::Complex(x), Value::Complex(re, im)) => {
            let q = (*re, *im);
            let out: Vec<(f64, f64)> = x
                .iter()
                .map(|p| {
                    let (a, b) = if rev { (q, *p) } else { (*p, q) };
                    match op {
                        TenOp::Add => (a.0 + b.0, a.1 + b.1),
                        TenOp::Sub => (a.0 - b.0, a.1 - b.1),
                        TenOp::Mul => checked::mul_complex(a, b),
                    }
                })
                .collect();
            Tensor::with_shape(t.shape().to_vec(), TensorData::Complex(out))
        }
        _ => {
            let ft = t.to_f64_tensor();
            let x = ft.expect_f64()?;
            let q = match s {
                Value::I64(v) => *v as f64,
                Value::F64(v) => *v,
                other => {
                    return Err(RuntimeError::Type(format!(
                        "scalar broadcast with {}",
                        other.type_name()
                    )))
                }
            };
            let sop = ten_simd_op(op);
            let mut out = vec![0.0; x.len()];
            match par {
                Some(cfg) => parallel::map_f64(cfg, sop, x, q, rev, &mut out),
                None => {
                    for (o, p) in out.iter_mut().zip(x) {
                        let (a, b) = if rev { (q, *p) } else { (*p, q) };
                        *o = sop.apply(a, b);
                    }
                }
            }
            Tensor::with_shape(t.shape().to_vec(), TensorData::F64(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn onefunc(
        code: Vec<RegOp>,
        params: Vec<Slot>,
        banks: (usize, usize, usize, usize),
    ) -> NativeProgram {
        NativeProgram {
            parallel: None,
            funcs: vec![NativeFunc {
                name: "Main".into(),
                code,
                n_int: banks.0,
                n_flt: banks.1,
                n_cpx: banks.2,
                n_val: banks.3,
                params,
                elision: ElisionCounters::default(),
            }],
        }
    }

    #[test]
    fn add_one() {
        // The appendix's addOne: arg + 1.
        let prog = onefunc(
            vec![
                RegOp::LdcI { d: 1, v: 1 },
                RegOp::IntBin {
                    op: IntOp::Add,
                    d: 2,
                    a: 0,
                    b: 1,
                },
                RegOp::Ret {
                    s: Slot::new(Bank::I, 2),
                },
            ],
            vec![Slot::new(Bank::I, 0)],
            (3, 0, 0, 0),
        );
        let mut m = Machine::standalone();
        let out = m.call(&prog, 0, vec![ArgVal::I(41)]).unwrap();
        assert_eq!(out, ArgVal::I(42));
    }

    #[test]
    fn overflow_is_checked() {
        let prog = onefunc(
            vec![
                RegOp::IntBin {
                    op: IntOp::Add,
                    d: 1,
                    a: 0,
                    b: 0,
                },
                RegOp::Ret {
                    s: Slot::new(Bank::I, 1),
                },
            ],
            vec![Slot::new(Bank::I, 0)],
            (2, 0, 0, 0),
        );
        let mut m = Machine::standalone();
        assert_eq!(
            m.call(&prog, 0, vec![ArgVal::I(i64::MAX)]),
            Err(RuntimeError::IntegerOverflow)
        );
    }

    #[test]
    fn loop_with_abort() {
        // while (true) {} — must unwind on abort.
        let prog = onefunc(
            vec![RegOp::AbortCheck, RegOp::Jmp { pc: 0 }],
            vec![],
            (0, 0, 0, 0),
        );
        let mut m = Machine::standalone();
        m.abort.trigger();
        assert_eq!(m.call(&prog, 0, vec![]), Err(RuntimeError::Aborted));
    }

    #[test]
    fn complex_ops() {
        // |(0+1i)^2| == 1
        let prog = onefunc(
            vec![
                RegOp::LdcC {
                    d: 0,
                    re: 0.0,
                    im: 1.0,
                },
                RegOp::LdcI { d: 0, v: 2 },
                RegOp::CpxPowI { d: 1, a: 0, e: 0 },
                RegOp::CpxAbs { d: 0, s: 1 },
                RegOp::Ret {
                    s: Slot::new(Bank::F, 0),
                },
            ],
            vec![],
            (1, 1, 2, 0),
        );
        let mut m = Machine::standalone();
        assert_eq!(m.call(&prog, 0, vec![]).unwrap(), ArgVal::F(1.0));
    }

    #[test]
    fn tensor_part_and_set() {
        let t = Tensor::from_i64(vec![10, 20, 30]);
        let prog = onefunc(
            vec![
                RegOp::LdcI { d: 0, v: 2 },
                RegOp::LdcI { d: 1, v: 99 },
                RegOp::TenSet1 {
                    kind: ElemKind::I64,
                    t: 0,
                    i: 0,
                    v: 1,
                },
                RegOp::TenPart1 {
                    kind: ElemKind::I64,
                    d: 2,
                    t: 0,
                    i: 0,
                },
                RegOp::Ret {
                    s: Slot::new(Bank::I, 2),
                },
            ],
            vec![Slot::new(Bank::V, 0)],
            (3, 0, 0, 1),
        );
        let mut m = Machine::standalone();
        let alias = t.clone();
        let out = m.call(&prog, 0, vec![ArgVal::V(Value::Tensor(t))]).unwrap();
        assert_eq!(out, ArgVal::I(99));
        // Caller's alias untouched: copy-on-write fired inside the machine.
        assert_eq!(alias.as_i64().unwrap(), &[10, 20, 30]);
    }

    #[test]
    fn closures_and_indirect_calls() {
        // f(x) = x*2; main calls it through a function value.
        let double = NativeFunc {
            name: "double".into(),
            code: vec![
                RegOp::LdcI { d: 1, v: 2 },
                RegOp::IntBin {
                    op: IntOp::Mul,
                    d: 2,
                    a: 0,
                    b: 1,
                },
                RegOp::Ret {
                    s: Slot::new(Bank::I, 2),
                },
            ],
            n_int: 3,
            n_flt: 0,
            n_cpx: 0,
            n_val: 0,
            params: vec![Slot::new(Bank::I, 0)],
            elision: ElisionCounters::default(),
        };
        let main = NativeFunc {
            name: "Main".into(),
            code: vec![
                RegOp::MakeClosure {
                    d: 0,
                    f: 1,
                    captures: vec![],
                },
                RegOp::CallValue {
                    fv: 0,
                    args: Box::new([Slot::new(Bank::I, 0)]),
                    ret: Slot::new(Bank::I, 1),
                },
                RegOp::Ret {
                    s: Slot::new(Bank::I, 1),
                },
            ],
            n_int: 2,
            n_flt: 0,
            n_cpx: 0,
            n_val: 1,
            params: vec![Slot::new(Bank::I, 0)],
            elision: ElisionCounters::default(),
        };
        let prog = NativeProgram {
            parallel: None,
            funcs: vec![main, double],
        };
        let mut m = Machine::standalone();
        assert_eq!(
            m.call(&prog, 0, vec![ArgVal::I(21)]).unwrap(),
            ArgVal::I(42)
        );
    }

    #[test]
    fn kernel_requires_engine() {
        let prog = onefunc(
            vec![
                RegOp::CallKernel {
                    head: Arc::from("Plus"),
                    args: Box::new([]),
                    ret: Slot::new(Bank::V, 0),
                },
                RegOp::Ret {
                    s: Slot::new(Bank::V, 0),
                },
            ],
            vec![],
            (0, 0, 0, 1),
        );
        let mut m = Machine::standalone();
        assert!(m.call(&prog, 0, vec![]).is_err());
        let mut engine = Interpreter::new();
        let out = m
            .call_with_engine(&prog, 0, vec![], Some(&mut engine))
            .unwrap();
        assert_eq!(out, ArgVal::V(Value::I64(0)));
    }

    #[test]
    fn powmod() {
        assert_eq!(pow_mod_i64(2, 10, 1000).unwrap(), 24);
        assert_eq!(pow_mod_i64(3, 0, 7).unwrap(), 1);
        // Large values route through u128 without overflow.
        assert_eq!(pow_mod_i64(1_000_000_007, 2, 1_000_000_009).unwrap(), 4);
        assert!(pow_mod_i64(2, -1, 7).is_err());
        assert!(pow_mod_i64(2, 3, 0).is_err());
    }
}
