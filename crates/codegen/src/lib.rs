//! Code generation backends (§4.6).
//!
//! "Code generation only operates on the fully typed TWIR code, and a
//! compile error is issued if any variable type is missing. Multiple
//! backends are supported by the compiler and an API for users to plugin
//! their own backend."
//!
//! Backends provided:
//!
//! - `native` (see [`machine`]/[`lower`]) — the default. Stands in for the paper's LLVM JIT: TWIR is
//!   lowered to a *monomorphic, pre-resolved, unboxed* register machine
//!   with separate integer/real/complex/value register banks and a tight
//!   dispatch loop. This has the property the evaluation depends on
//!   (unboxed execution with checks hoisted) without requiring LLVM; see
//!   DESIGN.md §1.
//! - `c_source` — textual C export (the paper's C++ prototype backend).
//! - `asm` — a textual "assembler" listing of the register-machine code
//!   (the `FunctionCompileExportString[..., "Assembler"]` analog).
//! - `wvm` — compiles TWIR back onto the legacy bytecode VM (backend
//!   parity, F4).
//! - `export` — standalone library export/load (F10); standalone code
//!   runs without engine integration (aborts and kernel escapes disabled).

pub mod asm;
pub mod backend;
pub mod c_source;
pub mod export;
pub mod fuse;
pub mod lower;
pub mod machine;
pub mod vectorize;
pub mod wvm;

pub use asm::AsmBackend;
pub use backend::{Backend, BackendRegistry};
pub use fuse::{fuse_function, fuse_program};
pub use lower::{lower_program, LowerError};
pub use machine::{
    ArgVal, Bank, CallSession, Machine, NativeFunc, NativeProgram, OpStats, RegOp, Slot,
    FRAME_POOL_CAP,
};
pub use vectorize::{vectorize_function, vectorize_program, VecPlan};
