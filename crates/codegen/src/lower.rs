//! Lowers fully-typed TWIR program modules onto the native register
//! machine: SSA destruction (phi -> edge moves), bank assignment by type,
//! and monomorphic instruction selection from mangled primitive names.

use crate::machine::{
    ArgVal, Bank, CmpCode, CpxOp, ElemKind, ElisionCounters, FltOp, FltUnOp, IntOp, IntUnOp,
    NativeFunc, NativeProgram, RegOp, Slot, TenOp,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use wolfram_analyze::intervals::{FnRangeFacts, RangeFacts};
use wolfram_expr::Expr;
use wolfram_ir::module::{Block, BlockId, Callee, Constant, Function, Instr, Operand, VarId};
use wolfram_runtime::{Tensor, Value};
use wolfram_types::Type;

/// Lowering failure.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// "a compile error is issued if any variable type is missing" (§4.6).
    MissingType(String),
    /// An unresolved builtin reached code generation (resolution bug or a
    /// function outside the compilable subset).
    Unsupported(String),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::MissingType(what) => write!(f, "missing type for {what}"),
            LowerError::Unsupported(what) => write!(f, "cannot generate code for {what}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Options for lowering.
#[derive(Debug, Clone, Default)]
pub struct LowerOptions {
    /// Model the paper's §6 "non-optimal handling of constant arrays"
    /// (PrimeQ's 1.5×): constant arrays are deep-copied at each load
    /// instead of shared.
    pub naive_constant_arrays: bool,
    /// Interval-analysis facts (keyed by function name, then by
    /// `(block, instr)`) that let the lowering emit unchecked tensor and
    /// integer ops and skip provably redundant refcount traffic. `None`
    /// lowers fully checked code.
    pub range_facts: Option<RangeFacts>,
}

/// Lowers a program module.
///
/// # Errors
///
/// See [`LowerError`].
pub fn lower_program(pm: &wolfram_ir::ProgramModule) -> Result<NativeProgram, LowerError> {
    lower_program_with(pm, &LowerOptions::default())
}

/// Lowers a program module with options.
///
/// # Errors
///
/// See [`LowerError`].
pub fn lower_program_with(
    pm: &wolfram_ir::ProgramModule,
    opts: &LowerOptions,
) -> Result<NativeProgram, LowerError> {
    let name_to_index: HashMap<&str, usize> = pm
        .functions
        .iter()
        .enumerate()
        .map(|(ix, f)| (f.name.as_str(), ix))
        .collect();
    let mut out = NativeProgram::default();
    for f in &pm.functions {
        out.funcs.push(lower_function(f, &name_to_index, opts)?);
    }
    Ok(out)
}

fn bank_of(ty: &Type) -> Bank {
    match ty {
        Type::Atomic(name) => match &**name {
            "Integer64" | "Integer32" | "Integer16" | "Integer8" | "Boolean" => Bank::I,
            "Real64" | "Real32" => Bank::F,
            "ComplexReal64" => Bank::C,
            _ => Bank::V,
        },
        _ => Bank::V,
    }
}

fn elem_kind(ty: &Type) -> ElemKind {
    match bank_of(ty) {
        Bank::I => ElemKind::I64,
        Bank::C => ElemKind::C64,
        _ => ElemKind::F64,
    }
}

/// Tensor element type of a tensor-typed variable.
fn tensor_elem(ty: &Type) -> Option<&Type> {
    match ty {
        Type::Constructor { name, args } if &**name == "Tensor" => args.first(),
        _ => None,
    }
}

struct Lowering<'a> {
    f: &'a Function,
    funcs: &'a HashMap<&'a str, usize>,
    opts: &'a LowerOptions,
    slots: HashMap<VarId, Slot>,
    counters: [usize; 4],
    code: Vec<RegOp>,
    block_pc: HashMap<BlockId, usize>,
    patches: Vec<(usize, BlockId)>,
    /// Pending phi moves per predecessor block: (dst slot, source operand).
    edge_moves: HashMap<BlockId, Vec<(Slot, Operand)>>,
    params: Vec<Slot>,
    /// The copy/live analysis of §4.5: reads after which a value-bank
    /// register is provably dead (no path reaches another read of the slot
    /// without an intervening write). Such reads *move* the value out of
    /// the register instead of cloning it, which is what keeps in-place
    /// tensor mutation copy-free. Keys are `(block, event, var)` with
    /// `event = usize::MAX` denoting the phi edge-move batch at the block's
    /// end.
    dying_reads: HashSet<(u32, usize, VarId)>,
    current_block: BlockId,
    current_event: usize,
    /// Deduplicated constant loads, hoisted into a function prologue so
    /// loop bodies do not re-materialize immediates each iteration.
    const_cache: HashMap<(String, Bank), usize>,
    prologue: Vec<RegOp>,
    /// Interval facts for this function (proved bounds/overflow sites and
    /// elidable refcount pairs), when range-check elision is on.
    facts: Option<&'a FnRangeFacts>,
    /// Counts of checks elided vs. seen while lowering this function.
    elision: ElisionCounters,
}

fn lower_function(
    f: &Function,
    funcs: &HashMap<&str, usize>,
    opts: &LowerOptions,
) -> Result<NativeFunc, LowerError> {
    let cfg = wolfram_ir::analysis::Cfg::new(f);
    let mut l = Lowering {
        f,
        funcs,
        opts,
        slots: HashMap::new(),
        counters: [0; 4],
        code: Vec::new(),
        block_pc: HashMap::new(),
        patches: Vec::new(),
        edge_moves: HashMap::new(),
        params: vec![Slot::new(Bank::I, 0); f.arity],
        dying_reads: HashSet::new(),
        current_block: BlockId(0),
        current_event: 0,
        const_cache: HashMap::new(),
        prologue: Vec::new(),
        facts: opts
            .range_facts
            .as_ref()
            .and_then(|rf| rf.functions.get(&f.name)),
        elision: ElisionCounters::default(),
    };
    l.assign_slots()?;
    l.collect_phi_moves();
    l.dying_reads = compute_dying_reads(f, &cfg, &l.slots);
    for &b in &cfg.rpo {
        l.block_pc.insert(b, l.code.len());
        l.lower_block(b)?;
    }
    // Patch jumps.
    for (at, target) in std::mem::take(&mut l.patches) {
        let pc = *l.block_pc.get(&target).unwrap_or(&0);
        match &mut l.code[at] {
            RegOp::Jmp { pc: t } | RegOp::Brz { pc: t, .. } => *t = pc,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }
    // Hoist the deduplicated constant loads into a prologue, shifting all
    // jump targets accordingly.
    if !l.prologue.is_empty() {
        let shift = l.prologue.len();
        for op in &mut l.code {
            match op {
                RegOp::Jmp { pc } | RegOp::Brz { pc, .. } => *pc += shift,
                _ => {}
            }
        }
        let mut code = std::mem::take(&mut l.prologue);
        code.append(&mut l.code);
        l.code = code;
    }
    Ok(NativeFunc {
        name: f.name.clone(),
        code: l.code,
        n_int: l.counters[0],
        n_flt: l.counters[1],
        n_cpx: l.counters[2],
        n_val: l.counters[3],
        params: l.params,
        elision: l.elision,
    })
}

impl<'a> Lowering<'a> {
    fn bump(&mut self, bank: Bank) -> usize {
        let ix = match bank {
            Bank::I => 0,
            Bank::F => 1,
            Bank::C => 2,
            Bank::V => 3,
        };
        let v = self.counters[ix];
        self.counters[ix] += 1;
        v
    }

    fn assign_slots(&mut self) -> Result<(), LowerError> {
        for b in self.f.block_ids() {
            for i in &self.f.block(b).instrs {
                if let Some(d) = i.def() {
                    let ty = self.f.var_type(d).ok_or_else(|| {
                        LowerError::MissingType(format!("%{} in {}", d.0, self.f.name))
                    })?;
                    let bank = bank_of(ty);
                    let ix = self.bump(bank);
                    self.slots.insert(d, Slot::new(bank, ix));
                }
                if let Instr::LoadArgument { dst, index } = i {
                    self.params[*index] = self.slots[dst];
                }
            }
        }
        Ok(())
    }

    fn collect_phi_moves(&mut self) {
        for b in self.f.block_ids() {
            for i in &self.f.block(b).instrs {
                if let Instr::Phi { dst, incoming } = i {
                    let dslot = self.slots[dst];
                    for (pred, op) in incoming {
                        self.edge_moves
                            .entry(*pred)
                            .or_default()
                            .push((dslot, op.clone()));
                    }
                }
            }
        }
    }

    fn var_slot(&self, v: VarId) -> Slot {
        self.slots[&v]
    }

    /// Whether the value in `v`'s register dies at the current read: no
    /// execution path reaches another read of the register without a write
    /// in between (slot-level liveness over the phi-destructed program).
    fn is_last_use(&self, v: VarId) -> bool {
        self.dying_reads
            .contains(&(self.current_block.0, self.current_event, v))
    }

    /// Whether the interval analysis proved every index of the current
    /// Part/set instruction in bounds.
    fn part_proved(&self) -> bool {
        self.facts.is_some_and(|ff| {
            ff.proved_parts
                .contains(&(self.current_block, self.current_event))
        })
    }

    /// Whether the interval analysis proved the current checked integer
    /// plus/subtract/times cannot overflow.
    fn arith_proved(&self) -> bool {
        self.facts.is_some_and(|ff| {
            ff.proved_arith
                .contains(&(self.current_block, self.current_event))
        })
    }

    /// Whether the current acquire/release belongs to a provably
    /// redundant same-block pair.
    fn rc_elided(&self) -> bool {
        self.facts.is_some_and(|ff| {
            ff.elidable_rc
                .contains(&(self.current_block, self.current_event))
        })
    }

    /// Materializes a value-bank operand, reporting whether the resulting
    /// register may be *consumed* (moved from) by the instruction.
    fn operand_v_take(&mut self, o: &Operand) -> Result<(usize, bool), LowerError> {
        let ix = self.operand(o, Bank::V)?;
        Ok(match o {
            // Constant slots are shared (hoisted) or, in the naive-array
            // ablation, fresh per use; never steal the shared ones.
            Operand::Const(c) => {
                let naive_array = self.opts.naive_constant_arrays
                    && matches!(c, Constant::I64Array(_) | Constant::F64Array(_));
                (ix, naive_array)
            }
            Operand::Var(v) => (ix, self.is_last_use(*v)),
        })
    }

    /// Emits a value move that steals the source register when allowed.
    fn push_v_move(&mut self, d: usize, s: usize, take: bool) {
        if take {
            self.code.push(RegOp::TakeV { d, s });
        } else {
            self.code.push(RegOp::MovV { d, s });
        }
    }

    /// Materializes an operand into a slot of the given bank, emitting
    /// loads/conversions for constants.
    fn operand(&mut self, o: &Operand, bank: Bank) -> Result<usize, LowerError> {
        match o {
            Operand::Var(v) => {
                let s = self.var_slot(*v);
                if s.bank == bank {
                    Ok(s.ix)
                } else if s.bank == Bank::I && bank == Bank::F {
                    let d = self.bump(Bank::F);
                    self.code.push(RegOp::IntToFlt { d, s: s.ix });
                    Ok(d)
                } else if s.bank == Bank::I && bank == Bank::C {
                    let d = self.bump(Bank::C);
                    self.code.push(RegOp::IntToCpx { d, s: s.ix });
                    Ok(d)
                } else if s.bank == Bank::F && bank == Bank::C {
                    let d = self.bump(Bank::C);
                    self.code.push(RegOp::FltToCpx { d, s: s.ix });
                    Ok(d)
                } else if bank == Bank::V {
                    // Boxing into the managed world (symbolic arguments).
                    let d = self.bump(Bank::V);
                    let is_bool = matches!(
                        self.f.var_type(*v),
                        Some(Type::Atomic(n)) if &**n == "Boolean"
                    );
                    self.code.push(match s.bank {
                        Bank::I if is_bool => RegOp::BoolToExpr { d, s: s.ix },
                        Bank::I => RegOp::BoxIV { d, s: s.ix },
                        Bank::F => RegOp::BoxFV { d, s: s.ix },
                        Bank::C => RegOp::BoxCV { d, s: s.ix },
                        Bank::V => unreachable!("same bank handled above"),
                    });
                    Ok(d)
                } else {
                    Err(LowerError::Unsupported(format!(
                        "operand bank mismatch %{} ({:?} vs {:?})",
                        v.0, s.bank, bank
                    )))
                }
            }
            Operand::Const(c) => {
                // The naive-constant-array ablation keeps per-use loads.
                let naive_array = self.opts.naive_constant_arrays
                    && matches!(c, Constant::I64Array(_) | Constant::F64Array(_));
                let key = (format!("{c:?}"), bank);
                if !naive_array {
                    if let Some(&slot) = self.const_cache.get(&key) {
                        return Ok(slot);
                    }
                }
                let d = self.bump(bank);
                let op = match (c, bank) {
                    (Constant::I64(v), Bank::I) => RegOp::LdcI { d, v: *v },
                    (Constant::Bool(b), Bank::I) => RegOp::LdcI { d, v: *b as i64 },
                    (Constant::I64(v), Bank::F) => RegOp::LdcF { d, v: *v as f64 },
                    (Constant::F64(v), Bank::F) => RegOp::LdcF { d, v: *v },
                    (Constant::I64(v), Bank::C) => RegOp::LdcC {
                        d,
                        re: *v as f64,
                        im: 0.0,
                    },
                    (Constant::F64(v), Bank::C) => RegOp::LdcC { d, re: *v, im: 0.0 },
                    (Constant::Complex(re, im), Bank::C) => RegOp::LdcC {
                        d,
                        re: *re,
                        im: *im,
                    },
                    (c, Bank::V) => {
                        let v = const_value(c, self.opts);
                        if naive_array {
                            RegOp::LdcArrayCopy { d, v }
                        } else {
                            RegOp::LdcV { d, v }
                        }
                    }
                    (c, bank) => {
                        return Err(LowerError::Unsupported(format!(
                            "constant {c:?} in {bank:?} bank"
                        )))
                    }
                };
                if naive_array {
                    self.code.push(op);
                } else {
                    self.prologue.push(op);
                    self.const_cache.insert(key, d);
                }
                Ok(d)
            }
        }
    }

    fn operand_ty(&self, o: &Operand) -> Result<Type, LowerError> {
        match o {
            Operand::Var(v) => self
                .f
                .var_type(*v)
                .cloned()
                .ok_or_else(|| LowerError::MissingType(format!("%{}", v.0))),
            Operand::Const(c) => Ok(c.ty()),
        }
    }

    fn flush_edge_moves(&mut self, from: BlockId) -> Result<(), LowerError> {
        let moves = self.edge_moves.get(&from).cloned().unwrap_or_default();
        if moves.is_empty() {
            return Ok(());
        }
        let saved_event = self.current_event;
        self.current_event = usize::MAX; // the edge-move event
        let result = self.flush_edge_moves_inner(&moves);
        self.current_event = saved_event;
        result
    }

    fn flush_edge_moves_inner(&mut self, moves: &[(Slot, Operand)]) -> Result<(), LowerError> {
        // Fast path: when no destination doubles as another move's source,
        // the parallel copy degenerates to direct moves (no temps).
        let dst_slots: Vec<Slot> = moves.iter().map(|(d, _)| *d).collect();
        let moves = moves.to_vec();
        let interferes = moves.iter().any(|(_, op)| {
            op.as_var()
                .map(|v| self.var_slot(v))
                .is_some_and(|s| dst_slots.contains(&s))
        });
        if !interferes {
            for (dslot, op) in &moves {
                if dslot.bank == Bank::V {
                    let (src, take) = self.operand_v_take(op)?;
                    self.push_v_move(dslot.ix, src, take);
                } else {
                    let src = self.operand(op, dslot.bank)?;
                    if src != dslot.ix {
                        self.code.push(mov(dslot.bank, dslot.ix, src));
                    }
                }
            }
            return Ok(());
        }
        // Parallel-copy safety: read every source into a temp first. Value
        // temps are moved, not cloned, whenever the source is dead.
        let mut temps = Vec::with_capacity(moves.len());
        for (dslot, op) in &moves {
            if dslot.bank == Bank::V {
                let (src, take) = self.operand_v_take(op)?;
                let tmp = self.bump(Bank::V);
                self.push_v_move(tmp, src, take);
                temps.push(tmp);
            } else {
                let src = self.operand(op, dslot.bank)?;
                let tmp = self.bump(dslot.bank);
                self.code.push(mov(dslot.bank, tmp, src));
                temps.push(tmp);
            }
        }
        for ((dslot, _), tmp) in moves.iter().zip(temps) {
            if dslot.bank == Bank::V {
                // The temp is always dead after this write.
                self.code.push(RegOp::TakeV {
                    d: dslot.ix,
                    s: tmp,
                });
            } else {
                self.code.push(mov(dslot.bank, dslot.ix, tmp));
            }
        }
        Ok(())
    }

    fn lower_block(&mut self, b: BlockId) -> Result<(), LowerError> {
        let block: &Block = self.f.block(b);
        self.current_block = b;
        for (ix, i) in block.instrs.iter().enumerate() {
            self.current_event = ix;
            match i {
                Instr::Phi { .. } | Instr::LoadArgument { .. } => {}
                Instr::LoadConst { dst, value } => {
                    let slot = self.var_slot(*dst);
                    if slot.bank == Bank::V {
                        let (op, take) = self.operand_v_take(&Operand::Const(value.clone()))?;
                        self.push_v_move(slot.ix, op, take);
                    } else {
                        let op = self.operand(&Operand::Const(value.clone()), slot.bank)?;
                        self.code.push(mov(slot.bank, slot.ix, op));
                    }
                }
                Instr::Copy { dst, src } => {
                    let d = self.var_slot(*dst);
                    if d.bank == Bank::V {
                        let (s, take) = self.operand_v_take(&Operand::Var(*src))?;
                        self.push_v_move(d.ix, s, take);
                    } else {
                        let s = self.operand(&Operand::Var(*src), d.bank)?;
                        self.code.push(mov(d.bank, d.ix, s));
                    }
                }
                Instr::Call { dst, callee, args } => self.lower_call(*dst, callee, args)?,
                Instr::MakeClosure {
                    dst,
                    func,
                    captures,
                } => {
                    let d = self.var_slot(*dst);
                    let fix = *self.funcs.get(&**func).ok_or_else(|| {
                        LowerError::Unsupported(format!("unknown closure target {func}"))
                    })?;
                    let mut caps = Vec::with_capacity(captures.len());
                    for c in captures {
                        let ty = self.operand_ty(c)?;
                        let bank = bank_of(&ty);
                        let ix = self.operand(c, bank)?;
                        caps.push(Slot::new(bank, ix));
                    }
                    self.code.push(RegOp::MakeClosure {
                        d: d.ix,
                        f: fix,
                        captures: caps,
                    });
                }
                Instr::AbortCheck => self.code.push(RegOp::AbortCheck),
                Instr::MemoryAcquire { var } => {
                    let s = self.var_slot(*var);
                    if s.bank == Bank::V {
                        if self.rc_elided() {
                            self.elision.rc_elided += 1;
                        } else {
                            self.code.push(RegOp::Acquire { v: s.ix });
                        }
                    }
                }
                Instr::MemoryRelease { var } => {
                    let s = self.var_slot(*var);
                    if s.bank == Bank::V {
                        if self.rc_elided() {
                            self.elision.rc_elided += 1;
                        } else {
                            self.code.push(RegOp::Release { v: s.ix });
                        }
                    }
                }
                Instr::Jump { target } => {
                    self.flush_edge_moves(b)?;
                    self.patches.push((self.code.len(), *target));
                    self.code.push(RegOp::Jmp { pc: 0 });
                }
                Instr::Branch {
                    cond,
                    then_block,
                    else_block,
                } => {
                    self.flush_edge_moves(b)?;
                    let c = self.operand(cond, Bank::I)?;
                    // Compare-and-branch fusion is the superinstruction
                    // pass's job (`fuse`), keeping the unfused stream a
                    // clean ablation baseline.
                    self.patches.push((self.code.len(), *else_block));
                    self.code.push(RegOp::Brz { c, pc: 0 });
                    self.patches.push((self.code.len(), *then_block));
                    self.code.push(RegOp::Jmp { pc: 0 });
                }
                Instr::Return { value } => {
                    if matches!(value, Operand::Const(Constant::Null)) {
                        self.code.push(RegOp::RetNull);
                    } else {
                        let ty = self.operand_ty(value)?;
                        let bank = bank_of(&ty);
                        let s = self.operand(value, bank)?;
                        self.code.push(RegOp::Ret {
                            s: Slot::new(bank, s),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn lower_call(
        &mut self,
        dst: VarId,
        callee: &Callee,
        args: &[Operand],
    ) -> Result<(), LowerError> {
        let dslot = self.var_slot(dst);
        match callee {
            Callee::Function { name, .. } => {
                let fix = *self.funcs.get(&**name).ok_or_else(|| {
                    LowerError::Unsupported(format!("unresolved function {name}"))
                })?;
                let mut arg_slots = Vec::with_capacity(args.len());
                for a in args {
                    let ty = self.operand_ty(a)?;
                    let bank = bank_of(&ty);
                    let ix = self.operand(a, bank)?;
                    arg_slots.push(Slot::new(bank, ix));
                }
                self.code.push(RegOp::CallFunc {
                    f: fix,
                    args: arg_slots.into(),
                    ret: dslot,
                });
                Ok(())
            }
            Callee::Value(v) => {
                let fv = self.var_slot(*v);
                let mut arg_slots = Vec::with_capacity(args.len());
                for a in args {
                    let ty = self.operand_ty(a)?;
                    let bank = bank_of(&ty);
                    let ix = self.operand(a, bank)?;
                    arg_slots.push(Slot::new(bank, ix));
                }
                self.code.push(RegOp::CallValue {
                    fv: fv.ix,
                    args: arg_slots.into(),
                    ret: dslot,
                });
                Ok(())
            }
            Callee::Kernel(head) => {
                let mut arg_slots = Vec::with_capacity(args.len());
                for a in args {
                    let ty = self.operand_ty(a)?;
                    let bank = bank_of(&ty);
                    let ix = self.operand(a, bank)?;
                    arg_slots.push(Slot::new(bank, ix));
                }
                self.code.push(RegOp::CallKernel {
                    head: head.clone(),
                    args: arg_slots.into(),
                    ret: dslot,
                });
                Ok(())
            }
            Callee::Primitive(name) => self.select_primitive(name, dslot, args),
            Callee::Builtin(name) => Err(LowerError::Unsupported(format!(
                "unresolved builtin `{name}` reached code generation"
            ))),
        }
    }

    /// Monomorphic instruction selection from a mangled primitive name and
    /// the statically known operand types.
    #[allow(clippy::too_many_lines)]
    fn select_primitive(
        &mut self,
        name: &str,
        dslot: Slot,
        args: &[Operand],
    ) -> Result<(), LowerError> {
        let base = name.split("$").next().unwrap_or(name);
        let d = dslot.ix;
        // Helpers to materialize operands in a requested bank.
        macro_rules! a {
            ($ix:expr, $bank:expr) => {
                self.operand(&args[$ix], $bank)?
            };
        }
        let arg_bank = |l: &Self, ix: usize| -> Result<Bank, LowerError> {
            Ok(bank_of(&l.operand_ty(&args[ix])?))
        };

        // Scalar binary arithmetic dispatching on the destination bank.
        let int_ops: &[(&str, IntOp)] = &[
            ("checked_binary_plus", IntOp::Add),
            ("checked_binary_subtract", IntOp::Sub),
            ("checked_binary_times", IntOp::Mul),
            ("checked_binary_quotient", IntOp::Quot),
            ("checked_binary_mod", IntOp::Mod),
            ("checked_binary_power", IntOp::Pow),
            ("binary_min", IntOp::Min),
            ("binary_max", IntOp::Max),
            ("binary_gcd", IntOp::Gcd),
            ("bit_and", IntOp::BitAnd),
            ("bit_or", IntOp::BitOr),
            ("bit_xor", IntOp::BitXor),
            ("bit_shift_left", IntOp::Shl),
            ("bit_shift_right", IntOp::Shr),
            ("logical_and", IntOp::And),
            ("logical_or", IntOp::Or),
        ];
        let flt_ops: &[(&str, FltOp)] = &[
            ("checked_binary_plus", FltOp::Add),
            ("checked_binary_subtract", FltOp::Sub),
            ("checked_binary_times", FltOp::Mul),
            ("checked_binary_divide", FltOp::Div),
            ("checked_binary_power", FltOp::Pow),
            ("checked_binary_mod", FltOp::Mod),
            ("binary_min", FltOp::Min),
            ("binary_max", FltOp::Max),
            ("binary_arctan2", FltOp::ArcTan2),
        ];
        let cpx_ops: &[(&str, CpxOp)] = &[
            ("checked_binary_plus", CpxOp::Add),
            ("checked_binary_subtract", CpxOp::Sub),
            ("checked_binary_times", CpxOp::Mul),
            ("checked_binary_divide", CpxOp::Div),
        ];
        let ten_ops: &[(&str, TenOp)] = &[
            ("tensor_plus", TenOp::Add),
            ("tensor_subtract", TenOp::Sub),
            ("tensor_times", TenOp::Mul),
        ];

        match dslot.bank {
            Bank::I => {
                if let Some((_, op)) = int_ops.iter().find(|(b, _)| *b == base) {
                    // Promote add/sub/mul whose overflow the interval
                    // analysis discharged to the unchecked (wrapping) form.
                    let mut op = *op;
                    if let Some(unchecked) = match op {
                        IntOp::Add => Some(IntOp::AddU),
                        IntOp::Sub => Some(IntOp::SubU),
                        IntOp::Mul => Some(IntOp::MulU),
                        _ => None,
                    } {
                        self.elision.ovf_total += 1;
                        if self.arith_proved() {
                            self.elision.ovf_elided += 1;
                            op = unchecked;
                        }
                    }
                    let x = a!(0, Bank::I);
                    // Immediate forms avoid a register read per iteration.
                    if let Some(Constant::I64(imm)) = args[1].as_const() {
                        self.code.push(RegOp::IntBinImm {
                            op,
                            d,
                            a: x,
                            imm: *imm,
                        });
                        return Ok(());
                    }
                    let y = a!(1, Bank::I);
                    self.code.push(RegOp::IntBin { op, d, a: x, b: y });
                    return Ok(());
                }
            }
            Bank::F => {
                if let Some((_, op)) = flt_ops.iter().find(|(b, _)| *b == base) {
                    let x = a!(0, Bank::F);
                    let imm = match args[1].as_const() {
                        Some(Constant::F64(v)) => Some(*v),
                        Some(Constant::I64(v)) => Some(*v as f64),
                        _ => None,
                    };
                    if let Some(imm) = imm {
                        self.code.push(RegOp::FltBinImm {
                            op: *op,
                            d,
                            a: x,
                            imm,
                        });
                        return Ok(());
                    }
                    let y = a!(1, Bank::F);
                    self.code.push(RegOp::FltBin {
                        op: *op,
                        d,
                        a: x,
                        b: y,
                    });
                    return Ok(());
                }
            }
            Bank::C => {
                if base == "checked_binary_power" {
                    // complex ^ integer stays exact.
                    let x = a!(0, Bank::C);
                    if arg_bank(self, 1)? == Bank::I {
                        let e = a!(1, Bank::I);
                        self.code.push(RegOp::CpxPowI { d, a: x, e });
                        return Ok(());
                    }
                }
                if let Some((_, op)) = cpx_ops.iter().find(|(b, _)| *b == base) {
                    let (x, y) = (a!(0, Bank::C), a!(1, Bank::C));
                    self.code.push(RegOp::CpxBin {
                        op: *op,
                        d,
                        a: x,
                        b: y,
                    });
                    return Ok(());
                }
            }
            Bank::V => {
                if let Some((_, op)) = ten_ops.iter().find(|(b, _)| *b == base) {
                    let (x, y) = (a!(0, Bank::V), a!(1, Bank::V));
                    self.code.push(RegOp::TenBin {
                        op: *op,
                        d,
                        a: x,
                        b: y,
                    });
                    return Ok(());
                }
            }
        }

        // Comparisons: dispatch on the *argument* bank.
        let cmp: &[(&str, CmpCode, IntOp)] = &[
            ("compare_less_equal", CmpCode::Le, IntOp::Le),
            ("compare_less", CmpCode::Lt, IntOp::Lt),
            ("compare_greater_equal", CmpCode::Ge, IntOp::Ge),
            ("compare_greater", CmpCode::Gt, IntOp::Gt),
            ("compare_equal", CmpCode::Eq, IntOp::Eq),
            ("compare_unequal", CmpCode::Ne, IntOp::Ne),
        ];
        if let Some((_, fcode, icode)) = cmp.iter().find(|(b, ..)| *b == base) {
            let ab = arg_bank(self, 0)?.max_num(arg_bank(self, 1)?);
            match ab {
                Bank::I => {
                    let (x, y) = (a!(0, Bank::I), a!(1, Bank::I));
                    self.code.push(RegOp::IntBin {
                        op: *icode,
                        d,
                        a: x,
                        b: y,
                    });
                }
                Bank::C => {
                    let (x, y) = (a!(0, Bank::C), a!(1, Bank::C));
                    let eq = matches!(fcode, CmpCode::Eq);
                    if !(eq || matches!(fcode, CmpCode::Ne)) {
                        return Err(LowerError::Unsupported("ordered complex compare".into()));
                    }
                    self.code.push(RegOp::CpxEq { d, a: x, b: y });
                    if matches!(fcode, CmpCode::Ne) {
                        self.code.push(RegOp::IntUn {
                            op: IntUnOp::Not,
                            d,
                            s: d,
                        });
                    }
                }
                Bank::V => {
                    return Err(LowerError::Unsupported(
                        "comparison of managed values".into(),
                    ))
                }
                Bank::F => {
                    let (x, y) = (a!(0, Bank::F), a!(1, Bank::F));
                    self.code.push(RegOp::FltCmp {
                        op: *fcode,
                        d,
                        a: x,
                        b: y,
                    });
                }
            }
            return Ok(());
        }

        match base {
            "checked_unary_minus" | "checked_unary_abs" | "unary_sign" => {
                let un_i = match base {
                    "checked_unary_minus" => IntUnOp::Neg,
                    "checked_unary_abs" => IntUnOp::Abs,
                    _ => IntUnOp::Sign,
                };
                match dslot.bank {
                    Bank::I => {
                        let s = a!(0, Bank::I);
                        self.code.push(RegOp::IntUn { op: un_i, d, s });
                    }
                    Bank::F => {
                        // Abs of a complex lands in the float bank.
                        if arg_bank(self, 0)? == Bank::C {
                            let s = a!(0, Bank::C);
                            self.code.push(RegOp::CpxAbs { d, s });
                        } else {
                            let s = a!(0, Bank::F);
                            let op = match un_i {
                                IntUnOp::Neg => FltUnOp::Neg,
                                IntUnOp::Abs => FltUnOp::Abs,
                                _ => FltUnOp::Sign,
                            };
                            self.code.push(RegOp::FltUn { op, d, s });
                        }
                    }
                    Bank::C => {
                        let s = a!(0, Bank::C);
                        let zero = self.bump(Bank::C);
                        self.code.push(RegOp::LdcC {
                            d: zero,
                            re: 0.0,
                            im: 0.0,
                        });
                        self.code.push(RegOp::CpxBin {
                            op: CpxOp::Sub,
                            d,
                            a: zero,
                            b: s,
                        });
                    }
                    Bank::V => return Err(LowerError::Unsupported("unary op on value".into())),
                }
                Ok(())
            }
            "unary_not" => {
                let s = a!(0, Bank::I);
                self.code.push(RegOp::IntUn {
                    op: IntUnOp::Not,
                    d,
                    s,
                });
                Ok(())
            }
            "unary_factorial" => {
                let s = a!(0, Bank::I);
                self.code.push(RegOp::IntUn {
                    op: IntUnOp::Factorial,
                    d,
                    s,
                });
                Ok(())
            }
            "unary_sin" | "unary_cos" | "unary_tan" | "unary_exp" | "unary_log" | "unary_sqrt"
            | "unary_arctan" | "unary_arcsin" | "unary_arccos" => {
                let op = match base {
                    "unary_sin" => FltUnOp::Sin,
                    "unary_cos" => FltUnOp::Cos,
                    "unary_tan" => FltUnOp::Tan,
                    "unary_exp" => FltUnOp::Exp,
                    "unary_log" => FltUnOp::Log,
                    "unary_sqrt" => FltUnOp::Sqrt,
                    "unary_arctan" => FltUnOp::ArcTan,
                    "unary_arcsin" => FltUnOp::ArcSin,
                    _ => FltUnOp::ArcCos,
                };
                let s = a!(0, Bank::F);
                self.code.push(RegOp::FltUn { op, d, s });
                Ok(())
            }
            "unary_floor" | "unary_ceiling" | "unary_round" => {
                if arg_bank(self, 0)? == Bank::I {
                    let s = a!(0, Bank::I);
                    self.code.push(RegOp::MovI { d, s });
                } else {
                    let s = a!(0, Bank::F);
                    self.code.push(match base {
                        "unary_floor" => RegOp::FloorFI { d, s },
                        "unary_ceiling" => RegOp::CeilFI { d, s },
                        _ => RegOp::RoundFI { d, s },
                    });
                }
                Ok(())
            }
            "power_mod" => {
                let (x, y, m) = (a!(0, Bank::I), a!(1, Bank::I), a!(2, Bank::I));
                self.code.push(RegOp::PowModI { d, a: x, b: y, m });
                Ok(())
            }
            "boole" => {
                let s = a!(0, Bank::I);
                self.code.push(RegOp::MovI { d, s });
                Ok(())
            }
            "complex_construct" => {
                let (re, im) = (a!(0, Bank::F), a!(1, Bank::F));
                self.code.push(RegOp::CpxMake { d, re, im });
                Ok(())
            }
            "complex_re" => {
                let s = a!(0, Bank::C);
                self.code.push(RegOp::CpxRe { d, s });
                Ok(())
            }
            "complex_im" => {
                let s = a!(0, Bank::C);
                self.code.push(RegOp::CpxIm { d, s });
                Ok(())
            }
            "complex_conjugate" => {
                let s = a!(0, Bank::C);
                self.code.push(RegOp::CpxConj { d, s });
                Ok(())
            }
            "complex_abs" => {
                let s = a!(0, Bank::C);
                self.code.push(RegOp::CpxAbs { d, s });
                Ok(())
            }
            "convert" => {
                // convert: dst bank decides.
                match dslot.bank {
                    Bank::F => {
                        let s = a!(0, Bank::F);
                        self.code.push(RegOp::MovF { d, s });
                    }
                    Bank::C => {
                        let s = a!(0, Bank::C);
                        self.code.push(RegOp::MovC { d, s });
                    }
                    Bank::I => {
                        let s = a!(0, Bank::I);
                        self.code.push(RegOp::MovI { d, s });
                    }
                    Bank::V => {
                        let s = a!(0, Bank::V);
                        self.code.push(RegOp::MovV { d, s });
                    }
                }
                Ok(())
            }
            "tensor_length" => {
                let t = a!(0, Bank::V);
                self.code.push(RegOp::TenLen { d, t });
                Ok(())
            }
            "tensor_part_1" => {
                let elem = self.elem_of(&args[0])?;
                let kind = elem_kind(&elem);
                let t = a!(0, Bank::V);
                let i = a!(1, Bank::I);
                self.elision.bounds_total += 1;
                if self.part_proved() {
                    self.elision.bounds_elided += 1;
                    self.code.push(RegOp::TenPart1U { kind, d, t, i });
                } else {
                    self.code.push(RegOp::TenPart1 { kind, d, t, i });
                }
                Ok(())
            }
            "tensor_part_2" => {
                let elem = self.elem_of(&args[0])?;
                let kind = elem_kind(&elem);
                let t = a!(0, Bank::V);
                let (i, j) = (a!(1, Bank::I), a!(2, Bank::I));
                self.elision.bounds_total += 1;
                if self.part_proved() {
                    self.elision.bounds_elided += 1;
                    self.code.push(RegOp::TenPart2U { kind, d, t, i, j });
                } else {
                    self.code.push(RegOp::TenPart2 { kind, d, t, i, j });
                }
                Ok(())
            }
            "tensor_set_1" => {
                let elem = self.elem_of(&args[0])?;
                let kind = elem_kind(&elem);
                let (t, take) = self.operand_v_take(&args[0])?;
                let i = a!(1, Bank::I);
                let v = a!(2, bank_of(&elem));
                // Functional result: the source tensor moves into dst when
                // dead (in-place update), and is cloned (copy-on-write)
                // when still live — the F5 copy analysis.
                self.push_v_move(d, t, take);
                self.elision.bounds_total += 1;
                if self.part_proved() {
                    self.elision.bounds_elided += 1;
                    self.code.push(RegOp::TenSet1U { kind, t: d, i, v });
                } else {
                    self.code.push(RegOp::TenSet1 { kind, t: d, i, v });
                }
                Ok(())
            }
            "tensor_set_2" => {
                let elem = self.elem_of(&args[0])?;
                let kind = elem_kind(&elem);
                let (t, take) = self.operand_v_take(&args[0])?;
                let (i, j) = (a!(1, Bank::I), a!(2, Bank::I));
                let v = a!(3, bank_of(&elem));
                self.push_v_move(d, t, take);
                self.elision.bounds_total += 1;
                if self.part_proved() {
                    self.elision.bounds_elided += 1;
                    self.code.push(RegOp::TenSet2U {
                        kind,
                        t: d,
                        i,
                        j,
                        v,
                    });
                } else {
                    self.code.push(RegOp::TenSet2 {
                        kind,
                        t: d,
                        i,
                        j,
                        v,
                    });
                }
                Ok(())
            }
            "tensor_fill_1" => {
                let ety = self.operand_ty(&args[0])?;
                let c = a!(0, bank_of(&ety));
                let n = a!(1, Bank::I);
                self.code.push(RegOp::TenFill1 {
                    kind: elem_kind(&ety),
                    d,
                    c,
                    n,
                });
                Ok(())
            }
            "tensor_fill_2" => {
                let ety = self.operand_ty(&args[0])?;
                let c = a!(0, bank_of(&ety));
                let (n1, n2) = (a!(1, Bank::I), a!(2, Bank::I));
                self.code.push(RegOp::TenFill2 {
                    kind: elem_kind(&ety),
                    d,
                    c,
                    n1,
                    n2,
                });
                Ok(())
            }
            "list_construct" => {
                let ety = self.operand_ty(&args[0])?;
                let bank = bank_of(&ety);
                let mut items = Vec::with_capacity(args.len());
                for arg in args {
                    items.push(self.operand(arg, bank)?);
                }
                self.code.push(RegOp::TenFromList {
                    kind: elem_kind(&ety),
                    d,
                    items,
                });
                Ok(())
            }
            "tensor_set_row" => {
                let (t, take) = self.operand_v_take(&args[0])?;
                let i = a!(1, Bank::I);
                let row = a!(2, Bank::V);
                self.push_v_move(d, t, take);
                // Row stores keep their check (no unchecked variant): the
                // row-length match is not provable from index intervals.
                self.elision.bounds_total += 1;
                self.code.push(RegOp::TenSetRow { t: d, i, row });
                Ok(())
            }
            "dot_vector" => {
                let (x, y) = (a!(0, Bank::V), a!(1, Bank::V));
                match dslot.bank {
                    Bank::I => self.code.push(RegOp::DotVecI { d, a: x, b: y }),
                    _ => self.code.push(RegOp::DotVecF { d, a: x, b: y }),
                }
                Ok(())
            }
            "dot_matrix" => {
                let (x, y) = (a!(0, Bank::V), a!(1, Bank::V));
                self.code.push(RegOp::DotMat { d, a: x, b: y });
                Ok(())
            }
            "dot_matrix_vector" => {
                let (x, y) = (a!(0, Bank::V), a!(1, Bank::V));
                self.code.push(RegOp::DotMatVec { d, a: x, b: y });
                Ok(())
            }
            "string_length" => {
                let s = a!(0, Bank::V);
                self.code.push(RegOp::StrLen { d, s });
                Ok(())
            }
            "string_to_codes" => {
                let s = a!(0, Bank::V);
                self.code.push(RegOp::StrToCodes { d, s });
                Ok(())
            }
            "string_from_codes" => {
                let s = a!(0, Bank::V);
                self.code.push(RegOp::StrFromCodes { d, s });
                Ok(())
            }
            "string_join" => {
                let (x, y) = (a!(0, Bank::V), a!(1, Bank::V));
                self.code.push(RegOp::StrJoin { d, a: x, b: y });
                Ok(())
            }
            "expr_plus" | "expr_times" | "expr_subtract" | "expr_power" => {
                let op = match base {
                    "expr_plus" => crate::machine::ExprOp::Plus,
                    "expr_times" => crate::machine::ExprOp::Times,
                    "expr_subtract" => crate::machine::ExprOp::Subtract,
                    _ => crate::machine::ExprOp::Power,
                };
                let (x, y) = (a!(0, Bank::V), a!(1, Bank::V));
                self.code.push(RegOp::ExprBin { op, d, a: x, b: y });
                Ok(())
            }
            "tensor_scalar_plus"
            | "tensor_scalar_subtract"
            | "tensor_scalar_times"
            | "scalar_tensor_plus"
            | "scalar_tensor_subtract"
            | "scalar_tensor_times" => {
                let rev = base.starts_with("scalar_tensor");
                let op = if base.ends_with("plus") {
                    TenOp::Add
                } else if base.ends_with("subtract") {
                    TenOp::Sub
                } else {
                    TenOp::Mul
                };
                let (t_ix, s_ix) = if rev { (1, 0) } else { (0, 1) };
                let elem = self.elem_of(&args[t_ix])?;
                let t = self.operand(&args[t_ix], Bank::V)?;
                let sc = self.operand(&args[s_ix], bank_of(&elem))?;
                self.code.push(RegOp::TenScalar {
                    op,
                    kind: elem_kind(&elem),
                    d,
                    t,
                    s: sc,
                    rev,
                });
                Ok(())
            }
            "random_unit" => {
                self.code.push(RegOp::RndUnit { d });
                Ok(())
            }
            "random_range" => {
                let (x, y) = (a!(0, Bank::F), a!(1, Bank::F));
                self.code.push(RegOp::RndRange { d, a: x, b: y });
                Ok(())
            }
            other => {
                // Symbolic unary application: `expr_unary_Sin` etc.
                if let Some(head) = other.strip_prefix("expr_unary_") {
                    let x = a!(0, Bank::V);
                    self.code.push(RegOp::ExprUnary {
                        head: std::sync::Arc::from(head),
                        d,
                        a: x,
                    });
                    return Ok(());
                }
                Err(LowerError::Unsupported(format!("primitive `{other}`")))
            }
        }
    }

    fn elem_of(&self, o: &Operand) -> Result<Type, LowerError> {
        let ty = self.operand_ty(o)?;
        tensor_elem(&ty)
            .cloned()
            .ok_or_else(|| LowerError::MissingType("tensor element type".into()))
    }
}

impl Bank {
    /// Numeric join for comparison operand banks.
    fn max_num(self, other: Bank) -> Bank {
        use Bank::*;
        match (self, other) {
            (V, _) | (_, V) => V,
            (C, _) | (_, C) => C,
            (F, _) | (_, F) => F,
            _ => I,
        }
    }
}

fn mov(bank: Bank, d: usize, s: usize) -> RegOp {
    match bank {
        Bank::I => RegOp::MovI { d, s },
        Bank::F => RegOp::MovF { d, s },
        Bank::C => RegOp::MovC { d, s },
        Bank::V => RegOp::MovV { d, s },
    }
}

fn const_value(c: &Constant, opts: &LowerOptions) -> Value {
    match c {
        Constant::I64(v) => Value::I64(*v),
        Constant::F64(v) => Value::F64(*v),
        Constant::Bool(b) => Value::Bool(*b),
        Constant::Complex(re, im) => Value::Complex(*re, *im),
        Constant::Str(s) => Value::Str(Arc::new(s.to_string())),
        Constant::I64Array(v) => {
            let _ = opts;
            Value::Tensor(Tensor::from_i64(v.to_vec()))
        }
        Constant::F64Array(v) => Value::Tensor(Tensor::from_f64(v.to_vec())),
        Constant::Expr(e) => Value::Expr(e.clone()),
        Constant::Null => Value::Null,
    }
}

/// Boxes the machine result according to the function's return type.
pub fn result_to_value(result: ArgVal, ret_ty: &Type) -> Value {
    let is_bool = matches!(ret_ty, Type::Atomic(n) if &**n == "Boolean");
    result.into_value(is_bool)
}

/// The `Expr` used in docs/tests.
pub fn _doc_expr() -> Expr {
    Expr::null()
}

/// Slot-level liveness over the phi-destructed program (§4.5's copy/live
/// analysis): a read of a value-bank register may *consume* it iff every
/// path from the read reaches a write of that register before any other
/// read. Phi edge moves count as writes of the phi's register at the end
/// of each predecessor (reads of their sources happen first).
fn compute_dying_reads(
    f: &Function,
    cfg: &wolfram_ir::analysis::Cfg,
    slots: &HashMap<VarId, Slot>,
) -> HashSet<(u32, usize, VarId)> {
    use wolfram_ir::BlockId as B;
    let is_v = |v: &VarId| slots.get(v).is_some_and(|s| s.bank == Bank::V);

    // Edge reads/writes per predecessor block.
    let mut edge_reads: HashMap<B, Vec<VarId>> = HashMap::new();
    let mut edge_writes: HashMap<B, Vec<VarId>> = HashMap::new();
    for b in f.block_ids() {
        for i in &f.block(b).instrs {
            if let Instr::Phi { dst, incoming } = i {
                for (pred, op) in incoming {
                    if is_v(dst) {
                        edge_writes.entry(*pred).or_default().push(*dst);
                    }
                    if let Some(v) = op.as_var() {
                        if is_v(&v) {
                            edge_reads.entry(*pred).or_default().push(v);
                        }
                    }
                }
            }
        }
    }

    // Events per block, in execution order: ordinary instructions, then
    // (just before the terminator) the edge-move batch, then the
    // terminator's own reads.
    struct Event {
        key: usize,
        reads: Vec<VarId>,
        writes: Vec<VarId>,
    }
    let events_of = |b: B| -> Vec<Event> {
        let mut out = Vec::new();
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            if i.is_terminator() {
                out.push(Event {
                    key: usize::MAX,
                    reads: edge_reads.get(&b).cloned().unwrap_or_default(),
                    writes: edge_writes.get(&b).cloned().unwrap_or_default(),
                });
                out.push(Event {
                    key: ix,
                    reads: i.uses().into_iter().filter(|v| is_v(v)).collect(),
                    writes: Vec::new(),
                });
            } else if matches!(i, Instr::Phi { .. }) {
                // The phi's write happens at the predecessors' edges.
                out.push(Event {
                    key: ix,
                    reads: Vec::new(),
                    writes: Vec::new(),
                });
            } else {
                out.push(Event {
                    key: ix,
                    reads: i.uses().into_iter().filter(|v| is_v(v)).collect(),
                    writes: i.def().into_iter().filter(|v| is_v(v)).collect(),
                });
            }
        }
        out
    };
    let all_events: HashMap<B, Vec<Event>> = f.block_ids().map(|b| (b, events_of(b))).collect();

    // Backward dataflow to a fixed point.
    let mut live_in: HashMap<B, HashSet<VarId>> = HashMap::new();
    let mut live_out: HashMap<B, HashSet<VarId>> = HashMap::new();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo.iter().rev() {
            let mut out_set: HashSet<VarId> = HashSet::new();
            for &s in &cfg.succs[b.0 as usize] {
                if let Some(s_in) = live_in.get(&s) {
                    out_set.extend(s_in.iter().copied());
                }
            }
            let mut live = out_set.clone();
            for ev in all_events[&b].iter().rev() {
                for w in &ev.writes {
                    live.remove(w);
                }
                for r in &ev.reads {
                    live.insert(*r);
                }
            }
            if live_out.get(&b) != Some(&out_set) {
                live_out.insert(b, out_set);
                changed = true;
            }
            if live_in.get(&b) != Some(&live) {
                live_in.insert(b, live);
                changed = true;
            }
        }
    }

    // Dying reads: scan each block backward; a read dies when the variable
    // is not live just after its event (and it is read only once within
    // the event).
    let mut dying = HashSet::new();
    for &b in &cfg.rpo {
        let mut live = live_out.get(&b).cloned().unwrap_or_default();
        for ev in all_events[&b].iter().rev() {
            for w in &ev.writes {
                live.remove(w);
            }
            for r in &ev.reads {
                let duplicated = ev.reads.iter().filter(|x| *x == r).count() > 1;
                if !duplicated && !live.contains(r) {
                    dying.insert((b.0, ev.key, *r));
                }
            }
            for r in &ev.reads {
                live.insert(*r);
            }
        }
    }
    dying
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use wolfram_ir::FunctionBuilder;
    use wolfram_types::Type;

    /// Builds the appendix addOne TWIR by hand and runs it natively.
    #[test]
    fn add_one_end_to_end() {
        let mut b = FunctionBuilder::new("Main", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        let sum = b.call(
            Callee::Primitive(Arc::from("checked_binary_plus$Integer64$Integer64")),
            vec![arg.into(), Constant::I64(1).into()],
        );
        b.ret(sum);
        let mut f = b.finish();
        f.var_types.insert(arg, Type::integer64());
        f.var_types.insert(sum, Type::integer64());
        f.return_type = Some(Type::integer64());
        let pm = wolfram_ir::ProgramModule::with_main(f);
        let native = lower_program(&pm).unwrap();
        let mut m = Machine::standalone();
        let out = m.call(&native, 0, vec![ArgVal::I(41)]).unwrap();
        assert_eq!(out, ArgVal::I(42));
    }

    #[test]
    fn missing_types_are_compile_errors() {
        let mut b = FunctionBuilder::new("Main", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        b.ret(arg);
        let f = b.finish(); // no var_types
        let pm = wolfram_ir::ProgramModule::with_main(f);
        assert!(matches!(
            lower_program(&pm),
            Err(LowerError::MissingType(_))
        ));
    }

    #[test]
    fn loop_with_phi_moves() {
        // sum 1..n via a loop: exercises phis -> edge moves.
        let mut b = FunctionBuilder::new("Main", 1);
        let n = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: n, index: 0 });
        b.write_var("i", Constant::I64(0));
        b.write_var("acc", Constant::I64(0));
        let header = b.create_block("head");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.jump(header);
        b.switch_to(header);
        let i0 = b.read_var("i").unwrap();
        let c = b.call(
            Callee::Primitive(Arc::from("compare_less$Integer64$Integer64")),
            vec![i0.clone(), n.into()],
        );
        b.branch(c, body, exit);
        b.seal_block(body);
        b.switch_to(body);
        let i1 = b.read_var("i").unwrap();
        let acc1 = b.read_var("acc").unwrap();
        let i2 = b.call(
            Callee::Primitive(Arc::from("checked_binary_plus$Integer64$Integer64")),
            vec![i1, Constant::I64(1).into()],
        );
        let acc2 = b.call(
            Callee::Primitive(Arc::from("checked_binary_plus$Integer64$Integer64")),
            vec![acc1, i2.into()],
        );
        b.write_var("i", i2);
        b.write_var("acc", acc2);
        b.jump(header);
        b.seal_block(header);
        b.seal_block(exit);
        b.switch_to(exit);
        let out = b.read_var("acc").unwrap();
        b.ret(out);
        let mut f = b.finish();
        for v in 0..f.next_var {
            f.var_types.entry(VarId(v)).or_insert_with(|| {
                if v == c.0 {
                    Type::boolean()
                } else {
                    Type::integer64()
                }
            });
        }
        // Branch condition is boolean.
        f.var_types.insert(c, Type::boolean());
        f.return_type = Some(Type::integer64());
        wolfram_ir::verify_function(&f).unwrap();
        let pm = wolfram_ir::ProgramModule::with_main(f);
        let native = lower_program(&pm).unwrap();
        let mut m = Machine::standalone();
        let out = m.call(&native, 0, vec![ArgVal::I(100)]).unwrap();
        assert_eq!(out, ArgVal::I(5050));
    }

    #[test]
    fn mixed_promotion_via_operand_conversion() {
        // real + integer-constant: the integer converts at load.
        let mut b = FunctionBuilder::new("Main", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        let sum = b.call(
            Callee::Primitive(Arc::from("checked_binary_plus$Real64$Real64")),
            vec![arg.into(), Constant::I64(1).into()],
        );
        b.ret(sum);
        let mut f = b.finish();
        f.var_types.insert(arg, Type::real64());
        f.var_types.insert(sum, Type::real64());
        f.return_type = Some(Type::real64());
        let pm = wolfram_ir::ProgramModule::with_main(f);
        let native = lower_program(&pm).unwrap();
        let mut m = Machine::standalone();
        assert_eq!(
            m.call(&native, 0, vec![ArgVal::F(1.5)]).unwrap(),
            ArgVal::F(2.5)
        );
    }
}
