//! Counted-loop vectorizer: the compiler half of the data-parallel tier.
//!
//! Scans fused native code for innermost counted loops whose body is a
//! straight-line dense `f64` tensor map (Blur's stencil row, Listable
//! inner loops) and plants a [`RegOp::VecLoop`] superinstruction in front
//! of the loop header. At run time — only when the program carries a
//! [`ParallelConfig`] — the VecLoop executes all but the final iteration
//! as one batch through the SIMD kernels (and the worker pool, when the
//! store is contiguous), then falls through to the untouched scalar loop
//! for the last iteration and the exit test. When any precheck fails the
//! VecLoop is a no-op and the scalar loop runs exactly as before.
//!
//! # Soundness
//!
//! The planner refuses by default; a loop is batched only when every
//! instruction in it is on the whitelist below, so the batch is
//! observationally identical to the scalar iterations it replaces:
//!
//! - **Loop-carried scalars.** Any register (int or float) that is read
//!   before its first write in the iteration and also written by the
//!   body — other than the induction variable — refuses the loop, even
//!   when its value never reaches the store: the batch replays no
//!   per-iteration scalar updates, so a running accumulator next to the
//!   store (`s = s + x[[j]]`) would otherwise exit the loop holding only
//!   the tail iteration's update.
//! - **Errors.** Unhandled-but-total ops (float compares, `Pow`, unary
//!   math) may be skipped in the batch — the tail iteration recomputes
//!   every register the body writes before the loop can read it; such
//!   registers are never loop-carried (see above), so the recomputation
//!   depends only on invariants, loads, and the advanced induction
//!   variable. Any op
//!   that *can* raise (checked integer `Quot`/`Mod`/`Pow`/`Shl`,
//!   `Floor`/`Round` casts, float `Mod`, calls, boxing, non-`f64` loads)
//!   refuses the whole loop: a batch must never succeed past the
//!   iteration where the scalar loop would have raised.
//! - **Integer overflow.** Every checked integer result in the body is an
//!   affine function of the induction variable and loop invariants; its
//!   value over the whole batch range is endpoint-checked in `i128` at
//!   run time (linear ⇒ endpoints suffice), falling back to the scalar
//!   loop — which raises at exactly the right iteration — on overflow.
//! - **Part bounds.** Load/store indices are affine; both endpoints are
//!   range-checked against the tensor shape (1-based, negative or
//!   out-of-range indices fall back to the scalar path and its error).
//! - **Division.** A vectorized `Div` requires a provably nonzero
//!   divisor: a nonzero constant, or a loop-invariant register checked
//!   nonzero at batch entry.
//! - **Copy-on-write.** Inputs are `Arc`-cloned first, then the output
//!   tensor takes one `data_mut()`: it copies iff the storage is shared
//!   at batch entry — the same condition the scalar loop's first store
//!   sees — and loads never read the output object (plan-time refusal),
//!   so the batch writes the same bytes the scalar iterations would.
//! - **Refcount accounting.** Per-iteration acquire/release counts are
//!   proven uniform (no release may precede the slot's first acquire in
//!   an iteration, acquires are runtime-verified managed, and the counts
//!   must balance); the batch bumps the counters in bulk by `m × count`.
//! - **Aborts.** The batch polls the abort flag per chunk instead of per
//!   iteration — a documented relaxation; an abort mid-batch unwinds with
//!   entry-state flags, so accounting still balances.
//!
//! The only observable differences, both documented in DESIGN.md: abort
//! polling granularity, and the drop timing of a dead value that a
//! batched iteration would have overwritten (which can shift the
//! `tensor_copies` diagnostic counter under pathological aliasing, never
//! values or acquire/release counts).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::fuse;
use crate::machine::{ElemKind, FltOp, IntOp, IntUnOp, NativeFunc, NativeProgram, RegOp};
use wolfram_runtime::simd::{self, SimdOp};
use wolfram_runtime::{
    memory, parallel, AbortSignal, ParallelConfig, RuntimeError, Tensor, TensorData, Value,
};

/// Smallest batch (iterations beyond the tail) worth vectorizing.
const VEC_MIN: i128 = 8;

/// Elements evaluated per scratch sub-block inside a chunk.
const BLOCK: usize = 1024;

// ---------------------------------------------------------------------------
// Plan representation (embedded in `RegOp::VecLoop`).
// ---------------------------------------------------------------------------

/// An affine form `c + Σ coef·ints[reg] + iv_coef·(iv₀ + k)` over loop
/// invariants and the iteration number `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Affine {
    /// Constant term.
    pub c: i64,
    /// Loop-invariant integer registers with coefficients.
    pub terms: Vec<(u32, i64)>,
    /// Coefficient of the induction variable.
    pub iv_coef: i64,
}

impl Affine {
    /// Evaluates at iteration `k` in `i128`. Each product of two `i64`
    /// fits `i128`, but a multi-term sum can still wrap, so every step is
    /// checked; `None` means the precheck using this value must fail and
    /// the batch falls back to the scalar loop.
    fn eval(&self, ints: &[i64], iv0: i128, k: i128) -> Option<i128> {
        let mut acc = i128::from(self.c);
        for &(r, co) in &self.terms {
            let term = i128::from(co).checked_mul(i128::from(ints[r as usize]))?;
            acc = acc.checked_add(term)?;
        }
        let iv = i128::from(self.iv_coef).checked_mul(iv0.checked_add(k)?)?;
        acc.checked_add(iv)
    }
}

/// One value in the batched dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub enum VecNode {
    /// Literal constant.
    Const(f64),
    /// Loop-invariant float register (read at batch entry).
    Reg(u32),
    /// Tensor element load; `row` is `None` for rank-1 tensors. Indices
    /// are 1-based affine forms, bounds-checked at batch entry.
    Load {
        /// Index into [`VecPlan::tensors`].
        tensor: u32,
        /// Row index (rank-2 only).
        row: Option<Affine>,
        /// Column (or sole) index.
        col: Affine,
        /// The interval analysis proved the indices in bounds (the load
        /// came from an unchecked Part): the batch-entry precheck skips
        /// the upper endpoint test and only verifies `>= 1`, which the
        /// affine addressing itself requires.
        relaxed: bool,
    },
    /// Elementwise binary op over two earlier nodes.
    Bin {
        /// The operation.
        op: SimdOp,
        /// Left operand node index.
        l: u32,
        /// Right operand node index.
        r: u32,
    },
}

/// An input tensor the batch reads.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorRef {
    /// Value slot holding the tensor.
    pub slot: u32,
    /// Required rank (1 or 2).
    pub rank: u32,
}

/// Where each iteration's result element is stored.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSpec {
    /// Value slot holding the output tensor.
    pub slot: u32,
    /// Required rank (1 or 2).
    pub rank: u32,
    /// Row index affine (rank-2 only).
    pub row: Option<Affine>,
    /// Column (or sole) index affine.
    pub col: Affine,
    /// Store bounds proved at compile time (unchecked set op): the
    /// batch-entry precheck skips the upper endpoint test.
    pub relaxed: bool,
}

/// Everything the VecLoop executor needs, computed once at compile time.
#[derive(Debug, Clone, PartialEq)]
pub struct VecPlan {
    /// Induction-variable integer register.
    pub iv: u32,
    /// Loop-bound integer register (invariant).
    pub bound: u32,
    /// Whether the header compare is `Le` (`Lt` otherwise).
    pub inclusive: bool,
    /// Input tensors (never the output object).
    pub tensors: Vec<TensorRef>,
    /// The single store of the loop body.
    pub out: StoreSpec,
    /// Dataflow nodes in topological order.
    pub nodes: Vec<VecNode>,
    /// Node index producing the stored element.
    pub root: u32,
    /// Affine results of checked integer ops; each endpoint must fit
    /// `i64` over the batch range or the batch falls back.
    pub int_checks: Vec<Affine>,
    /// Float registers that must be nonzero at batch entry (divisors).
    pub div_checks: Vec<u32>,
    /// Value slots that must hold managed values (acquire targets).
    pub managed_checks: Vec<u32>,
    /// Acquires recorded per scalar iteration.
    pub acquires: u64,
    /// Releases recorded per scalar iteration.
    pub releases: u64,
    /// Batch-entry tests discharged by the interval analysis instead of
    /// evaluated at runtime (skipped overflow checks and upper-bound
    /// endpoint tests).
    pub prechecked: u32,
}

// ---------------------------------------------------------------------------
// Plan-time symbolic execution.
// ---------------------------------------------------------------------------

/// Affine form over *entry values* of integer registers: `c + Σ coef·Init(r)`.
#[derive(Debug, Clone, PartialEq)]
struct SymAffine {
    c: i64,
    /// Sorted by register, no zero coefficients.
    terms: Vec<(usize, i64)>,
}

impl SymAffine {
    fn konst(c: i64) -> Self {
        SymAffine {
            c,
            terms: Vec::new(),
        }
    }

    fn reg(r: usize) -> Self {
        SymAffine {
            c: 0,
            terms: vec![(r, 1)],
        }
    }

    fn add(&self, other: &SymAffine, negate: bool) -> Option<SymAffine> {
        let c = if negate {
            self.c.checked_sub(other.c)?
        } else {
            self.c.checked_add(other.c)?
        };
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            let pick_self = j >= other.terms.len()
                || (i < self.terms.len() && self.terms[i].0 <= other.terms[j].0);
            let pick_other = i >= self.terms.len()
                || (j < other.terms.len() && other.terms[j].0 <= self.terms[i].0);
            let (r, co) = if pick_self && pick_other {
                let o = if negate {
                    self.terms[i].1.checked_sub(other.terms[j].1)?
                } else {
                    self.terms[i].1.checked_add(other.terms[j].1)?
                };
                let r = self.terms[i].0;
                i += 1;
                j += 1;
                (r, o)
            } else if pick_self {
                let t = self.terms[i];
                i += 1;
                t
            } else {
                let (r, co) = other.terms[j];
                j += 1;
                (r, if negate { co.checked_neg()? } else { co })
            };
            if co != 0 {
                terms.push((r, co));
            }
        }
        Some(SymAffine { c, terms })
    }

    fn scale(&self, k: i64) -> Option<SymAffine> {
        let c = self.c.checked_mul(k)?;
        let mut terms = Vec::with_capacity(self.terms.len());
        for &(r, co) in &self.terms {
            let co = co.checked_mul(k)?;
            if co != 0 {
                terms.push((r, co));
            }
        }
        Some(SymAffine { c, terms })
    }

    fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.c)
    }

    /// Is exactly `Init(r) + 1` (the induction-variable step)?
    fn is_incr_of(&self, r: usize) -> bool {
        self.c == 1 && self.terms == [(r, 1)]
    }
}

/// Symbolic integer register state.
#[derive(Debug, Clone, PartialEq)]
enum IForm {
    Aff(SymAffine),
    /// Written by a total op we don't model; dead until the tail
    /// recomputes it.
    Unknown,
}

/// Symbolic float dataflow node.
#[derive(Debug, Clone, PartialEq)]
enum SymNode {
    Const(f64),
    Reg(usize),
    Load {
        slot: usize,
        rank: u32,
        row: Option<SymAffine>,
        col: SymAffine,
        relaxed: bool,
    },
    Bin {
        op: SimdOp,
        l: usize,
        r: usize,
    },
    /// Result of a total op outside the kernel set; must stay dead.
    Opaque,
}

/// What a value slot currently holds during the symbolic iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Obj {
    /// The entry value of slot `s`.
    Orig(usize),
    /// Taken (`Value::Null`).
    Null,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FlagSim {
    Unknown,
    Known(bool),
}

struct Planner {
    imap: HashMap<usize, IForm>,
    written_ints: HashSet<usize>,
    /// Integer registers read before their first write in the iteration:
    /// their entry value is live into the body, so writing them makes the
    /// register loop-carried.
    first_read_ints: HashSet<usize>,
    nodes: Vec<SymNode>,
    fmap: HashMap<usize, usize>,
    written_flts: HashSet<usize>,
    /// Float registers read before their first write in the iteration.
    first_read_flts: HashSet<usize>,
    vmap: HashMap<usize, Obj>,
    /// First access per touched value slot: `true` = overwrite-first.
    first_access: HashMap<usize, bool>,
    flags: HashMap<usize, FlagSim>,
    store: Option<(usize, u32, Option<SymAffine>, SymAffine, usize, bool)>,
    int_checks: Vec<SymAffine>,
    prechecked: u32,
    div_regs: HashSet<usize>,
    managed: HashSet<usize>,
    acquires: u64,
    releases: u64,
}

impl Planner {
    fn new() -> Self {
        Planner {
            imap: HashMap::new(),
            written_ints: HashSet::new(),
            first_read_ints: HashSet::new(),
            nodes: Vec::new(),
            fmap: HashMap::new(),
            written_flts: HashSet::new(),
            first_read_flts: HashSet::new(),
            vmap: HashMap::new(),
            first_access: HashMap::new(),
            flags: HashMap::new(),
            store: None,
            int_checks: Vec::new(),
            prechecked: 0,
            div_regs: HashSet::new(),
            managed: HashSet::new(),
            acquires: 0,
            releases: 0,
        }
    }

    fn rd_i(&mut self, r: usize) -> IForm {
        if !self.written_ints.contains(&r) {
            self.first_read_ints.insert(r);
        }
        self.imap
            .get(&r)
            .cloned()
            .unwrap_or_else(|| IForm::Aff(SymAffine::reg(r)))
    }

    fn wr_i(&mut self, r: usize, f: IForm) {
        self.imap.insert(r, f);
        self.written_ints.insert(r);
    }

    fn rd_f(&mut self, r: usize) -> usize {
        if !self.written_flts.contains(&r) {
            self.first_read_flts.insert(r);
        }
        if let Some(&n) = self.fmap.get(&r) {
            return n;
        }
        self.nodes.push(SymNode::Reg(r));
        let id = self.nodes.len() - 1;
        self.fmap.insert(r, id);
        id
    }

    fn wr_f(&mut self, r: usize, node: usize) {
        self.fmap.insert(r, node);
        self.written_flts.insert(r);
    }

    fn push(&mut self, n: SymNode) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    fn obj(&self, v: usize) -> Obj {
        self.vmap.get(&v).copied().unwrap_or(Obj::Orig(v))
    }

    fn touch(&mut self, v: usize, overwrite: bool) {
        self.first_access.entry(v).or_insert(overwrite);
    }

    /// Checked-arithmetic integer binary op. `None` = refuse the loop.
    fn int_bin_sym(&mut self, op: IntOp, a: IForm, b: IForm) -> Option<IForm> {
        use IntOp::*;
        match op {
            Add | Sub | Mul | AddU | SubU | MulU => {
                let (IForm::Aff(x), IForm::Aff(y)) = (a, b) else {
                    // A checked op over an unmodelled value: the scalar
                    // loop could raise where the batch cannot check.
                    return None;
                };
                let out = match op {
                    Add | AddU => x.add(&y, false)?,
                    Sub | SubU => x.add(&y, true)?,
                    _ => {
                        if let Some(k) = y.as_const() {
                            x.scale(k)?
                        } else if let Some(k) = x.as_const() {
                            y.scale(k)?
                        } else {
                            return None;
                        }
                    }
                };
                if matches!(op, AddU | SubU | MulU) {
                    // The interval analysis already proved the op cannot
                    // overflow for any reachable input: no endpoint test.
                    self.prechecked += 1;
                } else {
                    self.int_checks.push(out.clone());
                }
                Some(IForm::Aff(out))
            }
            // Total on all inputs; the result is dead until the tail.
            Min | Max | Gcd | BitAnd | BitOr | BitXor | Shr | Lt | Le | Gt | Ge | Eq | Ne | And
            | Or => Some(IForm::Unknown),
            // Can raise (divide-by-zero / overflow): refuse.
            Quot | Mod | Pow | Shl => None,
        }
    }

    /// Float binary op; errors (`None`) refuse the loop.
    fn flt_bin_sym(&mut self, op: FltOp, l: usize, r: usize) -> Option<usize> {
        let sop = match op {
            FltOp::Add => Some(SimdOp::Add),
            FltOp::Sub => Some(SimdOp::Sub),
            FltOp::Mul => Some(SimdOp::Mul),
            FltOp::Div => Some(SimdOp::Div),
            // Total, no kernel: dead-only result.
            FltOp::Pow | FltOp::Min | FltOp::Max | FltOp::ArcTan2 => None,
            // Raises DivideByZero; handled below.
            FltOp::Mod => None,
        };
        if op == FltOp::Mod {
            return None; // can raise, refuse the loop
        }
        if op == FltOp::Div {
            // The divisor must be provably nonzero for every batched
            // iteration even if the quotient is dead — the scalar loop
            // would still evaluate (and possibly raise) it.
            match &self.nodes[r] {
                SymNode::Const(c) => {
                    if *c == 0.0 {
                        return None;
                    }
                }
                SymNode::Reg(reg) => {
                    self.div_regs.insert(*reg);
                }
                _ => return None,
            }
        }
        let opaque =
            matches!(self.nodes[l], SymNode::Opaque) || matches!(self.nodes[r], SymNode::Opaque);
        match sop {
            Some(sop) if !opaque => Some(self.push(SymNode::Bin { op: sop, l, r })),
            _ => Some(self.push(SymNode::Opaque)),
        }
    }

    fn load_sym(
        &mut self,
        kind: ElemKind,
        t: usize,
        i: IForm,
        j: Option<IForm>,
        relaxed: bool,
    ) -> Option<usize> {
        if kind != ElemKind::F64 {
            return None;
        }
        let Obj::Orig(slot) = self.obj(t) else {
            return None;
        };
        self.touch(t, false);
        let IForm::Aff(col_or_row) = i else {
            return None;
        };
        let (rank, row, col) = match j {
            None => (1, None, col_or_row),
            Some(IForm::Aff(jj)) => (2, Some(col_or_row), jj),
            Some(IForm::Unknown) => return None,
        };
        if relaxed {
            self.prechecked += 1;
        }
        Some(self.push(SymNode::Load {
            slot,
            rank,
            row,
            col,
            relaxed,
        }))
    }

    fn store_sym(
        &mut self,
        kind: ElemKind,
        t: usize,
        i: IForm,
        j: Option<IForm>,
        v_node: usize,
        relaxed: bool,
    ) -> Option<()> {
        if kind != ElemKind::F64 || self.store.is_some() {
            return None;
        }
        let Obj::Orig(slot) = self.obj(t) else {
            return None;
        };
        self.touch(t, false);
        let IForm::Aff(col_or_row) = i else {
            return None;
        };
        let (rank, row, col) = match j {
            None => (1, None, col_or_row),
            Some(IForm::Aff(jj)) => (2, Some(col_or_row), jj),
            Some(IForm::Unknown) => return None,
        };
        if relaxed {
            self.prechecked += 1;
        }
        self.store = Some((slot, rank, row, col, v_node, relaxed));
        Some(())
    }

    fn take_v(&mut self, d: usize, s: usize) {
        self.touch(s, false);
        self.touch(d, true);
        let o = self.obj(s);
        self.vmap.insert(d, o);
        self.vmap.insert(s, Obj::Null);
    }

    fn acquire(&mut self, v: usize) {
        self.touch(v, false);
        if let Obj::Orig(s) = self.obj(v) {
            // Runtime-verified managed ⇒ records exactly once.
            self.managed.insert(s);
            self.acquires += 1;
            self.flags.insert(v, FlagSim::Known(true));
        }
        // Obj::Null holds Value::Null — unmanaged, uniform no-op, flag
        // untouched.
    }

    fn release(&mut self, v: usize) -> Option<()> {
        self.touch(v, false);
        match self.flags.get(&v).copied().unwrap_or(FlagSim::Unknown) {
            FlagSim::Known(true) => {
                self.releases += 1;
                self.flags.insert(v, FlagSim::Known(false));
                Some(())
            }
            FlagSim::Known(false) => Some(()),
            // A release whose effect depends on the flag at loop entry
            // would make per-iteration counts non-uniform.
            FlagSim::Unknown => None,
        }
    }

    /// Symbolically executes one body op. `None` = refuse the loop.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, op: &RegOp) -> Option<()> {
        match op {
            RegOp::LdcI { d, v } => self.wr_i(*d, IForm::Aff(SymAffine::konst(*v))),
            RegOp::MovI { d, s } => {
                let f = self.rd_i(*s);
                self.wr_i(*d, f);
            }
            RegOp::Mov2I { d1, s1, d2, s2 } => {
                let f = self.rd_i(*s1 as usize);
                self.wr_i(*d1 as usize, f);
                let f = self.rd_i(*s2 as usize);
                self.wr_i(*d2 as usize, f);
            }
            RegOp::IntBin { op, d, a, b } => {
                let (x, y) = (self.rd_i(*a), self.rd_i(*b));
                let f = self.int_bin_sym(*op, x, y)?;
                self.wr_i(*d, f);
            }
            RegOp::IntBinImm { op, d, a, imm } => {
                let x = self.rd_i(*a);
                let f = self.int_bin_sym(*op, x, IForm::Aff(SymAffine::konst(*imm)))?;
                self.wr_i(*d, f);
            }
            RegOp::IntBinImm2 {
                op1,
                d1,
                a1,
                imm1,
                op2,
                d2,
                a2,
                imm2,
            } => {
                let x = self.rd_i(*a1 as usize);
                let f =
                    self.int_bin_sym(*op1, x, IForm::Aff(SymAffine::konst(i64::from(*imm1))))?;
                self.wr_i(*d1 as usize, f);
                let x = self.rd_i(*a2 as usize);
                let f =
                    self.int_bin_sym(*op2, x, IForm::Aff(SymAffine::konst(i64::from(*imm2))))?;
                self.wr_i(*d2 as usize, f);
            }
            RegOp::IntBin2 {
                op1,
                d1,
                a1,
                b1,
                op2,
                d2,
                a2,
                b2,
            } => {
                let (x, y) = (self.rd_i(*a1 as usize), self.rd_i(*b1 as usize));
                let f = self.int_bin_sym(*op1, x, y)?;
                self.wr_i(*d1 as usize, f);
                let (x, y) = (self.rd_i(*a2 as usize), self.rd_i(*b2 as usize));
                let f = self.int_bin_sym(*op2, x, y)?;
                self.wr_i(*d2 as usize, f);
            }
            RegOp::IntBinImmMovI {
                op,
                d,
                a,
                imm,
                d2,
                s2,
            } => {
                let x = self.rd_i(*a as usize);
                let f = self.int_bin_sym(*op, x, IForm::Aff(SymAffine::konst(i64::from(*imm))))?;
                self.wr_i(*d as usize, f);
                let f = self.rd_i(*s2 as usize);
                self.wr_i(*d2 as usize, f);
            }
            RegOp::IntUn { op, d, s } => match op {
                IntUnOp::Neg => {
                    let IForm::Aff(x) = self.rd_i(*s) else {
                        return None;
                    };
                    let out = x.scale(-1)?;
                    self.int_checks.push(out.clone());
                    self.wr_i(*d, IForm::Aff(out));
                }
                IntUnOp::Not | IntUnOp::Sign => self.wr_i(*d, IForm::Unknown),
                // Abs/Factorial can raise.
                IntUnOp::Abs | IntUnOp::Factorial => return None,
            },
            RegOp::LdcF { d, v } => {
                let n = self.push(SymNode::Const(*v));
                self.wr_f(*d, n);
            }
            RegOp::MovF { d, s } => {
                let n = self.rd_f(*s);
                self.wr_f(*d, n);
            }
            RegOp::FltBin { op, d, a, b } => {
                let (l, r) = (self.rd_f(*a), self.rd_f(*b));
                let n = self.flt_bin_sym(*op, l, r)?;
                self.wr_f(*d, n);
            }
            RegOp::FltBinImm { op, d, a, imm } => {
                let l = self.rd_f(*a);
                let r = self.push(SymNode::Const(*imm));
                let n = self.flt_bin_sym(*op, l, r)?;
                self.wr_f(*d, n);
            }
            RegOp::FltBin2 {
                op1,
                d1,
                a1,
                b1,
                op2,
                d2,
                a2,
                b2,
            } => {
                let (l, r) = (self.rd_f(*a1 as usize), self.rd_f(*b1 as usize));
                let n = self.flt_bin_sym(*op1, l, r)?;
                self.wr_f(*d1 as usize, n);
                let (l, r) = (self.rd_f(*a2 as usize), self.rd_f(*b2 as usize));
                let n = self.flt_bin_sym(*op2, l, r)?;
                self.wr_f(*d2 as usize, n);
            }
            // Total float unaries without kernels: dead-only result.
            RegOp::FltUn { d, .. } | RegOp::IntToFlt { d, .. } => {
                let n = self.push(SymNode::Opaque);
                self.wr_f(*d, n);
            }
            RegOp::FltCmp { d, .. } => self.wr_i(*d, IForm::Unknown),
            RegOp::FltCmpMovI { d, d2, s2, .. } => {
                self.wr_i(*d as usize, IForm::Unknown);
                let f = self.rd_i(*s2 as usize);
                self.wr_i(*d2 as usize, f);
            }
            RegOp::TenPart1 { kind, d, t, i } | RegOp::TenPart1U { kind, d, t, i } => {
                let relaxed = matches!(op, RegOp::TenPart1U { .. });
                let ix = self.rd_i(*i);
                let n = self.load_sym(*kind, *t, ix, None, relaxed)?;
                self.wr_f(*d, n);
            }
            RegOp::TenPart2 { kind, d, t, i, j } | RegOp::TenPart2U { kind, d, t, i, j } => {
                let relaxed = matches!(op, RegOp::TenPart2U { .. });
                let (ix, jx) = (self.rd_i(*i), self.rd_i(*j));
                let n = self.load_sym(*kind, *t, ix, Some(jx), relaxed)?;
                self.wr_f(*d, n);
            }
            RegOp::TenPart2FltBin {
                e,
                t,
                i,
                j,
                op: fop,
                d,
                a,
                b,
            }
            | RegOp::TenPart2FltBinU {
                e,
                t,
                i,
                j,
                op: fop,
                d,
                a,
                b,
            } => {
                let relaxed = matches!(op, RegOp::TenPart2FltBinU { .. });
                let (ix, jx) = (self.rd_i(*i as usize), self.rd_i(*j as usize));
                let n = self.load_sym(ElemKind::F64, *t as usize, ix, Some(jx), relaxed)?;
                self.wr_f(*e as usize, n);
                let (l, r) = (self.rd_f(*a as usize), self.rd_f(*b as usize));
                let n = self.flt_bin_sym(*fop, l, r)?;
                self.wr_f(*d as usize, n);
            }
            RegOp::TenSet1 { kind, t, i, v } | RegOp::TenSet1U { kind, t, i, v } => {
                let relaxed = matches!(op, RegOp::TenSet1U { .. });
                if *kind != ElemKind::F64 {
                    return None;
                }
                let ix = self.rd_i(*i);
                let vn = self.rd_f(*v);
                self.store_sym(*kind, *t, ix, None, vn, relaxed)?;
            }
            RegOp::TenSet2 { kind, t, i, j, v } | RegOp::TenSet2U { kind, t, i, j, v } => {
                let relaxed = matches!(op, RegOp::TenSet2U { .. });
                if *kind != ElemKind::F64 {
                    return None;
                }
                let (ix, jx) = (self.rd_i(*i), self.rd_i(*j));
                let vn = self.rd_f(*v);
                self.store_sym(*kind, *t, ix, Some(jx), vn, relaxed)?;
            }
            RegOp::TakeVTenSet1 {
                dv,
                sv,
                kind,
                t,
                i,
                v,
            } => {
                if *kind != ElemKind::F64 {
                    return None;
                }
                self.take_v(*dv as usize, *sv as usize);
                let ix = self.rd_i(*i as usize);
                let vn = self.rd_f(*v as usize);
                self.store_sym(*kind, *t as usize, ix, None, vn, false)?;
            }
            RegOp::TakeVTenSet2 {
                dv,
                sv,
                kind,
                t,
                i,
                j,
                v,
            }
            | RegOp::TakeVTenSet2U {
                dv,
                sv,
                kind,
                t,
                i,
                j,
                v,
            } => {
                let relaxed = matches!(op, RegOp::TakeVTenSet2U { .. });
                if *kind != ElemKind::F64 {
                    return None;
                }
                self.take_v(*dv as usize, *sv as usize);
                let (ix, jx) = (self.rd_i(*i as usize), self.rd_i(*j as usize));
                let vn = self.rd_f(*v as usize);
                self.store_sym(*kind, *t as usize, ix, Some(jx), vn, relaxed)?;
            }
            RegOp::TakeV { d, s } => self.take_v(*d, *s),
            RegOp::Acquire { v } => self.acquire(*v),
            RegOp::Release { v } => self.release(*v)?,
            RegOp::Release2 { v1, v2 } => {
                self.release(*v1 as usize)?;
                self.release(*v2 as usize)?;
            }
            // The batch polls the abort flag per chunk instead.
            RegOp::AbortCheck => {}
            // Anything else — calls, boxing, RNG, strings, complex,
            // whole-tensor ops, integer loads, branches — refuses.
            _ => return None,
        }
        Some(())
    }
}

// ---------------------------------------------------------------------------
// Loop discovery and plan construction.
// ---------------------------------------------------------------------------

/// The back-edge target of a latch-shaped op.
fn latch_target(op: &RegOp) -> Option<usize> {
    match op {
        RegOp::Jmp { pc } => Some(*pc),
        RegOp::MovIJmp { pc, .. }
        | RegOp::Mov2IJmp { pc, .. }
        | RegOp::IntBinImmJmp { pc, .. }
        | RegOp::IntBinImmMov2IJmp { pc, .. } => Some(*pc as usize),
        _ => None,
    }
}

/// Rewrites a latch's back-edge target (used after global remapping).
fn set_latch_target(op: &mut RegOp, t: usize) {
    match op {
        RegOp::Jmp { pc } => *pc = t,
        RegOp::MovIJmp { pc, .. }
        | RegOp::Mov2IJmp { pc, .. }
        | RegOp::IntBinImmJmp { pc, .. }
        | RegOp::IntBinImmMov2IJmp { pc, .. } => *pc = t as u32,
        _ => unreachable!("not a latch"),
    }
}

/// Header compare shape: induction variable, bound, inclusivity, the
/// condition register it writes, and the exit target.
struct Header {
    iv: usize,
    bound: usize,
    inclusive: bool,
    cond: usize,
    exit: usize,
    /// For `Sel` forms, the true-edge target (must be the body start).
    body: Option<usize>,
}

fn header_compare(op: &RegOp) -> Option<Header> {
    let (iop, a, b, d, exit, body) = match op {
        RegOp::AbortBrCmpISel {
            op,
            a,
            b,
            d,
            pc_false,
            pc_true,
        }
        | RegOp::BrCmpISel {
            op,
            a,
            b,
            d,
            pc_false,
            pc_true,
        } => (
            *op,
            *a as usize,
            *b as usize,
            *d as usize,
            *pc_false as usize,
            Some(*pc_true as usize),
        ),
        RegOp::AbortBrCmpIFalse { op, a, b, d, pc } | RegOp::BrCmpIFalse { op, a, b, d, pc } => (
            *op,
            *a as usize,
            *b as usize,
            *d as usize,
            *pc as usize,
            None,
        ),
        _ => return None,
    };
    let inclusive = match iop {
        IntOp::Lt => false,
        IntOp::Le => true,
        _ => return None,
    };
    Some(Header {
        iv: a,
        bound: b,
        inclusive,
        cond: d,
        exit,
        body,
    })
}

fn to_u32(x: usize) -> Option<u32> {
    u32::try_from(x).ok()
}

/// Tries to plan the loop `[l, latch]`. `None` = leave it scalar.
#[allow(clippy::too_many_lines)]
fn try_plan(f: &NativeFunc, l: usize, latch: usize) -> Option<VecPlan> {
    let code = &f.code;
    // Header: a run of Acquires, then the counted compare.
    let mut c = l;
    while c < latch && matches!(code[c], RegOp::Acquire { .. }) {
        c += 1;
    }
    if c >= latch {
        return None;
    }
    let h = header_compare(&code[c])?;
    // The iterated body starts at the compare's taken edge: `Sel` forms
    // jump there (the not-taken exit path — often the *outer* loop's
    // latch — sits between the compare and the body), `False` forms fall
    // through.
    let bt = h.body.unwrap_or(c + 1);
    if bt <= c || bt > latch {
        return None;
    }
    // The exit edge must not re-enter the header or land in the body.
    if (h.exit >= l && h.exit <= c) || (h.exit >= bt && h.exit <= latch) {
        return None;
    }
    // Straight-line body: no op inside branches, and no op anywhere else
    // jumps into the iterated region.
    for op in &code[bt..latch] {
        if !fuse::jump_targets(op).is_empty() {
            return None;
        }
    }
    for (p, op) in code.iter().enumerate() {
        if p == c || p == latch {
            continue;
        }
        for t in fuse::jump_targets(op) {
            if t >= bt && t <= latch {
                return None;
            }
        }
    }
    // Symbolic execution of one full iteration: header acquires, the
    // taken compare, the body, and the latch's non-jump writes.
    let mut pl = Planner::new();
    for op in &code[l..c] {
        pl.step(op)?;
    }
    pl.wr_i(h.cond, IForm::Aff(SymAffine::konst(1))); // taken: condition true
    for op in &code[bt..latch] {
        pl.step(op)?;
    }
    match &code[latch] {
        RegOp::Jmp { .. } => {}
        RegOp::MovIJmp { d, s, .. } => {
            let v = pl.rd_i(*s as usize);
            pl.wr_i(*d as usize, v);
        }
        RegOp::Mov2IJmp { d1, s1, d2, s2, .. } => {
            let v = pl.rd_i(*s1 as usize);
            pl.wr_i(*d1 as usize, v);
            let v = pl.rd_i(*s2 as usize);
            pl.wr_i(*d2 as usize, v);
        }
        RegOp::IntBinImmJmp { op, d, a, imm, .. } => {
            let x = pl.rd_i(*a as usize);
            let v = pl.int_bin_sym(*op, x, IForm::Aff(SymAffine::konst(i64::from(*imm))))?;
            pl.wr_i(*d as usize, v);
        }
        RegOp::IntBinImmMov2IJmp {
            op,
            d,
            a,
            imm,
            d2,
            s2,
            d3,
            s3,
            ..
        } => {
            let x = pl.rd_i(*a as usize);
            let v = pl.int_bin_sym(*op, x, IForm::Aff(SymAffine::konst(i64::from(*imm))))?;
            pl.wr_i(*d as usize, v);
            let v = pl.rd_i(*s2 as usize);
            pl.wr_i(*d2 as usize, v);
            let v = pl.rd_i(*s3 as usize);
            pl.wr_i(*d3 as usize, v);
        }
        _ => return None,
    }
    // The induction variable must step by exactly one per iteration, and
    // the bound must be invariant.
    let IForm::Aff(iv_final) = pl.rd_i(h.iv) else {
        return None;
    };
    if !iv_final.is_incr_of(h.iv) || pl.written_ints.contains(&h.bound) {
        return None;
    }
    // Loop-carried scalars: a register read before its first write in the
    // iteration consumes the previous iteration's value, and the batch
    // replays no per-iteration updates except the induction variable's.
    // Refuse regardless of whether the value feeds the store — code after
    // the loop may read the register (e.g. a running accumulator
    // `s = s + x[[j]]` next to the store), and the tail iteration alone
    // would leave it at entry-value + one update: a silent wrong answer.
    for r in &pl.written_ints {
        if *r != h.iv && pl.first_read_ints.contains(r) {
            return None;
        }
    }
    for r in &pl.written_flts {
        if pl.first_read_flts.contains(r) {
            return None;
        }
    }
    // The store is mandatory; its object must not be readable as input.
    let (out_slot, out_rank, out_row, out_col, root_sym, out_relaxed) = pl.store.clone()?;
    // Per-iteration acquire/release counts must balance (mirrors the
    // memory pass's own invariant; see the module docs on aborts).
    if pl.acquires != pl.releases {
        return None;
    }
    // Object round-trip: every slot whose first access is a read must end
    // the iteration holding its entry object.
    for (&s, &overwrote_first) in &pl.first_access {
        if !overwrote_first && pl.obj(s) != Obj::Orig(s) {
            return None;
        }
    }
    // Reachable nodes: the stored element plus nothing else. Opaque must
    // be dead; Reg leaves and affine terms must be loop-invariant.
    let mut reach: Vec<bool> = vec![false; pl.nodes.len()];
    let mut stack = vec![root_sym];
    while let Some(n) = stack.pop() {
        if reach[n] {
            continue;
        }
        reach[n] = true;
        if let SymNode::Bin { l, r, .. } = &pl.nodes[n] {
            stack.push(*l);
            stack.push(*r);
        }
    }
    for r in &pl.div_regs {
        if pl.written_flts.contains(r) {
            return None;
        }
    }
    // Convert symbolic affines to runtime forms: terms may reference only
    // invariants; the induction variable folds into `iv_coef`.
    let lower = |a: &SymAffine| -> Option<Affine> {
        let mut out = Affine {
            c: a.c,
            terms: Vec::new(),
            iv_coef: 0,
        };
        for &(r, co) in &a.terms {
            if r == h.iv {
                out.iv_coef = co;
            } else if pl.written_ints.contains(&r) {
                return None;
            } else {
                out.terms.push((to_u32(r)?, co));
            }
        }
        Some(out)
    };
    // Compact the node list to reachable nodes (insertion order is
    // already topological) and collect input tensors.
    let mut tensors: Vec<TensorRef> = Vec::new();
    let mut tensor_ix: HashMap<usize, u32> = HashMap::new();
    let mut remap: Vec<Option<u32>> = vec![None; pl.nodes.len()];
    let mut nodes: Vec<VecNode> = Vec::new();
    for (i, n) in pl.nodes.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let lowered = match n {
            SymNode::Const(c) => VecNode::Const(*c),
            SymNode::Reg(r) => {
                if pl.written_flts.contains(r) {
                    return None; // reads a body-written float: recurrence
                }
                VecNode::Reg(to_u32(*r)?)
            }
            SymNode::Load {
                slot,
                rank,
                row,
                col,
                relaxed,
            } => {
                if *slot == out_slot {
                    return None; // reading the output object: recurrence
                }
                let ix = match tensor_ix.get(slot) {
                    Some(&ix) => {
                        if tensors[ix as usize].rank != *rank {
                            return None;
                        }
                        ix
                    }
                    None => {
                        let ix = to_u32(tensors.len())?;
                        tensors.push(TensorRef {
                            slot: to_u32(*slot)?,
                            rank: *rank,
                        });
                        tensor_ix.insert(*slot, ix);
                        ix
                    }
                };
                VecNode::Load {
                    tensor: ix,
                    row: match row {
                        Some(r) => Some(lower(r)?),
                        None => None,
                    },
                    col: lower(col)?,
                    relaxed: *relaxed,
                }
            }
            SymNode::Bin { op, l, r } => VecNode::Bin {
                op: *op,
                l: remap[*l]?,
                r: remap[*r]?,
            },
            SymNode::Opaque => return None, // reachable opaque value
        };
        remap[i] = Some(to_u32(nodes.len())?);
        nodes.push(lowered);
    }
    let root = remap[root_sym]?;
    let int_checks = pl
        .int_checks
        .iter()
        .map(lower)
        .collect::<Option<Vec<_>>>()?;
    let out = StoreSpec {
        slot: to_u32(out_slot)?,
        rank: out_rank,
        row: match &out_row {
            Some(r) => Some(lower(r)?),
            None => None,
        },
        col: lower(&out_col)?,
        relaxed: out_relaxed,
    };
    let mut div_checks: Vec<u32> = pl
        .div_regs
        .iter()
        .map(|&r| to_u32(r))
        .collect::<Option<Vec<_>>>()?;
    div_checks.sort_unstable();
    let mut managed_checks: Vec<u32> = pl
        .managed
        .iter()
        .map(|&s| to_u32(s))
        .collect::<Option<Vec<_>>>()?;
    managed_checks.sort_unstable();
    Some(VecPlan {
        iv: to_u32(h.iv)?,
        bound: to_u32(h.bound)?,
        inclusive: h.inclusive,
        tensors,
        out,
        nodes,
        root,
        int_checks,
        div_checks,
        managed_checks,
        acquires: pl.acquires,
        releases: pl.releases,
        prechecked: pl.prechecked,
    })
}

/// Plants `VecLoop` ops in front of every vectorizable counted loop of
/// the program. Returns the number of loops vectorized. Safe to run on
/// any fused program; the planted ops are inert until the program carries
/// a [`ParallelConfig`].
pub fn vectorize_program(p: &mut NativeProgram) -> usize {
    p.funcs.iter_mut().map(vectorize_function).sum()
}

/// [`vectorize_program`] for a single function.
pub fn vectorize_function(f: &mut NativeFunc) -> usize {
    let n = f.code.len();
    let mut accepted: Vec<(usize, usize, VecPlan)> = Vec::new();
    for latch in 0..n {
        let Some(l) = latch_target(&f.code[latch]) else {
            continue;
        };
        if l > latch {
            continue;
        }
        if accepted
            .iter()
            .any(|&(al, alat, _)| l <= alat && al <= latch)
        {
            continue; // overlaps an accepted loop
        }
        if let Some(plan) = try_plan(f, l, latch) {
            accepted.push((l, latch, plan));
        }
    }
    if accepted.is_empty() {
        return 0;
    }
    accepted.sort_by_key(|&(l, _, _)| l);
    let count = accepted.len();
    let starts: Vec<usize> = accepted.iter().map(|&(l, _, _)| l).collect();
    // shifted(t) = t + (number of VecLoops inserted at or before t); jumps
    // to a loop start land on its VecLoop (one earlier) so every loop
    // entry — fallthrough or branch — runs the batch first.
    let shift = |t: usize| t + starts.partition_point(|&s| s <= t);
    let mut new_pc: Vec<usize> = (0..=n).map(shift).collect();
    for &l in &starts {
        new_pc[l] = shift(l) - 1;
    }
    let mut out: Vec<RegOp> = Vec::with_capacity(n + count);
    let mut next = accepted.iter().peekable();
    for (t, op) in f.code.iter().enumerate() {
        if next.peek().is_some_and(|&&(l, _, _)| l == t) {
            let (_, _, plan) = next.next().unwrap();
            out.push(RegOp::VecLoop {
                plan: Arc::new(plan.clone()),
            });
        }
        out.push(op.clone());
    }
    for op in &mut out {
        fuse::remap_targets(op, &new_pc);
    }
    // Back-edges must re-enter at the *scalar header*, not the VecLoop:
    // re-batching per scalar iteration would re-run the prechecks each
    // time for a batch the entry already consumed.
    for &(l, latch, _) in &accepted {
        set_latch_target(&mut out[shift(latch)], shift(l));
    }
    f.code = out;
    count
}

// ---------------------------------------------------------------------------
// Runtime execution.
// ---------------------------------------------------------------------------

/// Resolved load/store addressing: `element(k) = off0 + k·stride`.
#[derive(Clone, Copy)]
struct Addr {
    off0: i128,
    stride: i128,
}

/// Checks an index affine against `1..=dim` at both batch endpoints
/// (linear ⇒ the interior is covered) and returns its value at `k = 0`.
/// Evaluation overflow counts as a failed check. With `relaxed` (the
/// interval analysis proved the access in bounds at compile time) only
/// the `>= 1` half runs: positivity is what makes the affine addressing
/// match the scalar op's sign resolution, while an upper-bound miss —
/// impossible under the proof — would at worst panic on the safe slice
/// index exactly as the scalar unchecked op would.
fn index_endpoints(
    a: &Affine,
    ints: &[i64],
    iv0: i128,
    m: i128,
    dim: usize,
    relaxed: bool,
) -> Option<i128> {
    let at0 = a.eval(ints, iv0, 0)?;
    let at_end = a.eval(ints, iv0, m - 1)?;
    let dim = dim as i128;
    if at0 < 1 || at_end < 1 {
        return None;
    }
    if !relaxed && (at0 > dim || at_end > dim) {
        return None;
    }
    Some(at0)
}

fn resolve_addr(
    row: Option<&Affine>,
    col: &Affine,
    shape: &[usize],
    ints: &[i64],
    iv0: i128,
    m: i128,
    relaxed: bool,
) -> Option<Addr> {
    match row {
        None => {
            let c0 = index_endpoints(col, ints, iv0, m, shape[0], relaxed)?;
            Some(Addr {
                off0: c0 - 1,
                stride: i128::from(col.iv_coef),
            })
        }
        Some(r) => {
            let r0 = index_endpoints(r, ints, iv0, m, shape[0], relaxed)?;
            let c0 = index_endpoints(col, ints, iv0, m, shape[1], relaxed)?;
            let cols = shape[1] as i128;
            Some(Addr {
                off0: (r0 - 1) * cols + (c0 - 1),
                stride: i128::from(r.iv_coef) * cols + i128::from(col.iv_coef),
            })
        }
    }
}

/// Resolved operand of a batched node.
#[derive(Clone, Copy)]
enum Tag {
    /// Constant across the batch.
    Sc(f64),
    /// Contiguous input run starting at `off0` (stride 1).
    In { input: usize, off0: usize },
    /// Materialized in scratch buffer `buf`.
    Buf(usize),
}

enum Step {
    Gather {
        input: usize,
        addr: Addr,
        buf: usize,
    },
    Bin {
        op: SimdOp,
        l: Tag,
        r: Tag,
        buf: usize,
    },
}

/// Evaluates nodes for the k-range `[s, s+len)` into `dest`.
fn eval_block(
    steps: &[Step],
    root: Tag,
    inputs: &[&[f64]],
    scratch: &mut [Vec<f64>],
    s: usize,
    len: usize,
    dest: &mut [f64],
) {
    debug_assert_eq!(dest.len(), len);
    for step in steps {
        match step {
            Step::Gather { input, addr, buf } => {
                let (_, rest) = scratch.split_at_mut(*buf);
                let b = &mut rest[0][..len];
                let data = inputs[*input];
                for (t, slot) in b.iter_mut().enumerate() {
                    *slot = data[(addr.off0 + (s + t) as i128 * addr.stride) as usize];
                }
            }
            Step::Bin { op, l, r, buf } => {
                let (done, rest) = scratch.split_at_mut(*buf);
                let out = &mut rest[0][..len];
                match (*l, *r) {
                    (Tag::Sc(x), Tag::Sc(y)) => simd::fill(out, op.apply(x, y)),
                    (Tag::Sc(x), rt) => {
                        let rs = tag_slice(rt, inputs, done, s, len);
                        simd::sv(*op, x, rs, out);
                    }
                    (lt, Tag::Sc(y)) => {
                        let ls = tag_slice(lt, inputs, done, s, len);
                        simd::vs(*op, ls, y, out);
                    }
                    (lt, rt) => {
                        let ls = tag_slice(lt, inputs, done, s, len);
                        let rs = tag_slice(rt, inputs, done, s, len);
                        simd::vv(*op, ls, rs, out);
                    }
                }
            }
        }
    }
    match root {
        Tag::Sc(c) => simd::fill(dest, c),
        Tag::In { input, off0 } => dest.copy_from_slice(&inputs[input][off0 + s..off0 + s + len]),
        Tag::Buf(b) => dest.copy_from_slice(&scratch[b][..len]),
    }
}

fn tag_slice<'a>(
    tag: Tag,
    inputs: &'a [&'a [f64]],
    done: &'a [Vec<f64>],
    s: usize,
    len: usize,
) -> &'a [f64] {
    match tag {
        Tag::In { input, off0 } => &inputs[input][off0 + s..off0 + s + len],
        Tag::Buf(b) => &done[b][..len],
        Tag::Sc(_) => unreachable!("scalar operand has no slice"),
    }
}

/// Executes the batch for `plan` if every precheck holds; otherwise
/// returns without touching any state (the scalar loop then runs and
/// raises whatever error the prechecks anticipated).
///
/// # Errors
///
/// Only [`RuntimeError::Aborted`] — any other anticipated failure falls
/// back to the scalar path instead of erroring here.
#[allow(clippy::too_many_lines)]
pub(crate) fn exec_batch(
    plan: &VecPlan,
    cfg: &ParallelConfig,
    abort: &AbortSignal,
    ints: &mut [i64],
    flts: &[f64],
    vals: &mut [Value],
) -> Result<(), RuntimeError> {
    if !cfg.simd {
        // Ablation switch: leave the scalar loop fully in charge.
        return Ok(());
    }
    let iv0 = i128::from(ints[plan.iv as usize]);
    let bound = i128::from(ints[plan.bound as usize]);
    let n_total = bound - iv0 + i128::from(plan.inclusive);
    let m = n_total - 1; // the scalar tail runs the final iteration
    if !(VEC_MIN..=1 << 46).contains(&m) {
        return Ok(());
    }
    for &s in &plan.managed_checks {
        if !vals[s as usize].is_managed() {
            return Ok(());
        }
    }
    for &r in &plan.div_checks {
        if flts[r as usize] == 0.0 {
            return Ok(());
        }
    }
    for a in &plan.int_checks {
        for k in [0, m - 1] {
            let Some(v) = a.eval(ints, iv0, k) else {
                return Ok(());
            };
            if v < i128::from(i64::MIN) || v > i128::from(i64::MAX) {
                return Ok(());
            }
        }
    }
    // Clone input tensors *before* the output's data_mut: if the output
    // storage is shared (including with an input), data_mut copies it —
    // exactly when the scalar loop's first store would have copied.
    let mut inputs: Vec<Tensor> = Vec::with_capacity(plan.tensors.len());
    for tr in &plan.tensors {
        let Value::Tensor(t) = &vals[tr.slot as usize] else {
            return Ok(());
        };
        if t.rank() != tr.rank as usize || !matches!(t.data(), TensorData::F64(_)) {
            return Ok(());
        }
        inputs.push(t.clone());
    }
    let out_addr = {
        let Value::Tensor(t) = &vals[plan.out.slot as usize] else {
            return Ok(());
        };
        if t.rank() != plan.out.rank as usize || !matches!(t.data(), TensorData::F64(_)) {
            return Ok(());
        }
        let Some(addr) = resolve_addr(
            plan.out.row.as_ref(),
            &plan.out.col,
            t.shape(),
            ints,
            iv0,
            m,
            plan.out.relaxed,
        ) else {
            return Ok(());
        };
        addr
    };
    // Resolve node operands; loads also validate their bounds here.
    let mut tags: Vec<Tag> = Vec::with_capacity(plan.nodes.len());
    let mut steps: Vec<Step> = Vec::new();
    let mut n_bufs = 0usize;
    for node in &plan.nodes {
        let tag = match node {
            VecNode::Const(c) => Tag::Sc(*c),
            VecNode::Reg(r) => Tag::Sc(flts[*r as usize]),
            VecNode::Load {
                tensor,
                row,
                col,
                relaxed,
            } => {
                let t = &inputs[*tensor as usize];
                let Some(addr) = resolve_addr(row.as_ref(), col, t.shape(), ints, iv0, m, *relaxed)
                else {
                    return Ok(());
                };
                if addr.stride == 0 {
                    let TensorData::F64(data) = t.data() else {
                        unreachable!()
                    };
                    Tag::Sc(data[addr.off0 as usize])
                } else if addr.stride == 1 {
                    Tag::In {
                        input: *tensor as usize,
                        off0: addr.off0 as usize,
                    }
                } else {
                    let buf = n_bufs;
                    n_bufs += 1;
                    steps.push(Step::Gather {
                        input: *tensor as usize,
                        addr,
                        buf,
                    });
                    Tag::Buf(buf)
                }
            }
            VecNode::Bin { op, l, r } => {
                let (lt, rt) = (tags[*l as usize], tags[*r as usize]);
                if let (Tag::Sc(x), Tag::Sc(y)) = (lt, rt) {
                    Tag::Sc(op.apply(x, y))
                } else {
                    let buf = n_bufs;
                    n_bufs += 1;
                    steps.push(Step::Bin {
                        op: *op,
                        l: lt,
                        r: rt,
                        buf,
                    });
                    Tag::Buf(buf)
                }
            }
        };
        tags.push(tag);
    }
    let root = tags[plan.root as usize];
    // Commit: one data_mut on the output (COW-exact, see above), then
    // evaluate chunks. Chunk boundaries are a function of the length
    // only, so thread counts never change results.
    let m_us = m as usize;
    let input_slices: Vec<&[f64]> = inputs
        .iter()
        .map(|t| match t.data() {
            TensorData::F64(v) => &v[..],
            _ => unreachable!(),
        })
        .collect();
    let Value::Tensor(out_t) = &mut vals[plan.out.slot as usize] else {
        unreachable!()
    };
    let TensorData::F64(out_data) = out_t.data_mut() else {
        unreachable!()
    };
    let n_chunks = cfg.chunk_count(m_us);
    if out_addr.stride == 1 && cfg.threads() > 1 && n_chunks > 1 {
        let start = out_addr.off0 as usize;
        let run = &mut out_data[start..start + m_us];
        parallel::for_each_row_block(
            cfg.threads(),
            n_chunks,
            m_us,
            1,
            run,
            &|_, lo, hi, stripe| {
                if abort.is_triggered() {
                    return;
                }
                let mut scratch = vec![vec![0.0f64; BLOCK]; n_bufs];
                let mut s = lo;
                while s < hi {
                    let len = (hi - s).min(BLOCK);
                    eval_block(
                        &steps,
                        root,
                        &input_slices,
                        &mut scratch,
                        s,
                        len,
                        &mut stripe[s - lo..s - lo + len],
                    );
                    s += len;
                }
            },
        );
        abort.check()?;
    } else {
        let mut scratch = vec![vec![0.0f64; BLOCK]; n_bufs];
        let mut block = vec![0.0f64; BLOCK];
        for ci in 0..n_chunks {
            abort.check()?;
            let (lo, hi) = parallel::chunk_bounds(m_us, n_chunks, ci);
            let mut s = lo;
            while s < hi {
                let len = (hi - s).min(BLOCK);
                if out_addr.stride == 1 {
                    let start = (out_addr.off0 + s as i128) as usize;
                    eval_block(
                        &steps,
                        root,
                        &input_slices,
                        &mut scratch,
                        s,
                        len,
                        &mut out_data[start..start + len],
                    );
                } else {
                    eval_block(
                        &steps,
                        root,
                        &input_slices,
                        &mut scratch,
                        s,
                        len,
                        &mut block[..len],
                    );
                    for (t, &v) in block[..len].iter().enumerate() {
                        out_data[(out_addr.off0 + (s + t) as i128 * out_addr.stride) as usize] = v;
                    }
                }
                s += len;
            }
        }
    }
    // The batch consumed iterations 0..m: advance the induction variable
    // (endpoint-checked above) and record the skipped refcount traffic.
    ints[plan.iv as usize] = (iv0 + m) as i64;
    memory::record_acquires(plan.acquires * m as u64);
    memory::record_releases(plan.releases * m as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{
        ArgVal, Bank, ElemKind, FltOp, IntOp, Machine, NativeFunc, NativeProgram, RegOp, Slot,
    };

    fn ten(v: Vec<f64>) -> ArgVal {
        let n = v.len();
        ArgVal::V(Value::Tensor(
            Tensor::with_shape(vec![n], TensorData::F64(v)).unwrap(),
        ))
    }

    fn mat(rows: usize, cols: usize, v: Vec<f64>) -> ArgVal {
        ArgVal::V(Value::Tensor(
            Tensor::with_shape(vec![rows, cols], TensorData::F64(v)).unwrap(),
        ))
    }

    fn cfg(threads: usize) -> ParallelConfig {
        ParallelConfig {
            num_threads: threads,
            min_elems_per_chunk: 16,
            simd: true,
        }
    }

    fn run(prog: &NativeProgram, args: Vec<ArgVal>) -> Result<ArgVal, RuntimeError> {
        Machine::standalone().call(prog, 0, args)
    }

    /// `out[j] = a[j]*2 + b[j]` for `j = 1..=n`, with a header acquire and
    /// a body release (the shape `lower` emits for managed loop values).
    fn saxpy() -> NativeFunc {
        NativeFunc {
            name: "Main".into(),
            code: vec![
                RegOp::LdcI { d: 0, v: 1 },
                RegOp::Acquire { v: 0 },
                RegOp::AbortBrCmpISel {
                    op: IntOp::Le,
                    a: 0,
                    b: 1,
                    d: 2,
                    pc_false: 10,
                    pc_true: 3,
                },
                RegOp::TenPart1 {
                    kind: ElemKind::F64,
                    d: 0,
                    t: 0,
                    i: 0,
                },
                RegOp::FltBinImm {
                    op: FltOp::Mul,
                    d: 1,
                    a: 0,
                    imm: 2.0,
                },
                RegOp::TenPart1 {
                    kind: ElemKind::F64,
                    d: 2,
                    t: 1,
                    i: 0,
                },
                RegOp::FltBin {
                    op: FltOp::Add,
                    d: 3,
                    a: 1,
                    b: 2,
                },
                RegOp::TenSet1 {
                    kind: ElemKind::F64,
                    t: 2,
                    i: 0,
                    v: 3,
                },
                RegOp::Release { v: 0 },
                RegOp::IntBinImmJmp {
                    op: IntOp::Add,
                    d: 0,
                    a: 0,
                    imm: 1,
                    pc: 1,
                },
                RegOp::Release { v: 0 },
                RegOp::Ret {
                    s: Slot::new(Bank::V, 2),
                },
            ],
            n_int: 3,
            n_flt: 4,
            n_cpx: 0,
            n_val: 3,
            params: vec![
                Slot::new(Bank::V, 0),
                Slot::new(Bank::V, 1),
                Slot::new(Bank::V, 2),
                Slot::new(Bank::I, 1),
            ],
            elision: Default::default(),
        }
    }

    fn saxpy_args(n: usize, bound: i64) -> Vec<ArgVal> {
        let a: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 3.0).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        vec![ten(a), ten(b), ten(vec![0.0; n]), ArgVal::I(bound)]
    }

    #[test]
    fn saxpy_vectorizes_and_matches_scalar_exactly() {
        let scalar = saxpy();
        let mut vectored = scalar.clone();
        assert_eq!(vectorize_function(&mut vectored), 1);
        assert!(matches!(vectored.code[1], RegOp::VecLoop { .. }));
        // The latch must re-enter at the scalar header (after the VecLoop).
        assert!(matches!(
            vectored.code[10],
            RegOp::IntBinImmJmp { pc: 2, .. }
        ));
        let n = 100;
        let base = NativeProgram {
            parallel: None,
            funcs: vec![scalar],
        };
        let want = run(&base, saxpy_args(n, n as i64)).unwrap();
        for threads in [1, 2, 8] {
            let prog = NativeProgram {
                parallel: Some(cfg(threads)),
                funcs: vec![vectored.clone()],
            };
            let got = run(&prog, saxpy_args(n, n as i64)).unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
        // Inert without a ParallelConfig.
        let prog = NativeProgram {
            parallel: None,
            funcs: vec![vectored],
        };
        assert_eq!(run(&prog, saxpy_args(n, n as i64)).unwrap(), want);
    }

    /// `saxpy` with every check discharged by the interval analysis: the
    /// loads/stores are the unchecked variants and the latch increment is
    /// `AddU` (as `lower` emits when the range facts prove the loop).
    fn saxpy_unchecked() -> NativeFunc {
        let mut f = saxpy();
        for op in &mut f.code {
            match *op {
                RegOp::TenPart1 { kind, d, t, i } => *op = RegOp::TenPart1U { kind, d, t, i },
                RegOp::TenSet1 { kind, t, i, v } => *op = RegOp::TenSet1U { kind, t, i, v },
                RegOp::IntBinImmJmp {
                    op: IntOp::Add,
                    d,
                    a,
                    imm,
                    pc,
                } => {
                    *op = RegOp::IntBinImmJmp {
                        op: IntOp::AddU,
                        d,
                        a,
                        imm,
                        pc,
                    }
                }
                _ => {}
            }
        }
        f
    }

    #[test]
    fn unchecked_loop_vectorizes_relaxed_with_prechecked_tests() {
        let mut vectored = saxpy_unchecked();
        assert_eq!(vectorize_function(&mut vectored), 1);
        let RegOp::VecLoop { plan } = &vectored.code[1] else {
            panic!("expected a VecLoop, got {:?}", vectored.code[1]);
        };
        // Two relaxed loads, a relaxed store, and the AddU latch: four
        // batch-entry tests discharged by the proofs, none left behind.
        assert_eq!(plan.prechecked, 4, "{plan:?}");
        assert!(plan.out.relaxed);
        assert!(plan.int_checks.is_empty(), "{:?}", plan.int_checks);

        // Same results as the fully checked scalar loop, at every width.
        let n = 100;
        let want = run(
            &NativeProgram {
                parallel: None,
                funcs: vec![saxpy()],
            },
            saxpy_args(n, n as i64),
        )
        .unwrap();
        for threads in [1, 2, 8] {
            let got = run(
                &NativeProgram {
                    parallel: Some(cfg(threads)),
                    funcs: vec![vectored.clone()],
                },
                saxpy_args(n, n as i64),
            )
            .unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn refcount_accounting_matches_scalar() {
        let scalar = saxpy();
        let mut vectored = scalar.clone();
        vectorize_function(&mut vectored);
        let n = 64;
        memory::reset_stats();
        run(
            &NativeProgram {
                parallel: None,
                funcs: vec![scalar],
            },
            saxpy_args(n, n as i64),
        )
        .unwrap();
        let seq = memory::stats();
        memory::reset_stats();
        run(
            &NativeProgram {
                parallel: Some(cfg(1)),
                funcs: vec![vectored],
            },
            saxpy_args(n, n as i64),
        )
        .unwrap();
        let vec_stats = memory::stats();
        assert_eq!(seq.acquires, vec_stats.acquires);
        assert_eq!(seq.releases, vec_stats.releases);
        assert!(vec_stats.balanced(), "{vec_stats:?}");
    }

    #[test]
    fn short_trip_counts_fall_back_and_match() {
        let scalar = saxpy();
        let mut vectored = scalar.clone();
        vectorize_function(&mut vectored);
        for n in [1usize, 2, 5, 8, 9] {
            let want = run(
                &NativeProgram {
                    parallel: None,
                    funcs: vec![scalar.clone()],
                },
                saxpy_args(n, n as i64),
            )
            .unwrap();
            let got = run(
                &NativeProgram {
                    parallel: Some(cfg(2)),
                    funcs: vec![vectored.clone()],
                },
                saxpy_args(n, n as i64),
            )
            .unwrap();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn out_of_bounds_errors_are_identical() {
        let scalar = saxpy();
        let mut vectored = scalar.clone();
        vectorize_function(&mut vectored);
        let n = 20;
        let want = run(
            &NativeProgram {
                parallel: None,
                funcs: vec![scalar],
            },
            saxpy_args(n, n as i64 + 5),
        )
        .unwrap_err();
        let got = run(
            &NativeProgram {
                parallel: Some(cfg(2)),
                funcs: vec![vectored],
            },
            saxpy_args(n, n as i64 + 5),
        )
        .unwrap_err();
        assert_eq!(got, want);
    }

    /// `out[j] = a[j] / d` with a loop-invariant register divisor: the
    /// batch requires a nonzero divisor; zero falls back to the scalar
    /// loop's DivideByZero.
    fn divloop() -> NativeFunc {
        NativeFunc {
            name: "Main".into(),
            code: vec![
                RegOp::LdcI { d: 0, v: 1 },
                RegOp::AbortBrCmpISel {
                    op: IntOp::Le,
                    a: 0,
                    b: 1,
                    d: 2,
                    pc_false: 6,
                    pc_true: 2,
                },
                RegOp::TenPart1 {
                    kind: ElemKind::F64,
                    d: 0,
                    t: 0,
                    i: 0,
                },
                RegOp::FltBin {
                    op: FltOp::Div,
                    d: 1,
                    a: 0,
                    b: 2,
                },
                RegOp::TenSet1 {
                    kind: ElemKind::F64,
                    t: 1,
                    i: 0,
                    v: 1,
                },
                RegOp::IntBinImmJmp {
                    op: IntOp::Add,
                    d: 0,
                    a: 0,
                    imm: 1,
                    pc: 1,
                },
                RegOp::Ret {
                    s: Slot::new(Bank::V, 1),
                },
            ],
            n_int: 3,
            n_flt: 3,
            n_cpx: 0,
            n_val: 2,
            params: vec![
                Slot::new(Bank::V, 0),
                Slot::new(Bank::V, 1),
                Slot::new(Bank::I, 1),
                Slot::new(Bank::F, 2),
            ],
            elision: Default::default(),
        }
    }

    #[test]
    fn invariant_divisor_is_runtime_checked() {
        let scalar = divloop();
        let mut vectored = scalar.clone();
        assert_eq!(vectorize_function(&mut vectored), 1);
        let n = 40usize;
        let args = |d: f64| {
            vec![
                ten((0..n).map(|i| i as f64 + 1.0).collect()),
                ten(vec![0.0; n]),
                ArgVal::I(n as i64),
                ArgVal::F(d),
            ]
        };
        let base = NativeProgram {
            parallel: None,
            funcs: vec![scalar],
        };
        let prog = NativeProgram {
            parallel: Some(cfg(2)),
            funcs: vec![vectored],
        };
        assert_eq!(
            run(&prog, args(2.0)).unwrap(),
            run(&base, args(2.0)).unwrap()
        );
        assert_eq!(
            run(&prog, args(0.0)).unwrap_err(),
            run(&base, args(0.0)).unwrap_err()
        );
    }

    /// Column walk over a matrix: `out[j][2] = in[j][2] * 0.5` — a strided
    /// (gather/scatter) batch, the vertical-blur shape.
    fn column_walk() -> NativeFunc {
        NativeFunc {
            name: "Main".into(),
            code: vec![
                RegOp::LdcI { d: 0, v: 1 },
                RegOp::AbortBrCmpISel {
                    op: IntOp::Le,
                    a: 0,
                    b: 1,
                    d: 2,
                    pc_false: 7,
                    pc_true: 2,
                },
                RegOp::LdcI { d: 3, v: 2 },
                RegOp::TenPart2 {
                    kind: ElemKind::F64,
                    d: 0,
                    t: 0,
                    i: 0,
                    j: 3,
                },
                RegOp::FltBinImm {
                    op: FltOp::Mul,
                    d: 1,
                    a: 0,
                    imm: 0.5,
                },
                RegOp::TenSet2 {
                    kind: ElemKind::F64,
                    t: 1,
                    i: 0,
                    j: 3,
                    v: 1,
                },
                RegOp::IntBinImmJmp {
                    op: IntOp::Add,
                    d: 0,
                    a: 0,
                    imm: 1,
                    pc: 1,
                },
                RegOp::Ret {
                    s: Slot::new(Bank::V, 1),
                },
            ],
            n_int: 4,
            n_flt: 2,
            n_cpx: 0,
            n_val: 2,
            params: vec![
                Slot::new(Bank::V, 0),
                Slot::new(Bank::V, 1),
                Slot::new(Bank::I, 1),
            ],
            elision: Default::default(),
        }
    }

    #[test]
    fn strided_column_walk_matches_scalar() {
        let scalar = column_walk();
        let mut vectored = scalar.clone();
        assert_eq!(vectorize_function(&mut vectored), 1);
        let rows = 64usize;
        let cols = 3usize;
        let args = || {
            let data: Vec<f64> = (0..rows * cols).map(|i| i as f64 * 0.125).collect();
            vec![
                mat(rows, cols, data),
                mat(rows, cols, vec![0.0; rows * cols]),
                ArgVal::I(rows as i64),
            ]
        };
        let want = run(
            &NativeProgram {
                parallel: None,
                funcs: vec![scalar],
            },
            args(),
        )
        .unwrap();
        let got = run(
            &NativeProgram {
                parallel: Some(cfg(4)),
                funcs: vec![vectored],
            },
            args(),
        )
        .unwrap();
        assert_eq!(got, want);
    }

    /// `out[j] = 2*a[j]; s = s + a[j]` for `j = 1..=n`, returning `s`:
    /// the accumulator is loop-carried state that never reaches the
    /// store, the shape from the loop-carried-scalar soundness rule.
    fn accum() -> NativeFunc {
        NativeFunc {
            name: "Main".into(),
            code: vec![
                RegOp::LdcI { d: 0, v: 1 },
                RegOp::AbortBrCmpISel {
                    op: IntOp::Le,
                    a: 0,
                    b: 1,
                    d: 2,
                    pc_false: 7,
                    pc_true: 2,
                },
                RegOp::TenPart1 {
                    kind: ElemKind::F64,
                    d: 0,
                    t: 0,
                    i: 0,
                },
                RegOp::FltBinImm {
                    op: FltOp::Mul,
                    d: 1,
                    a: 0,
                    imm: 2.0,
                },
                RegOp::TenSet1 {
                    kind: ElemKind::F64,
                    t: 1,
                    i: 0,
                    v: 1,
                },
                RegOp::FltBin {
                    op: FltOp::Add,
                    d: 3,
                    a: 3,
                    b: 0,
                },
                RegOp::IntBinImmJmp {
                    op: IntOp::Add,
                    d: 0,
                    a: 0,
                    imm: 1,
                    pc: 1,
                },
                RegOp::Ret {
                    s: Slot::new(Bank::F, 3),
                },
            ],
            n_int: 3,
            n_flt: 4,
            n_cpx: 0,
            n_val: 2,
            params: vec![
                Slot::new(Bank::V, 0),
                Slot::new(Bank::V, 1),
                Slot::new(Bank::I, 1),
                Slot::new(Bank::F, 3),
            ],
            elision: Default::default(),
        }
    }

    #[test]
    fn loop_carried_accumulator_survives_whole_loop() {
        let scalar = accum();
        let mut vectored = scalar.clone();
        // The loop must be refused: batching it would advance only the
        // induction variable and leave `s` holding entry + tail update.
        assert_eq!(vectorize_function(&mut vectored), 0);
        let n = 100usize;
        let args = || {
            vec![
                ten((0..n).map(|i| i as f64 * 0.5 - 7.0).collect()),
                ten(vec![0.0; n]),
                ArgVal::I(n as i64),
                ArgVal::F(1.25),
            ]
        };
        let want = run(
            &NativeProgram {
                parallel: None,
                funcs: vec![scalar],
            },
            args(),
        )
        .unwrap();
        let ArgVal::F(s) = want else {
            panic!("expected a float result");
        };
        let full: f64 = 1.25 + (0..n).map(|i| i as f64 * 0.5 - 7.0).sum::<f64>();
        assert_eq!(s, full, "scalar baseline must be the full sum");
        for threads in [1, 2, 8] {
            let got = run(
                &NativeProgram {
                    parallel: Some(cfg(threads)),
                    funcs: vec![vectored.clone()],
                },
                args(),
            )
            .unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn unsafe_loop_shapes_are_refused() {
        // Error-capable integer op in the body.
        let mut f = saxpy();
        f.code.insert(
            3,
            RegOp::IntBin {
                op: IntOp::Quot,
                d: 2,
                a: 0,
                b: 1,
            },
        );
        // Fix up targets crossing the insertion.
        if let RegOp::AbortBrCmpISel {
            pc_false, pc_true, ..
        } = &mut f.code[2]
        {
            *pc_false = 11;
            *pc_true = 3;
        }
        if let RegOp::IntBinImmJmp { pc, .. } = &mut f.code[10] {
            *pc = 1;
        }
        assert_eq!(vectorize_function(&mut f), 0);

        // Load from the output tensor (loop-carried recurrence).
        let mut f = saxpy();
        if let RegOp::TenPart1 { t, .. } = &mut f.code[5] {
            *t = 2;
        }
        assert_eq!(vectorize_function(&mut f), 0);

        // Float accumulator: f3 = f3 + f1 reads its own previous value.
        let mut f = saxpy();
        f.code[6] = RegOp::FltBin {
            op: FltOp::Add,
            d: 3,
            a: 3,
            b: 1,
        };
        assert_eq!(vectorize_function(&mut f), 0);

        // Non-affine index: j*j.
        let mut f = saxpy();
        f.code[3] = RegOp::IntBin {
            op: IntOp::Mul,
            d: 2,
            a: 0,
            b: 0,
        };
        if let RegOp::TenSet1 { i, .. } = &mut f.code[7] {
            *i = 2;
        }
        assert_eq!(vectorize_function(&mut f), 0);

        // Float accumulator that never feeds the store: s = s + x[[j]]
        // next to out[[j]] = 2 x[[j]]. The sum is loop-carried state the
        // batch would skip, so the loop must stay scalar even though the
        // store's dataflow alone looks clean.
        let mut f = saxpy();
        f.n_flt = 5;
        f.code.insert(
            4,
            RegOp::FltBin {
                op: FltOp::Add,
                d: 4,
                a: 4,
                b: 0,
            },
        );
        if let RegOp::AbortBrCmpISel { pc_false, .. } = &mut f.code[2] {
            *pc_false = 11;
        }
        assert_eq!(vectorize_function(&mut f), 0);

        // Same with an integer register through a total op the symbolic
        // executor does not model: hi = Max(hi, j) is loop-carried too.
        let mut f = saxpy();
        f.n_int = 4;
        f.code.insert(
            4,
            RegOp::IntBin {
                op: IntOp::Max,
                d: 3,
                a: 3,
                b: 0,
            },
        );
        if let RegOp::AbortBrCmpISel { pc_false, .. } = &mut f.code[2] {
            *pc_false = 11;
        }
        assert_eq!(vectorize_function(&mut f), 0);

        // Simd ablation flag off: plan exists but the batch never runs.
        let scalar = saxpy();
        let mut vectored = scalar.clone();
        assert_eq!(vectorize_function(&mut vectored), 1);
        let n = 50;
        let want = run(
            &NativeProgram {
                parallel: None,
                funcs: vec![scalar],
            },
            saxpy_args(n, n as i64),
        )
        .unwrap();
        let got = run(
            &NativeProgram {
                parallel: Some(ParallelConfig {
                    simd: false,
                    ..cfg(2)
                }),
                funcs: vec![vectored],
            },
            saxpy_args(n, n as i64),
        )
        .unwrap();
        assert_eq!(got, want);
    }
}
