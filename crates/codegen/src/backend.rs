//! The backend plug-in API (F4): "Multiple backends are supported by the
//! compiler and an API for users to plugin their own backend."

use std::collections::HashMap;
use std::sync::Arc;
use wolfram_ir::ProgramModule;

/// A code-generation backend: consumes a fully-typed TWIR program module
/// and produces a textual artifact (source, listing, serialized form).
///
/// The native backend produces an executable program instead and has its
/// own entry point ([`crate::lower_program`]); textual backends share this
/// trait.
pub trait Backend {
    /// The backend's registered name (`"C"`, `"Assembler"`, `"WVM"`, ...).
    fn name(&self) -> &str;

    /// Generates the artifact.
    ///
    /// # Errors
    ///
    /// Returns a message when the module uses features the backend cannot
    /// express.
    fn generate(&self, module: &ProgramModule) -> Result<String, String>;
}

/// A registry of textual backends, pre-populated with the built-in ones
/// and extensible by users (§4.6).
pub struct BackendRegistry {
    backends: HashMap<String, Arc<dyn Backend>>,
}

impl Default for BackendRegistry {
    fn default() -> Self {
        let mut r = BackendRegistry {
            backends: HashMap::new(),
        };
        r.register(Arc::new(crate::c_source::CBackend));
        r.register(Arc::new(crate::asm::AsmBackend::default()));
        r.register(Arc::new(crate::wvm::WvmBackend));
        r.register(Arc::new(IrBackend));
        r
    }
}

impl BackendRegistry {
    /// The built-in registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a backend under its name.
    pub fn register(&mut self, backend: Arc<dyn Backend>) {
        self.backends.insert(backend.name().to_owned(), backend);
    }

    /// Looks up a backend.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Backend>> {
        self.backends.get(name).cloned()
    }

    /// Registered backend names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.backends.keys().cloned().collect();
        names.sort();
        names
    }
}

/// The trivial backend exporting the textual TWIR itself.
struct IrBackend;

impl Backend for IrBackend {
    fn name(&self) -> &str {
        "IR"
    }

    fn generate(&self, module: &ProgramModule) -> Result<String, String> {
        Ok(module.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_backends_registered() {
        let r = BackendRegistry::new();
        assert_eq!(r.names(), ["Assembler", "C", "IR", "WVM"]);
        assert!(r.get("C").is_some());
        assert!(r.get("CUDA").is_none());
    }

    #[test]
    fn user_backend_plugs_in() {
        struct Null;
        impl Backend for Null {
            fn name(&self) -> &str {
                "Null"
            }
            fn generate(&self, _m: &ProgramModule) -> Result<String, String> {
                Ok(String::new())
            }
        }
        let mut r = BackendRegistry::new();
        r.register(Arc::new(Null));
        assert!(r.get("Null").is_some());
        assert_eq!(r.names().len(), 5);
    }
}
