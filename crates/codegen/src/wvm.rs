//! The WVM backend (F4): compiles TWIR back onto the *legacy* Wolfram
//! Virtual Machine instruction set, demonstrating backend parity — the new
//! compiler can target the old substrate (as the production compiler keeps
//! a WVM backend).
//!
//! Only the legacy machine's datatypes are expressible; TWIR using strings,
//! expressions, or closures is rejected, mirroring reality.

use crate::backend::Backend;
use std::fmt::Write as _;
use wolfram_bytecode::instr::{BinOp, CmpOp, Op, UnOp};
use wolfram_ir::module::{Callee, Constant, Function, Instr, Operand, VarId};
use wolfram_ir::ProgramModule;
use wolfram_runtime::Value;

/// The WVM textual backend (renders the compiled bytecode listing).
pub struct WvmBackend;

impl Backend for WvmBackend {
    fn name(&self) -> &str {
        "WVM"
    }

    fn generate(&self, module: &ProgramModule) -> Result<String, String> {
        let ops = compile_to_wvm(module.main())?;
        let mut out = String::new();
        let _ = writeln!(out, "(* WVM bytecode for {} *)", module.main().name);
        for (pc, op) in ops.iter().enumerate() {
            let _ = writeln!(out, "{pc:4} | {op:?}");
        }
        Ok(out)
    }
}

/// Compiles a (straight-line or branching, scalar/tensor) TWIR function to
/// legacy VM ops.
///
/// # Errors
///
/// Returns a message for features the legacy machine cannot represent
/// (strings, expressions, closures, calls).
pub fn compile_to_wvm(f: &Function) -> Result<Vec<Op>, String> {
    // Variable -> register mapping (the legacy machine is also
    // register-based; registers hold boxed values).
    let reg = |v: VarId| -> Result<u16, String> {
        u16::try_from(v.0).map_err(|_| "too many registers for the WVM".to_owned())
    };
    let mut ops: Vec<Op> = Vec::new();
    // Block -> first pc mapping for jump patching.
    let mut block_pc = vec![0usize; f.blocks.len()];
    let mut patches: Vec<(usize, u32)> = Vec::new();
    let mut scratch = f.next_var;

    for (bix, block) in f.blocks.iter().enumerate() {
        block_pc[bix] = ops.len();
        for i in &block.instrs {
            match i {
                Instr::LoadArgument { .. } => {} // args preloaded into registers
                Instr::LoadConst { dst, value } => {
                    ops.push(Op::LoadConst {
                        d: reg(*dst)?,
                        c: const_value(value)?,
                    });
                }
                Instr::Copy { dst, src } => {
                    ops.push(Op::Move {
                        d: reg(*dst)?,
                        s: reg(*src)?,
                    });
                }
                Instr::Phi { .. } => {
                    return Err("the WVM backend requires phi-free (structured) code".into())
                }
                Instr::AbortCheck => {} // the legacy VM checks implicitly
                Instr::MemoryAcquire { .. } | Instr::MemoryRelease { .. } => {}
                Instr::Call { dst, callee, args } => {
                    let d = reg(*dst)?;
                    let mut regs = Vec::with_capacity(args.len());
                    for a in args {
                        regs.push(match a {
                            Operand::Var(v) => reg(*v)?,
                            Operand::Const(c) => {
                                let r = u16::try_from(scratch)
                                    .map_err(|_| "register overflow".to_owned())?;
                                scratch += 1;
                                ops.push(Op::LoadConst {
                                    d: r,
                                    c: const_value(c)?,
                                });
                                r
                            }
                        });
                    }
                    emit_call(&mut ops, d, callee, &regs)?;
                }
                Instr::MakeClosure { .. } => {
                    return Err("the WVM has no function values (L1)".into())
                }
                Instr::Jump { target } => {
                    patches.push((ops.len(), target.0));
                    ops.push(Op::Jump { pc: usize::MAX });
                }
                Instr::Branch {
                    cond,
                    then_block,
                    else_block,
                } => {
                    let c = match cond {
                        Operand::Var(v) => reg(*v)?,
                        Operand::Const(_) => return Err("constant branch in WVM".into()),
                    };
                    patches.push((ops.len(), else_block.0));
                    ops.push(Op::JumpIfFalse { c, pc: usize::MAX });
                    patches.push((ops.len(), then_block.0));
                    ops.push(Op::Jump { pc: usize::MAX });
                }
                Instr::Return { value } => match value {
                    Operand::Var(v) => ops.push(Op::Return { s: reg(*v)? }),
                    Operand::Const(c) => {
                        let r =
                            u16::try_from(scratch).map_err(|_| "register overflow".to_owned())?;
                        scratch += 1;
                        ops.push(Op::LoadConst {
                            d: r,
                            c: const_value(c)?,
                        });
                        ops.push(Op::Return { s: r });
                    }
                },
            }
        }
    }
    for (at, block) in patches {
        let pc = block_pc[block as usize];
        match &mut ops[at] {
            Op::Jump { pc: t } | Op::JumpIfFalse { pc: t, .. } => *t = pc,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }
    Ok(ops)
}

fn const_value(c: &Constant) -> Result<Value, String> {
    Ok(match c {
        Constant::I64(v) => Value::I64(*v),
        Constant::F64(v) => Value::F64(*v),
        Constant::Bool(b) => Value::Bool(*b),
        Constant::Complex(re, im) => Value::Complex(*re, *im),
        Constant::Null => Value::Null,
        Constant::I64Array(a) => Value::Tensor(wolfram_runtime::Tensor::from_i64(a.to_vec())),
        Constant::F64Array(a) => Value::Tensor(wolfram_runtime::Tensor::from_f64(a.to_vec())),
        Constant::Str(_) | Constant::Expr(_) => {
            return Err("the WVM has no string/expression datatypes (L1)".into())
        }
    })
}

fn emit_call(ops: &mut Vec<Op>, d: u16, callee: &Callee, regs: &[u16]) -> Result<(), String> {
    let Callee::Primitive(name) = callee else {
        return Err(format!("the WVM cannot call {}", callee.name()));
    };
    let base = name.split('$').next().unwrap_or(name);
    let bin = |op: BinOp| -> Result<Op, String> {
        Ok(Op::Bin {
            op,
            d,
            a: regs[0],
            b: regs[1],
        })
    };
    let un = |op: UnOp| -> Result<Op, String> { Ok(Op::Un { op, d, s: regs[0] }) };
    let cmp = |op: CmpOp| -> Result<Op, String> {
        Ok(Op::Cmp {
            op,
            d,
            a: regs[0],
            b: regs[1],
        })
    };
    let op = match base {
        "checked_binary_plus" => bin(BinOp::Add)?,
        "checked_binary_subtract" => bin(BinOp::Sub)?,
        "checked_binary_times" => bin(BinOp::Mul)?,
        "checked_binary_divide" => bin(BinOp::Div)?,
        "checked_binary_power" => bin(BinOp::Pow)?,
        "checked_binary_mod" => bin(BinOp::Mod)?,
        "checked_binary_quotient" => bin(BinOp::Quot)?,
        "binary_min" => bin(BinOp::Min)?,
        "binary_max" => bin(BinOp::Max)?,
        "checked_unary_minus" => un(UnOp::Neg)?,
        "checked_unary_abs" => un(UnOp::Abs)?,
        "unary_sqrt" => un(UnOp::Sqrt)?,
        "unary_sin" => un(UnOp::Sin)?,
        "unary_cos" => un(UnOp::Cos)?,
        "unary_tan" => un(UnOp::Tan)?,
        "unary_exp" => un(UnOp::Exp)?,
        "unary_log" => un(UnOp::Log)?,
        "unary_floor" => un(UnOp::Floor)?,
        "unary_ceiling" => un(UnOp::Ceiling)?,
        "unary_round" => un(UnOp::Round)?,
        "unary_not" => un(UnOp::Not)?,
        "complex_re" => un(UnOp::Re)?,
        "complex_im" => un(UnOp::Im)?,
        "complex_construct" => Op::ComplexMake {
            d,
            re: regs[0],
            im: regs[1],
        },
        "complex_abs" => un(UnOp::Abs)?,
        "compare_less" => cmp(CmpOp::Lt)?,
        "compare_less_equal" => cmp(CmpOp::Le)?,
        "compare_greater" => cmp(CmpOp::Gt)?,
        "compare_greater_equal" => cmp(CmpOp::Ge)?,
        "compare_equal" => cmp(CmpOp::Eq)?,
        "compare_unequal" => cmp(CmpOp::Ne)?,
        "tensor_length" => Op::Length { d, s: regs[0] },
        "tensor_part_1" => Op::Part1 {
            d,
            t: regs[0],
            i: regs[1],
        },
        "tensor_part_2" => Op::Part2 {
            d,
            t: regs[0],
            i: regs[1],
            j: regs[2],
        },
        "dot_vector" | "dot_matrix" => Op::Dot {
            d,
            a: regs[0],
            b: regs[1],
        },
        "tensor_fill_1" => Op::ConstArray {
            d,
            c: regs[0],
            n1: regs[1],
            n2: None,
        },
        "tensor_fill_2" => Op::ConstArray {
            d,
            c: regs[0],
            n1: regs[1],
            n2: Some(regs[2]),
        },
        other => return Err(format!("the WVM has no instruction for `{other}`")),
    };
    ops.push(op);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wolfram_ir::FunctionBuilder;
    use wolfram_runtime::AbortSignal;
    use wolfram_types::Type;

    #[test]
    fn straight_line_twir_runs_on_legacy_vm() {
        let mut b = FunctionBuilder::new("Main", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        let sq = b.call(
            Callee::Primitive(Arc::from("checked_binary_times$Integer64$Integer64")),
            vec![arg.into(), arg.into()],
        );
        b.ret(sq);
        let mut f = b.finish();
        f.var_types.insert(arg, Type::integer64());
        f.var_types.insert(sq, Type::integer64());
        f.return_type = Some(Type::integer64());
        let ops = compile_to_wvm(&f).unwrap();
        let out = wolfram_bytecode::vm::execute(
            &ops,
            (f.next_var + 4) as usize,
            &[Value::I64(9)],
            &AbortSignal::new(),
            None,
        )
        .unwrap();
        assert_eq!(out, Value::I64(81));
    }

    #[test]
    fn strings_rejected() {
        let mut b = FunctionBuilder::new("Main", 0);
        let s = b.func.fresh_var();
        b.push(Instr::LoadConst {
            dst: s,
            value: Constant::Str(Arc::from("hi")),
        });
        b.ret(s);
        let mut f = b.finish();
        f.var_types.insert(s, Type::string());
        f.return_type = Some(Type::string());
        assert!(compile_to_wvm(&f).is_err());
    }
}
