//! Superinstruction fusion: a post-register-allocation peephole pass that
//! rewrites [`NativeFunc`] code into fused ops, halving (or better) the
//! dispatch count of the hot dyads measured by `reproduce -- opstats`.
//!
//! The pass is deliberately liveness-free: **every fused op performs all
//! the register writes of the sequence it replaces**, so the rewritten
//! program is bit-identical to the original on every input — the only
//! legality condition is that no jump may land *inside* a fused group.
//! That condition is enforced with a leader set (every jump target starts
//! a new group) and all branch targets are remapped through an
//! old-pc → new-pc table afterwards.
//!
//! The superinstruction set is chosen from the dyad/triad profiles of the
//! seven §6 benchmarks (`opstats`):
//!
//! - `While` headers: abort poll + compare + branch (+ unconditional
//!   jump), up to four ops in one dispatch
//!   (`abort.check -> int.bin -> brz -> jmp`, `flt.cmp -> brz`);
//! - loop latches: counter increment and phi edge-moves folded into the
//!   back-edge (`addi -> mov.i -> mov.i -> jmp` in PrimeQ/FNV1a,
//!   `mov.c -> jmp` in Mandelbrot);
//! - tensor element load feeding an ALU op (FNV1a's `part1 -> bitxor`,
//!   Histogram's `part1 -> addi`, Blur's `part2 -> mul/add`);
//! - take-move + element store (Histogram/Blur/QSort's in-place writes);
//! - ALU pairs: integer/float multiply-add chains (FNV1a's
//!   `muli -> modi`, Blur's stencil `mul -> add`);
//! - function-epilogue `release` pairs.
//!
//! Fused variants keep `RegOp` at its pre-fusion 48 bytes by using `u32`
//! register/pc operands and `i32` immediates (fusion is refused, not
//! truncated, when a value does not fit).

use crate::machine::{ElemKind, NativeFunc, NativeProgram, RegOp};

/// Rewrites every function in the program. Returns the total number of
/// instructions eliminated by fusion.
pub fn fuse_program(p: &mut NativeProgram) -> usize {
    p.funcs.iter_mut().map(fuse_function).sum()
}

/// Rewrites one function's code with superinstructions, remapping all
/// branch targets. Returns the number of instructions eliminated.
pub fn fuse_function(f: &mut NativeFunc) -> usize {
    let code = std::mem::take(&mut f.code);
    let n = code.len();
    // Leaders: instructions some branch can transfer control to. A fused
    // group may not *contain* a leader beyond its first op, otherwise the
    // jump would land mid-superinstruction.
    let mut leader = vec![false; n + 1];
    for op in &code {
        for t in jump_targets(op) {
            leader[t] = true;
        }
    }
    let mut out: Vec<RegOp> = Vec::with_capacity(n);
    let mut new_pc = vec![0usize; n + 1];
    let mut i = 0;
    while i < n {
        new_pc[i] = out.len();
        let free2 = i + 1 < n && !leader[i + 1];
        let free3 = free2 && i + 2 < n && !leader[i + 2];
        let free4 = free3 && i + 3 < n && !leader[i + 3];
        if let Some((fused, len)) = match_group(&code, i, free2, free3, free4) {
            // Interior positions are unreachable (not leaders); map them
            // to the group start anyway so the table is total.
            for k in 1..len {
                new_pc[i + k] = out.len();
            }
            out.push(fused);
            i += len;
        } else {
            out.push(code[i].clone());
            i += 1;
        }
    }
    new_pc[n] = out.len();
    let removed = n - out.len();
    for op in &mut out {
        remap_targets(op, &new_pc);
    }
    f.code = out;
    removed
}

/// Branch targets of `op` (empty for straight-line ops).
pub(crate) fn jump_targets(op: &RegOp) -> Vec<usize> {
    match op {
        RegOp::Jmp { pc } | RegOp::Brz { pc, .. } => vec![*pc],
        RegOp::BrCmpIFalse { pc, .. }
        | RegOp::BrCmpFFalse { pc, .. }
        | RegOp::IntBinImmJmp { pc, .. }
        | RegOp::MovIJmp { pc, .. }
        | RegOp::Mov2IJmp { pc, .. }
        | RegOp::MovCJmp { pc, .. }
        | RegOp::IntBinImmMov2IJmp { pc, .. }
        | RegOp::FltCmpMovIJmp { pc, .. }
        | RegOp::AbortBrCmpIFalse { pc, .. } => vec![*pc as usize],
        RegOp::BrCmpISel {
            pc_false, pc_true, ..
        }
        | RegOp::BrCmpFSel {
            pc_false, pc_true, ..
        }
        | RegOp::AbortBrCmpISel {
            pc_false, pc_true, ..
        } => {
            vec![*pc_false as usize, *pc_true as usize]
        }
        RegOp::BrzJmp { pc_z, pc_nz, .. } => vec![*pc_z as usize, *pc_nz as usize],
        _ => Vec::new(),
    }
}

/// Rewrites `op`'s branch targets through the old-pc → new-pc table.
pub(crate) fn remap_targets(op: &mut RegOp, new_pc: &[usize]) {
    match op {
        RegOp::Jmp { pc } | RegOp::Brz { pc, .. } => *pc = new_pc[*pc],
        RegOp::BrCmpIFalse { pc, .. }
        | RegOp::BrCmpFFalse { pc, .. }
        | RegOp::IntBinImmJmp { pc, .. }
        | RegOp::MovIJmp { pc, .. }
        | RegOp::Mov2IJmp { pc, .. }
        | RegOp::MovCJmp { pc, .. }
        | RegOp::IntBinImmMov2IJmp { pc, .. }
        | RegOp::FltCmpMovIJmp { pc, .. }
        | RegOp::AbortBrCmpIFalse { pc, .. } => *pc = new_pc[*pc as usize] as u32,
        RegOp::BrCmpISel {
            pc_false, pc_true, ..
        }
        | RegOp::BrCmpFSel {
            pc_false, pc_true, ..
        }
        | RegOp::AbortBrCmpISel {
            pc_false, pc_true, ..
        } => {
            *pc_false = new_pc[*pc_false as usize] as u32;
            *pc_true = new_pc[*pc_true as usize] as u32;
        }
        RegOp::BrzJmp { pc_z, pc_nz, .. } => {
            *pc_z = new_pc[*pc_z as usize] as u32;
            *pc_nz = new_pc[*pc_nz as usize] as u32;
        }
        _ => {}
    }
}

/// Narrows a register index / pc to the fused ops' compact `u32` operand
/// width (fusion is refused on overflow rather than truncating).
fn r(x: usize) -> Option<u32> {
    u32::try_from(x).ok()
}

/// Narrows an immediate to the fused ops' `i32` field.
fn im(x: i64) -> Option<i32> {
    i32::try_from(x).ok()
}

/// Tries to fuse a group starting at `i`. `free2`/`free3` say whether the
/// second/third positions exist and are not jump targets. Returns the
/// fused op and the group length (in original instructions).
///
/// Pattern order matters: triples are tried before the pairs they extend,
/// and branch fusions before generic ALU pairs, so the hottest shapes win.
#[allow(clippy::too_many_lines)]
fn match_group(
    code: &[RegOp],
    i: usize,
    free2: bool,
    free3: bool,
    free4: bool,
) -> Option<(RegOp, usize)> {
    if !free2 {
        return None;
    }
    let third = if free3 { Some(&code[i + 2]) } else { None };
    let fourth = if free4 { Some(&code[i + 3]) } else { None };
    match (&code[i], &code[i + 1]) {
        // abort.check + cmp + brz (+ jmp): a full `While` loop header.
        (&RegOp::AbortCheck, &RegOp::IntBin { op, d, a, b }) => match third {
            Some(&RegOp::Brz { c, pc }) if c == d => {
                let (a, b, d, pc) = (r(a)?, r(b)?, r(d)?, r(pc)?);
                if let Some(&RegOp::Jmp { pc: pc_true }) = fourth {
                    let pc_true = r(pc_true)?;
                    Some((
                        RegOp::AbortBrCmpISel {
                            op,
                            a,
                            b,
                            d,
                            pc_false: pc,
                            pc_true,
                        },
                        4,
                    ))
                } else {
                    Some((RegOp::AbortBrCmpIFalse { op, a, b, d, pc }, 3))
                }
            }
            _ => None,
        },
        // cmp + brz (+ jmp): the condition register is dual-written, so
        // any later read still sees the comparison result.
        (&RegOp::IntBin { op, d, a, b }, &RegOp::Brz { c, pc }) if c == d => {
            let (a, b, d, pc) = (r(a)?, r(b)?, r(d)?, r(pc)?);
            if let Some(&RegOp::Jmp { pc: pc_true }) = third {
                let pc_true = r(pc_true)?;
                Some((
                    RegOp::BrCmpISel {
                        op,
                        a,
                        b,
                        d,
                        pc_false: pc,
                        pc_true,
                    },
                    3,
                ))
            } else {
                Some((RegOp::BrCmpIFalse { op, a, b, d, pc }, 2))
            }
        }
        (&RegOp::FltCmp { op, d, a, b }, &RegOp::Brz { c, pc }) if c == d => {
            let (a, b, d, pc) = (r(a)?, r(b)?, r(d)?, r(pc)?);
            if let Some(&RegOp::Jmp { pc: pc_true }) = third {
                let pc_true = r(pc_true)?;
                Some((
                    RegOp::BrCmpFSel {
                        op,
                        a,
                        b,
                        d,
                        pc_false: pc,
                        pc_true,
                    },
                    3,
                ))
            } else {
                Some((RegOp::BrCmpFFalse { op, a, b, d, pc }, 2))
            }
        }
        // brz + jmp: a two-way branch in one dispatch.
        (&RegOp::Brz { c, pc }, &RegOp::Jmp { pc: pc_nz }) => Some((
            RegOp::BrzJmp {
                c: r(c)?,
                pc_z: r(pc)?,
                pc_nz: r(pc_nz)?,
            },
            2,
        )),
        // Loop-counter increment / phi edge-move folded into a back-edge.
        (&RegOp::IntBinImm { op, d, a, imm }, &RegOp::Jmp { pc }) => Some((
            RegOp::IntBinImmJmp {
                op,
                d: r(d)?,
                a: r(a)?,
                imm: im(imm)?,
                pc: r(pc)?,
            },
            2,
        )),
        // Phi edge-moves folded into a back-edge: mov+mov+jmp is a whole
        // two-variable loop latch in one dispatch.
        (&RegOp::MovI { d: d1, s: s1 }, &RegOp::MovI { d: d2, s: s2 }) => {
            let (d1, s1, d2, s2) = (r(d1)?, r(s1)?, r(d2)?, r(s2)?);
            if let Some(&RegOp::Jmp { pc }) = third {
                Some((
                    RegOp::Mov2IJmp {
                        d1,
                        s1,
                        d2,
                        s2,
                        pc: r(pc)?,
                    },
                    3,
                ))
            } else {
                Some((RegOp::Mov2I { d1, s1, d2, s2 }, 2))
            }
        }
        (&RegOp::MovI { d, s }, &RegOp::Jmp { pc }) => Some((
            RegOp::MovIJmp {
                d: r(d)?,
                s: r(s)?,
                pc: r(pc)?,
            },
            2,
        )),
        (&RegOp::MovC { d, s }, &RegOp::Jmp { pc }) => Some((
            RegOp::MovCJmp {
                d: r(d)?,
                s: r(s)?,
                pc: r(pc)?,
            },
            2,
        )),
        // Loop-counter increment feeding its phi move (`t = i + 1; i = t`),
        // extending to the whole latch (`...; s = u; jmp`) when the next
        // two ops are another move and the back-edge.
        (&RegOp::IntBinImm { op, d, a, imm }, &RegOp::MovI { d: d2, s: s2 }) => {
            let (op, d, a, imm, d2, s2) = (op, r(d)?, r(a)?, im(imm)?, r(d2)?, r(s2)?);
            if let (Some(&RegOp::MovI { d: d3, s: s3 }), Some(&RegOp::Jmp { pc })) = (third, fourth)
            {
                let (d3, s3, pc) = (r(d3)?, r(s3)?, r(pc)?);
                Some((
                    RegOp::IntBinImmMov2IJmp {
                        op,
                        d,
                        a,
                        imm,
                        d2,
                        s2,
                        d3,
                        s3,
                        pc,
                    },
                    4,
                ))
            } else {
                Some((
                    RegOp::IntBinImmMovI {
                        op,
                        d,
                        a,
                        imm,
                        d2,
                        s2,
                    },
                    2,
                ))
            }
        }
        // Real compare feeding a phi move of the condition (+ back-edge).
        (&RegOp::FltCmp { op, d, a, b }, &RegOp::MovI { d: d2, s: s2 }) if s2 == d => {
            let (a, b, d, d2, s2) = (r(a)?, r(b)?, r(d)?, r(d2)?, r(s2)?);
            if let Some(&RegOp::Jmp { pc }) = third {
                Some((
                    RegOp::FltCmpMovIJmp {
                        op,
                        d,
                        a,
                        b,
                        d2,
                        s2,
                        pc: r(pc)?,
                    },
                    3,
                ))
            } else {
                Some((
                    RegOp::FltCmpMovI {
                        op,
                        d,
                        a,
                        b,
                        d2,
                        s2,
                    },
                    2,
                ))
            }
        }
        // Tensor element load feeding an ALU op (load-op).
        (
            &RegOp::TenPart1 {
                kind: ElemKind::I64,
                d: e,
                t,
                i: ix,
            },
            &RegOp::IntBinImm { op, d, a, imm },
        ) => Some((
            RegOp::TenPart1IntBinImm {
                e: r(e)?,
                t: r(t)?,
                i: r(ix)?,
                op,
                d: r(d)?,
                a: r(a)?,
                imm: im(imm)?,
            },
            2,
        )),
        (
            &RegOp::TenPart1 {
                kind: ElemKind::I64,
                d: e,
                t,
                i: ix,
            },
            &RegOp::IntBin { op, d, a, b },
        ) => Some((
            RegOp::TenPart1IntBin {
                e: r(e)?,
                t: r(t)?,
                i: r(ix)?,
                op,
                d: r(d)?,
                a: r(a)?,
                b: r(b)?,
            },
            2,
        )),
        (
            &RegOp::TenPart2 {
                kind: ElemKind::F64,
                d: e,
                t,
                i: ix,
                j,
            },
            &RegOp::FltBin { op, d, a, b },
        ) => Some((
            RegOp::TenPart2FltBin {
                e: r(e)?,
                t: r(t)?,
                i: r(ix)?,
                j: r(j)?,
                op,
                d: r(d)?,
                a: r(a)?,
                b: r(b)?,
            },
            2,
        )),
        // Unchecked (bounds-proved) load-op mirrors of the above.
        (
            &RegOp::TenPart1U {
                kind: ElemKind::I64,
                d: e,
                t,
                i: ix,
            },
            &RegOp::IntBinImm { op, d, a, imm },
        ) => Some((
            RegOp::TenPart1IntBinImmU {
                e: r(e)?,
                t: r(t)?,
                i: r(ix)?,
                op,
                d: r(d)?,
                a: r(a)?,
                imm: im(imm)?,
            },
            2,
        )),
        (
            &RegOp::TenPart1U {
                kind: ElemKind::I64,
                d: e,
                t,
                i: ix,
            },
            &RegOp::IntBin { op, d, a, b },
        ) => Some((
            RegOp::TenPart1IntBinU {
                e: r(e)?,
                t: r(t)?,
                i: r(ix)?,
                op,
                d: r(d)?,
                a: r(a)?,
                b: r(b)?,
            },
            2,
        )),
        (
            &RegOp::TenPart2U {
                kind: ElemKind::F64,
                d: e,
                t,
                i: ix,
                j,
            },
            &RegOp::FltBin { op, d, a, b },
        ) => Some((
            RegOp::TenPart2FltBinU {
                e: r(e)?,
                t: r(t)?,
                i: r(ix)?,
                j: r(j)?,
                op,
                d: r(d)?,
                a: r(a)?,
                b: r(b)?,
            },
            2,
        )),
        // Take-move + element store (op-store).
        (&RegOp::TakeV { d: dv, s: sv }, &RegOp::TenSet1 { kind, t, i: ix, v }) => Some((
            RegOp::TakeVTenSet1 {
                dv: r(dv)?,
                sv: r(sv)?,
                kind,
                t: r(t)?,
                i: r(ix)?,
                v: r(v)?,
            },
            2,
        )),
        (
            &RegOp::TakeV { d: dv, s: sv },
            &RegOp::TenSet2 {
                kind,
                t,
                i: ix,
                j,
                v,
            },
        ) => Some((
            RegOp::TakeVTenSet2 {
                dv: r(dv)?,
                sv: r(sv)?,
                kind,
                t: r(t)?,
                i: r(ix)?,
                j: r(j)?,
                v: r(v)?,
            },
            2,
        )),
        (
            &RegOp::TakeV { d: dv, s: sv },
            &RegOp::TenSet2U {
                kind,
                t,
                i: ix,
                j,
                v,
            },
        ) => Some((
            RegOp::TakeVTenSet2U {
                dv: r(dv)?,
                sv: r(sv)?,
                kind,
                t: r(t)?,
                i: r(ix)?,
                j: r(j)?,
                v: r(v)?,
            },
            2,
        )),
        // ALU pairs (integer/float multiply-add chains and friends).
        (
            &RegOp::IntBinImm {
                op: op1,
                d: d1,
                a: a1,
                imm: imm1,
            },
            &RegOp::IntBinImm {
                op: op2,
                d: d2,
                a: a2,
                imm: imm2,
            },
        ) => Some((
            RegOp::IntBinImm2 {
                op1,
                d1: r(d1)?,
                a1: r(a1)?,
                imm1: im(imm1)?,
                op2,
                d2: r(d2)?,
                a2: r(a2)?,
                imm2: im(imm2)?,
            },
            2,
        )),
        (
            &RegOp::IntBin {
                op: op1,
                d: d1,
                a: a1,
                b: b1,
            },
            &RegOp::IntBin {
                op: op2,
                d: d2,
                a: a2,
                b: b2,
            },
        ) => Some((
            RegOp::IntBin2 {
                op1,
                d1: r(d1)?,
                a1: r(a1)?,
                b1: r(b1)?,
                op2,
                d2: r(d2)?,
                a2: r(a2)?,
                b2: r(b2)?,
            },
            2,
        )),
        (
            &RegOp::FltBin {
                op: op1,
                d: d1,
                a: a1,
                b: b1,
            },
            &RegOp::FltBin {
                op: op2,
                d: d2,
                a: a2,
                b: b2,
            },
        ) => Some((
            RegOp::FltBin2 {
                op1,
                d1: r(d1)?,
                a1: r(a1)?,
                b1: r(b1)?,
                op2,
                d2: r(d2)?,
                a2: r(a2)?,
                b2: r(b2)?,
            },
            2,
        )),
        // Function-epilogue release pairs.
        (&RegOp::Release { v: v1 }, &RegOp::Release { v: v2 }) => Some((
            RegOp::Release2 {
                v1: r(v1)?,
                v2: r(v2)?,
            },
            2,
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Bank, IntOp, Slot};

    fn func(code: Vec<RegOp>, n_int: usize) -> NativeFunc {
        NativeFunc {
            name: "Main".into(),
            code,
            n_int,
            n_flt: 0,
            n_cpx: 0,
            n_val: 0,
            params: vec![Slot::new(Bank::I, 0)],
            elision: Default::default(),
        }
    }

    fn run_i(f: &NativeFunc, arg: i64) -> i64 {
        use crate::machine::{ArgVal, Machine, NativeProgram};
        let prog = NativeProgram {
            parallel: None,
            funcs: vec![f.clone()],
        };
        let mut m = Machine::standalone();
        match m
            .call_with_engine(&prog, 0, vec![ArgVal::I(arg)], None)
            .unwrap()
        {
            ArgVal::I(v) => v,
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn fuses_cmp_brz_jmp_triple_and_remaps() {
        // A countdown loop: while (0 < x) x = x - 1; return x.
        let mut f = func(
            vec![
                RegOp::LdcI { d: 1, v: 0 },
                RegOp::IntBin {
                    op: IntOp::Lt,
                    d: 2,
                    a: 1,
                    b: 0,
                },
                RegOp::Brz { c: 2, pc: 6 },
                RegOp::Jmp { pc: 4 },
                RegOp::IntBinImm {
                    op: IntOp::Sub,
                    d: 0,
                    a: 0,
                    imm: 1,
                },
                RegOp::Jmp { pc: 1 },
                RegOp::Ret {
                    s: Slot::new(Bank::I, 0),
                },
            ],
            3,
        );
        let unfused = f.clone();
        let removed = fuse_function(&mut f);
        assert!(
            removed >= 2,
            "expected cmp+brz+jmp and sub+jmp to fuse, removed {removed}"
        );
        assert!(
            f.code
                .iter()
                .any(|op| matches!(op, RegOp::BrCmpISel { .. })),
            "{:?}",
            f.code
        );
        assert!(
            f.code
                .iter()
                .any(|op| matches!(op, RegOp::IntBinImmJmp { .. })),
            "{:?}",
            f.code
        );
        for x in [0, 1, 7] {
            assert_eq!(run_i(&f, x), run_i(&unfused, x), "input {x}");
        }
    }

    #[test]
    fn no_fusion_across_jump_targets() {
        // pc 2 is a jump target: the mov pair at 1..=2 must NOT fuse.
        let mut f = func(
            vec![
                RegOp::Brz { c: 0, pc: 2 },
                RegOp::MovI { d: 1, s: 0 },
                RegOp::MovI { d: 2, s: 0 },
                RegOp::Ret {
                    s: Slot::new(Bank::I, 2),
                },
            ],
            3,
        );
        fuse_function(&mut f);
        assert!(
            f.code.iter().all(|op| !matches!(op, RegOp::Mov2I { .. })),
            "fused across a jump target: {:?}",
            f.code
        );
        assert_eq!(run_i(&f, 0), 0);
        assert_eq!(run_i(&f, 5), 5);
    }

    #[test]
    fn dual_write_keeps_condition_register_observable() {
        // The comparison result is read again *after* the branch — the
        // fused op must still have written it.
        let mut f = func(
            vec![
                RegOp::LdcI { d: 1, v: 10 },
                RegOp::IntBin {
                    op: IntOp::Lt,
                    d: 2,
                    a: 0,
                    b: 1,
                },
                RegOp::Brz { c: 2, pc: 3 },
                RegOp::Ret {
                    s: Slot::new(Bank::I, 2),
                },
            ],
            3,
        );
        let removed = fuse_function(&mut f);
        assert!(removed >= 1, "{:?}", f.code);
        assert_eq!(
            run_i(&f, 5),
            1,
            "x < 10 must leave 1 in the condition register"
        );
        assert_eq!(run_i(&f, 50), 0);
    }

    #[test]
    fn empty_and_straightline_functions_survive() {
        let mut f = func(vec![RegOp::RetNull], 1);
        assert_eq!(fuse_function(&mut f), 0);
        assert_eq!(f.code.len(), 1);
    }
}
