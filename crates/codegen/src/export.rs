//! Standalone library export and load (F10): the
//! `FunctionCompileExportLibrary` / `LibraryFunctionLoad` analog.
//!
//! The exported artifact records the original function source plus the
//! compile options; loading recompiles against the current compiler
//! version — matching the production behavior where version mismatches
//! trigger recompilation from the embedded input function (§2.2). In
//! standalone mode "certain functionalities such as interpreter
//! integration and abortable code are disabled, since they depend on the
//! Wolfram Engine".

use std::path::Path;
use wolfram_expr::{parse, Expr, ParseError};

/// Header line identifying exported libraries.
const MAGIC: &str = "WolframCompilerLibrary/1";

/// An exported compiled-function library.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportedLibrary {
    /// Compiler version that produced the export.
    pub compiler_version: String,
    /// Whether the export is standalone (no engine integration).
    pub standalone: bool,
    /// The original function (FullForm source).
    pub source: String,
}

impl ExportedLibrary {
    /// Builds an export record for a function expression.
    pub fn new(function: &Expr, compiler_version: &str, standalone: bool) -> Self {
        ExportedLibrary {
            compiler_version: compiler_version.to_owned(),
            standalone,
            source: function.to_full_form(),
        }
    }

    /// Serializes to the on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        format!(
            "{MAGIC}\nversion: {}\nstandalone: {}\n---\n{}\n",
            self.compiler_version, self.standalone, self.source
        )
        .into_bytes()
    }

    /// Parses the on-disk format.
    ///
    /// # Errors
    ///
    /// Returns a message for wrong magic or malformed headers.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err("not a Wolfram compiler library".into());
        }
        let version = lines
            .next()
            .and_then(|l| l.strip_prefix("version: "))
            .ok_or("missing version header")?
            .to_owned();
        let standalone = lines
            .next()
            .and_then(|l| l.strip_prefix("standalone: "))
            .ok_or("missing standalone header")?
            == "true";
        if lines.next() != Some("---") {
            return Err("missing separator".into());
        }
        let source = lines.collect::<Vec<_>>().join("\n");
        Ok(ExportedLibrary {
            compiler_version: version,
            standalone,
            source,
        })
    }

    /// Writes the library to a file.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a library from a file.
    ///
    /// # Errors
    ///
    /// I/O and format errors.
    pub fn read(path: &Path) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
        Self::from_bytes(&bytes)
    }

    /// Recovers the original function expression (the load-time
    /// recompilation input).
    ///
    /// # Errors
    ///
    /// Parse errors if the stored source is corrupt.
    pub fn function(&self) -> Result<Expr, ParseError> {
        parse(&self.source)
    }

    /// Whether a loader at `current_version` must recompile (always, in
    /// this reproduction — matching the version-check-then-recompile
    /// behavior).
    pub fn needs_recompile(&self, current_version: &str) -> bool {
        self.compiler_version != current_version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let f = parse("Function[{Typed[n, \"MachineInteger\"]}, n + 1]").unwrap();
        let lib = ExportedLibrary::new(&f, "1.0.1.0", true);
        let loaded = ExportedLibrary::from_bytes(&lib.to_bytes()).unwrap();
        assert_eq!(loaded, lib);
        assert_eq!(loaded.function().unwrap(), f);
        assert!(loaded.standalone);
        assert!(loaded.needs_recompile("2.0"));
        assert!(!loaded.needs_recompile("1.0.1.0"));
    }

    #[test]
    fn roundtrip_on_disk() {
        let f = parse("Function[{Typed[x, \"Real64\"]}, Sin[x]]").unwrap();
        let lib = ExportedLibrary::new(&f, "1.0.1.0", false);
        let dir = std::env::temp_dir().join("wolfram-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("addOne.wxl");
        lib.write(&path).unwrap();
        let loaded = ExportedLibrary::read(&path).unwrap();
        assert_eq!(loaded, lib);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(ExportedLibrary::from_bytes(b"ELF...").is_err());
        assert!(ExportedLibrary::from_bytes(MAGIC.as_bytes()).is_err());
    }
}
