//! The "Assembler" export backend: a textual listing of the native
//! register-machine code (the `FunctionCompileExportString[f, "Assembler"]`
//! analog from appendix A.6.5).

use crate::backend::Backend;
use crate::lower::lower_program;
use crate::machine::{NativeFunc, RegOp};
use std::fmt::Write as _;
use wolfram_ir::ProgramModule;

/// The assembler-listing backend. `fuse` mirrors the compiler's
/// `SuperinstructionFusion` option so the listing shows the code the
/// engine actually executes (fused by default).
pub struct AsmBackend {
    /// Run superinstruction fusion before rendering.
    pub fuse: bool,
}

impl Default for AsmBackend {
    fn default() -> Self {
        AsmBackend { fuse: true }
    }
}

impl Backend for AsmBackend {
    fn name(&self) -> &str {
        "Assembler"
    }

    fn generate(&self, module: &ProgramModule) -> Result<String, String> {
        let mut native = lower_program(module).map_err(|e| e.to_string())?;
        if self.fuse {
            crate::fuse::fuse_program(&mut native);
        }
        let mut out = String::new();
        let _ = writeln!(out, "\t.section __TEXT,wolfram,regular");
        for f in &native.funcs {
            out.push_str(&render_function(f));
        }
        let _ = writeln!(out, "\t.subsections_via_symbols");
        Ok(out)
    }
}

/// Renders one function as an assembler-style listing.
pub fn render_function(f: &NativeFunc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\t.globl _{}", f.name);
    let _ = writeln!(out, "_{}:", f.name);
    let _ = writeln!(
        out,
        "\t; frame: {} int, {} real, {} complex, {} value registers",
        f.n_int, f.n_flt, f.n_cpx, f.n_val
    );
    for (pc, op) in f.code.iter().enumerate() {
        let _ = writeln!(out, "L{pc:04}:\t{}", render_op(op));
    }
    out
}

/// Lowercased debug name of an op-code enum (label references stay `L`).
fn lc(op: impl std::fmt::Debug) -> String {
    format!("{op:?}").to_lowercase()
}

fn render_op(op: &RegOp) -> String {
    match op {
        RegOp::LdcI { d, v } => format!("ldc.i64 i{d}, {v}"),
        RegOp::LdcF { d, v } => format!("ldc.f64 f{d}, {v}"),
        RegOp::LdcC { d, re, im } => format!("ldc.c64 c{d}, ({re}, {im})"),
        RegOp::LdcV { d, v } => format!("ldc.val v{d}, {}", v.type_name()),
        RegOp::LdcArrayCopy { d, v } => format!("ldc.copy v{d}, {}", v.type_name()),
        RegOp::MovI { d, s } => format!("mov.i64 i{d}, i{s}"),
        RegOp::MovF { d, s } => format!("mov.f64 f{d}, f{s}"),
        RegOp::MovC { d, s } => format!("mov.c64 c{d}, c{s}"),
        RegOp::MovV { d, s } => format!("mov.val v{d}, v{s}"),
        RegOp::TakeV { d, s } => format!("take.val v{d}, v{s}"),
        RegOp::IntBin { op, d, a, b } => format!("{:?}.i64 i{d}, i{a}, i{b}", op).to_lowercase(),
        RegOp::IntBinImm { op, d, a, imm } => {
            format!("{:?}i.i64 i{d}, i{a}, {imm}", op).to_lowercase()
        }
        RegOp::FltBinImm { op, d, a, imm } => {
            format!("{:?}i.f64 f{d}, f{a}, {imm}", op).to_lowercase()
        }
        RegOp::IntUn { op, d, s } => format!("{:?}.i64 i{d}, i{s}", op).to_lowercase(),
        RegOp::PowModI { d, a, b, m } => format!("powmod.i64 i{d}, i{a}, i{b}, i{m}"),
        RegOp::FltBin { op, d, a, b } => format!("{:?}.f64 f{d}, f{a}, f{b}", op).to_lowercase(),
        RegOp::FltCmp { op, d, a, b } => format!("cmp{:?}.f64 i{d}, f{a}, f{b}", op).to_lowercase(),
        RegOp::FltUn { op, d, s } => format!("{:?}.f64 f{d}, f{s}", op).to_lowercase(),
        RegOp::FloorFI { d, s } => format!("floor.f64 i{d}, f{s}"),
        RegOp::CeilFI { d, s } => format!("ceil.f64 i{d}, f{s}"),
        RegOp::RoundFI { d, s } => format!("round.f64 i{d}, f{s}"),
        RegOp::IntToFlt { d, s } => format!("cvt.i64.f64 f{d}, i{s}"),
        RegOp::IntToCpx { d, s } => format!("cvt.i64.c64 c{d}, i{s}"),
        RegOp::FltToCpx { d, s } => format!("cvt.f64.c64 c{d}, f{s}"),
        RegOp::CpxBin { op, d, a, b } => format!("{:?}.c64 c{d}, c{a}, c{b}", op).to_lowercase(),
        RegOp::CpxPowI { d, a, e } => format!("pow.c64 c{d}, c{a}, i{e}"),
        RegOp::CpxAbs { d, s } => format!("abs.c64 f{d}, c{s}"),
        RegOp::CpxMake { d, re, im } => format!("make.c64 c{d}, f{re}, f{im}"),
        RegOp::CpxRe { d, s } => format!("re.c64 f{d}, c{s}"),
        RegOp::CpxIm { d, s } => format!("im.c64 f{d}, c{s}"),
        RegOp::CpxConj { d, s } => format!("conj.c64 c{d}, c{s}"),
        RegOp::CpxEq { d, a, b } => format!("eq.c64 i{d}, c{a}, c{b}"),
        RegOp::TenLen { d, t } => format!("len.ten i{d}, v{t}"),
        RegOp::TenPart1 { kind, d, t, i } => format!("part1.{kind:?} {d}, v{t}, i{i}"),
        RegOp::TenPart2 { kind, d, t, i, j } => format!("part2.{kind:?} {d}, v{t}, i{i}, i{j}"),
        RegOp::TenSet1 { kind, t, i, v } => format!("set1.{kind:?} v{t}, i{i}, {v}"),
        RegOp::TenSet2 { kind, t, i, j, v } => format!("set2.{kind:?} v{t}, i{i}, i{j}, {v}"),
        RegOp::TenPart1U { kind, d, t, i } => format!("part1.u.{kind:?} {d}, v{t}, i{i}"),
        RegOp::TenPart2U { kind, d, t, i, j } => {
            format!("part2.u.{kind:?} {d}, v{t}, i{i}, i{j}")
        }
        RegOp::TenSet1U { kind, t, i, v } => format!("set1.u.{kind:?} v{t}, i{i}, {v}"),
        RegOp::TenSet2U { kind, t, i, j, v } => {
            format!("set2.u.{kind:?} v{t}, i{i}, i{j}, {v}")
        }
        RegOp::TenFill1 { kind, d, c, n } => format!("fill1.{kind:?} v{d}, {c}, i{n}"),
        RegOp::TenFill2 { kind, d, c, n1, n2 } => {
            format!("fill2.{kind:?} v{d}, {c}, i{n1}, i{n2}")
        }
        RegOp::TenBin { op, d, a, b } => format!("{:?}.ten v{d}, v{a}, v{b}", op).to_lowercase(),
        RegOp::TenScalar {
            op,
            kind,
            d,
            t,
            s,
            rev,
        } => {
            let dir = if *rev { "rsc" } else { "sc" };
            format!("{op:?}.{dir} v{d}, v{t}, {kind:?}:{s}").to_lowercase()
        }
        RegOp::TenSetRow { t, i, row } => format!("setrow v{t}, i{i}, v{row}"),
        RegOp::TenFromList { kind, d, items } => {
            format!("pack.{kind:?} v{d}, {} items", items.len())
        }
        RegOp::DotVecF { d, a, b } => format!("dotv.f64 f{d}, v{a}, v{b}"),
        RegOp::DotVecI { d, a, b } => format!("dotv.i64 i{d}, v{a}, v{b}"),
        RegOp::DotMat { d, a, b } => format!("dotm v{d}, v{a}, v{b}"),
        RegOp::DotMatVec { d, a, b } => format!("dot.mv v{d}, v{a}, v{b}"),
        RegOp::StrLen { d, s } => format!("len.str i{d}, v{s}"),
        RegOp::StrToCodes { d, s } => format!("codes.str v{d}, v{s}"),
        RegOp::StrFromCodes { d, s } => format!("fromcodes.str v{d}, v{s}"),
        RegOp::StrJoin { d, a, b } => format!("join.str v{d}, v{a}, v{b}"),
        RegOp::ExprBin { op, d, a, b } => format!("{:?}.expr v{d}, v{a}, v{b}", op).to_lowercase(),
        RegOp::ExprUnary { head, d, a } => format!("expr.un v{d}, {head}[v{a}]"),
        RegOp::BoolToExpr { d, s } => format!("box.bool v{d}, i{s}"),
        RegOp::BoxIV { d, s } => format!("box.i64 v{d}, i{s}"),
        RegOp::BoxFV { d, s } => format!("box.f64 v{d}, f{s}"),
        RegOp::BoxCV { d, s } => format!("box.c64 v{d}, c{s}"),
        RegOp::RndUnit { d } => format!("rnd f{d}"),
        RegOp::RndRange { d, a, b } => format!("rnd.range f{d}, f{a}, f{b}"),
        RegOp::MakeClosure { d, f, captures } => {
            format!("closure v{d}, fn{f}, {} captures", captures.len())
        }
        RegOp::CallFunc { f, args, ret } => {
            format!(
                "call fn{f}, {} args -> {:?}{}",
                args.len(),
                ret.bank,
                ret.ix
            )
        }
        RegOp::CallValue { fv, args, ret } => {
            format!(
                "calli v{fv}, {} args -> {:?}{}",
                args.len(),
                ret.bank,
                ret.ix
            )
        }
        RegOp::CallKernel { head, args, ret } => {
            format!(
                "kernel {head}, {} args -> {:?}{}",
                args.len(),
                ret.bank,
                ret.ix
            )
        }
        RegOp::Jmp { pc } => format!("jmp L{pc:04}"),
        RegOp::Brz { c, pc } => format!("brz i{c}, L{pc:04}"),
        RegOp::BrCmpIFalse { op, a, b, d, pc } => {
            format!("br.not.{}.i64 i{d}, i{a}, i{b}, L{pc:04}", lc(op))
        }
        RegOp::BrCmpFFalse { op, a, b, d, pc } => {
            format!("br.not.{}.f64 i{d}, f{a}, f{b}, L{pc:04}", lc(op))
        }
        RegOp::BrCmpISel {
            op,
            a,
            b,
            d,
            pc_false,
            pc_true,
        } => {
            format!(
                "br.{}.i64 i{d}, i{a}, i{b}, L{pc_true:04}, L{pc_false:04}",
                lc(op)
            )
        }
        RegOp::BrCmpFSel {
            op,
            a,
            b,
            d,
            pc_false,
            pc_true,
        } => {
            format!(
                "br.{}.f64 i{d}, f{a}, f{b}, L{pc_true:04}, L{pc_false:04}",
                lc(op)
            )
        }
        RegOp::BrzJmp { c, pc_z, pc_nz } => format!("brz.jmp i{c}, L{pc_z:04}, L{pc_nz:04}"),
        RegOp::IntBin2 {
            op1,
            d1,
            a1,
            b1,
            op2,
            d2,
            a2,
            b2,
        } => format!(
            "{:?}.{:?}.i64 i{d1}, i{a1}, i{b1}; i{d2}, i{a2}, i{b2}",
            op1, op2
        )
        .to_lowercase(),
        RegOp::IntBinImm2 {
            op1,
            d1,
            a1,
            imm1,
            op2,
            d2,
            a2,
            imm2,
        } => format!(
            "{:?}i.{:?}i.i64 i{d1}, i{a1}, {imm1}; i{d2}, i{a2}, {imm2}",
            op1, op2
        )
        .to_lowercase(),
        RegOp::IntBinImmJmp { op, d, a, imm, pc } => {
            format!("{}i.jmp.i64 i{d}, i{a}, {imm}, L{pc:04}", lc(op))
        }
        RegOp::FltBin2 {
            op1,
            d1,
            a1,
            b1,
            op2,
            d2,
            a2,
            b2,
        } => format!(
            "{:?}.{:?}.f64 f{d1}, f{a1}, f{b1}; f{d2}, f{a2}, f{b2}",
            op1, op2
        )
        .to_lowercase(),
        RegOp::TenPart1IntBin {
            e,
            t,
            i,
            op,
            d,
            a,
            b,
        } => format!("part1.{:?}.i64 i{e}, v{t}, i{i}; i{d}, i{a}, i{b}", op).to_lowercase(),
        RegOp::TenPart1IntBinImm {
            e,
            t,
            i,
            op,
            d,
            a,
            imm,
        } => format!("part1.{:?}i.i64 i{e}, v{t}, i{i}; i{d}, i{a}, {imm}", op).to_lowercase(),
        RegOp::TenPart2FltBin {
            e,
            t,
            i,
            j,
            op,
            d,
            a,
            b,
        } => format!(
            "part2.{:?}.f64 f{e}, v{t}, i{i}, i{j}; f{d}, f{a}, f{b}",
            op
        )
        .to_lowercase(),
        RegOp::TakeVTenSet1 {
            dv,
            sv,
            kind,
            t,
            i,
            v,
        } => {
            format!("take.set1.{kind:?} v{dv}, v{sv}; v{t}, i{i}, {v}")
        }
        RegOp::TakeVTenSet2 {
            dv,
            sv,
            kind,
            t,
            i,
            j,
            v,
        } => {
            format!("take.set2.{kind:?} v{dv}, v{sv}; v{t}, i{i}, i{j}, {v}")
        }
        RegOp::TenPart1IntBinU {
            e,
            t,
            i,
            op,
            d,
            a,
            b,
        } => format!("part1.u.{:?}.i64 i{e}, v{t}, i{i}; i{d}, i{a}, i{b}", op).to_lowercase(),
        RegOp::TenPart1IntBinImmU {
            e,
            t,
            i,
            op,
            d,
            a,
            imm,
        } => format!("part1.u.{:?}i.i64 i{e}, v{t}, i{i}; i{d}, i{a}, {imm}", op).to_lowercase(),
        RegOp::TenPart2FltBinU {
            e,
            t,
            i,
            j,
            op,
            d,
            a,
            b,
        } => format!(
            "part2.u.{:?}.f64 f{e}, v{t}, i{i}, i{j}; f{d}, f{a}, f{b}",
            op
        )
        .to_lowercase(),
        RegOp::TakeVTenSet2U {
            dv,
            sv,
            kind,
            t,
            i,
            j,
            v,
        } => {
            format!("take.set2.u.{kind:?} v{dv}, v{sv}; v{t}, i{i}, i{j}, {v}")
        }
        RegOp::MovIJmp { d, s, pc } => format!("mov.jmp.i64 i{d}, i{s}, L{pc:04}"),
        RegOp::Mov2I { d1, s1, d2, s2 } => format!("mov2.i64 i{d1}, i{s1}; i{d2}, i{s2}"),
        RegOp::Mov2IJmp { d1, s1, d2, s2, pc } => {
            format!("mov2.jmp.i64 i{d1}, i{s1}; i{d2}, i{s2}, L{pc:04}")
        }
        RegOp::Release2 { v1, v2 } => format!("release2 v{v1}, v{v2}"),
        RegOp::AbortBrCmpISel {
            op,
            a,
            b,
            d,
            pc_false,
            pc_true,
        } => {
            format!(
                "abort.br.{}.i64 i{d}, i{a}, i{b}, L{pc_true:04}, L{pc_false:04}",
                lc(op)
            )
        }
        RegOp::AbortBrCmpIFalse { op, a, b, d, pc } => {
            format!("abort.br.not.{}.i64 i{d}, i{a}, i{b}, L{pc:04}", lc(op))
        }
        RegOp::IntBinImmMovI {
            op,
            d,
            a,
            imm,
            d2,
            s2,
        } => format!("{:?}i.mov.i64 i{d}, i{a}, {imm}; i{d2}, i{s2}", op).to_lowercase(),
        RegOp::MovCJmp { d, s, pc } => format!("mov.jmp.c64 c{d}, c{s}, L{pc:04}"),
        RegOp::IntBinImmMov2IJmp {
            op,
            d,
            a,
            imm,
            d2,
            s2,
            d3,
            s3,
            pc,
        } => format!(
            "{}i.mov2.jmp.i64 i{d}, i{a}, {imm}; i{d2}, i{s2}; i{d3}, i{s3}, L{pc:04}",
            lc(op)
        ),
        RegOp::FltCmpMovI {
            op,
            d,
            a,
            b,
            d2,
            s2,
        } => format!("cmp{:?}.mov.f64 i{d}, f{a}, f{b}; i{d2}, i{s2}", op).to_lowercase(),
        RegOp::FltCmpMovIJmp {
            op,
            d,
            a,
            b,
            d2,
            s2,
            pc,
        } => {
            format!(
                "cmp{}.mov.jmp.f64 i{d}, f{a}, f{b}; i{d2}, i{s2}, L{pc:04}",
                lc(op)
            )
        }
        RegOp::AbortCheck => "abort.check".into(),
        RegOp::VecLoop { plan } => format!(
            "vec.loop i{}, {} i{}, {} nodes, out v{}",
            plan.iv,
            if plan.inclusive { "le" } else { "lt" },
            plan.bound,
            plan.nodes.len(),
            plan.out.slot
        ),
        RegOp::Acquire { v } => format!("acquire v{v}"),
        RegOp::Release { v } => format!("release v{v}"),
        RegOp::Ret { s } => format!("ret {:?}{}", s.bank, s.ix),
        RegOp::RetNull => "ret.null".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Bank, IntOp, Slot};

    #[test]
    fn listing_renders() {
        let f = NativeFunc {
            name: "Main".into(),
            code: vec![
                RegOp::LdcI { d: 1, v: 1 },
                RegOp::IntBin {
                    op: IntOp::Add,
                    d: 2,
                    a: 0,
                    b: 1,
                },
                RegOp::Ret {
                    s: Slot::new(Bank::I, 2),
                },
            ],
            n_int: 3,
            n_flt: 0,
            n_cpx: 0,
            n_val: 0,
            params: vec![Slot::new(Bank::I, 0)],
            elision: Default::default(),
        };
        let text = render_function(&f);
        assert!(text.contains("_Main:"), "{text}");
        assert!(text.contains("add.i64 i2, i0, i1"), "{text}");
        assert!(text.contains("ret I2"), "{text}");
        assert!(text.contains("L0000:"), "{text}");
    }
}
