//! Pins the VM's `Quotient`/`Mod`/`Power` semantics on the operand ranges
//! the differential fuzzer hits first — negative operands and negative
//! exponents — to the interpreter's answer. The interpreter ("Wolfram
//! Engine") is the language oracle: any drift here is a silent wrong
//! answer once compiled code soft-fails or, worse, doesn't.

use wolfram_bytecode::{ArgSpec, BytecodeCompiler};
use wolfram_expr::parse;
use wolfram_interp::Interpreter;
use wolfram_runtime::{RuntimeError, Value};

/// Evaluates `body` with `a`/`b` bound in the interpreter.
fn interp(body: &str, a: &Value, b: &Value) -> Result<Value, RuntimeError> {
    let mut i = Interpreter::new();
    let f = parse(&format!("Function[{{a, b}}, {body}]")).unwrap();
    let call = wolfram_expr::Expr::normal(f, vec![a.to_expr(), b.to_expr()]);
    i.eval(&call).map(|e| Value::from_expr(&e))
}

/// Runs `body` through the bytecode VM (no engine: hard errors surface).
fn vm(body: &str, a: &Value, b: &Value) -> Result<Value, RuntimeError> {
    let specs = [spec("a", a), spec("b", b)];
    let cf = BytecodeCompiler::new()
        .compile(&specs, &parse(body).unwrap())
        .unwrap();
    cf.run(&[a.clone(), b.clone()])
}

fn spec(name: &str, v: &Value) -> ArgSpec {
    match v {
        Value::F64(_) => ArgSpec::real(name),
        _ => ArgSpec::int(name),
    }
}

/// Integer pairs covering every sign combination plus the overflow edges.
const INT_PAIRS: &[(i64, i64)] = &[
    (7, 2),
    (-7, 2),
    (7, -2),
    (-7, -2),
    (6, 3),
    (-6, 3),
    (0, 5),
    (0, -5),
    (1, i64::MAX),
    (i64::MIN, 2),
    (i64::MAX, -3),
    (i64::MIN + 1, -1),
];

#[test]
fn quotient_matches_interpreter_on_negative_operands() {
    for &(x, y) in INT_PAIRS {
        let (a, b) = (Value::I64(x), Value::I64(y));
        let want = interp("Quotient[a, b]", &a, &b).unwrap();
        let got = vm("Quotient[a, b]", &a, &b).unwrap();
        assert_eq!(got, want, "Quotient[{x}, {y}]");
    }
}

#[test]
fn mod_matches_interpreter_on_negative_operands() {
    for &(x, y) in INT_PAIRS {
        let (a, b) = (Value::I64(x), Value::I64(y));
        let want = interp("Mod[a, b]", &a, &b).unwrap();
        let got = vm("Mod[a, b]", &a, &b).unwrap();
        assert_eq!(got, want, "Mod[{x}, {y}] (Mod takes the divisor's sign)");
    }
}

#[test]
fn quotient_mod_identity_holds() {
    // m == n*Quotient[m, n] + Mod[m, n] for every n != 0 — the invariant
    // that makes the flooring convention self-consistent.
    for &(x, y) in INT_PAIRS {
        let (a, b) = (Value::I64(x), Value::I64(y));
        let q = vm("Quotient[a, b]", &a, &b).unwrap().expect_i64().unwrap();
        let r = vm("Mod[a, b]", &a, &b).unwrap().expect_i64().unwrap();
        assert_eq!(
            y.wrapping_mul(q).wrapping_add(r),
            x,
            "identity broken for ({x}, {y}): q={q} r={r}"
        );
    }
}

#[test]
fn division_by_zero_is_uniform() {
    for body in ["Quotient[a, b]", "Mod[a, b]"] {
        let (a, b) = (Value::I64(5), Value::I64(0));
        assert_eq!(vm(body, &a, &b), Err(RuntimeError::DivideByZero), "{body}");
        assert!(interp(body, &a, &b).is_err(), "{body} in the interpreter");
    }
}

#[test]
fn integer_power_negative_exponent_matches_interpreter() {
    // The interpreter evaluates n^-k as a real; the VM must produce the
    // *same* real (powf — not powi, whose i32 cast wraps for huge
    // exponents and silently changed the answer).
    for &(x, y) in &[
        (2i64, -1i64),
        (3, -6),
        (-2, -3),
        (10, -18),
        (2, -4294967295),
    ] {
        let (a, b) = (Value::I64(x), Value::I64(y));
        let want = interp("a ^ b", &a, &b).unwrap();
        let got = vm("a ^ b", &a, &b).unwrap();
        assert_eq!(got, want, "{x} ^ {y}");
    }
    // Spot-check the wrap-prone case numerically: 2^-4294967295 underflows
    // to 0.0; the old powi path wrapped the exponent to +1 and returned 2.
    assert_eq!(
        vm("a ^ b", &Value::I64(2), &Value::I64(-4294967295)).unwrap(),
        Value::F64(0.0)
    );
}

#[test]
fn integer_power_nonnegative_is_exact_or_overflows() {
    let want = interp("a ^ b", &Value::I64(3), &Value::I64(13)).unwrap();
    assert_eq!(vm("a ^ b", &Value::I64(3), &Value::I64(13)).unwrap(), want);
    // Overflow is a (soft-failure) numeric error, not a wrong answer.
    assert_eq!(
        vm("a ^ b", &Value::I64(10), &Value::I64(64)),
        Err(RuntimeError::IntegerOverflow)
    );
}

#[test]
fn real_mod_matches_interpreter() {
    for &(x, y) in &[
        (7.5f64, 2.0f64),
        (-7.5, 2.0),
        (7.5, -2.0),
        (-7.5, -2.5),
        (0.0, 3.0),
    ] {
        let (a, b) = (Value::F64(x), Value::F64(y));
        let want = interp("Mod[a, b]", &a, &b).unwrap();
        let got = vm("Mod[a, b]", &a, &b).unwrap();
        assert_eq!(got, want, "Mod[{x}, {y}]");
    }
}
