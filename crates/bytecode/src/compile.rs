//! The bytecode compiler front end: a single forward monolithic
//! transformation (§2.2) with fixed optimizations and datatypes.
//!
//! "The optimized expression is then traversed in depth-first order to
//! construct the bytecode instructions. If an expression is not supported
//! by the compiler, then the compiler inserts a statement which invokes the
//! interpreter at runtime to evaluate that expression. Along the way, the
//! compiler propagates the types of intermediate variables and any unknown
//! type is assumed to be a Real."

use crate::compiled_function::CompiledFunction;
use crate::instr::{BinOp, CmpOp, Op, Reg, UnOp, VmType};
use std::collections::HashMap;
use wolfram_expr::{Expr, ExprKind};
use wolfram_runtime::Value;

/// A typed argument specification (the `Compile[{{x, _Real}}, ...]` form).
#[derive(Debug, Clone, PartialEq)]
pub struct ArgSpec {
    /// Parameter name.
    pub name: String,
    /// Parameter type; defaults to `Real` in the classic interface.
    pub ty: VmType,
}

impl ArgSpec {
    /// A `_Real` parameter (the default).
    pub fn real(name: &str) -> Self {
        ArgSpec {
            name: name.into(),
            ty: VmType::Real,
        }
    }

    /// A `_Integer` parameter.
    pub fn int(name: &str) -> Self {
        ArgSpec {
            name: name.into(),
            ty: VmType::Int,
        }
    }

    /// A `_Complex` parameter.
    pub fn complex(name: &str) -> Self {
        ArgSpec {
            name: name.into(),
            ty: VmType::Complex,
        }
    }

    /// A packed real array parameter (`{x, _Real, 1}`).
    pub fn tensor_real(name: &str) -> Self {
        ArgSpec {
            name: name.into(),
            ty: VmType::TensorReal,
        }
    }

    /// A packed integer array parameter.
    pub fn tensor_int(name: &str) -> Self {
        ArgSpec {
            name: name.into(),
            ty: VmType::TensorInt,
        }
    }

    /// Derives the spec list from a new-compiler `Function[{Typed[...]},
    /// body]` expression, for running one program through both compiler
    /// generations (the difftest oracle and the serve bytecode tier).
    ///
    /// # Errors
    ///
    /// Returns a message for parameter forms outside the bytecode
    /// compiler's fixed datatype set (limitation L1).
    pub fn from_function(func: &Expr) -> Result<Vec<ArgSpec>, String> {
        let params = func
            .args()
            .first()
            .filter(|p| p.has_head("List"))
            .ok_or("function has no parameter list")?;
        params
            .args()
            .iter()
            .map(|p| {
                if !(p.has_head("Typed") && p.length() == 2) {
                    return Err(format!("parameter {} is not Typed", p.to_input_form()));
                }
                let name = p.args()[0]
                    .as_symbol()
                    .ok_or_else(|| format!("parameter name {}", p.args()[0].to_input_form()))?
                    .name()
                    .to_owned();
                let spec = &p.args()[1];
                if let Some(s) = spec.as_str() {
                    return match s {
                        "MachineInteger" | "Integer64" => Ok(ArgSpec::int(&name)),
                        "Real64" => Ok(ArgSpec::real(&name)),
                        other => Err(format!("unsupported parameter type {other:?}")),
                    };
                }
                // "Tensor"[elem, 1]
                if spec.head().as_str() == Some("Tensor") && spec.length() == 2 {
                    return match spec.args()[0].as_str() {
                        Some("Integer64") | Some("MachineInteger") => {
                            Ok(ArgSpec::tensor_int(&name))
                        }
                        Some("Real64") => Ok(ArgSpec::tensor_real(&name)),
                        _ => Err(format!(
                            "unsupported tensor element {}",
                            spec.to_input_form()
                        )),
                    };
                }
                Err(format!(
                    "unsupported parameter spec {}",
                    spec.to_input_form()
                ))
            })
            .collect()
    }
}

/// Compilation failure: the function cannot be represented at all
/// (limitation L1). Per-expression gaps become interpreter escapes instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A datatype outside the fixed set (strings, function values,
    /// symbolic expressions) appears in a position that must be typed.
    Unsupported(String),
    /// Malformed input.
    Malformed(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Unsupported(what) => {
                write!(f, "the bytecode compiler cannot represent {what}")
            }
            CompileError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The legacy compiler.
#[derive(Debug, Clone, Default)]
pub struct BytecodeCompiler {}

impl BytecodeCompiler {
    /// A compiler with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `Compile[{{x, _Integer}, ...}, body]`-style input.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_compile_expr(&self, e: &Expr) -> Result<CompiledFunction, CompileError> {
        if !e.has_head("Compile") || e.length() < 2 {
            return Err(CompileError::Malformed(
                "expected Compile[args, body]".into(),
            ));
        }
        let args_e = &e.args()[0];
        let body = &e.args()[1];
        let mut specs = Vec::new();
        for spec in args_e.args() {
            // {x, _Integer} or bare x (defaults to Real).
            if let Some(s) = spec.as_symbol() {
                specs.push(ArgSpec::real(s.name()));
                continue;
            }
            if spec.has_head("List") && !spec.args().is_empty() {
                let name = spec.args()[0]
                    .as_symbol()
                    .ok_or_else(|| CompileError::Malformed("argument name".into()))?;
                let ty = match spec.args().get(1) {
                    None => VmType::Real,
                    Some(b) if b.has_head("Blank") => {
                        match b
                            .args()
                            .first()
                            .and_then(Expr::as_symbol)
                            .as_ref()
                            .map(|s| s.name().to_owned())
                            .as_deref()
                        {
                            Some("Integer") => VmType::Int,
                            Some("Real") | None => VmType::Real,
                            Some("Complex") => VmType::Complex,
                            Some(other) => {
                                return Err(CompileError::Unsupported(format!(
                                    "the datatype _{other}"
                                )))
                            }
                        }
                    }
                    Some(_) => VmType::Real,
                };
                // Rank spec {x, _Real, 1} makes it a tensor.
                let ty = match spec.args().get(2).and_then(Expr::as_i64) {
                    Some(1) => match ty {
                        VmType::Int => VmType::TensorInt,
                        VmType::Complex => VmType::TensorComplex,
                        _ => VmType::TensorReal,
                    },
                    Some(2) => match ty {
                        VmType::Int => VmType::TensorInt,
                        _ => VmType::TensorReal,
                    },
                    _ => ty,
                };
                specs.push(ArgSpec {
                    name: name.name().into(),
                    ty,
                });
                continue;
            }
            return Err(CompileError::Malformed(format!(
                "argument spec {}",
                spec.to_input_form()
            )));
        }
        self.compile(&specs, body)
    }

    /// Compiles a body over typed arguments.
    ///
    /// # Errors
    ///
    /// See [`CompileError`]. Function values anywhere in the body are a
    /// hard error: "Function passing cannot be represented in the bytecode
    /// compiler" (§6).
    pub fn compile(&self, args: &[ArgSpec], body: &Expr) -> Result<CompiledFunction, CompileError> {
        // L1: reject programs that require function values.
        if uses_function_values(body) {
            return Err(CompileError::Unsupported(
                "function values (the bytecode compiler has no function types)".into(),
            ));
        }
        if body.as_str().is_some() || body.contains(&mut |e| e.as_str().is_some()) {
            return Err(CompileError::Unsupported("strings".into()));
        }
        let mut ctx = Ctx::new();
        for (ix, spec) in args.iter().enumerate() {
            ctx.locals.insert(spec.name.clone(), (ix as Reg, spec.ty));
        }
        ctx.nregs = args.len() as u32;
        let (result, _ty) = ctx.expr(body)?;
        ctx.ops.push(Op::Return { s: result });
        Ok(CompiledFunction {
            compiler_version: 11,
            engine_version: 12,
            flags: 5468,
            arg_specs: args.to_vec(),
            ops: ctx.ops,
            nregs: ctx.nregs as usize,
            original: body.clone(),
        })
    }
}

/// Detects first-class function use: a `Function[...]`, `Sin`-style bare
/// function symbol in value position is approximated by checking for
/// `Function` heads used as data.
fn uses_function_values(e: &Expr) -> bool {
    let mut found = false;
    wolfram_expr::walk(e, &mut |node| {
        if node.has_head("Function") {
            found = true;
            return wolfram_expr::VisitAction::Stop;
        }
        wolfram_expr::VisitAction::Descend
    });
    found
}

struct LoopFrame {
    break_patches: Vec<usize>,
    continue_target: Option<usize>,
    continue_patches: Vec<usize>,
}

struct Ctx {
    ops: Vec<Op>,
    nregs: u32,
    locals: HashMap<String, (Reg, VmType)>,
    loops: Vec<LoopFrame>,
}

impl Ctx {
    fn new() -> Self {
        Ctx {
            ops: Vec::new(),
            nregs: 0,
            locals: HashMap::new(),
            loops: Vec::new(),
        }
    }

    fn fresh(&mut self) -> Reg {
        let r = self.nregs as Reg;
        self.nregs += 1;
        r
    }

    fn emit(&mut self, op: Op) {
        self.ops.push(op);
    }

    fn here(&self) -> usize {
        self.ops.len()
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.ops[at] {
            Op::Jump { pc } | Op::JumpIfFalse { pc, .. } => *pc = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn load_const(&mut self, v: Value, ty: VmType) -> (Reg, VmType) {
        let d = self.fresh();
        self.emit(Op::LoadConst { d, c: v });
        (d, ty)
    }

    /// The interpreter escape for unsupported expressions (§2.2). Result
    /// type is unknown, so it "is assumed to be a Real".
    fn eval_escape(&mut self, e: &Expr) -> (Reg, VmType) {
        let d = self.fresh();
        let env: Vec<(String, Reg)> = self
            .locals
            .iter()
            .map(|(name, (reg, _))| (name.clone(), *reg))
            .collect();
        self.emit(Op::Eval {
            d,
            expr: e.clone(),
            env,
        });
        (d, VmType::Real)
    }

    fn expr(&mut self, e: &Expr) -> Result<(Reg, VmType), CompileError> {
        match e.kind() {
            ExprKind::Integer(v) => Ok(self.load_const(Value::I64(*v), VmType::Int)),
            ExprKind::Real(v) => Ok(self.load_const(Value::F64(*v), VmType::Real)),
            ExprKind::Complex(re, im) => {
                Ok(self.load_const(Value::Complex(*re, *im), VmType::Complex))
            }
            ExprKind::BigInteger(_) => Err(CompileError::Unsupported(
                "arbitrary-precision integers".into(),
            )),
            ExprKind::Str(_) => Err(CompileError::Unsupported("strings".into())),
            ExprKind::Symbol(s) => match s.name() {
                "True" => Ok(self.load_const(Value::Bool(true), VmType::Bool)),
                "False" => Ok(self.load_const(Value::Bool(false), VmType::Bool)),
                "Pi" => Ok(self.load_const(Value::F64(std::f64::consts::PI), VmType::Real)),
                "E" => Ok(self.load_const(Value::F64(std::f64::consts::E), VmType::Real)),
                "Null" => Ok(self.load_const(Value::Null, VmType::Real)),
                name => match self.locals.get(name) {
                    Some(&(reg, ty)) => Ok((reg, ty)),
                    None => Ok(self.eval_escape(e)),
                },
            },
            ExprKind::Normal(_) => self.normal(e),
        }
    }

    fn normal(&mut self, e: &Expr) -> Result<(Reg, VmType), CompileError> {
        let head = e.head();
        let Some(hs) = head.as_symbol() else {
            return Ok(self.eval_escape(e));
        };
        let args = e.args();
        match (hs.name(), args.len()) {
            ("Plus", _) => self.nary(BinOp::Add, args),
            ("Times", _) => self.nary(BinOp::Mul, args),
            ("Subtract", 2) => self.binary(BinOp::Sub, &args[0], &args[1]),
            ("Divide", 2) => self.binary(BinOp::Div, &args[0], &args[1]),
            ("Power", 2) => self.binary(BinOp::Pow, &args[0], &args[1]),
            ("Mod", 2) => self.binary(BinOp::Mod, &args[0], &args[1]),
            ("Quotient", 2) => self.binary(BinOp::Quot, &args[0], &args[1]),
            ("Min", 2) => self.binary(BinOp::Min, &args[0], &args[1]),
            ("Max", 2) => self.binary(BinOp::Max, &args[0], &args[1]),
            ("Minus", 1) => self.unary(UnOp::Neg, &args[0]),
            ("Abs", 1) => self.unary(UnOp::Abs, &args[0]),
            ("Sqrt", 1) => self.unary(UnOp::Sqrt, &args[0]),
            ("Sin", 1) => self.unary(UnOp::Sin, &args[0]),
            ("Cos", 1) => self.unary(UnOp::Cos, &args[0]),
            ("Tan", 1) => self.unary(UnOp::Tan, &args[0]),
            ("Exp", 1) => self.unary(UnOp::Exp, &args[0]),
            ("Log", 1) => self.unary(UnOp::Log, &args[0]),
            ("Floor", 1) => self.unary(UnOp::Floor, &args[0]),
            ("Ceiling", 1) => self.unary(UnOp::Ceiling, &args[0]),
            ("Round", 1) => self.unary(UnOp::Round, &args[0]),
            ("Re", 1) => self.unary(UnOp::Re, &args[0]),
            ("Im", 1) => self.unary(UnOp::Im, &args[0]),
            ("Not", 1) => self.unary(UnOp::Not, &args[0]),
            ("Complex", 2) => {
                let (re, _) = self.expr(&args[0])?;
                let (im, _) = self.expr(&args[1])?;
                let d = self.fresh();
                self.emit(Op::ComplexMake { d, re, im });
                Ok((d, VmType::Complex))
            }
            ("Less", _) => self.compare(CmpOp::Lt, args),
            ("LessEqual", _) => self.compare(CmpOp::Le, args),
            ("Greater", _) => self.compare(CmpOp::Gt, args),
            ("GreaterEqual", _) => self.compare(CmpOp::Ge, args),
            ("Equal", _) => self.compare(CmpOp::Eq, args),
            ("Unequal", 2) => self.compare(CmpOp::Ne, args),
            ("And", _) => self.short_circuit(args, true),
            ("Or", _) => self.short_circuit(args, false),
            ("If", 2) | ("If", 3) => self.if_expr(args),
            ("While", 1) | ("While", 2) => self.while_expr(args),
            ("For", 3) | ("For", 4) => self.for_expr(args),
            ("Do", 2) => self.do_expr(args),
            ("CompoundExpression", _) => {
                let mut last = self.load_const(Value::Null, VmType::Real);
                for a in args {
                    last = self.expr(a)?;
                }
                Ok(last)
            }
            ("Module", 2) | ("Block", 2) => self.module(args),
            ("Set", 2) => self.set(&args[0], &args[1]),
            ("Increment", 1) | ("Decrement", 1) | ("PreIncrement", 1) | ("PreDecrement", 1) => {
                let delta = if hs.name().contains("De") { -1 } else { 1 };
                let pre = hs.name().starts_with("Pre");
                self.step_assign(&args[0], delta, pre)
            }
            ("AddTo", 2) => self.op_assign(BinOp::Add, &args[0], &args[1]),
            ("SubtractFrom", 2) => self.op_assign(BinOp::Sub, &args[0], &args[1]),
            ("TimesBy", 2) => self.op_assign(BinOp::Mul, &args[0], &args[1]),
            ("DivideBy", 2) => self.op_assign(BinOp::Div, &args[0], &args[1]),
            ("Part", 2) => {
                let (t, tty) = self.expr(&args[0])?;
                let (i, _) = self.expr(&args[1])?;
                let d = self.fresh();
                self.emit(Op::Part1 { d, t, i });
                Ok((d, element_type(tty)))
            }
            ("Part", 3) => {
                let (t, tty) = self.expr(&args[0])?;
                let (i, _) = self.expr(&args[1])?;
                let (j, _) = self.expr(&args[2])?;
                let d = self.fresh();
                self.emit(Op::Part2 { d, t, i, j });
                Ok((d, element_type(tty)))
            }
            ("Length", 1) => {
                let (t, _) = self.expr(&args[0])?;
                let d = self.fresh();
                self.emit(Op::Length { d, s: t });
                Ok((d, VmType::Int))
            }
            ("ConstantArray", 2) => {
                let (c, cty) = self.expr(&args[0])?;
                let spec = &args[1];
                let (n1, n2) = if spec.has_head("List") {
                    match spec.args() {
                        [a] => (self.expr(a)?.0, None),
                        [a, b] => {
                            let r1 = self.expr(a)?.0;
                            let r2 = self.expr(b)?.0;
                            (r1, Some(r2))
                        }
                        _ => return Ok(self.eval_escape(e)),
                    }
                } else {
                    (self.expr(spec)?.0, None)
                };
                let d = self.fresh();
                self.emit(Op::ConstArray { d, c, n1, n2 });
                Ok((d, tensor_of(cty)))
            }
            ("Dot", 2) => {
                let (a, aty) = self.expr(&args[0])?;
                let (b, _) = self.expr(&args[1])?;
                let d = self.fresh();
                self.emit(Op::Dot { d, a, b });
                Ok((d, aty))
            }
            ("BitAnd", 2) => self.binary(BinOp::BitAnd, &args[0], &args[1]),
            ("BitOr", 2) => self.binary(BinOp::BitOr, &args[0], &args[1]),
            ("BitXor", 2) => self.binary(BinOp::BitXor, &args[0], &args[1]),
            ("List", _) => {
                // Literal numeric lists load as packed constant tensors
                // (the PrimeQ seed table was "pasted into" the legacy
                // implementations too).
                if let Some(ints) = args
                    .iter()
                    .map(wolfram_expr::Expr::as_i64)
                    .collect::<Option<Vec<i64>>>()
                {
                    let d = self.fresh();
                    self.emit(Op::LoadConst {
                        d,
                        c: Value::Tensor(wolfram_runtime::Tensor::from_i64(ints)),
                    });
                    return Ok((d, VmType::TensorInt));
                }
                if let Some(reals) = args
                    .iter()
                    .map(wolfram_expr::Expr::as_f64)
                    .collect::<Option<Vec<f64>>>()
                {
                    let d = self.fresh();
                    self.emit(Op::LoadConst {
                        d,
                        c: Value::Tensor(wolfram_runtime::Tensor::from_f64(reals)),
                    });
                    return Ok((d, VmType::TensorReal));
                }
                Ok(self.eval_escape(e))
            }
            ("RandomReal", 0) => {
                let d = self.fresh();
                self.emit(Op::RandomReal {
                    d,
                    lo: None,
                    hi: None,
                });
                Ok((d, VmType::Real))
            }
            ("RandomReal", 1) if args[0].has_head("List") && args[0].length() == 2 => {
                let (lo, _) = self.expr(&args[0].args()[0])?;
                let (hi, _) = self.expr(&args[0].args()[1])?;
                let d = self.fresh();
                self.emit(Op::RandomReal {
                    d,
                    lo: Some(lo),
                    hi: Some(hi),
                });
                Ok((d, VmType::Real))
            }
            ("Break", 0) => {
                let at = self.here();
                self.emit(Op::Jump { pc: usize::MAX });
                match self.loops.last_mut() {
                    Some(frame) => frame.break_patches.push(at),
                    None => return Err(CompileError::Malformed("Break[] outside a loop".into())),
                }
                Ok(self.load_const(Value::Null, VmType::Real))
            }
            ("Continue", 0) => {
                let at = self.here();
                self.emit(Op::Jump { pc: usize::MAX });
                match self.loops.last_mut() {
                    Some(frame) => match frame.continue_target {
                        Some(t) => self.patch_jump(at, t),
                        None => frame.continue_patches.push(at),
                    },
                    None => {
                        return Err(CompileError::Malformed("Continue[] outside a loop".into()))
                    }
                }
                Ok(self.load_const(Value::Null, VmType::Real))
            }
            ("Return", 1) => {
                let (r, ty) = self.expr(&args[0])?;
                self.emit(Op::Return { s: r });
                Ok((r, ty))
            }
            // Everything else escapes to the interpreter at run time.
            _ => Ok(self.eval_escape(e)),
        }
    }

    fn nary(&mut self, op: BinOp, args: &[Expr]) -> Result<(Reg, VmType), CompileError> {
        let mut iter = args.iter();
        let Some(first) = iter.next() else {
            return Ok(self.load_const(
                Value::I64(if op == BinOp::Mul { 1 } else { 0 }),
                VmType::Int,
            ));
        };
        let (mut acc, mut ty) = self.expr(first)?;
        for a in iter {
            let (r, rty) = self.expr(a)?;
            let d = self.fresh();
            self.emit(Op::Bin {
                op,
                d,
                a: acc,
                b: r,
            });
            acc = d;
            ty = ty.join(rty);
        }
        Ok((acc, ty))
    }

    fn binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<(Reg, VmType), CompileError> {
        let (ra, ta) = self.expr(a)?;
        let (rb, tb) = self.expr(b)?;
        let d = self.fresh();
        self.emit(Op::Bin {
            op,
            d,
            a: ra,
            b: rb,
        });
        Ok((
            d,
            if op == BinOp::Div {
                VmType::Real
            } else {
                ta.join(tb)
            },
        ))
    }

    fn unary(&mut self, op: UnOp, a: &Expr) -> Result<(Reg, VmType), CompileError> {
        let (r, ty) = self.expr(a)?;
        let d = self.fresh();
        self.emit(Op::Un { op, d, s: r });
        let out_ty = match op {
            UnOp::Not => VmType::Bool,
            UnOp::Floor | UnOp::Ceiling | UnOp::Round => VmType::Int,
            UnOp::Abs | UnOp::Re | UnOp::Im => {
                if ty == VmType::Int {
                    VmType::Int
                } else {
                    VmType::Real
                }
            }
            UnOp::Neg => ty,
            _ => VmType::Real,
        };
        Ok((d, out_ty))
    }

    fn compare(&mut self, op: CmpOp, args: &[Expr]) -> Result<(Reg, VmType), CompileError> {
        if args.len() < 2 {
            return Ok(self.load_const(Value::Bool(true), VmType::Bool));
        }
        // Chains: a < b < c => (a<b) && (b<c).
        let mut result: Option<Reg> = None;
        let mut prev = self.expr(&args[0])?.0;
        for a in &args[1..] {
            let (cur, _) = self.expr(a)?;
            let d = self.fresh();
            self.emit(Op::Cmp {
                op,
                d,
                a: prev,
                b: cur,
            });
            result = Some(match result {
                None => d,
                Some(acc) => {
                    // acc && d via a tiny dispatch-free min (both bools).
                    let combined = self.fresh();
                    self.emit(Op::Bin {
                        op: BinOp::Min,
                        d: combined,
                        a: acc,
                        b: d,
                    });
                    combined
                }
            });
            prev = cur;
        }
        Ok((result.expect("len checked"), VmType::Bool))
    }

    fn short_circuit(
        &mut self,
        args: &[Expr],
        is_and: bool,
    ) -> Result<(Reg, VmType), CompileError> {
        let d = self.fresh();
        let mut exit_patches = Vec::new();
        for (ix, a) in args.iter().enumerate() {
            let (r, _) = self.expr(a)?;
            self.emit(Op::Move { d, s: r });
            if ix + 1 < args.len() {
                if is_and {
                    // if !r jump out (result already False in d)
                    let at = self.here();
                    self.emit(Op::JumpIfFalse {
                        c: r,
                        pc: usize::MAX,
                    });
                    exit_patches.push(at);
                } else {
                    // if r jump out: emulate with Not + JumpIfFalse.
                    let n = self.fresh();
                    self.emit(Op::Un {
                        op: UnOp::Not,
                        d: n,
                        s: r,
                    });
                    let at = self.here();
                    self.emit(Op::JumpIfFalse {
                        c: n,
                        pc: usize::MAX,
                    });
                    exit_patches.push(at);
                }
            }
        }
        let end = self.here();
        for at in exit_patches {
            self.patch_jump(at, end);
        }
        Ok((d, VmType::Bool))
    }

    fn if_expr(&mut self, args: &[Expr]) -> Result<(Reg, VmType), CompileError> {
        let (c, _) = self.expr(&args[0])?;
        let d = self.fresh();
        let jump_else = self.here();
        self.emit(Op::JumpIfFalse { c, pc: usize::MAX });
        let (t, tty) = self.expr(&args[1])?;
        self.emit(Op::Move { d, s: t });
        let jump_end = self.here();
        self.emit(Op::Jump { pc: usize::MAX });
        let else_start = self.here();
        self.patch_jump(jump_else, else_start);
        let fty = if let Some(fexpr) = args.get(2) {
            let (f, fty) = self.expr(fexpr)?;
            self.emit(Op::Move { d, s: f });
            fty
        } else {
            let (n, nty) = self.load_const(Value::Null, VmType::Real);
            self.emit(Op::Move { d, s: n });
            nty
        };
        let end = self.here();
        self.patch_jump(jump_end, end);
        Ok((d, tty.join(fty)))
    }

    fn while_expr(&mut self, args: &[Expr]) -> Result<(Reg, VmType), CompileError> {
        let top = self.here();
        self.loops.push(LoopFrame {
            break_patches: Vec::new(),
            continue_target: Some(top),
            continue_patches: Vec::new(),
        });
        let (c, _) = self.expr(&args[0])?;
        let exit_jump = self.here();
        self.emit(Op::JumpIfFalse { c, pc: usize::MAX });
        if let Some(body) = args.get(1) {
            self.expr(body)?;
        }
        self.emit(Op::Jump { pc: top });
        let end = self.here();
        self.patch_jump(exit_jump, end);
        let frame = self.loops.pop().expect("pushed above");
        for at in frame.break_patches {
            self.patch_jump(at, end);
        }
        Ok(self.load_const(Value::Null, VmType::Real))
    }

    fn for_expr(&mut self, args: &[Expr]) -> Result<(Reg, VmType), CompileError> {
        self.expr(&args[0])?;
        let top = self.here();
        let (c, _) = self.expr(&args[1])?;
        let exit_jump = self.here();
        self.emit(Op::JumpIfFalse { c, pc: usize::MAX });
        self.loops.push(LoopFrame {
            break_patches: Vec::new(),
            continue_target: None,
            continue_patches: Vec::new(),
        });
        if let Some(body) = args.get(3) {
            self.expr(body)?;
        }
        let incr_start = self.here();
        self.expr(&args[2])?;
        self.emit(Op::Jump { pc: top });
        let end = self.here();
        self.patch_jump(exit_jump, end);
        let frame = self.loops.pop().expect("pushed above");
        for at in frame.break_patches {
            self.patch_jump(at, end);
        }
        for at in frame.continue_patches {
            self.patch_jump(at, incr_start);
        }
        Ok(self.load_const(Value::Null, VmType::Real))
    }

    fn do_expr(&mut self, args: &[Expr]) -> Result<(Reg, VmType), CompileError> {
        // Do[body, {i, a, b}] desugars to a For loop.
        let spec = &args[1];
        if !spec.has_head("List") {
            return Ok(self.eval_escape(&Expr::call("Do", args.to_vec())));
        }
        let (var, lo, hi) = match spec.args() {
            [v, n] => (v.clone(), Expr::int(1), n.clone()),
            [v, a, b] => (v.clone(), a.clone(), b.clone()),
            _ => return Ok(self.eval_escape(&Expr::call("Do", args.to_vec()))),
        };
        let for_equiv = Expr::call(
            "For",
            [
                Expr::call("Set", [var.clone(), lo]),
                Expr::call("LessEqual", [var.clone(), hi]),
                Expr::call(
                    "Set",
                    [var.clone(), Expr::call("Plus", [var, Expr::int(1)])],
                ),
                args[0].clone(),
            ],
        );
        self.expr(&for_equiv)
    }

    fn module(&mut self, args: &[Expr]) -> Result<(Reg, VmType), CompileError> {
        let vars = &args[0];
        if !vars.has_head("List") {
            return Err(CompileError::Malformed("Module variable list".into()));
        }
        let mut saved = Vec::new();
        for spec in vars.args() {
            let (name, init) = if let Some(s) = spec.as_symbol() {
                (s.name().to_owned(), None)
            } else if spec.has_head("Set") && spec.length() == 2 {
                let s = spec.args()[0]
                    .as_symbol()
                    .ok_or_else(|| CompileError::Malformed("Module variable".into()))?;
                (s.name().to_owned(), Some(spec.args()[1].clone()))
            } else {
                return Err(CompileError::Malformed("Module variable".into()));
            };
            saved.push((name.clone(), self.locals.get(&name).copied()));
            let (reg, ty) = match init {
                Some(init) => self.expr(&init)?,
                None => self.load_const(Value::Null, VmType::Real),
            };
            // Allocate a dedicated register so later Sets are in place.
            let slot = self.fresh();
            self.emit(Op::Move { d: slot, s: reg });
            self.locals.insert(name, (slot, ty));
        }
        let result = self.expr(&args[1])?;
        for (name, old) in saved {
            match old {
                Some(v) => {
                    self.locals.insert(name, v);
                }
                None => {
                    self.locals.remove(&name);
                }
            }
        }
        Ok(result)
    }

    fn set(&mut self, lhs: &Expr, rhs: &Expr) -> Result<(Reg, VmType), CompileError> {
        if let Some(s) = lhs.as_symbol() {
            let (r, ty) = self.expr(rhs)?;
            match self.locals.get(s.name()).copied() {
                Some((slot, old_ty)) => {
                    self.emit(Op::Move { d: slot, s: r });
                    let joined = old_ty.join(ty);
                    self.locals.insert(s.name().into(), (slot, joined));
                    Ok((slot, joined))
                }
                None => {
                    let slot = self.fresh();
                    self.emit(Op::Move { d: slot, s: r });
                    self.locals.insert(s.name().into(), (slot, ty));
                    Ok((slot, ty))
                }
            }
        } else if lhs.has_head("Part") {
            let base = &lhs.args()[0];
            let Some(base_sym) = base.as_symbol() else {
                return Err(CompileError::Malformed("Part assignment base".into()));
            };
            let Some(&(t, tty)) = self.locals.get(base_sym.name()) else {
                return Err(CompileError::Malformed(format!(
                    "Part assignment to unknown variable {base_sym}"
                )));
            };
            let (v, _) = self.expr(rhs)?;
            match lhs.args() {
                [_, i] => {
                    let (i, _) = self.expr(i)?;
                    self.emit(Op::SetPart1 { t, i, v });
                }
                [_, i, j] => {
                    let (i, _) = self.expr(i)?;
                    let (j, _) = self.expr(j)?;
                    self.emit(Op::SetPart2 { t, i, j, v });
                }
                _ => return Err(CompileError::Malformed("Part assignment arity".into())),
            }
            Ok((v, element_type(tty)))
        } else {
            Err(CompileError::Malformed(format!(
                "cannot assign to {}",
                lhs.to_input_form()
            )))
        }
    }

    fn step_assign(
        &mut self,
        lhs: &Expr,
        delta: i64,
        pre: bool,
    ) -> Result<(Reg, VmType), CompileError> {
        let Some(s) = lhs.as_symbol() else {
            return Err(CompileError::Malformed("Increment target".into()));
        };
        let Some(&(slot, ty)) = self.locals.get(s.name()) else {
            return Err(CompileError::Malformed(format!("Increment of unknown {s}")));
        };
        let old = self.fresh();
        self.emit(Op::Move { d: old, s: slot });
        let (one, _) = self.load_const(Value::I64(delta), VmType::Int);
        let sum = self.fresh();
        self.emit(Op::Bin {
            op: BinOp::Add,
            d: sum,
            a: slot,
            b: one,
        });
        self.emit(Op::Move { d: slot, s: sum });
        Ok((if pre { slot } else { old }, ty))
    }

    fn op_assign(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<(Reg, VmType), CompileError> {
        let Some(s) = lhs.as_symbol() else {
            return Err(CompileError::Malformed("compound assignment target".into()));
        };
        let Some(&(slot, ty)) = self.locals.get(s.name()) else {
            return Err(CompileError::Malformed(format!(
                "assignment to unknown {s}"
            )));
        };
        let (r, rty) = self.expr(rhs)?;
        let d = self.fresh();
        self.emit(Op::Bin {
            op,
            d,
            a: slot,
            b: r,
        });
        self.emit(Op::Move { d: slot, s: d });
        let joined = ty.join(rty);
        self.locals.insert(s.name().into(), (slot, joined));
        Ok((slot, joined))
    }
}

fn element_type(t: VmType) -> VmType {
    match t {
        VmType::TensorInt => VmType::Int,
        VmType::TensorReal => VmType::Real,
        VmType::TensorComplex => VmType::Complex,
        other => other,
    }
}

fn tensor_of(t: VmType) -> VmType {
    match t {
        VmType::Int => VmType::TensorInt,
        VmType::Complex => VmType::TensorComplex,
        _ => VmType::TensorReal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_expr::parse;
    use wolfram_runtime::Value;

    fn run(specs: &[ArgSpec], src: &str, args: &[Value]) -> Value {
        let cf = BytecodeCompiler::new()
            .compile(specs, &parse(src).unwrap())
            .unwrap();
        cf.run(args).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            run(&[ArgSpec::int("x")], "x^2 + 1", &[Value::I64(6)]),
            Value::I64(37)
        );
        assert_eq!(
            run(&[ArgSpec::real("x")], "Sin[x]", &[Value::F64(0.0)]),
            Value::F64(0.0)
        );
        assert_eq!(run(&[], "Min[3, 7]", &[]), Value::I64(3));
    }

    #[test]
    fn control_flow() {
        let src = "If[x > 0, x, -x]";
        assert_eq!(
            run(&[ArgSpec::int("x")], src, &[Value::I64(-5)]),
            Value::I64(5)
        );
        let src = "Module[{s = 0, i = 1}, While[i <= n, s = s + i; i++]; s]";
        assert_eq!(
            run(&[ArgSpec::int("n")], src, &[Value::I64(100)]),
            Value::I64(5050)
        );
        let src = "Module[{s = 0}, Do[s += k, {k, 1, 10}]; s]";
        assert_eq!(run(&[], src, &[]), Value::I64(55));
    }

    #[test]
    fn loops_with_break() {
        let src = "Module[{i = 0}, While[True, If[i > 3, Break[]]; i++]; i]";
        assert_eq!(run(&[], src, &[]), Value::I64(4));
    }

    #[test]
    fn tensors() {
        let src = "v[[2]] + v[[-1]]";
        let t = Value::Tensor(wolfram_runtime::Tensor::from_i64(vec![10, 20, 30]));
        assert_eq!(run(&[ArgSpec::tensor_int("v")], src, &[t]), Value::I64(50));
        let src = "Module[{b = ConstantArray[0, 3]}, b[[1]] = 7; b[[1]] + Length[b]]";
        assert_eq!(run(&[], src, &[]), Value::I64(10));
    }

    #[test]
    fn type_propagation_defaults_to_real() {
        let cf = BytecodeCompiler::new()
            .compile(&[], &parse("Floor[2.5] + 1").unwrap())
            .unwrap();
        assert_eq!(cf.run(&[]).unwrap(), Value::I64(3));
    }

    #[test]
    fn unsupported_datatypes_rejected() {
        // Strings cannot be represented (L1): the FNV1a workaround exists
        // because of exactly this.
        let err = BytecodeCompiler::new()
            .compile(&[], &parse("StringLength[\"abc\"]").unwrap())
            .unwrap_err();
        assert!(matches!(err, CompileError::Unsupported(_)));
        // Function values cannot be represented: QSort's comparator.
        let err = BytecodeCompiler::new()
            .compile(&[], &parse("f = Function[{a, b}, a < b]; f[1, 2]").unwrap())
            .unwrap_err();
        assert!(matches!(err, CompileError::Unsupported(_)));
    }

    #[test]
    fn unsupported_expressions_escape_to_interpreter() {
        // Fibonacci via an interpreter escape for the unsupported symbol.
        let cf = BytecodeCompiler::new()
            .compile(&[ArgSpec::int("n")], &parse("n + unknownGlobal").unwrap())
            .unwrap();
        assert!(cf.ops.iter().any(|op| matches!(op, Op::Eval { .. })));
        let mut engine = wolfram_interp::Interpreter::new();
        engine.eval_src("unknownGlobal = 100").unwrap();
        let out = cf.run_with_engine(&[Value::I64(1)], &mut engine).unwrap();
        assert_eq!(out, Value::I64(101));
    }

    #[test]
    fn compile_expr_form() {
        let e = parse("Compile[{{x, _Real}}, Sin[x] + E^x]").unwrap();
        let cf = BytecodeCompiler::new().compile_compile_expr(&e).unwrap();
        let out = cf.run(&[Value::F64(0.0)]).unwrap();
        assert_eq!(out, Value::F64(1.0));
        assert_eq!(cf.arg_specs[0].ty, VmType::Real);
    }

    #[test]
    fn and_or_short_circuit() {
        assert_eq!(
            run(&[ArgSpec::int("x")], "x > 0 && x < 10", &[Value::I64(5)]),
            Value::Bool(true)
        );
        assert_eq!(
            run(&[ArgSpec::int("x")], "x > 0 && x < 10", &[Value::I64(-1)]),
            Value::Bool(false)
        );
        assert_eq!(
            run(&[ArgSpec::int("x")], "x < 0 || x > 10", &[Value::I64(11)]),
            Value::Bool(true)
        );
    }

    #[test]
    fn comparison_chains() {
        assert_eq!(
            run(&[ArgSpec::int("x")], "0 < x < 10", &[Value::I64(5)]),
            Value::Bool(true)
        );
        assert_eq!(
            run(&[ArgSpec::int("x")], "0 < x < 10", &[Value::I64(15)]),
            Value::Bool(false)
        );
    }
}
