//! The legacy bytecode compiler and Wolfram Virtual Machine (§2.2) — the
//! paper's baseline.
//!
//! Bundled "since Version 2", this compiler deliberately reproduces the
//! design limitations the paper enumerates:
//!
//! - **L1 Expressiveness** — only numerical code compiles: machine
//!   integers, reals, complex numbers, tensors of those, and booleans. No
//!   strings, no symbolic expressions, no function values (the QSort
//!   benchmark "cannot be represented").
//! - **L2 Extensibility** — the datatype and instruction sets are fixed;
//!   there is no user extension point.
//! - **L3 Performance** — execution is a virtual machine over *boxed*
//!   values with per-instruction dynamic type dispatch, and functions are
//!   never inlined.
//! - Type propagation assumes `Real` for unknown types (§2.2), and
//!   unsupported expressions compile into an instruction that calls the
//!   interpreter at run time.
//! - Runtime numeric errors re-run the whole function in the interpreter
//!   (soft failure, F2); a user abort unwinds without killing the session
//!   (F3).
//!
//! # Examples
//!
//! ```
//! use wolfram_bytecode::{ArgSpec, BytecodeCompiler};
//! use wolfram_expr::parse;
//! use wolfram_runtime::Value;
//!
//! let body = parse("x^2 + 1")?;
//! let cf = BytecodeCompiler::new().compile(&[ArgSpec::real("x")], &body).unwrap();
//! let out = cf.run(&[Value::F64(3.0)]).unwrap();
//! assert_eq!(out, Value::F64(10.0));
//! # Ok::<(), wolfram_expr::ParseError>(())
//! ```

pub mod compile;
pub mod compiled_function;
pub mod image;
pub mod instr;
pub mod vm;

pub use compile::{ArgSpec, BytecodeCompiler, CompileError};
pub use compiled_function::{CompiledFunction, StreamRunner};
pub use image::{from_image, to_image, ImageError, IMAGE_VERSION};
pub use instr::{Op, VmType};
