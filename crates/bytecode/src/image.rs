//! Binary images of [`CompiledFunction`]s for the disk-backed artifact
//! cache.
//!
//! The paper's `CompiledFunction` is a *serialized object* by design
//! (§2.2 shows the `InputForm` dump); this module gives it a compact,
//! versioned binary form so a serving process can persist compiled
//! bytecode and start warm after a restart. Design rules:
//!
//! - **Versioned**: the image starts with a magic + format version; any
//!   mismatch is a load failure, never a guess. Bump
//!   [`IMAGE_VERSION`] whenever the `Op` encoding changes.
//! - **Corruption-tolerant**: every read is bounds-checked and every tag
//!   validated; a truncated or bit-flipped image yields
//!   [`ImageError`], not a panic. (The disk layer adds a checksum on
//!   top; this layer must still never trust its input.)
//! - **Closed over the VM's data model**: constants are the bytecode
//!   lattice (`Null`/`Bool`/`Int`/`Real`/`Complex`/`Str`/packed tensors)
//!   plus expressions, which round-trip through canonical `FullForm`
//!   text. Function values cannot appear in bytecode constants and are
//!   rejected at write time.

use crate::compile::ArgSpec;
use crate::compiled_function::CompiledFunction;
use crate::instr::{BinOp, CmpOp, Op, Reg, UnOp, VmType};
use wolfram_expr::Expr;
use wolfram_runtime::{Tensor, TensorData, Value};

/// Image magic: "WLBC" (Wolfram Language ByteCode).
pub const IMAGE_MAGIC: [u8; 4] = *b"WLBC";
/// Format version; bump on any encoding change.
pub const IMAGE_VERSION: u32 = 1;

/// Why an image failed to load (or a function failed to serialize).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The image is shorter than a field it promises.
    Truncated,
    /// The magic bytes are wrong — not an image at all.
    BadMagic,
    /// The format version is not [`IMAGE_VERSION`].
    BadVersion(u32),
    /// An enum tag byte is out of range.
    BadTag(&'static str, u8),
    /// An embedded expression failed to re-parse.
    BadExpr(String),
    /// The function embeds a value with no serial form (e.g. a closure).
    Unsupported(&'static str),
    /// Trailing garbage after a structurally complete image.
    TrailingBytes,
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "image truncated"),
            ImageError::BadMagic => write!(f, "bad image magic"),
            ImageError::BadVersion(v) => {
                write!(f, "image version {v} != supported {IMAGE_VERSION}")
            }
            ImageError::BadTag(what, t) => write!(f, "bad {what} tag {t}"),
            ImageError::BadExpr(e) => write!(f, "embedded expression: {e}"),
            ImageError::Unsupported(what) => write!(f, "unserializable constant: {what}"),
            ImageError::TrailingBytes => write!(f, "trailing bytes after image"),
        }
    }
}

impl std::error::Error for ImageError {}

/// Serializes a compiled function to a versioned binary image.
///
/// # Errors
///
/// [`ImageError::Unsupported`] if a constant has no serial form
/// (function values; never produced by the bytecode compiler).
pub fn to_image(cf: &CompiledFunction) -> Result<Vec<u8>, ImageError> {
    let mut w = Vec::with_capacity(256);
    w.extend_from_slice(&IMAGE_MAGIC);
    put_u32(&mut w, IMAGE_VERSION);
    put_u32(&mut w, cf.compiler_version);
    put_u32(&mut w, cf.engine_version);
    put_u32(&mut w, cf.flags);
    put_u32(&mut w, len_u32(cf.arg_specs.len()));
    for spec in &cf.arg_specs {
        put_str(&mut w, &spec.name);
        w.push(vmtype_tag(spec.ty));
    }
    put_u32(&mut w, len_u32(cf.nregs));
    put_u32(&mut w, len_u32(cf.ops.len()));
    for op in &cf.ops {
        put_op(&mut w, op)?;
    }
    put_expr(&mut w, &cf.original);
    Ok(w)
}

/// Deserializes an image produced by [`to_image`].
///
/// # Errors
///
/// Any structural defect — truncation, bad magic/version/tags, trailing
/// bytes, unparseable embedded expressions — is an [`ImageError`].
pub fn from_image(bytes: &[u8]) -> Result<CompiledFunction, ImageError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != IMAGE_MAGIC {
        return Err(ImageError::BadMagic);
    }
    let version = r.u32()?;
    if version != IMAGE_VERSION {
        return Err(ImageError::BadVersion(version));
    }
    let compiler_version = r.u32()?;
    let engine_version = r.u32()?;
    let flags = r.u32()?;
    let nspecs = r.len()?;
    let mut arg_specs = Vec::with_capacity(nspecs.min(64));
    for _ in 0..nspecs {
        let name = r.string()?;
        let ty = vmtype_untag(r.u8()?)?;
        arg_specs.push(ArgSpec { name, ty });
    }
    let nregs = r.len()?;
    let nops = r.len()?;
    let mut ops = Vec::with_capacity(nops.min(4096));
    for _ in 0..nops {
        ops.push(r.op()?);
    }
    let original = r.expr()?;
    if r.pos != r.bytes.len() {
        return Err(ImageError::TrailingBytes);
    }
    Ok(CompiledFunction {
        compiler_version,
        engine_version,
        flags,
        arg_specs,
        ops,
        nregs,
        original,
    })
}

// ---- writer primitives -------------------------------------------------

fn len_u32(n: usize) -> u32 {
    u32::try_from(n).expect("collection length fits u32")
}

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    put_u32(w, len_u32(s.len()));
    w.extend_from_slice(s.as_bytes());
}

fn put_reg(w: &mut Vec<u8>, r: Reg) {
    w.extend_from_slice(&r.to_le_bytes());
}

fn put_opt_reg(w: &mut Vec<u8>, r: Option<Reg>) {
    match r {
        None => w.push(0),
        Some(r) => {
            w.push(1);
            put_reg(w, r);
        }
    }
}

fn put_expr(w: &mut Vec<u8>, e: &Expr) {
    // Canonical FullForm erases formatting and always re-parses.
    put_str(w, &e.to_full_form());
}

fn put_value(w: &mut Vec<u8>, v: &Value) -> Result<(), ImageError> {
    match v {
        Value::Null => w.push(0),
        Value::Bool(b) => {
            w.push(1);
            w.push(u8::from(*b));
        }
        Value::I64(n) => {
            w.push(2);
            put_u64(w, *n as u64);
        }
        Value::F64(x) => {
            w.push(3);
            put_u64(w, x.to_bits());
        }
        Value::Complex(re, im) => {
            w.push(4);
            put_u64(w, re.to_bits());
            put_u64(w, im.to_bits());
        }
        Value::Str(s) => {
            w.push(5);
            put_str(w, s);
        }
        Value::Tensor(t) => {
            w.push(6);
            put_u32(w, len_u32(t.rank()));
            for d in t.shape() {
                put_u64(w, *d as u64);
            }
            match t.data() {
                TensorData::I64(v) => {
                    w.push(0);
                    for x in v {
                        put_u64(w, *x as u64);
                    }
                }
                TensorData::F64(v) => {
                    w.push(1);
                    for x in v {
                        put_u64(w, x.to_bits());
                    }
                }
                TensorData::Complex(v) => {
                    w.push(2);
                    for (re, im) in v {
                        put_u64(w, re.to_bits());
                        put_u64(w, im.to_bits());
                    }
                }
            }
        }
        Value::Expr(e) => {
            w.push(7);
            put_expr(w, e);
        }
        Value::Big(b) => {
            // Decimal text; exact and stable across versions.
            w.push(8);
            put_str(w, &b.to_string());
        }
        Value::Function(_) => return Err(ImageError::Unsupported("function value")),
    }
    Ok(())
}

fn put_op(w: &mut Vec<u8>, op: &Op) -> Result<(), ImageError> {
    match op {
        Op::LoadConst { d, c } => {
            w.push(0);
            put_reg(w, *d);
            put_value(w, c)?;
        }
        Op::Move { d, s } => {
            w.push(1);
            put_reg(w, *d);
            put_reg(w, *s);
        }
        Op::Bin { op, d, a, b } => {
            w.push(2);
            w.push(binop_tag(*op));
            put_reg(w, *d);
            put_reg(w, *a);
            put_reg(w, *b);
        }
        Op::Un { op, d, s } => {
            w.push(3);
            w.push(unop_tag(*op));
            put_reg(w, *d);
            put_reg(w, *s);
        }
        Op::Cmp { op, d, a, b } => {
            w.push(4);
            w.push(cmpop_tag(*op));
            put_reg(w, *d);
            put_reg(w, *a);
            put_reg(w, *b);
        }
        Op::ComplexMake { d, re, im } => {
            w.push(5);
            put_reg(w, *d);
            put_reg(w, *re);
            put_reg(w, *im);
        }
        Op::Length { d, s } => {
            w.push(6);
            put_reg(w, *d);
            put_reg(w, *s);
        }
        Op::Part1 { d, t, i } => {
            w.push(7);
            put_reg(w, *d);
            put_reg(w, *t);
            put_reg(w, *i);
        }
        Op::Part2 { d, t, i, j } => {
            w.push(8);
            put_reg(w, *d);
            put_reg(w, *t);
            put_reg(w, *i);
            put_reg(w, *j);
        }
        Op::SetPart1 { t, i, v } => {
            w.push(9);
            put_reg(w, *t);
            put_reg(w, *i);
            put_reg(w, *v);
        }
        Op::SetPart2 { t, i, j, v } => {
            w.push(10);
            put_reg(w, *t);
            put_reg(w, *i);
            put_reg(w, *j);
            put_reg(w, *v);
        }
        Op::ConstArray { d, c, n1, n2 } => {
            w.push(11);
            put_reg(w, *d);
            put_reg(w, *c);
            put_reg(w, *n1);
            put_opt_reg(w, *n2);
        }
        Op::Dot { d, a, b } => {
            w.push(12);
            put_reg(w, *d);
            put_reg(w, *a);
            put_reg(w, *b);
        }
        Op::Jump { pc } => {
            w.push(13);
            put_u64(w, *pc as u64);
        }
        Op::JumpIfFalse { c, pc } => {
            w.push(14);
            put_reg(w, *c);
            put_u64(w, *pc as u64);
        }
        Op::RandomReal { d, lo, hi } => {
            w.push(15);
            put_reg(w, *d);
            put_opt_reg(w, *lo);
            put_opt_reg(w, *hi);
        }
        Op::Eval { d, expr, env } => {
            w.push(16);
            put_reg(w, *d);
            put_expr(w, expr);
            put_u32(w, len_u32(env.len()));
            for (name, reg) in env {
                put_str(w, name);
                put_reg(w, *reg);
            }
        }
        Op::Return { s } => {
            w.push(17);
            put_reg(w, *s);
        }
    }
    Ok(())
}

fn vmtype_tag(t: VmType) -> u8 {
    match t {
        VmType::Bool => 0,
        VmType::Int => 1,
        VmType::Real => 2,
        VmType::Complex => 3,
        VmType::TensorInt => 4,
        VmType::TensorReal => 5,
        VmType::TensorComplex => 6,
    }
}

fn vmtype_untag(t: u8) -> Result<VmType, ImageError> {
    Ok(match t {
        0 => VmType::Bool,
        1 => VmType::Int,
        2 => VmType::Real,
        3 => VmType::Complex,
        4 => VmType::TensorInt,
        5 => VmType::TensorReal,
        6 => VmType::TensorComplex,
        t => return Err(ImageError::BadTag("VmType", t)),
    })
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Pow => 4,
        BinOp::Mod => 5,
        BinOp::Quot => 6,
        BinOp::Min => 7,
        BinOp::Max => 8,
        BinOp::BitAnd => 9,
        BinOp::BitOr => 10,
        BinOp::BitXor => 11,
    }
}

fn binop_untag(t: u8) -> Result<BinOp, ImageError> {
    Ok(match t {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Pow,
        5 => BinOp::Mod,
        6 => BinOp::Quot,
        7 => BinOp::Min,
        8 => BinOp::Max,
        9 => BinOp::BitAnd,
        10 => BinOp::BitOr,
        11 => BinOp::BitXor,
        t => return Err(ImageError::BadTag("BinOp", t)),
    })
}

fn unop_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Abs => 1,
        UnOp::Sqrt => 2,
        UnOp::Sin => 3,
        UnOp::Cos => 4,
        UnOp::Tan => 5,
        UnOp::Exp => 6,
        UnOp::Log => 7,
        UnOp::Floor => 8,
        UnOp::Ceiling => 9,
        UnOp::Round => 10,
        UnOp::Re => 11,
        UnOp::Im => 12,
        UnOp::Not => 13,
    }
}

fn unop_untag(t: u8) -> Result<UnOp, ImageError> {
    Ok(match t {
        0 => UnOp::Neg,
        1 => UnOp::Abs,
        2 => UnOp::Sqrt,
        3 => UnOp::Sin,
        4 => UnOp::Cos,
        5 => UnOp::Tan,
        6 => UnOp::Exp,
        7 => UnOp::Log,
        8 => UnOp::Floor,
        9 => UnOp::Ceiling,
        10 => UnOp::Round,
        11 => UnOp::Re,
        12 => UnOp::Im,
        13 => UnOp::Not,
        t => return Err(ImageError::BadTag("UnOp", t)),
    })
}

fn cmpop_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Gt => 2,
        CmpOp::Ge => 3,
        CmpOp::Eq => 4,
        CmpOp::Ne => 5,
    }
}

fn cmpop_untag(t: u8) -> Result<CmpOp, ImageError> {
    Ok(match t {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        5 => CmpOp::Ne,
        t => return Err(ImageError::BadTag("CmpOp", t)),
    })
}

// ---- reader ------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        let end = self.pos.checked_add(n).ok_or(ImageError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ImageError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ImageError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ImageError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn len(&mut self) -> Result<usize, ImageError> {
        Ok(self.u32()? as usize)
    }

    fn string(&mut self) -> Result<String, ImageError> {
        let n = self.len()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| ImageError::Truncated)
    }

    fn reg(&mut self) -> Result<Reg, ImageError> {
        self.u16()
    }

    fn opt_reg(&mut self) -> Result<Option<Reg>, ImageError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.reg()?)),
            t => Err(ImageError::BadTag("Option<Reg>", t)),
        }
    }

    fn expr(&mut self) -> Result<Expr, ImageError> {
        let text = self.string()?;
        wolfram_expr::parse(&text).map_err(|e| ImageError::BadExpr(e.to_string()))
    }

    fn value(&mut self) -> Result<Value, ImageError> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::I64(self.u64()? as i64),
            3 => Value::F64(f64::from_bits(self.u64()?)),
            4 => Value::Complex(f64::from_bits(self.u64()?), f64::from_bits(self.u64()?)),
            5 => Value::Str(std::sync::Arc::new(self.string()?)),
            6 => {
                let rank = self.len()?;
                let mut shape = Vec::with_capacity(rank.min(16));
                for _ in 0..rank {
                    shape.push(self.u64()? as usize);
                }
                let count = shape.iter().try_fold(1usize, |acc, d| {
                    acc.checked_mul(*d).ok_or(ImageError::Truncated)
                })?;
                // Every element needs >= 8 bytes still unread; corrupted
                // dims must fail here, not drive a huge allocation.
                if count.saturating_mul(8) > self.bytes.len() - self.pos {
                    return Err(ImageError::Truncated);
                }
                let data = match self.u8()? {
                    0 => {
                        let mut v = Vec::with_capacity(count);
                        for _ in 0..count {
                            v.push(self.u64()? as i64);
                        }
                        TensorData::I64(v)
                    }
                    1 => {
                        let mut v = Vec::with_capacity(count);
                        for _ in 0..count {
                            v.push(f64::from_bits(self.u64()?));
                        }
                        TensorData::F64(v)
                    }
                    2 => {
                        let mut v = Vec::with_capacity(count);
                        for _ in 0..count {
                            v.push((f64::from_bits(self.u64()?), f64::from_bits(self.u64()?)));
                        }
                        TensorData::Complex(v)
                    }
                    t => return Err(ImageError::BadTag("TensorData", t)),
                };
                let tensor = Tensor::with_shape(shape, data)
                    .map_err(|e| ImageError::BadExpr(e.to_string()))?;
                Value::Tensor(tensor)
            }
            7 => Value::Expr(self.expr()?),
            8 => {
                let text = self.string()?;
                let big = wolfram_expr::BigInt::parse(&text)
                    .ok_or_else(|| ImageError::BadExpr(format!("bad bignum {text:?}")))?;
                Value::Big(std::sync::Arc::new(big))
            }
            t => return Err(ImageError::BadTag("Value", t)),
        })
    }

    fn op(&mut self) -> Result<Op, ImageError> {
        Ok(match self.u8()? {
            0 => Op::LoadConst {
                d: self.reg()?,
                c: self.value()?,
            },
            1 => Op::Move {
                d: self.reg()?,
                s: self.reg()?,
            },
            2 => Op::Bin {
                op: binop_untag(self.u8()?)?,
                d: self.reg()?,
                a: self.reg()?,
                b: self.reg()?,
            },
            3 => Op::Un {
                op: unop_untag(self.u8()?)?,
                d: self.reg()?,
                s: self.reg()?,
            },
            4 => Op::Cmp {
                op: cmpop_untag(self.u8()?)?,
                d: self.reg()?,
                a: self.reg()?,
                b: self.reg()?,
            },
            5 => Op::ComplexMake {
                d: self.reg()?,
                re: self.reg()?,
                im: self.reg()?,
            },
            6 => Op::Length {
                d: self.reg()?,
                s: self.reg()?,
            },
            7 => Op::Part1 {
                d: self.reg()?,
                t: self.reg()?,
                i: self.reg()?,
            },
            8 => Op::Part2 {
                d: self.reg()?,
                t: self.reg()?,
                i: self.reg()?,
                j: self.reg()?,
            },
            9 => Op::SetPart1 {
                t: self.reg()?,
                i: self.reg()?,
                v: self.reg()?,
            },
            10 => Op::SetPart2 {
                t: self.reg()?,
                i: self.reg()?,
                j: self.reg()?,
                v: self.reg()?,
            },
            11 => Op::ConstArray {
                d: self.reg()?,
                c: self.reg()?,
                n1: self.reg()?,
                n2: self.opt_reg()?,
            },
            12 => Op::Dot {
                d: self.reg()?,
                a: self.reg()?,
                b: self.reg()?,
            },
            13 => Op::Jump {
                pc: self.u64()? as usize,
            },
            14 => Op::JumpIfFalse {
                c: self.reg()?,
                pc: self.u64()? as usize,
            },
            15 => Op::RandomReal {
                d: self.reg()?,
                lo: self.opt_reg()?,
                hi: self.opt_reg()?,
            },
            16 => {
                let d = self.reg()?;
                let expr = self.expr()?;
                let n = self.len()?;
                let mut env = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let name = self.string()?;
                    let reg = self.reg()?;
                    env.push((name, reg));
                }
                Op::Eval { d, expr, env }
            }
            17 => Op::Return { s: self.reg()? },
            t => return Err(ImageError::BadTag("Op", t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::BytecodeCompiler;
    use wolfram_expr::parse;
    use wolfram_interp::Interpreter;

    fn compile(specs: &[ArgSpec], src: &str) -> CompiledFunction {
        BytecodeCompiler::new()
            .compile(specs, &parse(src).unwrap())
            .unwrap()
    }

    fn roundtrip(cf: &CompiledFunction) -> CompiledFunction {
        let bytes = to_image(cf).unwrap();
        from_image(&bytes).unwrap()
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let cf = compile(
            &[ArgSpec::int("n")],
            "Module[{a = 0, b = 1, k = 0, t = 0},
               While[k < n, t = a + b; a = b; b = t; k++]; a]",
        );
        let back = roundtrip(&cf);
        assert_eq!(back.compiler_version, cf.compiler_version);
        assert_eq!(back.engine_version, cf.engine_version);
        assert_eq!(back.flags, cf.flags);
        assert_eq!(back.nregs, cf.nregs);
        assert_eq!(back.ops, cf.ops);
        assert_eq!(back.original.to_full_form(), cf.original.to_full_form());
        assert_eq!(
            back.run(&[Value::I64(30)]).unwrap(),
            cf.run(&[Value::I64(30)]).unwrap()
        );
    }

    #[test]
    fn roundtrip_tensor_constants_and_reals() {
        // Packed tensor constants and real arithmetic exercise the
        // Tensor and F64 value encodings bit-exactly.
        let cf = compile(
            &[ArgSpec::int("i")],
            "{2, 3, 5, 7, 11}[[i]] + Length[{1.5, 2.5}]",
        );
        let back = roundtrip(&cf);
        assert_eq!(back.ops, cf.ops);
        assert_eq!(back.run(&[Value::I64(3)]).unwrap(), Value::I64(7));
    }

    #[test]
    fn roundtrip_eval_escape() {
        // An interpreter escape embeds an Expr + env in the stream
        // (`Total` is outside the bytecode subset, so it escapes).
        let cf = compile(&[ArgSpec::int("n")], "Total[{1, 2, 3}] + n");
        assert!(
            cf.ops.iter().any(|op| matches!(op, Op::Eval { .. })),
            "expected an interpreter escape in {:?}",
            cf.ops
        );
        let back = roundtrip(&cf);
        assert_eq!(back.ops, cf.ops);
        let mut engine = Interpreter::new();
        let out = back.run_with_engine(&[Value::I64(4)], &mut engine).unwrap();
        assert_eq!(out, Value::I64(10));
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let cf = compile(&[ArgSpec::real("x")], "Sin[x] + x^2");
        let bytes = to_image(&cf).unwrap();
        for n in 0..bytes.len() {
            assert!(
                from_image(&bytes[..n]).is_err(),
                "prefix of {n} bytes should fail to load"
            );
        }
    }

    #[test]
    fn bad_magic_version_and_trailing_bytes_rejected() {
        let cf = compile(&[ArgSpec::int("n")], "n + 1");
        let good = to_image(&cf).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(from_image(&bad_magic).unwrap_err(), ImageError::BadMagic);

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(
            from_image(&bad_version),
            Err(ImageError::BadVersion(_))
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            from_image(&trailing).unwrap_err(),
            ImageError::TrailingBytes
        );

        assert!(from_image(&good).is_ok());
    }

    #[test]
    fn bitflips_never_panic() {
        // Flip every byte (one at a time) and require load() to return —
        // Ok or Err, never a panic or wild allocation.
        let cf = compile(
            &[ArgSpec::int("i")],
            "{2, 3, 5, 7, 11}[[i]] + If[i > 1, Prime[i], 0]",
        );
        let bytes = to_image(&cf).unwrap();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xff;
            let _ = from_image(&corrupt);
        }
    }
}
