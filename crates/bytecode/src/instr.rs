//! The WVM instruction set: a register machine over boxed [`Value`]s.

use wolfram_expr::Expr;
use wolfram_runtime::Value;

/// A virtual-machine register index.
pub type Reg = u16;

/// The fixed datatype lattice of the bytecode compiler (§2.2): "machine
/// integers ..., reals, complex numbers, tensor representations of these
/// scalars, and booleans". Unknown types are assumed to be `Real`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmType {
    /// Boolean.
    Bool,
    /// Machine integer (int64 on the 64-bit systems modeled here).
    Int,
    /// Machine real.
    Real,
    /// Machine complex.
    Complex,
    /// Packed integer array.
    TensorInt,
    /// Packed real array.
    TensorReal,
    /// Packed complex array.
    TensorComplex,
}

impl VmType {
    /// Numeric join used by the type propagator.
    pub fn join(self, other: VmType) -> VmType {
        use VmType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Int, Real) | (Real, Int) => Real,
            (Int, Complex) | (Complex, Int) | (Real, Complex) | (Complex, Real) => Complex,
            (TensorInt, TensorReal) | (TensorReal, TensorInt) => TensorReal,
            // Anything else degrades to Real, the compiler's default.
            _ => Real,
        }
    }

    /// Whether this is a tensor type.
    pub fn is_tensor(self) -> bool {
        matches!(
            self,
            VmType::TensorInt | VmType::TensorReal | VmType::TensorComplex
        )
    }
}

/// Binary numeric operations (dispatched dynamically over boxed values —
/// the performance cost the paper measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation.
    Pow,
    /// Wolfram `Mod`.
    Mod,
    /// Flooring `Quotient` (`Floor[m/n]`, the Wolfram convention).
    Quot,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise and (integers only).
    BitAnd,
    /// Bitwise or (integers only).
    BitOr,
    /// Bitwise xor (integers only).
    BitXor,
}

/// Unary numeric operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Absolute value (complex -> real).
    Abs,
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent.
    Tan,
    /// Exponential.
    Exp,
    /// Natural log.
    Log,
    /// Floor to integer.
    Floor,
    /// Ceiling to integer.
    Ceiling,
    /// Round half-even to integer.
    Round,
    /// Real part.
    Re,
    /// Imaginary part.
    Im,
    /// Boolean not.
    Not,
}

/// Comparison operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A WVM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `r[d] = c`
    LoadConst {
        /// Destination.
        d: Reg,
        /// The constant (boxed).
        c: Value,
    },
    /// `r[d] = r[s]`
    Move {
        /// Destination.
        d: Reg,
        /// Source.
        s: Reg,
    },
    /// `r[d] = r[a] op r[b]` with dynamic numeric dispatch.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r[d] = op r[s]`
    Un {
        /// Operation.
        op: UnOp,
        /// Destination.
        d: Reg,
        /// Operand.
        s: Reg,
    },
    /// `r[d] = r[a] cmp r[b]`
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Destination (boolean).
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r[d] = Complex(r[re], r[im])`
    ComplexMake {
        /// Destination.
        d: Reg,
        /// Real part.
        re: Reg,
        /// Imaginary part.
        im: Reg,
    },
    /// `r[d] = Length(r[s])`
    Length {
        /// Destination.
        d: Reg,
        /// The tensor.
        s: Reg,
    },
    /// `r[d] = r[t][[r[i]]]` (1-based, negative allowed).
    Part1 {
        /// Destination.
        d: Reg,
        /// The tensor.
        t: Reg,
        /// The index.
        i: Reg,
    },
    /// `r[d] = r[t][[r[i], r[j]]]`
    Part2 {
        /// Destination.
        d: Reg,
        /// The tensor (rank 2).
        t: Reg,
        /// Row index.
        i: Reg,
        /// Column index.
        j: Reg,
    },
    /// `r[t][[r[i]]] = r[v]` (copy-on-write).
    SetPart1 {
        /// The tensor register (updated in place).
        t: Reg,
        /// The index.
        i: Reg,
        /// The value.
        v: Reg,
    },
    /// `r[t][[r[i], r[j]]] = r[v]`
    SetPart2 {
        /// The tensor register.
        t: Reg,
        /// Row index.
        i: Reg,
        /// Column index.
        j: Reg,
        /// The value.
        v: Reg,
    },
    /// `r[d] = ConstantArray(r[c], dims from r[n1] (, r[n2]))`
    ConstArray {
        /// Destination.
        d: Reg,
        /// Fill element.
        c: Reg,
        /// First dimension.
        n1: Reg,
        /// Optional second dimension.
        n2: Option<Reg>,
    },
    /// `r[d] = Dot(r[a], r[b])` via the shared runtime kernel.
    Dot {
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Unconditional jump to instruction index.
    Jump {
        /// Target pc.
        pc: usize,
    },
    /// Jump when the register holds `False`.
    JumpIfFalse {
        /// Condition register.
        c: Reg,
        /// Target pc.
        pc: usize,
    },
    /// `r[d] = RandomReal[lo, hi]` (uniform; the classic compiler supports
    /// random number generation natively).
    RandomReal {
        /// Destination.
        d: Reg,
        /// Lower bound register (`None` = 0).
        lo: Option<Reg>,
        /// Upper bound register (`None` = 1).
        hi: Option<Reg>,
    },
    /// "If an expression is not supported by the compiler, then the
    /// compiler inserts a statement which invokes the interpreter at
    /// runtime to evaluate that expression" (§2.2).
    Eval {
        /// Destination for the (re-boxed) result.
        d: Reg,
        /// The expression to evaluate.
        expr: Expr,
        /// Local bindings to install: `(name, register)`.
        env: Vec<(String, Reg)>,
    },
    /// Return the register's value.
    Return {
        /// The result register.
        s: Reg,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_join_defaults_to_real() {
        assert_eq!(VmType::Int.join(VmType::Int), VmType::Int);
        assert_eq!(VmType::Int.join(VmType::Real), VmType::Real);
        assert_eq!(VmType::Real.join(VmType::Complex), VmType::Complex);
        // Incompatible joins degrade to Real, the bytecode default.
        assert_eq!(VmType::Bool.join(VmType::TensorInt), VmType::Real);
        assert!(VmType::TensorReal.is_tensor());
        assert!(!VmType::Real.is_tensor());
    }
}
