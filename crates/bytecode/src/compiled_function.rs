//! `CompiledFunction`: the serialized compiled object, mirroring the
//! paper's §2.2 `InputForm` dump, plus the runtime entry points with soft
//! failure and version checking.

use crate::compile::ArgSpec;
use crate::instr::{Op, VmType};
use crate::vm;
use wolfram_expr::Expr;
use wolfram_interp::Interpreter;
use wolfram_runtime::{AbortSignal, RuntimeError, Value};

/// A bytecode-compiled function.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// Compiler version recorded at compile time (paper shows `11`).
    pub compiler_version: u32,
    /// Engine version recorded at compile time (paper shows `12`).
    pub engine_version: u32,
    /// Compile flags word (paper shows `5468`).
    pub flags: u32,
    /// Typed argument specifications.
    pub arg_specs: Vec<ArgSpec>,
    /// The instruction stream.
    pub ops: Vec<Op>,
    /// Number of virtual-machine registers ("Register Allocations").
    pub nregs: usize,
    /// The original input function, kept for the interpreter fallback:
    /// "Functions that fail to compile, or produce a runtime error, are
    /// run using the interpreter."
    pub original: Expr,
}

impl CompiledFunction {
    /// Number of instructions.
    pub fn instruction_count(&self) -> usize {
        self.ops.len()
    }

    /// Runs the compiled code with pre-unboxed values and no engine:
    /// interpreter escapes and soft failure are unavailable.
    ///
    /// # Errors
    ///
    /// Propagates VM runtime errors.
    pub fn run(&self, args: &[Value]) -> Result<Value, RuntimeError> {
        self.run_abortable(args, &AbortSignal::new())
    }

    /// Runs with an abort signal (F3).
    ///
    /// # Errors
    ///
    /// Propagates VM runtime errors, including [`RuntimeError::Aborted`].
    pub fn run_abortable(
        &self,
        args: &[Value],
        abort: &AbortSignal,
    ) -> Result<Value, RuntimeError> {
        self.check_args(args)?;
        vm::execute(&self.ops, self.nregs.max(args.len()), args, abort, None)
    }

    /// Runs hosted in a Wolfram Engine: interpreter escapes work, and a
    /// runtime *numeric* error reverts to uncompiled evaluation (F2).
    ///
    /// # Errors
    ///
    /// Hard errors (aborts, type errors) still propagate.
    pub fn run_with_engine(
        &self,
        args: &[Value],
        engine: &mut Interpreter,
    ) -> Result<Value, RuntimeError> {
        self.check_args(args)?;
        let abort = engine.abort_signal().clone();
        match vm::execute(
            &self.ops,
            self.nregs.max(args.len()),
            args,
            &abort,
            Some(engine),
        ) {
            Ok(v) => Ok(v),
            Err(e) if e.is_numeric() => {
                engine.push_output(format!(
                    "CompiledFunction: a compiled function runtime error occurred; \
                     reverting to uncompiled evaluation: {}",
                    e.tag()
                ));
                self.interpret(args, engine)
            }
            Err(e) => Err(e),
        }
    }

    /// Evaluates the original function in the interpreter (the fallback
    /// path, also used when argument types do not match the specs).
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn interpret(
        &self,
        args: &[Value],
        engine: &mut Interpreter,
    ) -> Result<Value, RuntimeError> {
        // Rebuild Function[{params}, body] and apply.
        let params: Vec<Expr> = self.arg_specs.iter().map(|s| Expr::sym(&s.name)).collect();
        let f = Expr::call("Function", [Expr::list(params), self.original.clone()]);
        let call = Expr::normal(f, args.iter().map(Value::to_expr).collect::<Vec<_>>());
        engine.eval(&call).map(|e| Value::from_expr(&e))
    }

    fn check_args(&self, args: &[Value]) -> Result<(), RuntimeError> {
        if args.len() != self.arg_specs.len() {
            return Err(RuntimeError::Type(format!(
                "CompiledFunction expected {} arguments, got {}",
                self.arg_specs.len(),
                args.len()
            )));
        }
        for (a, spec) in args.iter().zip(&self.arg_specs) {
            check_tag(a, spec.ty)?;
        }
        Ok(())
    }

    /// The serialized representation in the style of the paper's
    /// `InputForm` dump (§2.2).
    pub fn to_input_form(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "CompiledFunction[");
        let _ = writeln!(
            out,
            " {{{}, {}, {}}},(* Compiler, Engine Version, and Compile Flags *)",
            self.compiler_version, self.engine_version, self.flags
        );
        let specs: Vec<String> = self
            .arg_specs
            .iter()
            .map(|s| {
                format!(
                    "_{}",
                    match s.ty {
                        VmType::Int => "Integer",
                        VmType::Real => "Real",
                        VmType::Complex => "Complex",
                        VmType::Bool => "Boolean",
                        _ => "Tensor",
                    }
                )
            })
            .collect();
        let _ = writeln!(out, " {{{}}}, (* Input Arguments *)", specs.join(", "));
        let _ = writeln!(out, " {{{}}}, (* Register Allocations *)", self.nregs);
        let _ = writeln!(out, " {{");
        for op in &self.ops {
            let _ = writeln!(out, "  {op:?},");
        }
        let _ = writeln!(out, " }},");
        let _ = writeln!(
            out,
            " {}, (* Input Function *)",
            self.original.to_input_form()
        );
        let _ = writeln!(out, " Evaluate]");
        out
    }
}

/// Checks one runtime value against a VM type tag (the per-record half
/// of `ArgSpec` validation — everything else is per-stream).
#[inline]
fn check_tag(a: &Value, ty: VmType) -> Result<(), RuntimeError> {
    let ok = match ty {
        VmType::Int => matches!(a, Value::I64(_)),
        VmType::Real => matches!(a, Value::F64(_) | Value::I64(_)),
        VmType::Complex => matches!(a, Value::Complex(..) | Value::F64(_) | Value::I64(_)),
        VmType::Bool => matches!(a, Value::Bool(_)),
        VmType::TensorInt | VmType::TensorReal | VmType::TensorComplex => {
            matches!(a, Value::Tensor(_))
        }
    };
    if ok {
        Ok(())
    } else {
        Err(RuntimeError::Type(format!(
            "argument {} does not match spec {ty:?}",
            a.type_name()
        )))
    }
}

/// A compile-once, call-millions executor over one [`CompiledFunction`]:
/// the bytecode half of the streaming fast path.
///
/// [`CompiledFunction::run_abortable`] walks the full `ArgSpec` table and
/// allocates an `nregs`-slot boxed register file on every call. A stream
/// applies one function to every record, so the spec table, register
/// count, and abort signal are fixed per stream: this runner hoists them
/// to construction, keeps a dense `VmType` tag row for the per-record
/// value check (the only part that depends on the record), and reuses one
/// register-file allocation across calls via [`vm::execute_in`].
pub struct StreamRunner {
    cf: std::sync::Arc<CompiledFunction>,
    tags: Vec<VmType>,
    nregs: usize,
    regs: Vec<Value>,
    abort: AbortSignal,
}

impl StreamRunner {
    /// Binds `cf` for streaming, validating the spec table once.
    pub fn new(cf: std::sync::Arc<CompiledFunction>) -> Self {
        let tags: Vec<VmType> = cf.arg_specs.iter().map(|s| s.ty).collect();
        let nregs = cf.nregs.max(tags.len());
        StreamRunner {
            cf,
            tags,
            nregs,
            regs: Vec::new(),
            abort: AbortSignal::new(),
        }
    }

    /// Number of parameters (record fields per event).
    pub fn arity(&self) -> usize {
        self.tags.len()
    }

    /// The abort signal checked between instruction batches; trigger it
    /// to stop a record mid-execution (shutdown, deadlines).
    pub fn abort_signal(&self) -> &AbortSignal {
        &self.abort
    }

    /// Applies the compiled function to one record.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`CompiledFunction::run_abortable`] would
    /// produce for the same arguments.
    pub fn call(&mut self, args: &[Value]) -> Result<Value, RuntimeError> {
        if args.len() != self.tags.len() {
            return Err(RuntimeError::Type(format!(
                "CompiledFunction expected {} arguments, got {}",
                self.tags.len(),
                args.len()
            )));
        }
        for (a, ty) in args.iter().zip(&self.tags) {
            check_tag(a, *ty)?;
        }
        vm::execute_in(
            &self.cf.ops,
            self.nregs,
            args,
            &mut self.regs,
            &self.abort,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::BytecodeCompiler;
    use wolfram_expr::parse;

    fn compile(specs: &[ArgSpec], src: &str) -> CompiledFunction {
        BytecodeCompiler::new()
            .compile(specs, &parse(src).unwrap())
            .unwrap()
    }

    #[test]
    fn soft_failure_reverts_to_interpreter() {
        // Iterative fib overflows machine integers around n = 93; the
        // engine-hosted run falls back and returns the exact bignum (F2).
        let src = "Module[{a = 0, b = 1, k = 0, t = 0},
                     While[k < n, t = a + b; a = b; b = t; k++]; a]";
        let cf = compile(&[ArgSpec::int("n")], src);
        // Pure VM run: hard error.
        assert_eq!(
            cf.run(&[Value::I64(100)]),
            Err(RuntimeError::IntegerOverflow)
        );
        // Hosted run: soft fallback with a warning message.
        let mut engine = Interpreter::new();
        let out = cf.run_with_engine(&[Value::I64(100)], &mut engine).unwrap();
        assert_eq!(out.to_expr().to_full_form(), "354224848179261915075"); // fib(100)
        let warnings = engine.take_output();
        assert!(
            warnings[0].contains("reverting to uncompiled evaluation"),
            "{warnings:?}"
        );
        assert!(warnings[0].contains("IntegerOverflow"));
        // Small inputs stay on the fast path.
        assert_eq!(cf.run(&[Value::I64(10)]).unwrap(), Value::I64(55));
    }

    #[test]
    fn argument_checking() {
        let cf = compile(&[ArgSpec::int("x")], "x + 1");
        assert!(cf.run(&[Value::F64(1.0)]).is_err());
        assert!(cf.run(&[]).is_err());
        assert_eq!(cf.run(&[Value::I64(1)]).unwrap(), Value::I64(2));
    }

    #[test]
    fn input_form_matches_paper_shape() {
        let cf = compile(&[ArgSpec::real("x")], "Sin[x] + E^x");
        let dump = cf.to_input_form();
        assert!(dump.starts_with("CompiledFunction["), "{dump}");
        assert!(dump.contains("Compiler, Engine Version, and Compile Flags"));
        assert!(dump.contains("{_Real}, (* Input Arguments *)"));
        assert!(dump.contains("Register Allocations"));
        assert!(dump.contains("(* Input Function *)"));
    }

    #[test]
    fn stream_runner_matches_one_shot() {
        let cf = compile(
            &[ArgSpec::int("n")],
            "Module[{a = 0, k = 0}, While[k < n, a = a + k; k++]; a]",
        );
        let cf = std::sync::Arc::new(cf);
        let mut runner = StreamRunner::new(cf.clone());
        for n in [0i64, 1, 7, 100] {
            assert_eq!(
                runner.call(&[Value::I64(n)]).unwrap(),
                cf.run(&[Value::I64(n)]).unwrap()
            );
        }
        // Spec violations and arity mismatches still error per record,
        // and an error does not wedge the runner.
        assert!(runner.call(&[Value::F64(1.0)]).is_err());
        assert!(runner.call(&[]).is_err());
        assert_eq!(runner.call(&[Value::I64(3)]).unwrap(), Value::I64(3));
    }

    #[test]
    fn abortable() {
        let cf = compile(&[], "While[True, 1]");
        let abort = AbortSignal::new();
        abort.trigger();
        assert_eq!(cf.run_abortable(&[], &abort), Err(RuntimeError::Aborted));
    }
}
