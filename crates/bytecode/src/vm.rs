//! The WVM executor: boxed values, dynamic dispatch per instruction, an
//! abort check every instruction batch, and interpreter escapes.

use crate::instr::{BinOp, CmpOp, Op, UnOp};
use wolfram_expr::{BigInt, Expr};
use wolfram_interp::Interpreter;
use wolfram_runtime::{AbortSignal, RuntimeError, Tensor, TensorData, Value};

/// Executes bytecode over a register file of boxed values.
///
/// # Errors
///
/// Numeric exceptions (overflow, division by zero) surface as
/// [`RuntimeError`]s for the caller's soft-failure handling; aborts raise
/// [`RuntimeError::Aborted`].
pub fn execute(
    ops: &[Op],
    nregs: usize,
    args: &[Value],
    abort: &AbortSignal,
    engine: Option<&mut Interpreter>,
) -> Result<Value, RuntimeError> {
    let mut regs: Vec<Value> = Vec::new();
    execute_in(ops, nregs, args, &mut regs, abort, engine)
}

/// [`execute`] over a caller-owned register file: the streaming executor
/// evaluates one function millions of times, so it reuses one `Vec`
/// allocation across calls instead of allocating `nregs` boxed registers
/// per record. The file is cleared and re-zeroed on entry, so results are
/// identical to a fresh allocation.
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_in(
    ops: &[Op],
    nregs: usize,
    args: &[Value],
    regs: &mut Vec<Value>,
    abort: &AbortSignal,
    engine: Option<&mut Interpreter>,
) -> Result<Value, RuntimeError> {
    regs.clear();
    regs.resize(nregs, Value::Null);
    for (i, a) in args.iter().enumerate() {
        regs[i] = a.clone();
    }
    let mut engine = engine;
    let mut pc = 0usize;
    let mut budget = 0u32;
    let mut rng: u64 = 0x9E3779B97F4A7C15;
    let mut next_f64 = move || {
        rng = rng.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    };
    while pc < ops.len() {
        budget += 1;
        if budget & 0x3F == 0 {
            abort.check()?;
        }
        match &ops[pc] {
            Op::LoadConst { d, c } => regs[*d as usize] = c.clone(),
            Op::Move { d, s } => regs[*d as usize] = regs[*s as usize].clone(),
            Op::Bin { op, d, a, b } => {
                let r = bin(*op, &regs[*a as usize], &regs[*b as usize])?;
                regs[*d as usize] = r;
            }
            Op::Un { op, d, s } => {
                let r = un(*op, &regs[*s as usize])?;
                regs[*d as usize] = r;
            }
            Op::Cmp { op, d, a, b } => {
                let r = cmp(*op, &regs[*a as usize], &regs[*b as usize])?;
                regs[*d as usize] = Value::Bool(r);
            }
            Op::ComplexMake { d, re, im } => {
                let re = regs[*re as usize].expect_f64()?;
                let im = regs[*im as usize].expect_f64()?;
                regs[*d as usize] = Value::Complex(re, im);
            }
            Op::Length { d, s } => {
                let t = regs[*s as usize].expect_tensor()?;
                regs[*d as usize] = Value::I64(t.length() as i64);
            }
            Op::Part1 { d, t, i } => {
                let ix = regs[*i as usize].expect_i64()?;
                let t = regs[*t as usize].expect_tensor()?;
                regs[*d as usize] = t.part(ix)?;
            }
            Op::Part2 { d, t, i, j } => {
                let ix = regs[*i as usize].expect_i64()?;
                let jx = regs[*j as usize].expect_i64()?;
                let t = regs[*t as usize].expect_tensor()?;
                let row = t.part(ix)?.into_tensor()?;
                regs[*d as usize] = row.part(jx)?;
            }
            Op::SetPart1 { t, i, v } => {
                let ix = regs[*i as usize].expect_i64()?;
                let value = regs[*v as usize].clone();
                let Value::Tensor(tensor) = &mut regs[*t as usize] else {
                    return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                };
                let off = tensor.resolve_index(ix)?;
                set_element(tensor, off, &value)?;
            }
            Op::SetPart2 { t, i, j, v } => {
                let ix = regs[*i as usize].expect_i64()?;
                let jx = regs[*j as usize].expect_i64()?;
                let value = regs[*v as usize].clone();
                let Value::Tensor(tensor) = &mut regs[*t as usize] else {
                    return Err(RuntimeError::Type("SetPart on non-tensor".into()));
                };
                if tensor.rank() != 2 {
                    return Err(RuntimeError::Type("SetPart2 on non-matrix".into()));
                }
                let cols = tensor.shape()[1];
                let row = wolfram_runtime::checked::resolve_part_index(ix, tensor.shape()[0])?;
                let col = wolfram_runtime::checked::resolve_part_index(jx, cols)?;
                set_element(tensor, row * cols + col, &value)?;
            }
            Op::ConstArray { d, c, n1, n2 } => {
                let fill = regs[*c as usize].clone();
                let n1v = regs[*n1 as usize].expect_i64()?.max(0) as usize;
                let total = match n2 {
                    Some(n2) => n1v * regs[*n2 as usize].expect_i64()?.max(0) as usize,
                    None => n1v,
                };
                let shape = match n2 {
                    Some(n2) => {
                        vec![n1v, regs[*n2 as usize].expect_i64()?.max(0) as usize]
                    }
                    None => vec![n1v],
                };
                let data = match fill {
                    Value::I64(v) => TensorData::I64(vec![v; total]),
                    Value::F64(v) => TensorData::F64(vec![v; total]),
                    Value::Complex(re, im) => TensorData::Complex(vec![(re, im); total]),
                    other => {
                        return Err(RuntimeError::Type(format!(
                            "ConstantArray of {}",
                            other.type_name()
                        )))
                    }
                };
                regs[*d as usize] = Value::Tensor(Tensor::with_shape(shape, data)?);
            }
            Op::Dot { d, a, b } => {
                let ta = regs[*a as usize].expect_tensor()?.clone();
                let tb = regs[*b as usize].expect_tensor()?.clone();
                let result = wolfram_interp::builtins::lists::dot_tensors(&ta, &tb)?;
                regs[*d as usize] = Value::from_expr(&result);
            }
            Op::Jump { pc: target } => {
                pc = *target;
                continue;
            }
            Op::JumpIfFalse { c, pc: target } => {
                let cond = regs[*c as usize].expect_bool()?;
                if !cond {
                    pc = *target;
                    continue;
                }
            }
            Op::RandomReal { d, lo, hi } => {
                let lo_v = match lo {
                    Some(r) => regs[*r as usize].expect_f64()?,
                    None => 0.0,
                };
                let hi_v = match hi {
                    Some(r) => regs[*r as usize].expect_f64()?,
                    None => 1.0,
                };
                regs[*d as usize] = Value::F64(lo_v + (hi_v - lo_v) * next_f64());
            }
            Op::Eval { d, expr, env } => {
                let Some(engine) = engine.as_deref_mut() else {
                    return Err(RuntimeError::Other(
                        "bytecode Eval escape requires a Wolfram Engine".into(),
                    ));
                };
                // Bind current locals, evaluate, restore.
                let mut saved = Vec::new();
                for (name, reg) in env {
                    let sym = wolfram_expr::Symbol::new(name);
                    saved.push((sym.clone(), engine.env.own_value(&sym).cloned()));
                    engine.env.set_own(sym, regs[*reg as usize].to_expr());
                }
                let result = engine.eval(expr);
                for (sym, old) in saved {
                    match old {
                        Some(v) => engine.env.set_own(sym, v),
                        None => engine.env.clear_own(&sym),
                    }
                }
                regs[*d as usize] = Value::from_expr(&result?);
            }
            Op::Return { s } => return Ok(regs[*s as usize].clone()),
        }
        pc += 1;
    }
    Ok(Value::Null)
}

fn set_element(t: &mut Tensor, off: usize, value: &Value) -> Result<(), RuntimeError> {
    match (t.data().element_type(), value) {
        ("Integer64", Value::I64(v)) => t.set_i64(off, *v),
        ("Real64", Value::F64(v)) => t.set_f64(off, *v),
        ("Real64", Value::I64(v)) => t.set_f64(off, *v as f64),
        ("ComplexReal64", v) => {
            let (re, im) = v.expect_complex()?;
            match t.data_mut() {
                TensorData::Complex(data) => {
                    data[off] = (re, im);
                    Ok(())
                }
                _ => Err(RuntimeError::Type(
                    "complex store into non-complex tensor".into(),
                )),
            }
        }
        // Writing a real into an integer tensor promotes the whole tensor
        // (boxed semantics).
        ("Integer64", Value::F64(v)) => {
            *t = t.to_f64_tensor();
            t.set_f64(off, *v)
        }
        (et, v) => Err(RuntimeError::Type(format!(
            "cannot store {} into {et} tensor",
            v.type_name()
        ))),
    }
}

/// Dynamic numeric dispatch for binary operations — every operation match
/// on boxed payloads is exactly the overhead the new compiler eliminates.
pub fn bin(op: BinOp, a: &Value, b: &Value) -> Result<Value, RuntimeError> {
    use wolfram_runtime::checked;
    // Boolean Min/Max double as And/Or (used by comparison chains).
    if let (Value::Bool(x), Value::Bool(y)) = (a, b) {
        return match op {
            BinOp::Min => Ok(Value::Bool(*x && *y)),
            BinOp::Max => Ok(Value::Bool(*x || *y)),
            _ => Err(RuntimeError::Type("boolean arithmetic".into())),
        };
    }
    // Integer fast path with overflow checks.
    if let (Value::I64(x), Value::I64(y)) = (a, b) {
        return Ok(match op {
            BinOp::Add => Value::I64(checked::add_i64(*x, *y)?),
            BinOp::Sub => Value::I64(checked::sub_i64(*x, *y)?),
            BinOp::Mul => Value::I64(checked::mul_i64(*x, *y)?),
            BinOp::Div => {
                if *y == 0 {
                    return Err(RuntimeError::DivideByZero);
                }
                if x % y == 0 {
                    Value::I64(x / y)
                } else {
                    Value::F64(*x as f64 / *y as f64)
                }
            }
            BinOp::Pow => {
                if *y >= 0 {
                    Value::I64(checked::pow_i64(*x, *y)?)
                } else {
                    // Match the interpreter's real-valued fallback exactly
                    // (`powf`, not `powi`: casting the exponent to i32 wraps
                    // for |y| > 2^31 and silently changes the answer).
                    Value::F64((*x as f64).powf(*y as f64))
                }
            }
            BinOp::Mod => Value::I64(checked::mod_i64(*x, *y)?),
            BinOp::Quot => Value::I64(checked::quotient_i64(*x, *y)?),
            BinOp::Min => Value::I64(*x.min(y)),
            BinOp::Max => Value::I64(*x.max(y)),
            BinOp::BitAnd => Value::I64(x & y),
            BinOp::BitOr => Value::I64(x | y),
            BinOp::BitXor => Value::I64(x ^ y),
        });
    }
    // Complex path.
    if matches!(a, Value::Complex(..)) || matches!(b, Value::Complex(..)) {
        let (ar, ai) = a.expect_complex()?;
        let (br, bi) = b.expect_complex()?;
        return Ok(match op {
            BinOp::Add => Value::Complex(ar + br, ai + bi),
            BinOp::Sub => Value::Complex(ar - br, ai - bi),
            BinOp::Mul => {
                let (re, im) = checked::mul_complex((ar, ai), (br, bi));
                Value::Complex(re, im)
            }
            BinOp::Div => {
                let (re, im) = checked::div_complex((ar, ai), (br, bi));
                Value::Complex(re, im)
            }
            BinOp::Pow => {
                if bi == 0.0 && br == br.trunc() && br.abs() < 64.0 {
                    let mut acc = (1.0, 0.0);
                    for _ in 0..br.abs() as i64 {
                        acc = checked::mul_complex(acc, (ar, ai));
                    }
                    if br < 0.0 {
                        acc = checked::div_complex((1.0, 0.0), acc);
                    }
                    Value::Complex(acc.0, acc.1)
                } else {
                    return Err(RuntimeError::Type(
                        "complex Power with non-integer exponent".into(),
                    ));
                }
            }
            _ => return Err(RuntimeError::Type("complex argument to ordered op".into())),
        });
    }
    // Tensor (element-wise) path for Add/Sub/Mul with a tensor operand.
    if matches!(a, Value::Tensor(_)) || matches!(b, Value::Tensor(_)) {
        return tensor_bin(op, a, b);
    }
    let x = a.expect_f64()?;
    let y = b.expect_f64()?;
    Ok(match op {
        BinOp::Add => Value::F64(x + y),
        BinOp::Sub => Value::F64(x - y),
        BinOp::Mul => Value::F64(x * y),
        BinOp::Div => {
            if y == 0.0 {
                return Err(RuntimeError::DivideByZero);
            }
            Value::F64(x / y)
        }
        BinOp::Pow => Value::F64(x.powf(y)),
        BinOp::Mod => {
            if y == 0.0 {
                return Err(RuntimeError::DivideByZero);
            }
            Value::F64(x - y * (x / y).floor())
        }
        // Integer result, as in Wolfram: Quotient[5.3, 2] is 2, not 2.
        BinOp::Quot => Value::I64(checked::quotient_f64(x, y)?),
        BinOp::Min => Value::F64(x.min(y)),
        BinOp::Max => Value::F64(x.max(y)),
        BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => {
            return Err(RuntimeError::Type("bitwise operation on reals".into()))
        }
    })
}

/// Element-wise tensor arithmetic (Listable threading in the VM).
fn tensor_bin(op: BinOp, a: &Value, b: &Value) -> Result<Value, RuntimeError> {
    let thread = |t: &Tensor,
                  f: &mut dyn FnMut(Value) -> Result<Value, RuntimeError>|
     -> Result<Value, RuntimeError> {
        let mut out_f = Vec::with_capacity(t.flat_len());
        for ix in 0..t.flat_len() {
            let v = t.get_scalar(ix).expect("in range");
            out_f.push(f(v)?);
        }
        // Rebuild preserving shape; promote to the widest element type.
        if out_f.iter().all(|v| matches!(v, Value::I64(_))) {
            let data: Vec<i64> = out_f
                .iter()
                .map(|v| v.expect_i64().expect("checked"))
                .collect();
            Ok(Value::Tensor(Tensor::with_shape(
                t.shape().to_vec(),
                TensorData::I64(data),
            )?))
        } else if out_f.iter().all(|v| !matches!(v, Value::Complex(..))) {
            let data: Vec<f64> = out_f
                .iter()
                .map(|v| v.expect_f64().expect("numeric"))
                .collect();
            Ok(Value::Tensor(Tensor::with_shape(
                t.shape().to_vec(),
                TensorData::F64(data),
            )?))
        } else {
            let data: Vec<(f64, f64)> = out_f
                .iter()
                .map(|v| v.expect_complex().expect("numeric"))
                .collect();
            Ok(Value::Tensor(Tensor::with_shape(
                t.shape().to_vec(),
                TensorData::Complex(data),
            )?))
        }
    };
    match (a, b) {
        (Value::Tensor(ta), Value::Tensor(tb)) => {
            if ta.shape() != tb.shape() {
                return Err(RuntimeError::Type("tensor shape mismatch".into()));
            }
            let mut ix = 0usize;
            let tb = tb.clone();
            thread(ta, &mut |va| {
                let vb = tb.get_scalar(ix).expect("in range");
                ix += 1;
                bin(op, &va, &vb)
            })
        }
        (Value::Tensor(ta), scalar) => {
            let s = scalar.clone();
            thread(ta, &mut |va| bin(op, &va, &s))
        }
        (scalar, Value::Tensor(tb)) => {
            let s = scalar.clone();
            thread(tb, &mut |vb| bin(op, &s, &vb))
        }
        _ => Err(RuntimeError::Type(format!(
            "tensor_bin on {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

/// Dynamic dispatch for unary operations.
pub fn un(op: UnOp, a: &Value) -> Result<Value, RuntimeError> {
    use wolfram_runtime::checked;
    match op {
        UnOp::Not => Ok(Value::Bool(!a.expect_bool()?)),
        UnOp::Neg => match a {
            Value::I64(v) => Ok(Value::I64(checked::neg_i64(*v)?)),
            Value::Complex(re, im) => Ok(Value::Complex(-re, -im)),
            _ => Ok(Value::F64(-a.expect_f64()?)),
        },
        UnOp::Abs => match a {
            Value::I64(v) => Ok(Value::I64(checked::abs_i64(*v)?)),
            Value::Complex(re, im) => Ok(Value::F64(re.hypot(*im))),
            _ => Ok(Value::F64(a.expect_f64()?.abs())),
        },
        UnOp::Re => Ok(Value::F64(a.expect_complex()?.0)),
        UnOp::Im => Ok(Value::F64(a.expect_complex()?.1)),
        UnOp::Floor => Ok(Value::I64(a.expect_f64()?.floor() as i64)),
        UnOp::Ceiling => Ok(Value::I64(a.expect_f64()?.ceil() as i64)),
        UnOp::Round => {
            let v = a.expect_f64()?;
            let r = v.round();
            let r = if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                r - v.signum()
            } else {
                r
            };
            Ok(Value::I64(r as i64))
        }
        _ => {
            let v = a.expect_f64()?;
            Ok(Value::F64(match op {
                UnOp::Sqrt => v.sqrt(),
                UnOp::Sin => v.sin(),
                UnOp::Cos => v.cos(),
                UnOp::Tan => v.tan(),
                UnOp::Exp => v.exp(),
                UnOp::Log => v.ln(),
                other => {
                    return Err(RuntimeError::Type(format!(
                        "unary op {other:?} on {}",
                        a.type_name()
                    )))
                }
            }))
        }
    }
}

/// Dynamic dispatch for comparisons.
pub fn cmp(op: CmpOp, a: &Value, b: &Value) -> Result<bool, RuntimeError> {
    let ord = match (a, b) {
        (Value::I64(x), Value::I64(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) if matches!(op, CmpOp::Eq | CmpOp::Ne) => x.cmp(y),
        _ => {
            let x = a.expect_f64()?;
            let y = b.expect_f64()?;
            x.partial_cmp(&y)
                .ok_or_else(|| RuntimeError::Type("incomparable values".into()))?
        }
    };
    Ok(match op {
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
    })
}

/// Promotes an overflow result into the interpreter's bignum domain — used
/// by the soft-failure path's diagnostics.
pub fn overflow_to_big(a: i64, b: i64, op: BinOp) -> Option<BigInt> {
    let (x, y) = (BigInt::from(a), BigInt::from(b));
    match op {
        BinOp::Add => Some(&x + &y),
        BinOp::Sub => Some(&x - &y),
        BinOp::Mul => Some(&x * &y),
        _ => None,
    }
}

/// Helper: evaluates `expr` (no registers) — used by tests.
pub fn eval_const(expr: &Expr) -> Value {
    Value::from_expr(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_dispatch() {
        assert_eq!(
            bin(BinOp::Add, &Value::I64(2), &Value::I64(3)).unwrap(),
            Value::I64(5)
        );
        assert_eq!(
            bin(BinOp::Add, &Value::I64(2), &Value::F64(0.5)).unwrap(),
            Value::F64(2.5)
        );
        assert_eq!(
            bin(
                BinOp::Mul,
                &Value::Complex(0.0, 1.0),
                &Value::Complex(0.0, 1.0)
            )
            .unwrap(),
            Value::Complex(-1.0, 0.0)
        );
        assert_eq!(
            bin(BinOp::Add, &Value::I64(i64::MAX), &Value::I64(1)),
            Err(RuntimeError::IntegerOverflow)
        );
        assert_eq!(
            bin(BinOp::Div, &Value::I64(7), &Value::I64(2)).unwrap(),
            Value::F64(3.5)
        );
    }

    #[test]
    fn tensor_threading() {
        let t = Value::Tensor(Tensor::from_i64(vec![1, 2, 3]));
        let out = bin(BinOp::Mul, &t, &Value::I64(2)).unwrap();
        match out {
            Value::Tensor(t) => assert_eq!(t.as_i64().unwrap(), &[2, 4, 6]),
            other => panic!("expected tensor, got {other:?}"),
        }
        let a = Value::Tensor(Tensor::from_f64(vec![1.0, 2.0]));
        let b = Value::Tensor(Tensor::from_f64(vec![10.0, 20.0]));
        let out = bin(BinOp::Add, &a, &b).unwrap();
        assert_eq!(
            out.expect_tensor().unwrap().as_f64().unwrap(),
            &[11.0, 22.0]
        );
    }

    #[test]
    fn unary_dispatch() {
        assert_eq!(
            un(UnOp::Abs, &Value::Complex(3.0, 4.0)).unwrap(),
            Value::F64(5.0)
        );
        assert_eq!(un(UnOp::Floor, &Value::F64(2.9)).unwrap(), Value::I64(2));
        assert_eq!(un(UnOp::Neg, &Value::I64(5)).unwrap(), Value::I64(-5));
        assert_eq!(
            un(UnOp::Not, &Value::Bool(true)).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn comparisons() {
        assert!(cmp(CmpOp::Lt, &Value::I64(1), &Value::I64(2)).unwrap());
        assert!(cmp(CmpOp::Eq, &Value::F64(2.0), &Value::I64(2)).unwrap());
        assert!(cmp(CmpOp::Ne, &Value::Bool(true), &Value::Bool(false)).unwrap());
    }

    #[test]
    fn simple_program_executes() {
        // return (arg0 + 1) * 2
        let ops = vec![
            Op::LoadConst {
                d: 1,
                c: Value::I64(1),
            },
            Op::Bin {
                op: BinOp::Add,
                d: 2,
                a: 0,
                b: 1,
            },
            Op::LoadConst {
                d: 3,
                c: Value::I64(2),
            },
            Op::Bin {
                op: BinOp::Mul,
                d: 4,
                a: 2,
                b: 3,
            },
            Op::Return { s: 4 },
        ];
        let out = execute(&ops, 5, &[Value::I64(20)], &AbortSignal::new(), None).unwrap();
        assert_eq!(out, Value::I64(42));
    }

    #[test]
    fn abort_unwinds_infinite_loop() {
        let ops = vec![Op::Jump { pc: 0 }];
        let abort = AbortSignal::new();
        abort.trigger();
        let out = execute(&ops, 1, &[], &abort, None);
        assert_eq!(out, Err(RuntimeError::Aborted));
    }

    #[test]
    fn setpart_copy_on_write() {
        let t = Tensor::from_i64(vec![1, 2, 3]);
        let alias = t.clone();
        let ops = vec![
            Op::LoadConst {
                d: 1,
                c: Value::I64(3),
            },
            Op::LoadConst {
                d: 2,
                c: Value::I64(-20),
            },
            Op::SetPart1 { t: 0, i: 1, v: 2 },
            Op::Return { s: 0 },
        ];
        let out = execute(&ops, 3, &[Value::Tensor(t)], &AbortSignal::new(), None).unwrap();
        assert_eq!(out.expect_tensor().unwrap().as_i64().unwrap(), &[1, 2, -20]);
        assert_eq!(alias.as_i64().unwrap(), &[1, 2, 3], "alias untouched (F5)");
    }

    #[test]
    fn eval_escape_requires_engine() {
        let ops = vec![
            Op::Eval {
                d: 0,
                expr: Expr::int(1),
                env: vec![],
            },
            Op::Return { s: 0 },
        ];
        assert!(execute(&ops, 1, &[], &AbortSignal::new(), None).is_err());
        let mut engine = Interpreter::new();
        let out = execute(&ops, 1, &[], &AbortSignal::new(), Some(&mut engine)).unwrap();
        assert_eq!(out, Value::I64(1));
    }
}
