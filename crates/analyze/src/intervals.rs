//! Forward interval (range) analysis over TWIR.
//!
//! Per-variable integer intervals `[lo, hi]` with widening/narrowing for
//! loop termination, symbolic tensor-length facts that flow through the
//! CFG, phis, copies and `Length` calls, and branch-condition refinement
//! on comparisons — built on the lattice worklist solver in
//! [`crate::dataflow`] via its per-edge `transfer_edge` hook.
//!
//! The analysis has two clients:
//!
//! 1. **Check elision.** [`analyze_ranges`] exports a [`FnRangeFacts`]
//!    side table keyed by `(block, instr)` naming every Part access whose
//!    bounds check is proved redundant, every checked integer
//!    plus/subtract/times that provably cannot overflow, and every
//!    acquire/release pair the refcount checker proves elidable
//!    ([`crate::refcount::elidable_pairs`]). Codegen consumes the table
//!    to emit unchecked register ops.
//! 2. **Linting.** [`part_bounds`] owns the `part-out-of-bounds`
//!    diagnostic (formerly a constant-only peephole in `lints.rs`), now
//!    flow-sensitive: lengths propagate through copies, phis and fills,
//!    and unreachable blocks stay quiet.
//!
//! # Domain
//!
//! An [`Ival`] couples a numeric interval with up to [`MAX_SYMS`]
//! symbolic bounds per side: `hi_syms` entries `(s, k)` assert
//! `v <= s + k` and `lo_syms` entries assert `v >= s + k`, where a
//! [`Sym`] is another SSA variable, the length of a tensor's axis, or
//! the *negated* length (for negative Part indices). A `nz` bit records
//! "provably nonzero" — established by a dominating successful Part
//! check, whose post-state is `idx ∈ [-len, -1] ∪ [1, len]`.
//!
//! Tensor shapes live beside the intervals: per-variable [`AxisLen`]
//! rows hold a numeric length interval plus exact-equality symbols, so
//! every SSA version of a functionally-updated tensor shares a root
//! length symbol and dominating checks on one version prove accesses on
//! later versions.
//!
//! # Soundness of the numeric cap
//!
//! Every tensor element occupies at least 8 bytes (`I64`/`F64`; complex
//! is 16), and a `Vec` allocation cannot exceed `isize::MAX` bytes, so
//! no axis length can exceed [`MAX_LEN`] `= 2^60`. This global bound is
//! what lets `idx + 1` be proved overflow-free from `idx <= Length[t]`
//! alone.
//!
//! # Termination
//!
//! Joins count disagreement (`grows`); past [`GROW_LIMIT`] the numeric
//! endpoints snap outward to a fixed threshold ladder, giving finite
//! ascending chains. Symbolic sets only shrink at joins (set
//! intersection). After the fixpoint, two narrowing rounds re-apply the
//! transfer without widening to recover precision the snap overshot.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use wolfram_ir::analysis::Cfg;
use wolfram_ir::{BlockId, Callee, Constant, Function, Instr, Operand, ProgramModule, VarId};
use wolfram_types::Type;

use crate::dataflow::{solve, Analysis, Direction, Lattice};
use crate::diag::Diagnostic;

/// No tensor axis can be longer than this (allocation bound, see module
/// docs): elements are at least 8 bytes and `Vec` caps at `isize::MAX`.
pub const MAX_LEN: i64 = 1 << 60;

/// Sentinel for an unknown upper bound (+infinity).
const POS_INF: i64 = i64::MAX;
/// Sentinel for an unknown lower bound (-infinity).
const NEG_INF: i64 = i64::MIN;

/// Joins tolerated before numeric endpoints snap to the threshold ladder.
const GROW_LIMIT: u8 = 3;
/// Maximum symbolic bounds tracked per interval side.
const MAX_SYMS: usize = 6;
/// Maximum exact-equality symbols tracked per tensor axis.
const MAX_EQ: usize = 3;
/// Symbolic offsets beyond this are dropped (keeps the sym space finite).
const MAX_SYM_OFF: i64 = 64;

/// Widening ladder: snapped endpoints land on one of these.
const THRESHOLDS: [i64; 19] = [
    -MAX_LEN,
    -(1 << 31),
    -65536,
    -4096,
    -256,
    -16,
    -2,
    -1,
    0,
    1,
    2,
    12,
    16,
    256,
    4096,
    16384,
    65536,
    1 << 31,
    MAX_LEN,
];

fn snap_hi(v: i64) -> i64 {
    for &t in &THRESHOLDS {
        if v <= t {
            return t;
        }
    }
    POS_INF
}

fn snap_lo(v: i64) -> i64 {
    for &t in THRESHOLDS.iter().rev() {
        if v >= t {
            return t;
        }
    }
    NEG_INF
}

fn clamp128(v: i128) -> i64 {
    v.clamp(NEG_INF as i128, POS_INF as i128) as i64
}

/// `a + b` on lower bounds: -infinity absorbs.
fn add_lo(a: i64, b: i64) -> i64 {
    if a == NEG_INF || b == NEG_INF {
        NEG_INF
    } else {
        clamp128(a as i128 + b as i128)
    }
}

/// `a + b` on upper bounds: +infinity absorbs.
fn add_hi(a: i64, b: i64) -> i64 {
    if a == POS_INF || b == POS_INF {
        POS_INF
    } else {
        clamp128(a as i128 + b as i128)
    }
}

/// A symbolic bound: another SSA variable's value, a tensor axis length,
/// or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// The value of an integer SSA variable.
    Var(VarId),
    /// `Length` of the given tensor variable along the given axis.
    Len(VarId, u8),
    /// `-Length` of the given tensor variable along the given axis
    /// (lower bounds for negative Part indices).
    NegLen(VarId, u8),
}

/// An integer interval with symbolic bounds and a nonzero bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Ival {
    /// Numeric lower bound (`i64::MIN` = unknown).
    pub lo: i64,
    /// Numeric upper bound (`i64::MAX` = unknown).
    pub hi: i64,
    /// Entries `(s, k)` assert `v >= s + k`.
    lo_syms: Vec<(Sym, i64)>,
    /// Entries `(s, k)` assert `v <= s + k`.
    hi_syms: Vec<(Sym, i64)>,
    /// Provably `v != 0` (beyond what `lo`/`hi` show).
    nz: bool,
    /// Join-disagreement counter driving widening.
    grows: u8,
}

impl Ival {
    fn top() -> Ival {
        Ival {
            lo: NEG_INF,
            hi: POS_INF,
            lo_syms: Vec::new(),
            hi_syms: Vec::new(),
            nz: false,
            grows: 0,
        }
    }

    fn exact(k: i64) -> Ival {
        Ival {
            lo: k,
            hi: k,
            nz: k != 0,
            ..Ival::top()
        }
    }

    fn range(lo: i64, hi: i64) -> Ival {
        Ival {
            lo,
            hi,
            ..Ival::top()
        }
    }

    fn singleton(&self) -> Option<i64> {
        (self.lo == self.hi && self.lo != NEG_INF && self.lo != POS_INF).then_some(self.lo)
    }

    fn is_nonzero(&self) -> bool {
        self.nz || self.lo >= 1 || self.hi <= -1
    }

    fn add_hi_sym(&mut self, s: Sym, off: i64) {
        if !(-MAX_SYM_OFF..=MAX_SYM_OFF).contains(&off) {
            return;
        }
        if let Some(e) = self.hi_syms.iter_mut().find(|(s2, _)| *s2 == s) {
            e.1 = e.1.min(off);
        } else if self.hi_syms.len() < MAX_SYMS {
            self.hi_syms.push((s, off));
            self.hi_syms.sort_unstable();
        }
    }

    fn add_lo_sym(&mut self, s: Sym, off: i64) {
        if !(-MAX_SYM_OFF..=MAX_SYM_OFF).contains(&off) {
            return;
        }
        if let Some(e) = self.lo_syms.iter_mut().find(|(s2, _)| *s2 == s) {
            e.1 = e.1.max(off);
        } else if self.lo_syms.len() < MAX_SYMS {
            self.lo_syms.push((s, off));
            self.lo_syms.sort_unstable();
        }
    }

    fn add(&self, o: &Ival) -> Ival {
        Ival {
            lo: add_lo(self.lo, o.lo),
            hi: add_hi(self.hi, o.hi),
            ..Ival::top()
        }
    }

    fn sub(&self, o: &Ival) -> Ival {
        Ival {
            lo: if self.lo == NEG_INF || o.hi == POS_INF {
                NEG_INF
            } else {
                clamp128(self.lo as i128 - o.hi as i128)
            },
            hi: if self.hi == POS_INF || o.lo == NEG_INF {
                POS_INF
            } else {
                clamp128(self.hi as i128 - o.lo as i128)
            },
            ..Ival::top()
        }
    }

    fn mul(&self, o: &Ival) -> Ival {
        let finite = self.lo != NEG_INF && self.hi != POS_INF && o.lo != NEG_INF && o.hi != POS_INF;
        let mut r = if finite {
            let c = [
                self.lo as i128 * o.lo as i128,
                self.lo as i128 * o.hi as i128,
                self.hi as i128 * o.lo as i128,
                self.hi as i128 * o.hi as i128,
            ];
            Ival::range(
                clamp128(*c.iter().min().unwrap()),
                clamp128(*c.iter().max().unwrap()),
            )
        } else {
            Ival::top()
        };
        // A product is zero iff a factor is zero.
        r.nz = self.is_nonzero() && o.is_nonzero();
        r
    }

    fn neg(&self) -> Ival {
        let mut r = Ival::range(
            if self.hi == POS_INF {
                NEG_INF
            } else {
                clamp128(-(self.hi as i128))
            },
            if self.lo == NEG_INF {
                POS_INF
            } else {
                clamp128(-(self.lo as i128))
            },
        );
        r.nz = self.is_nonzero();
        r
    }

    fn abs(&self) -> Ival {
        let (alo, ahi) = (self.lo.unsigned_abs(), self.hi.unsigned_abs());
        let hi = if self.lo == NEG_INF || self.hi == POS_INF {
            POS_INF
        } else {
            clamp128(alo.max(ahi) as i128)
        };
        let straddles_zero = self.lo <= 0 && self.hi >= 0;
        let lo = if straddles_zero || self.lo == NEG_INF || self.hi == POS_INF {
            0
        } else {
            clamp128(alo.min(ahi) as i128)
        };
        let mut r = Ival::range(lo, hi);
        r.nz = self.is_nonzero();
        r
    }

    /// In-place join. Widens (grows counter + threshold snap) when
    /// `widen` is set; narrowing passes use the plain hull.
    fn join_with(&mut self, o: &Ival, widen: bool) {
        let grew = self.lo != o.lo || self.hi != o.hi;
        let mut lo = self.lo.min(o.lo);
        let mut hi = self.hi.max(o.hi);
        let mut grows = self.grows.max(o.grows);
        if widen && grew {
            grows = (grows + 1).min(GROW_LIMIT + 1);
            if grows > GROW_LIMIT {
                lo = snap_lo(lo);
                hi = snap_hi(hi);
            }
        }
        self.lo = lo;
        self.hi = hi;
        self.grows = grows;
        self.hi_syms = isect_syms(&self.hi_syms, &o.hi_syms, true);
        self.lo_syms = isect_syms(&self.lo_syms, &o.lo_syms, false);
        self.nz = self.nz && o.nz;
    }

    /// In-place meet (used by narrowing and branch refinement).
    fn meet(&mut self, o: &Ival) {
        self.lo = self.lo.max(o.lo);
        self.hi = self.hi.min(o.hi);
        for &(s, k) in &o.hi_syms {
            self.add_hi_sym(s, k);
        }
        for &(s, k) in &o.lo_syms {
            self.add_lo_sym(s, k);
        }
        self.nz |= o.nz;
        self.grows = self.grows.min(o.grows);
    }
}

/// Intersection of symbolic bound sets, keeping the weaker offset per
/// shared symbol (max for upper bounds, min for lower bounds).
fn isect_syms(a: &[(Sym, i64)], b: &[(Sym, i64)], upper: bool) -> Vec<(Sym, i64)> {
    let mut out: Vec<(Sym, i64)> = a
        .iter()
        .filter_map(|&(s, k)| {
            b.iter()
                .find(|(s2, _)| *s2 == s)
                .map(|&(_, k2)| (s, if upper { k.max(k2) } else { k.min(k2) }))
        })
        .collect();
    out.sort_unstable();
    out
}

/// One tensor axis: a numeric length interval plus exact-equality
/// symbols (`eq` entries equal the length exactly; `Sym::Var` entries
/// are only trusted where the variable is provably nonnegative, because
/// fills clamp negative counts to zero).
#[derive(Debug, Clone, PartialEq)]
pub struct AxisLen {
    /// Guaranteed minimum length.
    pub lo: i64,
    /// Guaranteed maximum length.
    pub hi: i64,
    /// Symbols exactly equal to this length.
    eq: Vec<Sym>,
}

impl AxisLen {
    fn unknown() -> AxisLen {
        AxisLen {
            lo: 0,
            hi: MAX_LEN,
            eq: Vec::new(),
        }
    }

    fn known(n: i64) -> AxisLen {
        let n = n.clamp(0, MAX_LEN);
        AxisLen {
            lo: n,
            hi: n,
            eq: Vec::new(),
        }
    }

    fn add_eq(&mut self, s: Sym) {
        if !self.eq.contains(&s) && self.eq.len() < MAX_EQ {
            self.eq.push(s);
            self.eq.sort_unstable();
        }
    }

    fn join(&mut self, o: &AxisLen) {
        if self.lo != o.lo {
            self.lo = snap_lo(self.lo.min(o.lo)).max(0);
        }
        if self.hi != o.hi {
            self.hi = snap_hi(self.hi.max(o.hi)).min(MAX_LEN);
        }
        self.eq.retain(|s| o.eq.contains(s));
    }

    fn meet(&mut self, o: &AxisLen) {
        self.lo = self.lo.max(o.lo);
        self.hi = self.hi.min(o.hi);
        for &s in &o.eq {
            self.add_eq(s);
        }
    }
}

/// The per-program-point fact: reachability, variable intervals, and
/// tensor shapes. Absent entries are top (no information); the bottom
/// element is unreachable.
#[derive(Debug, Clone, PartialEq)]
pub struct Env {
    reachable: bool,
    vars: HashMap<VarId, Ival>,
    dims: HashMap<VarId, Vec<AxisLen>>,
}

impl Env {
    fn join_impl(&mut self, o: &Env, widen: bool) -> bool {
        if !o.reachable {
            return false;
        }
        if !self.reachable {
            *self = o.clone();
            return true;
        }
        let mut changed = false;
        let n = self.vars.len();
        self.vars.retain(|k, _| o.vars.contains_key(k));
        changed |= self.vars.len() != n;
        for (k, iv) in self.vars.iter_mut() {
            let before = iv.clone();
            iv.join_with(&o.vars[k], widen);
            changed |= *iv != before;
        }
        let n = self.dims.len();
        self.dims
            .retain(|k, d| o.dims.get(k).is_some_and(|od| od.len() == d.len()));
        changed |= self.dims.len() != n;
        for (k, d) in self.dims.iter_mut() {
            for (ax, oax) in d.iter_mut().zip(&o.dims[k]) {
                let before = ax.clone();
                ax.join(oax);
                changed |= *ax != before;
            }
        }
        changed
    }

    fn meet(&mut self, o: &Env) {
        if !o.reachable {
            *self = Env::bottom();
            return;
        }
        if !self.reachable {
            return;
        }
        for (k, ov) in &o.vars {
            match self.vars.entry(*k) {
                Entry::Occupied(mut e) => e.get_mut().meet(ov),
                Entry::Vacant(e) => {
                    e.insert(ov.clone());
                }
            }
        }
        for (k, od) in &o.dims {
            match self.dims.entry(*k) {
                Entry::Occupied(mut e) => {
                    let d = e.get_mut();
                    if d.len() == od.len() {
                        for (ax, oax) in d.iter_mut().zip(od) {
                            ax.meet(oax);
                        }
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(od.clone());
                }
            }
        }
    }
}

impl Lattice for Env {
    fn bottom() -> Env {
        Env {
            reachable: false,
            vars: HashMap::new(),
            dims: HashMap::new(),
        }
    }

    fn join(&mut self, other: &Env) -> bool {
        self.join_impl(other, true)
    }
}

fn base_name(p: &str) -> &str {
    p.split('$').next().unwrap_or(p)
}

fn is_i64(f: &Function, v: VarId) -> bool {
    f.var_type(v) == Some(&Type::integer64())
}

fn int_like(f: &Function, v: VarId) -> bool {
    matches!(f.var_type(v), Some(t) if *t == Type::integer64() || *t == Type::boolean())
}

fn int_operand(f: &Function, op: &Operand) -> bool {
    match op {
        Operand::Const(Constant::I64(_)) | Operand::Const(Constant::Bool(_)) => true,
        Operand::Var(v) => int_like(f, *v),
        _ => false,
    }
}

fn tensor_rank(f: &Function, v: VarId) -> Option<usize> {
    match f.var_type(v) {
        Some(Type::Constructor { name, args }) if &**name == "Tensor" => match args.get(1) {
            Some(Type::Literal(r)) if (1..=8).contains(r) => Some(*r as usize),
            _ => None,
        },
        _ => None,
    }
}

fn eval(env: &Env, op: &Operand) -> Ival {
    match op {
        Operand::Const(Constant::I64(k)) => Ival::exact(*k),
        Operand::Const(Constant::Bool(b)) => Ival::exact(*b as i64),
        Operand::Var(v) => env.vars.get(v).cloned().unwrap_or_else(Ival::top),
        _ => Ival::top(),
    }
}

/// Everything known about one axis of a Part target at a program point.
struct AxisFacts {
    /// Guaranteed minimum length.
    min_len: i64,
    /// Guaranteed maximum length (never above [`MAX_LEN`]).
    max_len: i64,
    /// Symbols equal to (or exceeding) the length: proof targets for
    /// upper bounds, assume facts after a successful check.
    up: Vec<Sym>,
    /// Symbols equal to the negated length.
    down: Vec<Sym>,
}

fn axis_facts(env: &Env, t_op: &Operand, axis: usize) -> AxisFacts {
    match t_op {
        Operand::Const(Constant::I64Array(a)) => AxisFacts {
            min_len: a.len() as i64,
            max_len: a.len() as i64,
            up: Vec::new(),
            down: Vec::new(),
        },
        Operand::Const(Constant::F64Array(a)) => AxisFacts {
            min_len: a.len() as i64,
            max_len: a.len() as i64,
            up: Vec::new(),
            down: Vec::new(),
        },
        Operand::Var(t) => {
            let mut up = vec![Sym::Len(*t, axis as u8)];
            let mut down = vec![Sym::NegLen(*t, axis as u8)];
            let (mut min_len, mut max_len) = (0, MAX_LEN);
            if let Some(ax) = env.dims.get(t).and_then(|d| d.get(axis)) {
                min_len = ax.lo.clamp(0, MAX_LEN);
                max_len = ax.hi.clamp(0, MAX_LEN);
                for s in &ax.eq {
                    match s {
                        Sym::Len(u, k) => {
                            if up.len() < MAX_SYMS {
                                up.push(*s);
                                down.push(Sym::NegLen(*u, *k));
                            }
                        }
                        // A fill's length is max(n, 0): the count symbol
                        // equals the length only where n >= 0.
                        Sym::Var(h) => {
                            if up.len() < MAX_SYMS && env.vars.get(h).is_some_and(|iv| iv.lo >= 0) {
                                up.push(*s);
                            }
                        }
                        Sym::NegLen(..) => {}
                    }
                }
            }
            AxisFacts {
                min_len,
                max_len,
                up,
                down,
            }
        }
        _ => AxisFacts {
            min_len: 0,
            max_len: MAX_LEN,
            up: Vec::new(),
            down: Vec::new(),
        },
    }
}

/// Transitive `v <= target + slack` proof through upper symbolic bounds.
fn sym_le(env: &Env, syms: &[(Sym, i64)], targets: &[Sym], slack: i64, depth: u8) -> bool {
    for (s, off) in syms {
        let total = slack.saturating_add(*off);
        if total <= 0 && targets.contains(s) {
            return true;
        }
        if depth > 0 {
            if let Sym::Var(u) = s {
                if let Some(uiv) = env.vars.get(u) {
                    if sym_le(env, &uiv.hi_syms, targets, total, depth - 1) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Transitive `v >= target + slack` proof through lower symbolic bounds.
fn sym_ge(env: &Env, syms: &[(Sym, i64)], targets: &[Sym], slack: i64, depth: u8) -> bool {
    for (s, off) in syms {
        let total = slack.saturating_add(*off);
        if total >= 0 && targets.contains(s) {
            return true;
        }
        if depth > 0 {
            if let Sym::Var(u) = s {
                if let Some(uiv) = env.vars.get(u) {
                    if sym_ge(env, &uiv.lo_syms, targets, total, depth - 1) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Numeric upper bound improved through symbolic bounds (`Len` symbols
/// are capped at [`MAX_LEN`] by the allocation bound).
fn resolve_hi(env: &Env, iv: &Ival, depth: u8) -> i64 {
    let mut hi = iv.hi;
    for (s, off) in &iv.hi_syms {
        let b = match s {
            Sym::Len(..) => MAX_LEN,
            Sym::Var(u) if depth > 0 => env
                .vars
                .get(u)
                .map_or(POS_INF, |uiv| resolve_hi(env, uiv, depth - 1)),
            _ => POS_INF,
        };
        hi = hi.min(add_hi(b, *off));
    }
    hi
}

/// Numeric lower bound improved through symbolic bounds.
fn resolve_lo(env: &Env, iv: &Ival, depth: u8) -> i64 {
    let mut lo = iv.lo;
    for (s, off) in &iv.lo_syms {
        let b = match s {
            Sym::NegLen(..) => -MAX_LEN,
            Sym::Var(u) if depth > 0 => env
                .vars
                .get(u)
                .map_or(NEG_INF, |uiv| resolve_lo(env, uiv, depth - 1)),
            _ => NEG_INF,
        };
        lo = lo.max(add_lo(b, *off));
    }
    lo
}

/// Whether the index is provably valid for the axis: either
/// `1 <= idx <= len`, or `idx != 0 && -len <= idx <= len` (the machine's
/// unchecked ops resolve the sign but skip the range validation).
fn prove_index(env: &Env, t_op: &Operand, idx: &Operand, axis: usize) -> bool {
    let iv = eval(env, idx);
    let facts = axis_facts(env, t_op, axis);
    let lo = resolve_lo(env, &iv, 2);
    let hi_ok =
        resolve_hi(env, &iv, 2) <= facts.min_len || sym_le(env, &iv.hi_syms, &facts.up, 0, 3);
    if lo >= 1 && hi_ok {
        return true;
    }
    let lo_ok = lo >= -facts.min_len || sym_ge(env, &iv.lo_syms, &facts.down, 0, 3);
    iv.is_nonzero() && (hi_ok || iv.hi <= -1) && lo_ok
}

/// Post-state of a successful bounds check on `idx`:
/// `idx ∈ [-len, -1] ∪ [1, len]`. Also back-propagates to variables in
/// exact affine relation with the index (`idx == j + k` when `(j, k)`
/// appears on both symbolic sides), which is what lets `img[[i, j+1]]`
/// prove once any *other* `j+1` temp has been checked.
fn assume_in_bounds(env: &mut Env, f: &Function, t_op: &Operand, checks: &[(&Operand, usize)]) {
    for (idx, axis) in checks {
        let Some(v) = idx.as_var() else { continue };
        if !is_i64(f, v) {
            continue;
        }
        let facts = axis_facts(env, t_op, *axis);
        let rel: Vec<(VarId, i64)> = env
            .vars
            .get(&v)
            .map(|iv| {
                iv.hi_syms
                    .iter()
                    .filter(|e| iv.lo_syms.contains(e))
                    .filter_map(|(s, k)| match s {
                        Sym::Var(j) if *j != v => Some((*j, *k)),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        {
            let e = env.vars.entry(v).or_insert_with(Ival::top);
            e.hi = e.hi.min(facts.max_len);
            e.lo = e.lo.max(-facts.max_len);
            e.nz = true;
            for &s in &facts.up {
                e.add_hi_sym(s, 0);
            }
            for &s in &facts.down {
                e.add_lo_sym(s, 0);
            }
        }
        // v == j + k  =>  j = v - k ∈ [-len - k, len - k].
        for (j, k) in rel {
            let e = env.vars.entry(j).or_insert_with(Ival::top);
            e.hi = e.hi.min(facts.max_len.saturating_sub(k));
            e.lo = e.lo.max((-facts.max_len).saturating_sub(k));
            for &s in &facts.up {
                e.add_hi_sym(s, -k);
            }
            for &s in &facts.down {
                e.add_lo_sym(s, -k);
            }
        }
    }
}

/// Copies `src`'s axis rows onto `dst`, extending each with `src`'s own
/// length symbol so all SSA versions of a functionally-updated tensor
/// share proof targets.
fn set_dims_from(env: &mut Env, f: &Function, dst: VarId, src_op: &Operand) {
    match src_op {
        Operand::Var(s) => {
            let rank = tensor_rank(f, *s).or_else(|| env.dims.get(s).map(Vec::len));
            let Some(rank) = rank else { return };
            let mut d = env
                .dims
                .get(s)
                .cloned()
                .unwrap_or_else(|| vec![AxisLen::unknown(); rank]);
            for (i, ax) in d.iter_mut().enumerate() {
                ax.add_eq(Sym::Len(*s, i as u8));
            }
            env.dims.insert(dst, d);
        }
        Operand::Const(Constant::I64Array(a)) => {
            env.dims.insert(dst, vec![AxisLen::known(a.len() as i64)]);
        }
        Operand::Const(Constant::F64Array(a)) => {
            env.dims.insert(dst, vec![AxisLen::known(a.len() as i64)]);
        }
        _ => {}
    }
}

/// Axis row for a fill count operand: numeric `clamp(n, 0, MAX_LEN)`
/// plus the count symbol (validated against `n >= 0` at proof time).
fn axis_from_count(env: &Env, f: &Function, op: &Operand) -> AxisLen {
    let iv = eval(env, op);
    let mut ax = AxisLen {
        lo: iv.lo.clamp(0, MAX_LEN),
        hi: iv.hi.clamp(0, MAX_LEN),
        eq: Vec::new(),
    };
    if let Some(v) = op.as_var() {
        if is_i64(f, v) {
            ax.add_eq(Sym::Var(v));
        }
    }
    ax
}

fn transfer_instr(f: &Function, env: &mut Env, i: &Instr) {
    match i {
        Instr::LoadArgument { dst, .. } => {
            env.vars.remove(dst);
            env.dims.remove(dst);
            if let Some(rank) = tensor_rank(f, *dst) {
                env.dims.insert(*dst, vec![AxisLen::unknown(); rank]);
            }
        }
        Instr::LoadConst { dst, value } => {
            env.vars.remove(dst);
            env.dims.remove(dst);
            match value {
                Constant::I64(k) => {
                    env.vars.insert(*dst, Ival::exact(*k));
                }
                Constant::Bool(b) => {
                    env.vars.insert(*dst, Ival::exact(*b as i64));
                }
                Constant::I64Array(a) => {
                    env.dims.insert(*dst, vec![AxisLen::known(a.len() as i64)]);
                }
                Constant::F64Array(a) => {
                    env.dims.insert(*dst, vec![AxisLen::known(a.len() as i64)]);
                }
                _ => {}
            }
        }
        Instr::Copy { dst, src } => {
            env.vars.remove(dst);
            env.dims.remove(dst);
            if int_like(f, *src) || int_like(f, *dst) {
                let mut iv = env.vars.get(src).cloned().unwrap_or_else(Ival::top);
                iv.add_hi_sym(Sym::Var(*src), 0);
                iv.add_lo_sym(Sym::Var(*src), 0);
                env.vars.insert(*dst, iv);
            }
            set_dims_from(env, f, *dst, &Operand::Var(*src));
        }
        // Phis are handled per-edge in `transfer_edge`.
        Instr::Phi { .. } => {}
        Instr::MakeClosure { dst, .. } => {
            env.vars.remove(dst);
            env.dims.remove(dst);
        }
        Instr::Call { dst, callee, args } => transfer_call(f, env, *dst, callee, args),
        Instr::AbortCheck
        | Instr::MemoryAcquire { .. }
        | Instr::MemoryRelease { .. }
        | Instr::Jump { .. }
        | Instr::Branch { .. }
        | Instr::Return { .. } => {}
    }
}

fn transfer_call(f: &Function, env: &mut Env, dst: VarId, callee: &Callee, args: &[Operand]) {
    env.vars.remove(&dst);
    env.dims.remove(&dst);
    // Results inherit the widening counter of their operands: a
    // loop-carried `i + 1` must re-enter the header join with `i`'s
    // accumulated counter, or the counter restarts at zero every
    // iteration and the interval climbs one step at a time instead of
    // snapping to a threshold.
    let carried = args
        .iter()
        .filter_map(Operand::as_var)
        .filter_map(|v| env.vars.get(&v))
        .map(|iv| iv.grows)
        .max()
        .unwrap_or(0);
    let name = match callee {
        Callee::Primitive(n) => n,
        Callee::Builtin(n) if &**n == "List" => {
            env.dims
                .insert(dst, vec![AxisLen::known(args.len() as i64)]);
            return;
        }
        _ => {
            if let Some(rank) = tensor_rank(f, dst) {
                env.dims.insert(dst, vec![AxisLen::unknown(); rank]);
            }
            return;
        }
    };
    let base = base_name(name);
    match base {
        "checked_binary_plus" | "checked_binary_subtract" | "checked_binary_times"
            if args.len() == 2 && is_i64(f, dst) =>
        {
            let a = eval(env, &args[0]);
            let b = eval(env, &args[1]);
            let mut r = match base {
                "checked_binary_plus" => a.add(&b),
                "checked_binary_subtract" => a.sub(&b),
                _ => a.mul(&b),
            };
            // var ± const keeps an exact affine relation: shift the
            // var's symbolic bounds and record the relation itself.
            if base != "checked_binary_times" {
                let shift = |r: &mut Ival, iv: &Ival, v: Option<VarId>, k: i64| {
                    for &(s, o) in &iv.hi_syms {
                        r.add_hi_sym(s, o.saturating_add(k));
                    }
                    for &(s, o) in &iv.lo_syms {
                        r.add_lo_sym(s, o.saturating_add(k));
                    }
                    if let Some(v) = v {
                        if is_i64(f, v) {
                            r.add_hi_sym(Sym::Var(v), k);
                            r.add_lo_sym(Sym::Var(v), k);
                        }
                    }
                };
                if base == "checked_binary_plus" {
                    if let Some(k) = b.singleton() {
                        shift(&mut r, &a, args[0].as_var(), k);
                    } else if let Some(k) = a.singleton() {
                        shift(&mut r, &b, args[1].as_var(), k);
                    }
                } else if let Some(k) = b.singleton() {
                    shift(&mut r, &a, args[0].as_var(), -k);
                }
            }
            env.vars.insert(dst, r);
        }
        "checked_binary_quotient" if args.len() == 2 && is_i64(f, dst) => {
            let a = eval(env, &args[0]);
            let b = eval(env, &args[1]);
            // `b.hi >= b.lo` rejects inconsistent (empty) intervals that
            // branch refinement can produce along infeasible paths, where
            // `b.lo >= 1` alone would still let `b.hi` be zero.
            if b.lo >= 1 && b.hi >= b.lo && b.hi != POS_INF && a.lo != NEG_INF && a.hi != POS_INF {
                let c = [
                    a.lo.div_euclid(b.lo),
                    a.lo.div_euclid(b.hi),
                    a.hi.div_euclid(b.lo),
                    a.hi.div_euclid(b.hi),
                ];
                env.vars.insert(
                    dst,
                    Ival::range(*c.iter().min().unwrap(), *c.iter().max().unwrap()),
                );
            } else if b.lo >= 1 && a.lo >= 0 {
                env.vars.insert(dst, Ival::range(0, a.hi));
            }
        }
        "checked_binary_mod" if args.len() == 2 && is_i64(f, dst) => {
            // Flooring mod: the result takes the divisor's sign.
            let b = eval(env, &args[1]);
            if b.lo >= 1 {
                let hi = if b.hi == POS_INF { POS_INF } else { b.hi - 1 };
                env.vars.insert(dst, Ival::range(0, hi));
            }
        }
        "checked_unary_minus" if args.len() == 1 && is_i64(f, dst) => {
            let r = eval(env, &args[0]).neg();
            env.vars.insert(dst, r);
        }
        "unary_abs" | "checked_unary_abs" if args.len() == 1 && is_i64(f, dst) => {
            let r = eval(env, &args[0]).abs();
            env.vars.insert(dst, r);
        }
        "binary_min" | "binary_max" if args.len() == 2 && is_i64(f, dst) => {
            let a = eval(env, &args[0]);
            let b = eval(env, &args[1]);
            let mut r = if base == "binary_min" {
                let mut r = Ival::range(a.lo.min(b.lo), a.hi.min(b.hi));
                // min(a, b) inherits every upper bound of either input.
                for &(s, k) in a.hi_syms.iter().chain(&b.hi_syms) {
                    r.add_hi_sym(s, k);
                }
                r
            } else {
                let mut r = Ival::range(a.lo.max(b.lo), a.hi.max(b.hi));
                for &(s, k) in a.lo_syms.iter().chain(&b.lo_syms) {
                    r.add_lo_sym(s, k);
                }
                r
            };
            r.nz = false;
            env.vars.insert(dst, r);
        }
        "binary_gcd" if args.len() == 2 && is_i64(f, dst) => {
            let a = eval(env, &args[0]).abs();
            let b = eval(env, &args[1]).abs();
            env.vars.insert(dst, Ival::range(0, a.hi.max(b.hi)));
        }
        "bit_and" if args.len() == 2 && is_i64(f, dst) => {
            let a = eval(env, &args[0]);
            let b = eval(env, &args[1]);
            if a.lo >= 0 && b.lo >= 0 {
                env.vars.insert(dst, Ival::range(0, a.hi.min(b.hi)));
            }
        }
        "bit_or" | "bit_xor" if args.len() == 2 && is_i64(f, dst) => {
            let a = eval(env, &args[0]);
            let b = eval(env, &args[1]);
            if a.lo >= 0 && b.lo >= 0 {
                let m = a.hi.max(b.hi);
                let hi = if !(0..(1 << 62)).contains(&m) {
                    POS_INF
                } else {
                    ((m as u64 + 1).next_power_of_two() - 1) as i64
                };
                env.vars.insert(dst, Ival::range(0, hi));
            }
        }
        "bit_shift_right" if args.len() == 2 && is_i64(f, dst) => {
            let a = eval(env, &args[0]);
            let b = eval(env, &args[1]);
            if a.lo >= 0 && b.lo >= 0 {
                env.vars.insert(dst, Ival::range(0, a.hi));
            }
        }
        "logical_and" | "logical_or" | "unary_not" | "boole" if int_like(f, dst) => {
            env.vars.insert(dst, Ival::range(0, 1));
        }
        "unary_sign" if is_i64(f, dst) => {
            env.vars.insert(dst, Ival::range(-1, 1));
        }
        "power_mod" if args.len() == 3 && is_i64(f, dst) => {
            let m = eval(env, &args[2]);
            if m.lo >= 1 {
                let hi = if m.hi == POS_INF { POS_INF } else { m.hi - 1 };
                env.vars.insert(dst, Ival::range(0, hi));
            }
        }
        _ if base.starts_with("compare_") && int_like(f, dst) => {
            env.vars.insert(dst, Ival::range(0, 1));
        }
        "tensor_length" if args.len() == 1 && is_i64(f, dst) => {
            let mut r = Ival::range(0, MAX_LEN);
            match &args[0] {
                Operand::Var(t) => {
                    if let Some(ax) = env.dims.get(t).and_then(|d| d.first()) {
                        r.lo = r.lo.max(ax.lo);
                        r.hi = r.hi.min(ax.hi);
                        let eq = ax.eq.clone();
                        for s in eq {
                            match s {
                                Sym::Len(..) => {
                                    r.add_hi_sym(s, 0);
                                    r.add_lo_sym(s, 0);
                                }
                                Sym::Var(h) => {
                                    if env.vars.get(&h).is_some_and(|iv| iv.lo >= 0) {
                                        r.add_hi_sym(s, 0);
                                        r.add_lo_sym(s, 0);
                                    }
                                }
                                Sym::NegLen(..) => {}
                            }
                        }
                    }
                    r.add_hi_sym(Sym::Len(*t, 0), 0);
                    r.add_lo_sym(Sym::Len(*t, 0), 0);
                }
                Operand::Const(Constant::I64Array(a)) => r = Ival::exact(a.len() as i64),
                Operand::Const(Constant::F64Array(a)) => r = Ival::exact(a.len() as i64),
                _ => {}
            }
            env.vars.insert(dst, r);
        }
        "string_length" if is_i64(f, dst) => {
            env.vars.insert(dst, Ival::range(0, POS_INF));
        }
        "tensor_part_1" if args.len() == 2 => {
            assume_in_bounds(env, f, &args[0], &[(&args[1], 0)]);
        }
        "tensor_part_2" if args.len() == 3 => {
            assume_in_bounds(env, f, &args[0], &[(&args[1], 0), (&args[2], 1)]);
        }
        "tensor_set_1" if args.len() == 3 => {
            set_dims_from(env, f, dst, &args[0]);
            assume_in_bounds(env, f, &args[0], &[(&args[1], 0)]);
        }
        "tensor_set_2" if args.len() == 4 => {
            set_dims_from(env, f, dst, &args[0]);
            assume_in_bounds(env, f, &args[0], &[(&args[1], 0), (&args[2], 1)]);
        }
        "tensor_set_row" if args.len() == 3 => {
            set_dims_from(env, f, dst, &args[0]);
            assume_in_bounds(env, f, &args[0], &[(&args[1], 0)]);
        }
        "tensor_fill_1" if args.len() == 2 => {
            let ax = axis_from_count(env, f, &args[1]);
            env.dims.insert(dst, vec![ax]);
        }
        "tensor_fill_2" if args.len() == 3 => {
            let ax1 = axis_from_count(env, f, &args[1]);
            let ax2 = axis_from_count(env, f, &args[2]);
            env.dims.insert(dst, vec![ax1, ax2]);
        }
        "list_construct" => {
            env.dims
                .insert(dst, vec![AxisLen::known(args.len() as i64)]);
        }
        "tensor_plus" | "tensor_subtract" | "tensor_times" => {
            // Elementwise: the result shares every input's lengths.
            for a in args {
                if let Some(v) = a.as_var() {
                    if env.dims.contains_key(&v) {
                        set_dims_from(env, f, dst, a);
                        break;
                    }
                }
            }
        }
        _ => {}
    }
    if carried > 0 {
        if let Some(iv) = env.vars.get_mut(&dst) {
            iv.grows = iv.grows.max(carried);
        }
    }
    if let std::collections::hash_map::Entry::Vacant(e) = env.dims.entry(dst) {
        if let Some(rank) = tensor_rank(f, dst) {
            e.insert(vec![AxisLen::unknown(); rank]);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CmpKind {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpKind {
    fn negate(self) -> CmpKind {
        match self {
            CmpKind::Lt => CmpKind::Ge,
            CmpKind::Le => CmpKind::Gt,
            CmpKind::Gt => CmpKind::Le,
            CmpKind::Ge => CmpKind::Lt,
            CmpKind::Eq => CmpKind::Ne,
            CmpKind::Ne => CmpKind::Eq,
        }
    }
}

/// The interval dataflow problem: a condition-definition prepass plus
/// the block/edge transfer functions.
struct Ranges {
    cmps: HashMap<VarId, (CmpKind, Operand, Operand)>,
    nots: HashMap<VarId, VarId>,
    junctions: HashMap<VarId, (bool, VarId, VarId)>,
}

impl Ranges {
    fn prepass(f: &Function) -> Ranges {
        let mut r = Ranges {
            cmps: HashMap::new(),
            nots: HashMap::new(),
            junctions: HashMap::new(),
        };
        for i in f.instrs() {
            let Instr::Call {
                dst,
                callee: Callee::Primitive(p),
                args,
            } = i
            else {
                continue;
            };
            let base = base_name(p);
            let kind = match base {
                "compare_less" => Some(CmpKind::Lt),
                "compare_less_equal" => Some(CmpKind::Le),
                "compare_greater" => Some(CmpKind::Gt),
                "compare_greater_equal" => Some(CmpKind::Ge),
                "compare_equal" => Some(CmpKind::Eq),
                "compare_unequal" => Some(CmpKind::Ne),
                _ => None,
            };
            if let Some(kind) = kind {
                if args.len() == 2 && args.iter().all(|a| int_operand(f, a)) {
                    r.cmps
                        .insert(*dst, (kind, args[0].clone(), args[1].clone()));
                }
                continue;
            }
            match base {
                "unary_not" if args.len() == 1 => {
                    if let Some(v) = args[0].as_var() {
                        r.nots.insert(*dst, v);
                    }
                }
                "logical_and" | "logical_or" if args.len() == 2 => {
                    if let (Some(a), Some(b)) = (args[0].as_var(), args[1].as_var()) {
                        r.junctions.insert(*dst, (base == "logical_and", a, b));
                    }
                }
                _ => {}
            }
        }
        r
    }

    fn refine_var(&self, f: &Function, env: &mut Env, v: VarId, truth: bool, depth: u8) {
        env.vars.insert(v, Ival::exact(truth as i64));
        if depth == 0 {
            return;
        }
        if let Some(&inner) = self.nots.get(&v) {
            self.refine_var(f, env, inner, !truth, depth - 1);
        }
        if let Some((kind, l, r)) = self.cmps.get(&v).cloned() {
            apply_cmp(f, env, kind, &l, &r, truth);
        }
        if let Some(&(is_and, a, b)) = self.junctions.get(&v) {
            // `a && b` true (or `a || b` false) pins both operands.
            if is_and == truth {
                self.refine_var(f, env, a, truth, depth - 1);
                self.refine_var(f, env, b, truth, depth - 1);
            }
        }
    }
}

/// Establishes `x <= y + off` in `env`.
fn bound_le(env: &mut Env, f: &Function, x: &Operand, y: &Operand, off: i64) {
    let yiv = eval(env, y);
    match x.as_var() {
        Some(xv) if is_i64(f, xv) => {
            let hi = add_hi(yiv.hi, off);
            let hi_syms = yiv.hi_syms.clone();
            let e = env.vars.entry(xv).or_insert_with(Ival::top);
            e.hi = e.hi.min(hi);
            if let Some(yv) = y.as_var() {
                if is_i64(f, yv) {
                    e.add_hi_sym(Sym::Var(yv), off);
                }
            }
            for (s, k) in hi_syms {
                e.add_hi_sym(s, k.saturating_add(off));
            }
        }
        _ => {
            // const <= y + off  =>  y >= const - off.
            if let (Some(Constant::I64(k)), Some(yv)) = (x.as_const(), y.as_var()) {
                if is_i64(f, yv) {
                    let lo = k.saturating_sub(off);
                    let e = env.vars.entry(yv).or_insert_with(Ival::top);
                    e.lo = e.lo.max(lo);
                }
            }
        }
    }
}

/// Establishes `x >= y + off` in `env`.
fn bound_ge(env: &mut Env, f: &Function, x: &Operand, y: &Operand, off: i64) {
    let yiv = eval(env, y);
    match x.as_var() {
        Some(xv) if is_i64(f, xv) => {
            let lo = add_lo(yiv.lo, off);
            let lo_syms = yiv.lo_syms.clone();
            let e = env.vars.entry(xv).or_insert_with(Ival::top);
            e.lo = e.lo.max(lo);
            if let Some(yv) = y.as_var() {
                if is_i64(f, yv) {
                    e.add_lo_sym(Sym::Var(yv), off);
                }
            }
            for (s, k) in lo_syms {
                e.add_lo_sym(s, k.saturating_add(off));
            }
        }
        _ => {
            // const >= y + off  =>  y <= const - off.
            if let (Some(Constant::I64(k)), Some(yv)) = (x.as_const(), y.as_var()) {
                if is_i64(f, yv) {
                    let hi = k.saturating_sub(off);
                    let e = env.vars.entry(yv).or_insert_with(Ival::top);
                    e.hi = e.hi.min(hi);
                }
            }
        }
    }
}

/// Trims an endpoint equal to a known-excluded value.
fn exclude(env: &mut Env, f: &Function, x: &Operand, y: &Operand) {
    let Some(k) = eval(env, y).singleton() else {
        return;
    };
    let Some(xv) = x.as_var() else { return };
    if !is_i64(f, xv) {
        return;
    }
    let e = env.vars.entry(xv).or_insert_with(Ival::top);
    if k == 0 {
        e.nz = true;
    }
    if e.lo == k {
        e.lo = e.lo.saturating_add(1);
    }
    if e.hi == k {
        e.hi = e.hi.saturating_sub(1);
    }
}

fn apply_cmp(f: &Function, env: &mut Env, kind: CmpKind, l: &Operand, r: &Operand, truth: bool) {
    let kind = if truth { kind } else { kind.negate() };
    match kind {
        CmpKind::Lt => {
            bound_le(env, f, l, r, -1);
            bound_ge(env, f, r, l, 1);
        }
        CmpKind::Le => {
            bound_le(env, f, l, r, 0);
            bound_ge(env, f, r, l, 0);
        }
        CmpKind::Gt => {
            bound_ge(env, f, l, r, 1);
            bound_le(env, f, r, l, -1);
        }
        CmpKind::Ge => {
            bound_ge(env, f, l, r, 0);
            bound_le(env, f, r, l, 0);
        }
        CmpKind::Eq => {
            bound_le(env, f, l, r, 0);
            bound_ge(env, f, l, r, 0);
            bound_le(env, f, r, l, 0);
            bound_ge(env, f, r, l, 0);
        }
        CmpKind::Ne => {
            exclude(env, f, l, r);
            exclude(env, f, r, l);
        }
    }
}

impl Analysis for Ranges {
    type Fact = Env;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary(&self, _f: &Function) -> Env {
        Env {
            reachable: true,
            vars: HashMap::new(),
            dims: HashMap::new(),
        }
    }

    fn transfer_block(&self, f: &Function, b: BlockId, fact: &mut Env) {
        if !fact.reachable {
            return;
        }
        for i in &f.block(b).instrs {
            transfer_instr(f, fact, i);
        }
    }

    fn transfer_edge(&self, f: &Function, from: BlockId, to: BlockId, fact: &mut Env) {
        if !fact.reachable {
            return;
        }
        if let Some(Instr::Branch {
            cond,
            then_block,
            else_block,
        }) = f.block(from).instrs.last()
        {
            if then_block != else_block {
                let truth = if to == *then_block {
                    Some(true)
                } else if to == *else_block {
                    Some(false)
                } else {
                    None
                };
                if let Some(truth) = truth {
                    match cond {
                        Operand::Var(v) => self.refine_var(f, fact, *v, truth, 4),
                        Operand::Const(Constant::Bool(b)) if *b != truth => {
                            *fact = Env::bottom();
                            return;
                        }
                        _ => {}
                    }
                }
            }
        }
        // Parallel per-edge phi assignment: evaluate every incoming
        // operand in the predecessor's (refined) environment first,
        // then write all destinations.
        let mut var_writes = Vec::new();
        let mut dim_writes = Vec::new();
        for instr in &f.block(to).instrs {
            let Instr::Phi { dst, incoming } = instr else {
                continue;
            };
            for (p, op) in incoming {
                if *p != from {
                    continue;
                }
                let iv = if int_like(f, *dst) {
                    let mut iv = eval(fact, op);
                    if let Some(src) = op.as_var() {
                        if int_like(f, src) {
                            iv.add_hi_sym(Sym::Var(src), 0);
                            iv.add_lo_sym(Sym::Var(src), 0);
                        }
                    }
                    Some(iv)
                } else {
                    None
                };
                var_writes.push((*dst, iv));
                let dims = match op {
                    Operand::Var(s) => tensor_rank(f, *s).map(|rank| {
                        let mut d = fact
                            .dims
                            .get(s)
                            .cloned()
                            .unwrap_or_else(|| vec![AxisLen::unknown(); rank]);
                        for (i, ax) in d.iter_mut().enumerate() {
                            ax.add_eq(Sym::Len(*s, i as u8));
                        }
                        d
                    }),
                    Operand::Const(Constant::I64Array(a)) => {
                        Some(vec![AxisLen::known(a.len() as i64)])
                    }
                    Operand::Const(Constant::F64Array(a)) => {
                        Some(vec![AxisLen::known(a.len() as i64)])
                    }
                    _ => None,
                };
                dim_writes.push((*dst, dims));
            }
        }
        for (dst, iv) in var_writes {
            match iv {
                Some(iv) => {
                    fact.vars.insert(dst, iv);
                }
                None => {
                    fact.vars.remove(&dst);
                }
            }
        }
        for (dst, d) in dim_writes {
            match d {
                Some(d) => {
                    fact.dims.insert(dst, d);
                }
                None => {
                    fact.dims.remove(&dst);
                }
            }
        }
    }
}

/// Per-function elision facts, keyed by `(block, instruction index)`.
#[derive(Debug, Clone, Default)]
pub struct FnRangeFacts {
    /// Part/set sites whose every index is proved in bounds.
    pub proved_parts: HashSet<(BlockId, usize)>,
    /// Checked integer plus/subtract/times sites proved overflow-free.
    pub proved_arith: HashSet<(BlockId, usize)>,
    /// Acquire/release instructions in provably redundant pairs
    /// ([`crate::refcount::elidable_pairs`]).
    pub elidable_rc: HashSet<(BlockId, usize)>,
    /// Total Part-style bounds-checked sites seen.
    pub parts_total: u32,
    /// Sites in `proved_parts`.
    pub parts_proved: u32,
    /// Total checked plus/subtract/times sites seen.
    pub arith_total: u32,
    /// Sites in `proved_arith`.
    pub arith_proved: u32,
    /// Elidable acquire/release pairs.
    pub rc_pairs: u32,
}

/// Module-wide elision facts, keyed by function name.
#[derive(Debug, Clone, Default)]
pub struct RangeFacts {
    /// Facts per function.
    pub functions: HashMap<String, FnRangeFacts>,
}

fn part_lint(
    env: &Env,
    f: &Function,
    t_op: &Operand,
    idx: &Operand,
    b: BlockId,
    ix: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let k = match idx {
        Operand::Const(Constant::I64(k)) => *k,
        Operand::Var(v) => match env.vars.get(v).and_then(Ival::singleton) {
            Some(k) => k,
            None => return,
        },
        _ => return,
    };
    let len = {
        let facts = axis_facts(env, t_op, 0);
        if facts.min_len != facts.max_len {
            return;
        }
        facts.min_len
    };
    if k == 0 || k > len || k < -len {
        diags.push(
            Diagnostic::warning(
                "part-out-of-bounds",
                f,
                format!("Part index {k} is out of range for a list of length {len}"),
            )
            .at(b, Some(ix)),
        );
    }
}

fn inspect(
    f: &Function,
    env: &Env,
    b: BlockId,
    ix: usize,
    instr: &Instr,
    facts: &mut FnRangeFacts,
    diags: &mut Vec<Diagnostic>,
) {
    let Instr::Call { dst, callee, args } = instr else {
        return;
    };
    match callee {
        Callee::Builtin(n) if &**n == "Part" && args.len() == 2 => {
            part_lint(env, f, &args[0], &args[1], b, ix, diags);
        }
        Callee::Primitive(p) => {
            let base = base_name(p);
            let sites: &[(usize, usize)] = match base {
                "tensor_part_1" if args.len() == 2 => &[(1, 0)],
                "tensor_part_2" if args.len() == 3 => &[(1, 0), (2, 1)],
                "tensor_set_1" if args.len() == 3 => &[(1, 0)],
                "tensor_set_2" if args.len() == 4 => &[(1, 0), (2, 1)],
                "tensor_set_row" if args.len() == 3 => &[(1, 0)],
                _ => &[],
            };
            if !sites.is_empty() {
                facts.parts_total += 1;
                if sites
                    .iter()
                    .all(|&(arg, axis)| prove_index(env, &args[0], &args[arg], axis))
                {
                    facts.proved_parts.insert((b, ix));
                    facts.parts_proved += 1;
                }
                if base == "tensor_part_1" {
                    part_lint(env, f, &args[0], &args[1], b, ix, diags);
                }
                return;
            }
            if matches!(
                base,
                "checked_binary_plus" | "checked_binary_subtract" | "checked_binary_times"
            ) && args.len() == 2
                && is_i64(f, *dst)
                && args.iter().all(|a| int_operand(f, a))
            {
                facts.arith_total += 1;
                let a = eval(env, &args[0]);
                let bi = eval(env, &args[1]);
                let (alo, ahi) = (
                    resolve_lo(env, &a, 2) as i128,
                    resolve_hi(env, &a, 2) as i128,
                );
                let (blo, bhi) = (
                    resolve_lo(env, &bi, 2) as i128,
                    resolve_hi(env, &bi, 2) as i128,
                );
                let (lo, hi) = match base {
                    "checked_binary_plus" => (alo + blo, ahi + bhi),
                    "checked_binary_subtract" => (alo - bhi, ahi - blo),
                    _ => {
                        let c = [alo * blo, alo * bhi, ahi * blo, ahi * bhi];
                        (*c.iter().min().unwrap(), *c.iter().max().unwrap())
                    }
                };
                if lo >= i64::MIN as i128 && hi <= i64::MAX as i128 {
                    facts.proved_arith.insert((b, ix));
                    facts.arith_proved += 1;
                }
            }
        }
        _ => {}
    }
}

fn run(f: &Function) -> (FnRangeFacts, Vec<Diagnostic>) {
    let mut facts = FnRangeFacts::default();
    let mut diags = Vec::new();
    if f.blocks.is_empty() {
        return (facts, diags);
    }
    let cfg = Cfg::new(f);
    let ranges = Ranges::prepass(f);
    let mut res = solve(&ranges, f, &cfg);
    // Narrowing: re-apply the edge-refined transfer without widening.
    // `x ⊓ F(x)` stays above the least fixpoint, so two rounds are sound
    // and recover most of what the threshold snap overshot.
    for _ in 0..2 {
        let mut changed = false;
        for &b in &cfg.rpo {
            let mut fresh = if b == f.entry {
                ranges.boundary(f)
            } else {
                Env::bottom()
            };
            for &p in &cfg.preds[b.0 as usize] {
                if let Some(out) = res.on_exit.get(&p) {
                    let mut e = out.clone();
                    ranges.transfer_edge(f, p, b, &mut e);
                    fresh.join_impl(&e, false);
                }
            }
            let entry = res.on_entry.get(&b).cloned().unwrap_or_else(Env::bottom);
            let mut narrowed = entry.clone();
            narrowed.meet(&fresh);
            let mut exit = narrowed.clone();
            ranges.transfer_block(f, b, &mut exit);
            if narrowed != entry {
                res.on_entry.insert(b, narrowed);
                changed = true;
            }
            if res.on_exit.get(&b) != Some(&exit) {
                res.on_exit.insert(b, exit);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &b in &cfg.rpo {
        let Some(entry) = res.on_entry.get(&b) else {
            continue;
        };
        if !entry.reachable {
            continue;
        }
        let mut env = entry.clone();
        for (ix, instr) in f.block(b).instrs.iter().enumerate() {
            inspect(f, &env, b, ix, instr, &mut facts, &mut diags);
            transfer_instr(f, &mut env, instr);
        }
    }
    facts.elidable_rc = crate::refcount::elidable_pairs(f);
    facts.rc_pairs = (facts.elidable_rc.len() / 2) as u32;
    (facts, diags)
}

/// Runs the interval analysis and returns the elision facts.
pub fn analyze_ranges(f: &Function) -> FnRangeFacts {
    run(f).0
}

/// Runs the interval analysis over every function of a module.
pub fn analyze_module_ranges(pm: &ProgramModule) -> RangeFacts {
    RangeFacts {
        functions: pm
            .functions
            .iter()
            .map(|f| (f.name.clone(), analyze_ranges(f)))
            .collect(),
    }
}

/// Flow-sensitive `part-out-of-bounds` lint: warns when a Part index is
/// a known constant provably outside a known-length list on a reachable
/// path.
pub fn part_bounds(f: &Function) -> Vec<Diagnostic> {
    run(f).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wolfram_ir::module::Block;

    fn prim(name: &str) -> Callee {
        Callee::Primitive(Arc::from(name))
    }

    fn ity() -> Type {
        Type::integer64()
    }

    fn bty() -> Type {
        Type::boolean()
    }

    fn tty() -> Type {
        Type::tensor(Type::integer64(), 1)
    }

    #[test]
    fn constant_part_out_of_range_is_flagged() {
        // Moved from lints.rs when the lint folded into the interval
        // analysis: the diagnostic code and message are stable.
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64Array(Arc::from([1i64, 2, 3].as_slice())),
                },
                Instr::Call {
                    dst: VarId(1),
                    callee: Callee::Builtin(Arc::from("Part")),
                    args: vec![VarId(0).into(), Constant::I64(4).into()],
                },
                Instr::Return {
                    value: VarId(1).into(),
                },
            ],
        });
        let diags = part_bounds(&f);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "part-out-of-bounds");
        assert!(diags[0]
            .message
            .contains("Part index 4 is out of range for a list of length 3"));
        // In-range (positive and negative) indices stay quiet.
        let Instr::Call { args, .. } = &mut f.blocks[0].instrs[1] else {
            unreachable!()
        };
        args[1] = Constant::I64(-3).into();
        assert!(part_bounds(&f).is_empty());
    }

    #[test]
    fn length_flows_through_copies_and_flags_twir_parts() {
        let mut f = Function::new("f", 0);
        f.var_types.insert(VarId(0), tty());
        f.var_types.insert(VarId(1), tty());
        f.var_types.insert(VarId(2), ity());
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64Array(Arc::from([1i64, 2, 3].as_slice())),
                },
                Instr::Copy {
                    dst: VarId(1),
                    src: VarId(0),
                },
                Instr::Call {
                    dst: VarId(2),
                    callee: prim("tensor_part_1$TensorInteger64R1$Integer64"),
                    args: vec![VarId(1).into(), Constant::I64(5).into()],
                },
                Instr::Return {
                    value: VarId(2).into(),
                },
            ],
        });
        let diags = part_bounds(&f);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "part-out-of-bounds");
    }

    #[test]
    fn unreachable_part_stays_quiet() {
        // The old constant-only lint was block-insensitive; the interval
        // analysis only reports reachable accesses.
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![Instr::Return {
                value: Constant::Null.into(),
            }],
        });
        f.blocks.push(Block {
            label: "orphan".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64Array(Arc::from([1i64].as_slice())),
                },
                Instr::Call {
                    dst: VarId(1),
                    callee: Callee::Builtin(Arc::from("Part")),
                    args: vec![VarId(0).into(), Constant::I64(9).into()],
                },
                Instr::Return {
                    value: VarId(1).into(),
                },
            ],
        });
        assert!(part_bounds(&f).is_empty());
    }

    /// `t = fill(0, 100); i = 1; while i <= 100 { t[[i]]; i = i + 1 }`
    #[test]
    fn counted_loop_widens_terminates_and_proves() {
        let mut f = Function::new("f", 0);
        for v in [0u32, 1, 3, 4, 6, 8] {
            f.var_types.insert(VarId(v), ity());
        }
        f.var_types.insert(VarId(2), tty());
        f.var_types.insert(VarId(5), bty());
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64(0),
                },
                Instr::LoadConst {
                    dst: VarId(1),
                    value: Constant::I64(100),
                },
                Instr::Call {
                    dst: VarId(2),
                    callee: prim("tensor_fill_1$Integer64$Integer64"),
                    args: vec![VarId(0).into(), VarId(1).into()],
                },
                Instr::LoadConst {
                    dst: VarId(3),
                    value: Constant::I64(1),
                },
                Instr::Jump { target: BlockId(1) },
            ],
        });
        f.blocks.push(Block {
            label: "head".into(),
            instrs: vec![
                Instr::Phi {
                    dst: VarId(4),
                    incoming: vec![(BlockId(0), VarId(3).into()), (BlockId(2), VarId(8).into())],
                },
                Instr::Call {
                    dst: VarId(5),
                    callee: prim("compare_less_equal$Integer64$Integer64"),
                    args: vec![VarId(4).into(), Constant::I64(100).into()],
                },
                Instr::Branch {
                    cond: VarId(5).into(),
                    then_block: BlockId(2),
                    else_block: BlockId(3),
                },
            ],
        });
        f.blocks.push(Block {
            label: "body".into(),
            instrs: vec![
                Instr::Call {
                    dst: VarId(6),
                    callee: prim("tensor_part_1$TensorInteger64R1$Integer64"),
                    args: vec![VarId(2).into(), VarId(4).into()],
                },
                Instr::Call {
                    dst: VarId(8),
                    callee: prim("checked_binary_plus$Integer64$Integer64"),
                    args: vec![VarId(4).into(), Constant::I64(1).into()],
                },
                Instr::Jump { target: BlockId(1) },
            ],
        });
        f.blocks.push(Block {
            label: "exit".into(),
            instrs: vec![Instr::Return {
                value: Constant::Null.into(),
            }],
        });
        let facts = analyze_ranges(&f);
        assert_eq!(facts.parts_total, 1);
        assert_eq!(facts.parts_proved, 1, "{facts:?}");
        assert!(facts.proved_parts.contains(&(BlockId(2), 0)));
        // `i + 1` with `i <= 100` provably cannot overflow.
        assert_eq!(facts.arith_total, 1);
        assert_eq!(facts.arith_proved, 1, "{facts:?}");
    }

    /// Data-dependent bound: `n = Length[t]; i = 1; while i <= n { t[[i]] }`
    #[test]
    fn length_bounded_loop_proves_symbolically() {
        let mut f = Function::new("f", 1);
        f.var_types.insert(VarId(0), tty());
        for v in [1u32, 2, 3, 5, 6] {
            f.var_types.insert(VarId(v), ity());
        }
        f.var_types.insert(VarId(4), bty());
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadArgument {
                    dst: VarId(0),
                    index: 0,
                },
                Instr::Call {
                    dst: VarId(1),
                    callee: prim("tensor_length$TensorInteger64R1"),
                    args: vec![VarId(0).into()],
                },
                Instr::LoadConst {
                    dst: VarId(2),
                    value: Constant::I64(1),
                },
                Instr::Jump { target: BlockId(1) },
            ],
        });
        f.blocks.push(Block {
            label: "head".into(),
            instrs: vec![
                Instr::Phi {
                    dst: VarId(3),
                    incoming: vec![(BlockId(0), VarId(2).into()), (BlockId(2), VarId(6).into())],
                },
                Instr::Call {
                    dst: VarId(4),
                    callee: prim("compare_less_equal$Integer64$Integer64"),
                    args: vec![VarId(3).into(), VarId(1).into()],
                },
                Instr::Branch {
                    cond: VarId(4).into(),
                    then_block: BlockId(2),
                    else_block: BlockId(3),
                },
            ],
        });
        f.blocks.push(Block {
            label: "body".into(),
            instrs: vec![
                Instr::Call {
                    dst: VarId(5),
                    callee: prim("tensor_part_1$TensorInteger64R1$Integer64"),
                    args: vec![VarId(0).into(), VarId(3).into()],
                },
                Instr::Call {
                    dst: VarId(6),
                    callee: prim("checked_binary_plus$Integer64$Integer64"),
                    args: vec![VarId(3).into(), Constant::I64(1).into()],
                },
                Instr::Jump { target: BlockId(1) },
            ],
        });
        f.blocks.push(Block {
            label: "exit".into(),
            instrs: vec![Instr::Return {
                value: Constant::Null.into(),
            }],
        });
        let facts = analyze_ranges(&f);
        assert_eq!(facts.parts_total, 1);
        assert_eq!(facts.parts_proved, 1, "{facts:?}");
        // `i <= Length[t] <= 2^60`, so `i + 1` cannot overflow either.
        assert_eq!(facts.arith_proved, 1, "{facts:?}");
    }

    /// A dominating check proves a repeated access with an index of
    /// unknown sign: the post-state is `k ∈ [-len, -1] ∪ [1, len]`.
    #[test]
    fn dominating_check_proves_negative_index_reaccess() {
        let mut f = Function::new("f", 2);
        f.var_types.insert(VarId(0), tty());
        for v in [1u32, 2, 3] {
            f.var_types.insert(VarId(v), ity());
        }
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadArgument {
                    dst: VarId(0),
                    index: 0,
                },
                Instr::LoadArgument {
                    dst: VarId(1),
                    index: 1,
                },
                Instr::Call {
                    dst: VarId(2),
                    callee: prim("tensor_part_1$TensorInteger64R1$Integer64"),
                    args: vec![VarId(0).into(), VarId(1).into()],
                },
                Instr::Call {
                    dst: VarId(3),
                    callee: prim("tensor_part_1$TensorInteger64R1$Integer64"),
                    args: vec![VarId(0).into(), VarId(1).into()],
                },
                Instr::Return {
                    value: VarId(3).into(),
                },
            ],
        });
        let facts = analyze_ranges(&f);
        assert_eq!(facts.parts_total, 2);
        assert_eq!(facts.parts_proved, 1, "{facts:?}");
        assert!(facts.proved_parts.contains(&(BlockId(0), 3)));
        assert!(!facts.proved_parts.contains(&(BlockId(0), 2)));
    }

    /// `If[1 <= i && i <= n]` (as nested branches) narrows `i` on the
    /// true edges; the guarded `fill(n)[[i]]` proves, the unguarded
    /// access on the else path does not.
    #[test]
    fn branch_refinement_narrows_true_edge_only() {
        let mut f = Function::new("f", 2);
        for v in [0u32, 1, 5, 8] {
            f.var_types.insert(VarId(v), ity());
        }
        f.var_types.insert(VarId(2), bty());
        f.var_types.insert(VarId(3), bty());
        f.var_types.insert(VarId(4), tty());
        f.var_types.insert(VarId(6), tty());
        f.var_types.insert(VarId(7), ity());
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadArgument {
                    dst: VarId(0),
                    index: 0,
                },
                Instr::LoadArgument {
                    dst: VarId(1),
                    index: 1,
                },
                Instr::Call {
                    dst: VarId(2),
                    callee: prim("compare_greater_equal$Integer64$Integer64"),
                    args: vec![VarId(0).into(), Constant::I64(1).into()],
                },
                Instr::Branch {
                    cond: VarId(2).into(),
                    then_block: BlockId(1),
                    else_block: BlockId(3),
                },
            ],
        });
        f.blocks.push(Block {
            label: "guard2".into(),
            instrs: vec![
                Instr::Call {
                    dst: VarId(3),
                    callee: prim("compare_less_equal$Integer64$Integer64"),
                    args: vec![VarId(0).into(), VarId(1).into()],
                },
                Instr::Branch {
                    cond: VarId(3).into(),
                    then_block: BlockId(2),
                    else_block: BlockId(3),
                },
            ],
        });
        f.blocks.push(Block {
            label: "guarded".into(),
            instrs: vec![
                Instr::Call {
                    dst: VarId(4),
                    callee: prim("tensor_fill_1$Integer64$Integer64"),
                    args: vec![Constant::I64(0).into(), VarId(1).into()],
                },
                Instr::Call {
                    dst: VarId(5),
                    callee: prim("tensor_part_1$TensorInteger64R1$Integer64"),
                    args: vec![VarId(4).into(), VarId(0).into()],
                },
                Instr::Return {
                    value: VarId(5).into(),
                },
            ],
        });
        f.blocks.push(Block {
            label: "unguarded".into(),
            instrs: vec![
                Instr::Call {
                    dst: VarId(6),
                    callee: prim("tensor_fill_1$Integer64$Integer64"),
                    args: vec![Constant::I64(0).into(), VarId(1).into()],
                },
                Instr::Call {
                    dst: VarId(7),
                    callee: prim("tensor_part_1$TensorInteger64R1$Integer64"),
                    args: vec![VarId(6).into(), VarId(0).into()],
                },
                Instr::Return {
                    value: VarId(7).into(),
                },
            ],
        });
        let facts = analyze_ranges(&f);
        assert_eq!(facts.parts_total, 2);
        assert_eq!(facts.parts_proved, 1, "{facts:?}");
        assert!(facts.proved_parts.contains(&(BlockId(2), 1)));
    }

    /// Widening terminates even when both comparands move.
    #[test]
    fn data_dependent_loop_terminates() {
        let mut f = Function::new("f", 1);
        for v in [0u32, 1, 2, 4, 5, 6] {
            f.var_types.insert(VarId(v), ity());
        }
        f.var_types.insert(VarId(3), bty());
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadArgument {
                    dst: VarId(0),
                    index: 0,
                },
                Instr::LoadConst {
                    dst: VarId(1),
                    value: Constant::I64(0),
                },
                Instr::Jump { target: BlockId(1) },
            ],
        });
        f.blocks.push(Block {
            label: "head".into(),
            instrs: vec![
                Instr::Phi {
                    dst: VarId(2),
                    incoming: vec![(BlockId(0), VarId(1).into()), (BlockId(2), VarId(5).into())],
                },
                Instr::Phi {
                    dst: VarId(4),
                    incoming: vec![(BlockId(0), VarId(0).into()), (BlockId(2), VarId(6).into())],
                },
                Instr::Call {
                    dst: VarId(3),
                    callee: prim("compare_less$Integer64$Integer64"),
                    args: vec![VarId(2).into(), VarId(4).into()],
                },
                Instr::Branch {
                    cond: VarId(3).into(),
                    then_block: BlockId(2),
                    else_block: BlockId(3),
                },
            ],
        });
        f.blocks.push(Block {
            label: "body".into(),
            instrs: vec![
                Instr::Call {
                    dst: VarId(5),
                    callee: prim("checked_binary_plus$Integer64$Integer64"),
                    args: vec![VarId(2).into(), Constant::I64(3).into()],
                },
                Instr::Call {
                    dst: VarId(6),
                    callee: prim("checked_binary_subtract$Integer64$Integer64"),
                    args: vec![VarId(4).into(), Constant::I64(1).into()],
                },
                Instr::Jump { target: BlockId(1) },
            ],
        });
        f.blocks.push(Block {
            label: "exit".into(),
            instrs: vec![Instr::Return {
                value: Constant::Null.into(),
            }],
        });
        // Completing at all is the assertion: the widening ladder must
        // bring the two moving endpoints to a fixpoint.
        let facts = analyze_ranges(&f);
        assert_eq!(facts.parts_total, 0);
        assert_eq!(facts.arith_total, 2);
    }

    #[test]
    fn quotient_on_infeasible_refined_path_does_not_panic() {
        // Regression (found by the differential fuzzer): refining `b >= 1`
        // on a constant-zero `b` yields the inconsistent interval [1, 0]
        // on the (infeasible) true edge, and the quotient transfer used to
        // feed its hi endpoint straight into `div_euclid` — divide by zero.
        let mut f = Function::new("f", 0);
        f.var_types.insert(VarId(0), ity());
        f.var_types.insert(VarId(1), ity());
        f.var_types.insert(VarId(2), bty());
        f.var_types.insert(VarId(3), ity());
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64(10),
                },
                Instr::LoadConst {
                    dst: VarId(1),
                    value: Constant::I64(0),
                },
                Instr::Call {
                    dst: VarId(2),
                    callee: prim("compare_greater_equal$Integer64$Integer64"),
                    args: vec![VarId(1).into(), Constant::I64(1).into()],
                },
                Instr::Branch {
                    cond: VarId(2).into(),
                    then_block: BlockId(1),
                    else_block: BlockId(2),
                },
            ],
        });
        f.blocks.push(Block {
            label: "divide".into(),
            instrs: vec![
                Instr::Call {
                    dst: VarId(3),
                    callee: prim("checked_binary_quotient$Integer64$Integer64"),
                    args: vec![VarId(0).into(), VarId(1).into()],
                },
                Instr::Return {
                    value: VarId(3).into(),
                },
            ],
        });
        f.blocks.push(Block {
            label: "exit".into(),
            instrs: vec![Instr::Return {
                value: Constant::I64(0).into(),
            }],
        });
        // Completing without panicking is the assertion.
        let _ = analyze_ranges(&f);
    }
}
