//! The refcount-balance checker: proves that every execution path pairs
//! `MemoryAcquire`/`MemoryRelease` exactly once per managed interval —
//! catching leaks (held at return), double releases, releases without a
//! matching acquire, and uses after release.
//!
//! Forward may-analysis over a per-variable state set drawn from
//! {Unheld, Held, Released}; the join is set union, so a variable whose
//! paths disagree carries several bits and the report sweep can name the
//! imbalanced path. Before `memory-management` has run there are no
//! acquire instructions, every variable stays Unheld, and the checker is
//! vacuously quiet — which is what lets it run after *every* pass.

use crate::dataflow::{solve, Analysis, Direction, Lattice};
use crate::diag::Diagnostic;
use std::collections::{BTreeMap, HashSet};
use wolfram_ir::analysis::Cfg;
use wolfram_ir::{BlockId, Function, Instr, Operand, VarId};

const UNHELD: u8 = 1;
const HELD: u8 = 2;
const RELEASED: u8 = 4;

/// Per-variable refcount state sets. `None` is the solver's bottom (no
/// path has reached this point yet); in a real (`Some`) fact, variables
/// never mentioned are implicitly `UNHELD` — so the join must add the
/// `UNHELD` bit for keys the *other* real fact does not mention.
#[derive(Debug, Clone, PartialEq)]
pub struct RcFact {
    states: Option<BTreeMap<VarId, u8>>,
}

impl RcFact {
    fn real() -> Self {
        RcFact {
            states: Some(BTreeMap::new()),
        }
    }

    fn get(&self, v: VarId) -> u8 {
        self.states
            .as_ref()
            .and_then(|m| m.get(&v).copied())
            .unwrap_or(UNHELD)
    }

    fn set(&mut self, v: VarId, bits: u8) {
        if let Some(m) = &mut self.states {
            m.insert(v, bits);
        }
    }
}

impl Lattice for RcFact {
    fn bottom() -> Self {
        RcFact { states: None }
    }

    fn join(&mut self, other: &Self) -> bool {
        let Some(theirs) = &other.states else {
            return false;
        };
        let Some(mine) = &mut self.states else {
            self.states = Some(theirs.clone());
            return true;
        };
        let mut changed = false;
        for (&v, &bits) in theirs {
            let e = mine.entry(v).or_insert(UNHELD);
            let merged = *e | bits;
            changed |= merged != *e;
            *e = merged;
        }
        for (&v, e) in mine.iter_mut() {
            if !theirs.contains_key(&v) {
                let merged = *e | UNHELD;
                changed |= merged != *e;
                *e = merged;
            }
        }
        changed
    }
}

struct RefcountAnalysis;

/// One instruction's effect on the state map (shared between the solver
/// and the report sweep).
fn transfer(fact: &mut RcFact, i: &Instr) {
    match i {
        Instr::MemoryAcquire { var } => fact.set(*var, HELD),
        Instr::MemoryRelease { var } => fact.set(*var, RELEASED),
        _ => {
            if let Some(d) = i.def() {
                fact.set(d, UNHELD);
            }
        }
    }
}

impl Analysis for RefcountAnalysis {
    type Fact = RcFact;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary(&self, _f: &Function) -> RcFact {
        RcFact::real()
    }

    fn transfer_block(&self, f: &Function, b: BlockId, fact: &mut RcFact) {
        for i in &f.block(b).instrs {
            transfer(fact, i);
        }
    }
}

/// Checks one function.
pub fn check(f: &Function) -> Vec<Diagnostic> {
    if f.blocks.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::new(f);
    let results = solve(&RefcountAnalysis, f, &cfg);
    let mut out = Vec::new();
    for &b in &cfg.rpo {
        let Some(entry) = results.on_entry.get(&b) else {
            continue;
        };
        let mut state = entry.clone();
        // Variables released earlier in this same block: their reads at
        // the block's *end* (terminator operands, phi-edge reads on
        // outgoing edges) are the release convention of the
        // memory-management pass, not use-after-release bugs.
        let mut released_here: HashSet<VarId> = HashSet::new();
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            match i {
                Instr::MemoryAcquire { var } => {
                    if state.get(*var) & HELD != 0 {
                        out.push(
                            Diagnostic::error(
                                "refcount-double-acquire",
                                f,
                                format!("%{} acquired while already held", var.0),
                            )
                            .at(b, Some(ix)),
                        );
                    }
                }
                Instr::MemoryRelease { var } => {
                    let bits = state.get(*var);
                    if bits & RELEASED != 0 {
                        out.push(
                            Diagnostic::error(
                                "refcount-double-release",
                                f,
                                format!("%{} released twice on some path", var.0),
                            )
                            .at(b, Some(ix)),
                        );
                    } else if bits & HELD == 0 {
                        out.push(
                            Diagnostic::error(
                                "refcount-release-unheld",
                                f,
                                format!("%{} released without a matching acquire", var.0),
                            )
                            .at(b, Some(ix)),
                        );
                    } else if bits & UNHELD != 0 {
                        out.push(
                            Diagnostic::error(
                                "refcount-unbalanced",
                                f,
                                format!("%{} released but unacquired on some path", var.0),
                            )
                            .at(b, Some(ix)),
                        );
                    }
                    released_here.insert(*var);
                }
                // Phi operands are reads on the incoming *edges*; they
                // are checked below against each predecessor's exit
                // state, not against this block's entry state.
                Instr::Phi { .. } => {}
                _ => {
                    for v in i.uses() {
                        if state.get(v) & RELEASED != 0
                            && !(released_here.contains(&v) && i.is_terminator())
                        {
                            out.push(
                                Diagnostic::error(
                                    "refcount-use-after-release",
                                    f,
                                    format!("%{} used after MemoryRelease", v.0),
                                )
                                .at(b, Some(ix)),
                            );
                        }
                    }
                }
            }
            transfer(&mut state, i);
            if let Instr::Return { .. } = i {
                for (&v, &bits) in state.states.iter().flatten() {
                    if bits & HELD != 0 {
                        out.push(
                            Diagnostic::error(
                                "refcount-leak",
                                f,
                                format!("%{} still held at return on some path", v.0),
                            )
                            .at(b, Some(ix)),
                        );
                    }
                }
            }
        }
        // Phi-edge reads on outgoing edges happen conceptually at this
        // block's end; a value released in an *earlier* block must not be
        // read here (release-before-terminator in this block is the
        // pass's convention and is fine).
        let mut succs: Vec<BlockId> = cfg.succs[b.0 as usize].clone();
        succs.sort_unstable();
        succs.dedup();
        for s in succs {
            for i in &f.block(s).instrs {
                let Instr::Phi { incoming, .. } = i else {
                    break;
                };
                for (p, o) in incoming {
                    if *p != b {
                        continue;
                    }
                    if let Operand::Var(v) = o {
                        if state.get(*v) & RELEASED != 0 && !released_here.contains(v) {
                            out.push(
                                Diagnostic::error(
                                    "refcount-use-after-release",
                                    f,
                                    format!(
                                        "%{} read by a phi in block {} after MemoryRelease",
                                        v.0,
                                        s.0 + 1
                                    ),
                                )
                                .at(b, None),
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

/// Must-be-last-use query for the interval analysis: acquire/release
/// pairs that are provably redundant and can be elided at lowering.
///
/// A pair `(Acquire %v at i, Release %v at j)` in the same block
/// qualifies when the acquire is immediately followed (on every path —
/// same block, so trivially) by the final release of `%v`:
///
/// * no instruction between them mentions `%v` (no use, no nested
///   acquire/release),
/// * nothing after the release in the block reads `%v` (including the
///   terminator and phi reads on outgoing edges), and
/// * `%v` is dead at the block's end (`liveness`).
///
/// Eliding such a pair is observationally safe: the machine's
/// acquire/release only move counters and the frame's acquired flags,
/// and with no intervening or subsequent use the +1/-1 cannot change
/// any copy-on-write or lifetime decision.
pub fn elidable_pairs(f: &Function) -> HashSet<(BlockId, usize)> {
    let mut out = HashSet::new();
    if f.blocks.is_empty() {
        return out;
    }
    let cfg = Cfg::new(f);
    let live = wolfram_ir::analysis::liveness(f, &cfg);
    for b in f.block_ids() {
        let instrs = &f.block(b).instrs;
        'acquire: for i in 0..instrs.len() {
            let Instr::MemoryAcquire { var } = &instrs[i] else {
                continue;
            };
            let v = *var;
            // Find the matching release with no mention of %v between.
            let mut release = None;
            for (k, later) in instrs.iter().enumerate().skip(i + 1) {
                match later {
                    Instr::MemoryRelease { var } if *var == v => {
                        release = Some(k);
                        break;
                    }
                    Instr::MemoryAcquire { var } | Instr::MemoryRelease { var } if *var == v => {
                        continue 'acquire;
                    }
                    _ => {
                        if later.uses().contains(&v) {
                            continue 'acquire;
                        }
                    }
                }
            }
            let Some(j) = release else { continue };
            // No read of %v after the release in this block.
            for later in &instrs[j + 1..] {
                let mentions = match later {
                    Instr::MemoryAcquire { var } | Instr::MemoryRelease { var } => *var == v,
                    _ => later.uses().contains(&v),
                };
                if mentions {
                    continue 'acquire;
                }
            }
            // No phi on an outgoing edge reads %v.
            for &s in &cfg.succs[b.0 as usize] {
                for instr in &f.block(s).instrs {
                    let Instr::Phi { incoming, .. } = instr else {
                        break;
                    };
                    if incoming
                        .iter()
                        .any(|(p, o)| *p == b && *o == Operand::Var(v))
                    {
                        continue 'acquire;
                    }
                }
            }
            // Dead past the block boundary.
            if live.live_out.get(&b).is_some_and(|s| s.contains(&v)) {
                continue 'acquire;
            }
            out.insert((b, i));
            out.insert((b, j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_ir::module::Block;
    use wolfram_ir::Constant;

    fn one_block(instrs: Vec<Instr>) -> Function {
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs,
        });
        f
    }

    #[test]
    fn balanced_pair_is_clean() {
        let f = one_block(vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("x".into()),
            },
            Instr::MemoryAcquire { var: VarId(0) },
            Instr::MemoryRelease { var: VarId(0) },
            Instr::Return {
                value: Constant::Null.into(),
            },
        ]);
        assert!(check(&f).is_empty());
    }

    #[test]
    fn leak_is_flagged() {
        let f = one_block(vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("x".into()),
            },
            Instr::MemoryAcquire { var: VarId(0) },
            Instr::Return {
                value: Constant::Null.into(),
            },
        ]);
        let diags = check(&f);
        assert!(diags.iter().any(|d| d.code == "refcount-leak"), "{diags:?}");
    }

    #[test]
    fn double_release_is_flagged() {
        let f = one_block(vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("x".into()),
            },
            Instr::MemoryAcquire { var: VarId(0) },
            Instr::MemoryRelease { var: VarId(0) },
            Instr::MemoryRelease { var: VarId(0) },
            Instr::Return {
                value: Constant::Null.into(),
            },
        ]);
        let diags = check(&f);
        assert!(
            diags.iter().any(|d| d.code == "refcount-double-release"),
            "{diags:?}"
        );
    }

    #[test]
    fn use_after_release_is_flagged() {
        let f = one_block(vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("x".into()),
            },
            Instr::MemoryAcquire { var: VarId(0) },
            Instr::MemoryRelease { var: VarId(0) },
            Instr::Copy {
                dst: VarId(1),
                src: VarId(0),
            },
            Instr::Return {
                value: Constant::Null.into(),
            },
        ]);
        let diags = check(&f);
        assert!(
            diags.iter().any(|d| d.code == "refcount-use-after-release"),
            "{diags:?}"
        );
    }

    #[test]
    fn release_before_return_of_value_is_the_convention() {
        let f = one_block(vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("x".into()),
            },
            Instr::MemoryAcquire { var: VarId(0) },
            Instr::MemoryRelease { var: VarId(0) },
            Instr::Return {
                value: VarId(0).into(),
            },
        ]);
        assert!(check(&f).is_empty());
    }

    #[test]
    fn diamond_leak_is_flagged() {
        // acquire in entry; release only on the then-edge.
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::Str("x".into()),
                },
                Instr::MemoryAcquire { var: VarId(0) },
                Instr::LoadConst {
                    dst: VarId(1),
                    value: Constant::Bool(true),
                },
                Instr::Branch {
                    cond: VarId(1).into(),
                    then_block: BlockId(1),
                    else_block: BlockId(2),
                },
            ],
        });
        f.blocks.push(Block {
            label: "then".into(),
            instrs: vec![
                Instr::MemoryRelease { var: VarId(0) },
                Instr::Jump { target: BlockId(3) },
            ],
        });
        f.blocks.push(Block {
            label: "else".into(),
            instrs: vec![Instr::Jump { target: BlockId(3) }],
        });
        f.blocks.push(Block {
            label: "join".into(),
            instrs: vec![Instr::Return {
                value: Constant::Null.into(),
            }],
        });
        let diags = check(&f);
        assert!(diags.iter().any(|d| d.code == "refcount-leak"), "{diags:?}");
    }

    #[test]
    fn redundant_pair_with_no_use_is_elidable() {
        let f = one_block(vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("x".into()),
            },
            Instr::MemoryAcquire { var: VarId(0) },
            Instr::MemoryRelease { var: VarId(0) },
            Instr::Return {
                value: Constant::Null.into(),
            },
        ]);
        let pairs = elidable_pairs(&f);
        assert!(pairs.contains(&(BlockId(0), 1)), "{pairs:?}");
        assert!(pairs.contains(&(BlockId(0), 2)), "{pairs:?}");
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn pair_guarding_a_use_is_kept() {
        // A use between acquire and release: the pair is load-bearing.
        let f = one_block(vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("x".into()),
            },
            Instr::MemoryAcquire { var: VarId(0) },
            Instr::Copy {
                dst: VarId(1),
                src: VarId(0),
            },
            Instr::MemoryRelease { var: VarId(0) },
            Instr::Return {
                value: Constant::Null.into(),
            },
        ]);
        assert!(elidable_pairs(&f).is_empty());
    }

    #[test]
    fn pair_before_returning_the_value_is_kept() {
        // The release is not final: the value escapes via the return.
        let f = one_block(vec![
            Instr::LoadConst {
                dst: VarId(0),
                value: Constant::Str("x".into()),
            },
            Instr::MemoryAcquire { var: VarId(0) },
            Instr::MemoryRelease { var: VarId(0) },
            Instr::Return {
                value: VarId(0).into(),
            },
        ]);
        assert!(elidable_pairs(&f).is_empty());
    }

    #[test]
    fn live_out_var_keeps_its_pair() {
        // The pair sits in the entry block but a successor still reads
        // the variable, so liveness vetoes the elision.
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::Str("x".into()),
                },
                Instr::MemoryAcquire { var: VarId(0) },
                Instr::MemoryRelease { var: VarId(0) },
                Instr::Jump { target: BlockId(1) },
            ],
        });
        f.blocks.push(Block {
            label: "exit".into(),
            instrs: vec![Instr::Return {
                value: VarId(0).into(),
            }],
        });
        assert!(elidable_pairs(&f).is_empty());
    }
}
