//! The diagnostics model: severity, a stable code, and a
//! function/block/instruction anchor rendered through the IR's own
//! textual dump (`ir/print.rs`).

use wolfram_ir::{BlockId, Function};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not a correctness proof failure.
    Warning,
    /// A violated IR invariant; the pipeline must not proceed.
    Error,
}

impl Severity {
    /// Lowercase label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analyzer finding, anchored to an IR location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `type-mismatch`.
    pub code: &'static str,
    /// The function the finding is in.
    pub function: String,
    /// The block, when the finding anchors to one.
    pub block: Option<BlockId>,
    /// Instruction index within the block.
    pub instr: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// An error finding.
    pub fn error(code: &'static str, f: &Function, message: String) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            function: f.name.clone(),
            block: None,
            instr: None,
            message,
        }
    }

    /// A warning finding.
    pub fn warning(code: &'static str, f: &Function, message: String) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            function: f.name.clone(),
            block: None,
            instr: None,
            message,
        }
    }

    /// Anchors the finding to a block (and optionally an instruction).
    #[must_use]
    pub fn at(mut self, block: BlockId, instr: Option<usize>) -> Self {
        self.block = Some(block);
        self.instr = instr;
        self
    }

    /// Renders the finding, quoting the anchored instruction from the
    /// function's dump when available.
    pub fn render(&self, f: Option<&Function>) -> String {
        let mut out = format!(
            "{}[{}] in `{}`",
            self.severity.label(),
            self.code,
            self.function
        );
        if let Some(b) = self.block {
            if let Some(f) = f {
                out.push_str(&format!(", block {}({})", f.block(b).label, b.0 + 1));
            } else {
                out.push_str(&format!(", block {}", b.0 + 1));
            }
        }
        out.push_str(": ");
        out.push_str(&self.message);
        if let (Some(f), Some(b), Some(ix)) = (f, self.block, self.instr) {
            if let Some(i) = f.block(b).instrs.get(ix) {
                out.push_str(&format!("\n  at: {}", f.instr_text(i)));
            }
        }
        out
    }
}
