//! `wolfram-analyze`: a typed-IR verifier and dataflow lint framework for
//! the WIR/TWIR.
//!
//! The paper's §4.3 footnote describes an IR linter for the bare SSA
//! property (reproduced in `wolfram-ir`'s `verify`); this crate carries
//! the semantic invariants the pipeline actually depends on:
//!
//! - [`typecheck`]: every instruction's operand/result types agree with
//!   the inferred variable annotations and callee signatures (guards
//!   type inference, §4.5, and function resolution, §4.6);
//! - [`refcount`]: every path pairs `MemoryAcquire`/`MemoryRelease`
//!   exactly once per managed interval (guards the memory-management
//!   pass, §4.5/F7);
//! - [`lints`]: maybe-uninitialized uses, dead stores, and unreachable
//!   blocks;
//! - [`intervals`]: a forward interval (range) dataflow analysis that
//!   owns the out-of-range `Part` lint and exports
//!   [`intervals::RangeFacts`] — per-site proofs the native code
//!   generator uses to elide bounds, overflow, and refcount checks.
//!
//! Checkers are built on a small lattice-based [`dataflow`] solver over
//! the IR's existing CFG analyses. Error-severity findings turn into
//! [`VerifyError`]s via [`pipeline_verifier`], which the compiler plugs
//! into `run_pipeline` at `VerifyLevel::Full` so every pass is checked.

pub mod dataflow;
pub mod diag;
pub mod intervals;
pub mod lints;
pub mod refcount;
pub mod typecheck;

use std::sync::Arc;

pub use diag::{Diagnostic, Severity};
pub use typecheck::{module_signatures, Signatures};
use wolfram_ir::{FullVerifier, Function, ProgramModule, VerifyError};

/// Runs every checker on one function: the type verifier and refcount
/// balance (errors) plus the lints (warnings). `sigs` resolves calls to
/// other functions in the module.
pub fn analyze_function(f: &Function, sigs: &Signatures) -> Vec<Diagnostic> {
    let mut out = typecheck::check(f, sigs);
    out.extend(refcount::check(f));
    out.extend(lints::maybe_uninitialized(f));
    out.extend(lints::dead_stores(f));
    out.extend(lints::unreachable_blocks(f));
    out.extend(intervals::part_bounds(f));
    out.sort_by_key(|d| std::cmp::Reverse(d.severity));
    out
}

/// Runs every checker on every function of a module.
pub fn analyze_module(pm: &ProgramModule) -> Vec<Diagnostic> {
    let sigs = module_signatures(pm);
    pm.functions
        .iter()
        .flat_map(|f| analyze_function(f, &sigs))
        .collect()
}

/// The first error-severity finding from the type and refcount checkers,
/// as a [`VerifyError`]. Lints never fail verification.
fn first_error(f: &Function, sigs: &Signatures) -> Result<(), VerifyError> {
    let mut diags = typecheck::check(f, sigs);
    diags.extend(refcount::check(f));
    match diags.iter().find(|d| d.severity == Severity::Error) {
        Some(d) => Err(VerifyError(d.render(Some(f)))),
        None => Ok(()),
    }
}

/// Verifies a whole module with the type and refcount checkers.
///
/// # Errors
///
/// The first error-severity finding.
pub fn verify_module(pm: &ProgramModule) -> Result<(), VerifyError> {
    let sigs = module_signatures(pm);
    for f in &pm.functions {
        first_error(f, &sigs)?;
    }
    Ok(())
}

/// Packages the type and refcount checkers as a `run_pipeline` hook: the
/// semantic half of `VerifyLevel::Full`. Signatures are harvested once
/// (before the pipeline mutates bodies — passes never change them).
pub fn pipeline_verifier(sigs: Signatures) -> FullVerifier {
    Arc::new(move |f: &Function| first_error(f, &sigs))
}
