//! Lints: maybe-uninitialized uses, dead stores, and unreachable blocks.
//! All findings here are warnings — they flag suspicious IR the pipeline
//! is still allowed to run. The out-of-range constant `Part` lint lives
//! with the interval analysis in [`crate::intervals`], which subsumes the
//! local length tracking this module used to do.

use crate::dataflow::{solve, Analysis, Direction, Lattice};
use crate::diag::Diagnostic;
use std::collections::{BTreeSet, HashSet};
use wolfram_ir::analysis::Cfg;
use wolfram_ir::{BlockId, Callee, Function, Instr, VarId};

/// Definitely-assigned variables; `None` is the solver's bottom (no path
/// information yet), so the join is set intersection over known paths.
#[derive(Debug, Clone, PartialEq)]
struct InitFact(Option<BTreeSet<VarId>>);

impl Lattice for InitFact {
    fn bottom() -> Self {
        InitFact(None)
    }

    fn join(&mut self, other: &Self) -> bool {
        match (&mut self.0, &other.0) {
            (_, None) => false,
            (Some(mine), Some(theirs)) => {
                let before = mine.len();
                mine.retain(|v| theirs.contains(v));
                before != mine.len()
            }
            (slot @ None, Some(theirs)) => {
                *slot = Some(theirs.clone());
                true
            }
        }
    }
}

struct MustInit;

impl Analysis for MustInit {
    type Fact = InitFact;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary(&self, _f: &Function) -> InitFact {
        InitFact(Some(BTreeSet::new()))
    }

    fn transfer_block(&self, f: &Function, b: BlockId, fact: &mut InitFact) {
        if let Some(set) = &mut fact.0 {
            for i in &f.block(b).instrs {
                if let Some(d) = i.def() {
                    set.insert(d);
                }
            }
        }
    }
}

/// Uses of variables not definitely assigned on every path. Redundant
/// with the SSA linter's dominance check on verified IR, but reported as
/// a diagnostic (with an anchor) for arbitrary IR fed to `reproduce
/// analyze`.
pub fn maybe_uninitialized(f: &Function) -> Vec<Diagnostic> {
    if f.blocks.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::new(f);
    let results = solve(&MustInit, f, &cfg);
    let mut out = Vec::new();
    for &b in &cfg.rpo {
        let Some(InitFact(Some(entry))) = results.on_entry.get(&b) else {
            continue;
        };
        let mut defined = entry.clone();
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            // Phi operands are read on the incoming edge, not here; the
            // per-predecessor exit facts cover them via the normal uses
            // of whatever defined those operands.
            if !matches!(i, Instr::Phi { .. }) {
                for v in i.uses() {
                    if !defined.contains(&v) {
                        out.push(
                            Diagnostic::warning(
                                "maybe-uninitialized",
                                f,
                                format!("%{} may be used before assignment", v.0),
                            )
                            .at(b, Some(ix)),
                        );
                    }
                }
            }
            if let Some(d) = i.def() {
                defined.insert(d);
            }
        }
    }
    out
}

/// Removable definitions whose result is never read anywhere.
pub fn dead_stores(f: &Function) -> Vec<Diagnostic> {
    let mut used: HashSet<VarId> = HashSet::new();
    for i in f.instrs() {
        used.extend(i.uses());
        if let Instr::Call {
            callee: Callee::Value(v),
            ..
        } = i
        {
            used.insert(*v);
        }
    }
    let mut out = Vec::new();
    for b in f.block_ids() {
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            if i.is_removable() && !matches!(i, Instr::LoadArgument { .. }) {
                if let Some(d) = i.def() {
                    if !used.contains(&d) {
                        out.push(
                            Diagnostic::warning(
                                "dead-store",
                                f,
                                format!("%{} is computed but never read", d.0),
                            )
                            .at(b, Some(ix)),
                        );
                    }
                }
            }
        }
    }
    out
}

/// Blocks no path from the entry reaches. Empty tombstones (what
/// `simplify-cfg` leaves to keep ids stable) are skipped.
pub fn unreachable_blocks(f: &Function) -> Vec<Diagnostic> {
    if f.blocks.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::new(f);
    cfg.unreachable(f)
        .into_iter()
        .filter(|b| !f.block(*b).instrs.is_empty())
        .map(|b| {
            Diagnostic::warning(
                "unreachable-block",
                f,
                format!(
                    "block {}({}) is unreachable from the entry",
                    f.block(b).label,
                    b.0 + 1
                ),
            )
            .at(b, None)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_ir::module::Block;
    use wolfram_ir::Constant;

    #[test]
    fn dead_store_and_unreachable_block_warn() {
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64(5),
                },
                Instr::Return {
                    value: Constant::Null.into(),
                },
            ],
        });
        f.blocks.push(Block {
            label: "orphan".into(),
            instrs: vec![Instr::Return {
                value: Constant::Null.into(),
            }],
        });
        assert!(dead_stores(&f).iter().any(|d| d.code == "dead-store"));
        assert!(unreachable_blocks(&f)
            .iter()
            .any(|d| d.code == "unreachable-block"));
    }

    #[test]
    fn maybe_uninitialized_on_one_armed_definition() {
        // v0 assigned only on the then-arm, read at the join.
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(1),
                    value: Constant::Bool(true),
                },
                Instr::Branch {
                    cond: VarId(1).into(),
                    then_block: BlockId(1),
                    else_block: BlockId(2),
                },
            ],
        });
        f.blocks.push(Block {
            label: "then".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64(1),
                },
                Instr::Jump { target: BlockId(2) },
            ],
        });
        f.blocks.push(Block {
            label: "join".into(),
            instrs: vec![Instr::Return {
                value: VarId(0).into(),
            }],
        });
        let diags = maybe_uninitialized(&f);
        assert!(
            diags.iter().any(|d| d.code == "maybe-uninitialized"),
            "{diags:?}"
        );
    }
}
