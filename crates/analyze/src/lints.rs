//! Lints: maybe-uninitialized uses, dead stores, unreachable blocks, and
//! statically out-of-range constant `Part` indices. All findings here are
//! warnings — they flag suspicious IR the pipeline is still allowed to
//! run (an out-of-range `Part` is a well-defined runtime soft failure).

use crate::dataflow::{solve, Analysis, Direction, Lattice};
use crate::diag::Diagnostic;
use std::collections::{BTreeSet, HashMap, HashSet};
use wolfram_ir::analysis::Cfg;
use wolfram_ir::{BlockId, Callee, Constant, Function, Instr, Operand, VarId};

/// Definitely-assigned variables; `None` is the solver's bottom (no path
/// information yet), so the join is set intersection over known paths.
#[derive(Debug, Clone, PartialEq)]
struct InitFact(Option<BTreeSet<VarId>>);

impl Lattice for InitFact {
    fn bottom() -> Self {
        InitFact(None)
    }

    fn join(&mut self, other: &Self) -> bool {
        match (&mut self.0, &other.0) {
            (_, None) => false,
            (Some(mine), Some(theirs)) => {
                let before = mine.len();
                mine.retain(|v| theirs.contains(v));
                before != mine.len()
            }
            (slot @ None, Some(theirs)) => {
                *slot = Some(theirs.clone());
                true
            }
        }
    }
}

struct MustInit;

impl Analysis for MustInit {
    type Fact = InitFact;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary(&self, _f: &Function) -> InitFact {
        InitFact(Some(BTreeSet::new()))
    }

    fn transfer_block(&self, f: &Function, b: BlockId, fact: &mut InitFact) {
        if let Some(set) = &mut fact.0 {
            for i in &f.block(b).instrs {
                if let Some(d) = i.def() {
                    set.insert(d);
                }
            }
        }
    }
}

/// Uses of variables not definitely assigned on every path. Redundant
/// with the SSA linter's dominance check on verified IR, but reported as
/// a diagnostic (with an anchor) for arbitrary IR fed to `reproduce
/// analyze`.
pub fn maybe_uninitialized(f: &Function) -> Vec<Diagnostic> {
    if f.blocks.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::new(f);
    let results = solve(&MustInit, f, &cfg);
    let mut out = Vec::new();
    for &b in &cfg.rpo {
        let Some(InitFact(Some(entry))) = results.on_entry.get(&b) else {
            continue;
        };
        let mut defined = entry.clone();
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            // Phi operands are read on the incoming edge, not here; the
            // per-predecessor exit facts cover them via the normal uses
            // of whatever defined those operands.
            if !matches!(i, Instr::Phi { .. }) {
                for v in i.uses() {
                    if !defined.contains(&v) {
                        out.push(
                            Diagnostic::warning(
                                "maybe-uninitialized",
                                f,
                                format!("%{} may be used before assignment", v.0),
                            )
                            .at(b, Some(ix)),
                        );
                    }
                }
            }
            if let Some(d) = i.def() {
                defined.insert(d);
            }
        }
    }
    out
}

/// Removable definitions whose result is never read anywhere.
pub fn dead_stores(f: &Function) -> Vec<Diagnostic> {
    let mut used: HashSet<VarId> = HashSet::new();
    for i in f.instrs() {
        used.extend(i.uses());
        if let Instr::Call {
            callee: Callee::Value(v),
            ..
        } = i
        {
            used.insert(*v);
        }
    }
    let mut out = Vec::new();
    for b in f.block_ids() {
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            if i.is_removable() && !matches!(i, Instr::LoadArgument { .. }) {
                if let Some(d) = i.def() {
                    if !used.contains(&d) {
                        out.push(
                            Diagnostic::warning(
                                "dead-store",
                                f,
                                format!("%{} is computed but never read", d.0),
                            )
                            .at(b, Some(ix)),
                        );
                    }
                }
            }
        }
    }
    out
}

/// Blocks no path from the entry reaches. Empty tombstones (what
/// `simplify-cfg` leaves to keep ids stable) are skipped.
pub fn unreachable_blocks(f: &Function) -> Vec<Diagnostic> {
    if f.blocks.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::new(f);
    cfg.unreachable(f)
        .into_iter()
        .filter(|b| !f.block(*b).instrs.is_empty())
        .map(|b| {
            Diagnostic::warning(
                "unreachable-block",
                f,
                format!(
                    "block {}({}) is unreachable from the entry",
                    f.block(b).label,
                    b.0 + 1
                ),
            )
            .at(b, None)
        })
        .collect()
}

/// Constant `Part` indices provably out of range for lists whose length
/// is statically known (literal arrays and `list_construct` results).
/// Wolfram indexing is 1-based; negative indices count from the end.
pub fn part_bounds(f: &Function) -> Vec<Diagnostic> {
    // Known lengths, propagated through copies.
    let mut len_of: HashMap<VarId, i64> = HashMap::new();
    for i in f.instrs() {
        match i {
            Instr::LoadConst { dst, value } => {
                let len = match value {
                    Constant::I64Array(a) => Some(a.len()),
                    Constant::F64Array(a) => Some(a.len()),
                    _ => None,
                };
                if let Some(len) = len {
                    len_of.insert(*dst, len as i64);
                }
            }
            Instr::Call { dst, callee, args } => {
                let is_list = match callee {
                    Callee::Builtin(n) => &**n == "List",
                    Callee::Primitive(n) => n.starts_with("list_construct"),
                    _ => false,
                };
                if is_list {
                    len_of.insert(*dst, args.len() as i64);
                }
            }
            Instr::Copy { dst, src } => {
                if let Some(&len) = len_of.get(src) {
                    len_of.insert(*dst, len);
                }
            }
            _ => {}
        }
    }
    let operand_len = |o: &Operand| -> Option<i64> {
        match o {
            Operand::Var(v) => len_of.get(v).copied(),
            Operand::Const(Constant::I64Array(a)) => Some(a.len() as i64),
            Operand::Const(Constant::F64Array(a)) => Some(a.len() as i64),
            Operand::Const(_) => None,
        }
    };
    let mut out = Vec::new();
    for b in f.block_ids() {
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            let Instr::Call { callee, args, .. } = i else {
                continue;
            };
            let is_part = match callee {
                Callee::Builtin(n) => &**n == "Part",
                Callee::Primitive(n) => n.starts_with("tensor_part_1"),
                _ => false,
            };
            if !is_part || args.len() < 2 {
                continue;
            }
            let (Some(len), Some(&Constant::I64(k))) = (operand_len(&args[0]), args[1].as_const())
            else {
                continue;
            };
            if k == 0 || k > len || k < -len {
                out.push(
                    Diagnostic::warning(
                        "part-out-of-bounds",
                        f,
                        format!("Part index {k} is out of range for a list of length {len}"),
                    )
                    .at(b, Some(ix)),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wolfram_ir::module::Block;

    #[test]
    fn constant_part_out_of_range_is_flagged() {
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64Array(Arc::from([1i64, 2, 3].as_slice())),
                },
                Instr::Call {
                    dst: VarId(1),
                    callee: Callee::Builtin(Arc::from("Part")),
                    args: vec![VarId(0).into(), Constant::I64(4).into()],
                },
                Instr::Return {
                    value: VarId(1).into(),
                },
            ],
        });
        let diags = part_bounds(&f);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "part-out-of-bounds");
        // In-range (positive and negative) indices stay quiet.
        let Instr::Call { args, .. } = &mut f.blocks[0].instrs[1] else {
            unreachable!()
        };
        args[1] = Constant::I64(-3).into();
        assert!(part_bounds(&f).is_empty());
    }

    #[test]
    fn dead_store_and_unreachable_block_warn() {
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64(5),
                },
                Instr::Return {
                    value: Constant::Null.into(),
                },
            ],
        });
        f.blocks.push(Block {
            label: "orphan".into(),
            instrs: vec![Instr::Return {
                value: Constant::Null.into(),
            }],
        });
        assert!(dead_stores(&f).iter().any(|d| d.code == "dead-store"));
        assert!(unreachable_blocks(&f)
            .iter()
            .any(|d| d.code == "unreachable-block"));
    }

    #[test]
    fn maybe_uninitialized_on_one_armed_definition() {
        // v0 assigned only on the then-arm, read at the join.
        let mut f = Function::new("f", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(1),
                    value: Constant::Bool(true),
                },
                Instr::Branch {
                    cond: VarId(1).into(),
                    then_block: BlockId(1),
                    else_block: BlockId(2),
                },
            ],
        });
        f.blocks.push(Block {
            label: "then".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64(1),
                },
                Instr::Jump { target: BlockId(2) },
            ],
        });
        f.blocks.push(Block {
            label: "join".into(),
            instrs: vec![Instr::Return {
                value: VarId(0).into(),
            }],
        });
        let diags = maybe_uninitialized(&f);
        assert!(
            diags.iter().any(|d| d.code == "maybe-uninitialized"),
            "{diags:?}"
        );
    }
}
