//! A small lattice-based dataflow framework over the IR's CFG.
//!
//! Checkers describe a join-semilattice fact, a direction, and a block
//! transfer function; [`solve`] runs the classic worklist iteration to a
//! fixpoint. Facts start at bottom (no information), so back edges are
//! handled by re-iteration rather than pessimistic initialization.

use std::collections::HashMap;
use wolfram_ir::analysis::Cfg;
use wolfram_ir::{BlockId, Function, Instr};

/// A join-semilattice fact.
pub trait Lattice: Clone + PartialEq {
    /// The least element (no information).
    fn bottom() -> Self;
    /// In-place least upper bound. Returns whether `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// Propagation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry toward returns.
    Forward,
    /// Facts flow from returns toward the entry.
    Backward,
}

/// A dataflow problem.
pub trait Analysis {
    /// The fact tracked per program point.
    type Fact: Lattice;

    /// Propagation direction.
    const DIRECTION: Direction;

    /// The fact at the boundary: the entry block's start (forward) or
    /// every exit block's end (backward).
    fn boundary(&self, f: &Function) -> Self::Fact;

    /// Applies one block. Forward analyses receive the fact at the block
    /// start and must leave the fact at the block end (and vice versa for
    /// backward analyses, which should walk the instructions in reverse).
    fn transfer_block(&self, f: &Function, b: BlockId, fact: &mut Self::Fact);

    /// Refines the fact flowing along one CFG edge, applied to a copy of
    /// the source endpoint's fact before it is joined into the target.
    /// Forward analyses see `from -> to` with the fact at `from`'s exit;
    /// backward analyses see the fact at `to`'s entry flowing into
    /// `from`. The default is the identity — only path-sensitive
    /// analyses (branch-condition refinement, per-edge phi transfer)
    /// need to override it.
    fn transfer_edge(&self, f: &Function, from: BlockId, to: BlockId, fact: &mut Self::Fact) {
        let _ = (f, from, to, fact);
    }
}

/// Converged facts at block boundaries. `on_entry` is always the fact at
/// the block's start and `on_exit` the fact at its end, regardless of
/// direction.
#[derive(Debug, Clone)]
pub struct Results<F> {
    /// Fact at each reachable block's start.
    pub on_entry: HashMap<BlockId, F>,
    /// Fact at each reachable block's end.
    pub on_exit: HashMap<BlockId, F>,
}

/// Runs the worklist iteration to a fixpoint over the reachable blocks.
pub fn solve<A: Analysis>(a: &A, f: &Function, cfg: &Cfg) -> Results<A::Fact> {
    let mut on_entry: HashMap<BlockId, A::Fact> = HashMap::new();
    let mut on_exit: HashMap<BlockId, A::Fact> = HashMap::new();
    let order: Vec<BlockId> = match A::DIRECTION {
        Direction::Forward => cfg.rpo.clone(),
        Direction::Backward => cfg.rpo.iter().rev().copied().collect(),
    };
    let is_exit = |b: BlockId| matches!(f.block(b).instrs.last(), Some(Instr::Return { .. }));
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            match A::DIRECTION {
                Direction::Forward => {
                    let mut fact = if b == f.entry {
                        a.boundary(f)
                    } else {
                        A::Fact::bottom()
                    };
                    for &p in &cfg.preds[b.0 as usize] {
                        if let Some(out) = on_exit.get(&p) {
                            let mut edge = out.clone();
                            a.transfer_edge(f, p, b, &mut edge);
                            fact.join(&edge);
                        }
                    }
                    if on_entry.get(&b) != Some(&fact) {
                        on_entry.insert(b, fact.clone());
                    }
                    a.transfer_block(f, b, &mut fact);
                    if on_exit.get(&b) != Some(&fact) {
                        on_exit.insert(b, fact);
                        changed = true;
                    }
                }
                Direction::Backward => {
                    let mut fact = if is_exit(b) {
                        a.boundary(f)
                    } else {
                        A::Fact::bottom()
                    };
                    for &s in &cfg.succs[b.0 as usize] {
                        if let Some(inn) = on_entry.get(&s) {
                            let mut edge = inn.clone();
                            a.transfer_edge(f, b, s, &mut edge);
                            fact.join(&edge);
                        }
                    }
                    if on_exit.get(&b) != Some(&fact) {
                        on_exit.insert(b, fact.clone());
                    }
                    a.transfer_block(f, b, &mut fact);
                    if on_entry.get(&b) != Some(&fact) {
                        on_entry.insert(b, fact);
                        changed = true;
                    }
                }
            }
        }
    }
    Results { on_entry, on_exit }
}
