//! The TWIR type verifier: checks every instruction's operand and result
//! types against the inferred variable annotations and callee signatures.
//!
//! The checker is deliberately partial — it verifies exactly the facts the
//! IR records and stays silent where a type is unknown (untyped WIR, or
//! the inference default `Void` that `infer` assigns to dead leftovers),
//! so it can run after *every* pass of the pipeline, typed or not.

use crate::diag::Diagnostic;
use std::collections::HashMap;
use wolfram_ir::{BlockId, Callee, Function, Instr, Operand, ProgramModule};
use wolfram_types::Type;

/// Parameter and return types per (mangled) function name, harvested from
/// the module before the pass pipeline mutates bodies. `None` entries mean
/// the type never became known.
#[derive(Debug, Clone, Default)]
pub struct Signatures {
    map: HashMap<String, (Vec<Option<Type>>, Option<Type>)>,
}

impl Signatures {
    /// Signature of a function, if harvested.
    pub fn get(&self, name: &str) -> Option<&(Vec<Option<Type>>, Option<Type>)> {
        self.map.get(name)
    }
}

/// Harvests [`Signatures`] from a program module: parameter types come
/// from each function's `LoadArgument` annotations, return types from
/// `return_type`.
pub fn module_signatures(pm: &ProgramModule) -> Signatures {
    let mut map = HashMap::new();
    for f in &pm.functions {
        let mut params: Vec<Option<Type>> = vec![None; f.arity];
        for i in f.instrs() {
            if let Instr::LoadArgument { dst, index } = i {
                if let (Some(slot), Some(t)) = (params.get_mut(*index), f.var_type(*dst)) {
                    *slot = Some(t.clone());
                }
            }
        }
        map.insert(f.name.clone(), (params, f.return_type.clone()));
    }
    Signatures { map }
}

/// A type usable for checking: concrete and not the `Void` that inference
/// assigns to dead leftovers.
fn known(t: Option<&Type>) -> Option<&Type> {
    t.filter(|t| t.is_concrete() && **t != Type::void())
}

/// Position in the numeric tower, for types the backend widens
/// implicitly (an `I64` immediate in a `Real64` slot becomes `LdcF`).
fn numeric_rank(t: &Type) -> Option<u8> {
    match t {
        Type::Atomic(n) => match &**n {
            "Integer64" => Some(0),
            "Real64" => Some(1),
            "ComplexReal64" => Some(2),
            _ => None,
        },
        _ => None,
    }
}

/// Whether a value of type `got` may be passed where `want` is expected.
/// `Expression` is a top type in argument position (the runtime boxes any
/// value into a symbolic expression at the call boundary), and numeric
/// types widen along the tower `Integer64 <= Real64 <= ComplexReal64`.
fn arg_compatible(want: &Type, got: &Type) -> bool {
    if want == got || *want == Type::expression() {
        return true;
    }
    matches!(
        (numeric_rank(want), numeric_rank(got)),
        (Some(w), Some(g)) if g <= w
    )
}

/// Parses one `$`-separated segment of a mangled primitive name back into
/// a type. Returns `None` for segments the demangler cannot reconstruct
/// exactly (unknown-rank tensors, function types), which simply skips the
/// corresponding argument check.
fn demangle_segment(seg: &str) -> Option<Type> {
    const ATOMICS: &[&str] = &[
        "ComplexReal64",
        "Integer64",
        "Real64",
        "Boolean",
        "String",
        "Expression",
        "Void",
    ];
    if let Some(rest) = seg.strip_prefix("Tensor") {
        // `Tensor{elem}R{rank}`: split at the rightmost `R` whose suffix
        // is a rank (digits, or `N` for statically unknown).
        for (pos, _) in rest.char_indices().rev().filter(|(_, c)| *c == 'R') {
            let (elem, rank) = (&rest[..pos], &rest[pos + 1..]);
            if rank == "N" {
                return None; // rank unknown at compile time
            }
            if let (Ok(rank), Some(elem)) = (rank.parse::<i64>(), demangle_segment(elem)) {
                return Some(Type::tensor(elem, rank));
            }
        }
        return None;
    }
    if seg.starts_with("Fn") {
        return None; // function types are not reconstructed
    }
    ATOMICS.iter().find(|a| **a == seg).map(|a| Type::atomic(a))
}

/// The expected argument types encoded in a mangled primitive name
/// (`checked_binary_plus$Integer64$Integer64` -> two `Integer64`s), or
/// `None` when the name carries no specialization suffix.
fn primitive_params(name: &str) -> Option<Vec<Option<Type>>> {
    let mut segs = name.split('$');
    segs.next()?; // the base
    let params: Vec<Option<Type>> = segs.map(demangle_segment).collect();
    (!params.is_empty()).then_some(params)
}

/// Checks one function. `sigs` resolves `Callee::Function` targets; pass
/// an empty default when checking a lone function.
pub fn check(f: &Function, sigs: &Signatures) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let op_ty = |o: &Operand| -> Option<Type> {
        match o {
            Operand::Var(v) => known(f.var_type(*v)).cloned(),
            Operand::Const(c) => known(Some(&c.ty())).cloned(),
        }
    };
    let mut mismatch = |b: BlockId, ix: usize, what: String| {
        out.push(Diagnostic::error("type-mismatch", f, what).at(b, Some(ix)));
    };
    for b in f.block_ids() {
        for (ix, i) in f.block(b).instrs.iter().enumerate() {
            match i {
                Instr::LoadConst { dst, value } => {
                    if let Some(dt) = known(f.var_type(*dst)) {
                        let vt = value.ty();
                        if *dt != vt {
                            mismatch(
                                b,
                                ix,
                                format!("constant of type {vt} loaded into %{}: {dt}", dst.0),
                            );
                        }
                    }
                }
                Instr::Copy { dst, src } => {
                    if let (Some(dt), Some(st)) = (known(f.var_type(*dst)), known(f.var_type(*src)))
                    {
                        if dt != st {
                            mismatch(
                                b,
                                ix,
                                format!("copy from %{}: {st} into %{}: {dt}", src.0, dst.0),
                            );
                        }
                    }
                }
                Instr::Phi { dst, incoming } => {
                    if let Some(dt) = known(f.var_type(*dst)).cloned() {
                        for (p, o) in incoming {
                            if let Some(ot) = op_ty(o) {
                                if ot != dt {
                                    mismatch(
                                        b,
                                        ix,
                                        format!(
                                            "phi %{}: {dt} receives {ot} from block {}",
                                            dst.0,
                                            p.0 + 1
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                Instr::Branch { cond, .. } => {
                    if let Some(ct) = op_ty(cond) {
                        if ct != Type::boolean() {
                            mismatch(
                                b,
                                ix,
                                format!("branch condition has type {ct}, expected Boolean"),
                            );
                        }
                    }
                }
                Instr::Return { value } => {
                    if let (Some(rt), Some(vt)) = (known(f.return_type.as_ref()), op_ty(value)) {
                        if *rt != vt {
                            mismatch(b, ix, format!("return of {vt} from a function typed {rt}"));
                        }
                    }
                }
                Instr::MakeClosure { dst, .. } => {
                    if let Some(dt) = known(f.var_type(*dst)) {
                        if !matches!(dt, Type::Arrow { .. }) {
                            mismatch(b, ix, format!("closure bound to non-function type {dt}"));
                        }
                    }
                }
                Instr::Call { dst, callee, args } => match callee {
                    Callee::Primitive(name) => {
                        if let Some(params) = primitive_params(name) {
                            if params.len() != args.len() {
                                mismatch(
                                    b,
                                    ix,
                                    format!(
                                        "primitive `{name}` specialized for {} arguments, called with {}",
                                        params.len(),
                                        args.len()
                                    ),
                                );
                            } else {
                                for (k, (want, arg)) in params.iter().zip(args).enumerate() {
                                    if let (Some(want), Some(got)) = (want, op_ty(arg)) {
                                        if !arg_compatible(want, &got) {
                                            mismatch(
                                                b,
                                                ix,
                                                format!(
                                                    "argument {} of `{name}` has type {got}, expected {want}",
                                                    k + 1
                                                ),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Callee::Function { name, .. } => {
                        if let Some((params, ret)) = sigs.get(name) {
                            if params.len() != args.len() {
                                mismatch(
                                    b,
                                    ix,
                                    format!(
                                        "`{name}` takes {} arguments, called with {}",
                                        params.len(),
                                        args.len()
                                    ),
                                );
                            } else {
                                for (k, (want, arg)) in params.iter().zip(args).enumerate() {
                                    if let (Some(want), Some(got)) =
                                        (known(want.as_ref()), op_ty(arg))
                                    {
                                        if !arg_compatible(want, &got) {
                                            mismatch(
                                                b,
                                                ix,
                                                format!(
                                                    "argument {} of `{name}` has type {got}, expected {want}",
                                                    k + 1
                                                ),
                                            );
                                        }
                                    }
                                }
                            }
                            if let (Some(rt), Some(dt)) =
                                (known(ret.as_ref()), known(f.var_type(*dst)))
                            {
                                if rt != dt {
                                    mismatch(
                                        b,
                                        ix,
                                        format!("`{name}` returns {rt}, bound to %{}: {dt}", dst.0),
                                    );
                                }
                            }
                        }
                    }
                    Callee::Value(v) => {
                        if let Some(vt) = known(f.var_type(*v)) {
                            if let Type::Arrow { params, ret } = vt {
                                if params.len() != args.len() {
                                    mismatch(
                                        b,
                                        ix,
                                        format!(
                                            "function value %{} takes {} arguments, called with {}",
                                            v.0,
                                            params.len(),
                                            args.len()
                                        ),
                                    );
                                } else {
                                    for (k, (want, arg)) in params.iter().zip(args).enumerate() {
                                        if let (Some(want), Some(got)) =
                                            (known(Some(want)), op_ty(arg))
                                        {
                                            if !arg_compatible(want, &got) {
                                                mismatch(
                                                    b,
                                                    ix,
                                                    format!(
                                                        "argument {} of %{} has type {got}, expected {want}",
                                                        k + 1,
                                                        v.0
                                                    ),
                                                );
                                            }
                                        }
                                    }
                                }
                                if let (Some(rt), Some(dt)) =
                                    (known(Some(ret)), known(f.var_type(*dst)))
                                {
                                    if rt != dt {
                                        mismatch(
                                            b,
                                            ix,
                                            format!(
                                                "indirect call returns {rt}, bound to %{}: {dt}",
                                                dst.0
                                            ),
                                        );
                                    }
                                }
                            } else {
                                mismatch(
                                    b,
                                    ix,
                                    format!("call through non-function %{}: {vt}", v.0),
                                );
                            }
                        }
                    }
                    // Builtins and kernel escapes are the untyped stage;
                    // nothing is recorded to check against.
                    Callee::Builtin(_) | Callee::Kernel(_) => {}
                },
                Instr::LoadArgument { .. }
                | Instr::AbortCheck
                | Instr::MemoryAcquire { .. }
                | Instr::MemoryRelease { .. }
                | Instr::Jump { .. } => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolfram_ir::{Constant, VarId};

    #[test]
    fn demangles_primitive_suffixes() {
        let p = primitive_params("checked_binary_plus$Integer64$Integer64").unwrap();
        assert_eq!(p, vec![Some(Type::integer64()), Some(Type::integer64())]);
        let p = primitive_params("tensor_part_1$TensorInteger64R1$Integer64").unwrap();
        assert_eq!(
            p,
            vec![
                Some(Type::tensor(Type::integer64(), 1)),
                Some(Type::integer64())
            ]
        );
        // Unknown-rank tensors and function types skip, but keep arity.
        let p = primitive_params("length$TensorReal64RN").unwrap();
        assert_eq!(p, vec![None]);
        assert!(primitive_params("random_unit").is_none());
    }

    #[test]
    fn flags_bad_constant_load() {
        let mut f = Function::new("f", 0);
        f.blocks.push(wolfram_ir::module::Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64(1),
                },
                Instr::Return {
                    value: VarId(0).into(),
                },
            ],
        });
        f.var_types.insert(VarId(0), Type::real64());
        let diags = check(&f, &Signatures::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "type-mismatch");
    }

    #[test]
    fn clean_function_has_no_findings() {
        let mut f = Function::new("f", 0);
        f.blocks.push(wolfram_ir::module::Block {
            label: "start".into(),
            instrs: vec![
                Instr::LoadConst {
                    dst: VarId(0),
                    value: Constant::I64(1),
                },
                Instr::Return {
                    value: VarId(0).into(),
                },
            ],
        });
        f.var_types.insert(VarId(0), Type::integer64());
        f.return_type = Some(Type::integer64());
        assert!(check(&f, &Signatures::default()).is_empty());
    }
}
