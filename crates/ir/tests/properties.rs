//! Property tests on the WIR substrate: the constant evaluator against
//! wide-integer references, SSA construction on randomized CFG shapes, and
//! pass-pipeline invariants (verification, idempotence, monotone DCE).

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use wolfram_ir::builder::FunctionBuilder;
use wolfram_ir::module::{Callee, Constant, Function, Instr, Operand};
use wolfram_ir::passes::{eval_const_builtin, run_pass, run_pipeline, PassOptions};
use wolfram_ir::verify::verify_function;

// ---------------------------------------------------------------------
// Constant evaluator: folding must agree with checked arithmetic and
// never fold an overflow (that would hide the F2 soft-failure path).
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn const_plus_matches_i128_or_declines(a in any::<i64>(), b in any::<i64>()) {
        let wide = a as i128 + b as i128;
        match eval_const_builtin("Plus", &[Constant::I64(a), Constant::I64(b)]) {
            Some(Constant::I64(v)) => prop_assert_eq!(v as i128, wide),
            Some(other) => prop_assert!(false, "unexpected fold {other:?}"),
            None => prop_assert!(i64::try_from(wide).is_err(), "must fold in range"),
        }
    }

    #[test]
    fn const_times_matches_i128_or_declines(a in any::<i64>(), b in any::<i64>()) {
        let wide = a as i128 * b as i128;
        match eval_const_builtin("Times", &[Constant::I64(a), Constant::I64(b)]) {
            Some(Constant::I64(v)) => prop_assert_eq!(v as i128, wide),
            Some(other) => prop_assert!(false, "unexpected fold {other:?}"),
            None => prop_assert!(i64::try_from(wide).is_err()),
        }
    }

    /// Quotient/Mod folds obey the Wolfram division identity.
    #[test]
    fn const_quotient_mod_identity(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0 && !(a == i64::MIN && b == -1));
        let args = [Constant::I64(a), Constant::I64(b)];
        let Some(Constant::I64(q)) = eval_const_builtin("Quotient", &args) else {
            return Err(TestCaseError::fail("Quotient must fold"));
        };
        let Some(Constant::I64(r)) = eval_const_builtin("Mod", &args) else {
            return Err(TestCaseError::fail("Mod must fold"));
        };
        prop_assert_eq!((b as i128) * (q as i128) + r as i128, a as i128);
    }

    /// Division by zero and overflow never fold (they must surface at
    /// run time, where the engine can soft-fail).
    #[test]
    fn const_folding_never_hides_exceptions(a in any::<i64>()) {
        prop_assert!(eval_const_builtin("Quotient", &[Constant::I64(a), Constant::I64(0)]).is_none());
        prop_assert!(eval_const_builtin("Mod", &[Constant::I64(a), Constant::I64(0)]).is_none());
        prop_assert!(
            eval_const_builtin("Plus", &[Constant::I64(i64::MAX), Constant::I64(1)]).is_none()
        );
    }

    #[test]
    fn const_comparisons_are_coherent(a in any::<i64>(), b in any::<i64>()) {
        let args = [Constant::I64(a), Constant::I64(b)];
        let fold = |name| match eval_const_builtin(name, &args) {
            Some(Constant::Bool(v)) => Ok(v),
            other => Err(TestCaseError::fail(format!("{name} folded to {other:?}"))),
        };
        prop_assert_eq!(fold("Less")?, a < b);
        prop_assert_eq!(fold("Greater")?, a > b);
        prop_assert_eq!(fold("Equal")?, a == b);
        // Trichotomy through the folds themselves.
        let hits = [fold("Less")?, fold("Greater")?, fold("Equal")?]
            .iter()
            .filter(|x| **x)
            .count();
        prop_assert_eq!(hits, 1);
    }
}

// ---------------------------------------------------------------------
// SSA construction on randomized CFG shapes.
// ---------------------------------------------------------------------

/// Builds `f(n) = x` where `x` flows through a random chain of
/// if-diamonds; each diamond optionally redefines `x` on each arm.
/// Returns the function plus the interpretation of its result given a
/// vector of branch decisions.
fn diamond_chain(writes: &[(bool, bool)]) -> Function {
    let mut b = FunctionBuilder::new("chain", 1);
    let arg = b.func.fresh_var();
    b.push(Instr::LoadArgument { dst: arg, index: 0 });
    b.write_var("x", Constant::I64(0));
    for (i, &(write_then, write_else)) in writes.iter().enumerate() {
        let then_b = b.create_block(&format!("then{i}"));
        let else_b = b.create_block(&format!("else{i}"));
        let join = b.create_block(&format!("join{i}"));
        b.branch(arg, then_b, else_b);
        b.seal_block(then_b);
        b.seal_block(else_b);

        b.switch_to(then_b);
        if write_then {
            b.write_var("x", Constant::I64((2 * i + 1) as i64));
        }
        b.jump(join);

        b.switch_to(else_b);
        if write_else {
            b.write_var("x", Constant::I64((2 * i + 2) as i64));
        }
        b.jump(join);

        b.seal_block(join);
        b.switch_to(join);
    }
    let x = b.read_var("x").unwrap();
    let out = b.call(
        Callee::Builtin(Arc::from("Plus")),
        vec![x, Constant::I64(0).into()],
    );
    b.ret(out);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_diamond_chains_verify(writes in prop::collection::vec(any::<(bool, bool)>(), 0..8)) {
        let f = diamond_chain(&writes);
        verify_function(&f).unwrap();
        // Phis are created lazily, exactly at the joins that are read:
        // a diamond's join is read unless a *later* diamond overwrites x
        // on both arms before any intervening read (then it is dead).
        let mut alive = true;
        let mut expect = 0usize;
        for &(t, e) in writes.iter().rev() {
            if alive {
                expect += 1;
            }
            if t && e {
                alive = false;
            }
        }
        let phis = f.instrs().filter(|i| matches!(i, Instr::Phi { .. })).count();
        prop_assert_eq!(phis, expect, "writes {:?}", writes);
    }

    #[test]
    fn pipeline_preserves_verification(writes in prop::collection::vec(any::<(bool, bool)>(), 0..8)) {
        let mut f = diamond_chain(&writes);
        let phis_before = f.instrs().filter(|i| matches!(i, Instr::Phi { .. })).count();
        run_pipeline(&mut f, &PassOptions::default()).unwrap();
        verify_function(&f).unwrap();
        // The optimizer never invents phis, and it clears the trivial ones
        // the builder left behind.
        let phis_after = f.instrs().filter(|i| matches!(i, Instr::Phi { .. })).count();
        prop_assert!(phis_after <= phis_before, "{phis_after} > {phis_before}");
        // Only live, genuinely-merging diamonds may keep a phi.
        let mut alive = true;
        let mut required = 0usize;
        for &(t, e) in writes.iter().rev() {
            if alive && (t != e || (t && e)) {
                required += 1;
            }
            if t && e {
                alive = false;
            }
        }
        prop_assert!(phis_after <= required, "trivial phi survived: {phis_after} > {required}");
    }

    /// Running the full pipeline a second time reaches a fixed point: the
    /// instruction count must not change.
    #[test]
    fn pipeline_is_idempotent(writes in prop::collection::vec(any::<(bool, bool)>(), 0..8)) {
        let mut f = diamond_chain(&writes);
        let opts = PassOptions { memory_management: false, ..PassOptions::default() };
        run_pipeline(&mut f, &opts).unwrap();
        let after_first = f.instr_count();
        run_pipeline(&mut f, &opts).unwrap();
        prop_assert_eq!(f.instr_count(), after_first);
    }

    /// DCE only removes instructions; it never adds any.
    #[test]
    fn dce_is_monotone(writes in prop::collection::vec(any::<(bool, bool)>(), 0..8)) {
        let mut f = diamond_chain(&writes);
        let before = f.instr_count();
        run_pass("dce", &mut f).unwrap();
        prop_assert!(f.instr_count() <= before);
        verify_function(&f).unwrap();
    }

    /// SSA invariant after any single pass: each variable is defined once.
    #[test]
    fn single_assignment_holds_after_each_pass(
        writes in prop::collection::vec(any::<(bool, bool)>(), 0..6),
        pass in prop::sample::select(vec![
            "constant-fold", "cse", "copy-propagation", "dce", "simplify-cfg",
        ]),
    ) {
        let mut f = diamond_chain(&writes);
        run_pass(pass, &mut f).unwrap();
        let mut defs = HashSet::new();
        for instr in f.instrs() {
            if let Some(d) = instr.def() {
                prop_assert!(defs.insert(d), "{d:?} defined twice after {pass}");
            }
        }
        verify_function(&f).unwrap();
    }
}

// ---------------------------------------------------------------------
// Operand/constant plumbing.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn constant_operands_round_trip(a in any::<i64>()) {
        let op: Operand = Constant::I64(a).into();
        match &op {
            Operand::Const(Constant::I64(v)) => prop_assert_eq!(*v, a),
            other => prop_assert!(false, "unexpected operand {other:?}"),
        }
    }
}
