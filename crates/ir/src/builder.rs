//! Direct-to-SSA function construction.
//!
//! "Unlike LLVM Clang, which lowers all local variables into stack loads
//! and stores ..., the compiler lowers MExprs directly into SSA form"
//! (§4.3). This is the simple and efficient SSA construction of Braun et
//! al. (the paper's citation 15): per-block variable definitions, sealed
//! blocks, and incomplete phis completed at sealing time.

use crate::module::{Block, BlockId, Constant, Function, Instr, Operand, VarId};
use std::collections::{HashMap, HashSet};

/// Incremental SSA builder for one function.
#[derive(Debug)]
pub struct FunctionBuilder {
    /// The function being built.
    pub func: Function,
    current: BlockId,
    defs: HashMap<String, HashMap<BlockId, Operand>>,
    sealed: HashSet<BlockId>,
    incomplete: HashMap<BlockId, Vec<(String, VarId)>>,
    preds: HashMap<BlockId, Vec<BlockId>>,
    /// Phis per block, materialized at the block head on `finish`.
    phis: HashMap<BlockId, Vec<Instr>>,
}

impl FunctionBuilder {
    /// Starts a function with an (unsealed-predecessors, already current)
    /// entry block.
    pub fn new(name: &str, arity: usize) -> Self {
        let mut func = Function::new(name, arity);
        func.blocks.push(Block {
            label: "start".into(),
            instrs: Vec::new(),
        });
        let entry = BlockId(0);
        let mut b = FunctionBuilder {
            func,
            current: entry,
            defs: HashMap::new(),
            sealed: HashSet::new(),
            incomplete: HashMap::new(),
            preds: HashMap::new(),
            phis: HashMap::new(),
        };
        b.sealed.insert(entry);
        b
    }

    /// The block currently receiving instructions.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Creates a new (unsealed) block.
    pub fn create_block(&mut self, label: &str) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            label: label.to_owned(),
            instrs: Vec::new(),
        });
        id
    }

    /// Moves the insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Whether the current block already ends in a terminator.
    pub fn is_terminated(&self) -> bool {
        self.func.block(self.current).terminator().is_some()
    }

    /// Declares that all predecessors of `block` are now known, completing
    /// its pending phis.
    pub fn seal_block(&mut self, block: BlockId) {
        if !self.sealed.insert(block) {
            return;
        }
        for (name, phi_var) in self.incomplete.remove(&block).unwrap_or_default() {
            self.complete_phi(block, &name, phi_var);
        }
    }

    fn complete_phi(&mut self, block: BlockId, name: &str, phi_var: VarId) {
        let preds = self.preds.get(&block).cloned().unwrap_or_default();
        let mut incoming = Vec::with_capacity(preds.len());
        for p in preds {
            let val = self.read_var_in(name, p);
            incoming.push((p, val));
        }
        self.phis.entry(block).or_default().push(Instr::Phi {
            dst: phi_var,
            incoming,
        });
    }

    /// Binds `name` to `value` in the current block.
    pub fn write_var(&mut self, name: &str, value: impl Into<Operand>) {
        let v = value.into();
        self.defs
            .entry(name.to_owned())
            .or_default()
            .insert(self.current, v);
    }

    /// Reads `name` at the current point, inserting phis as needed.
    pub fn read_var(&mut self, name: &str) -> Option<Operand> {
        if !self.defs.contains_key(name) {
            return None;
        }
        Some(self.read_var_in(name, self.current))
    }

    fn read_var_in(&mut self, name: &str, block: BlockId) -> Operand {
        if let Some(v) = self.defs.get(name).and_then(|m| m.get(&block)) {
            return v.clone();
        }
        let value = if !self.sealed.contains(&block) {
            // Incomplete CFG: placeholder phi completed at seal time.
            let phi_var = self.func.fresh_var();
            self.incomplete
                .entry(block)
                .or_default()
                .push((name.to_owned(), phi_var));
            Operand::Var(phi_var)
        } else {
            let preds = self.preds.get(&block).cloned().unwrap_or_default();
            match preds.len() {
                0 => {
                    // Undefined along this path; treated as Null (matches
                    // the interpreter's unset-symbol semantics for
                    // compiled locals, which binding analysis rejects
                    // earlier for real programs).
                    Operand::Const(Constant::Null)
                }
                1 => self.read_var_in(name, preds[0]),
                _ => {
                    let phi_var = self.func.fresh_var();
                    // Break cycles: record before recursing.
                    self.defs
                        .entry(name.to_owned())
                        .or_default()
                        .insert(block, Operand::Var(phi_var));
                    self.complete_phi(block, name, phi_var);
                    Operand::Var(phi_var)
                }
            }
        };
        self.defs
            .entry(name.to_owned())
            .or_default()
            .insert(block, value.clone());
        value
    }

    /// Appends an instruction to the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn push(&mut self, instr: Instr) {
        assert!(
            !self.is_terminated(),
            "pushing into terminated block {:?} of {}",
            self.current,
            self.func.name
        );
        for succ in instr.successors() {
            self.preds.entry(succ).or_default().push(self.current);
        }
        self.func.block_mut(self.current).instrs.push(instr);
    }

    /// Emits `%dst = LoadConst value` and returns the operand.
    pub fn const_value(&mut self, value: Constant) -> Operand {
        Operand::Const(value)
    }

    /// Emits a call and returns its result variable.
    pub fn call(&mut self, callee: crate::module::Callee, args: Vec<Operand>) -> VarId {
        let dst = self.func.fresh_var();
        self.push(Instr::Call { dst, callee, args });
        dst
    }

    /// Emits an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        if !self.is_terminated() {
            self.push(Instr::Jump { target });
        }
    }

    /// Emits a conditional branch.
    pub fn branch(&mut self, cond: impl Into<Operand>, then_block: BlockId, else_block: BlockId) {
        self.push(Instr::Branch {
            cond: cond.into(),
            then_block,
            else_block,
        });
    }

    /// Emits a return.
    pub fn ret(&mut self, value: impl Into<Operand>) {
        if !self.is_terminated() {
            self.push(Instr::Return {
                value: value.into(),
            });
        }
    }

    /// The predecessor map accumulated so far.
    pub fn predecessors(&self, block: BlockId) -> &[BlockId] {
        self.preds.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Finalizes: materializes phis at block heads and returns the
    /// function.
    ///
    /// # Panics
    ///
    /// Panics if a block is unsealed or lacks a terminator.
    pub fn finish(mut self) -> Function {
        for id in 0..self.func.blocks.len() as u32 {
            let id = BlockId(id);
            assert!(
                self.sealed.contains(&id),
                "unsealed block {id:?} in {}",
                self.func.name
            );
            assert!(
                self.func.block(id).terminator().is_some(),
                "unterminated block {id:?} ({}) in {}",
                self.func.block(id).label,
                self.func.name
            );
        }
        for (block, phis) in std::mem::take(&mut self.phis) {
            let b = self.func.block_mut(block);
            let mut new_instrs = phis;
            new_instrs.append(&mut b.instrs);
            b.instrs = new_instrs;
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Callee;
    use std::sync::Arc;

    fn plus(b: &mut FunctionBuilder, x: Operand, y: Operand) -> VarId {
        b.call(Callee::Builtin(Arc::from("Plus")), vec![x, y])
    }

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        b.write_var("x", arg);
        let x = b.read_var("x").unwrap();
        let sum = plus(&mut b, x, Constant::I64(1).into());
        b.ret(sum);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.instr_count(), 3);
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn if_diamond_inserts_phi() {
        // x = arg; if (arg) x = 1 else x = 2; return x
        let mut b = FunctionBuilder::new("f", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        let then_b = b.create_block("then");
        let else_b = b.create_block("else");
        let join = b.create_block("join");
        b.branch(arg, then_b, else_b);
        b.seal_block(then_b);
        b.seal_block(else_b);

        b.switch_to(then_b);
        b.write_var("x", Constant::I64(1));
        b.jump(join);

        b.switch_to(else_b);
        b.write_var("x", Constant::I64(2));
        b.jump(join);

        b.seal_block(join);
        b.switch_to(join);
        let x = b.read_var("x").unwrap();
        b.ret(x);
        let f = b.finish();
        let phis: Vec<&Instr> = f
            .instrs()
            .filter(|i| matches!(i, Instr::Phi { .. }))
            .collect();
        assert_eq!(phis.len(), 1);
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn loop_with_unsealed_header() {
        // i = 0; while (i < n) i = i + 1; return i
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: n, index: 0 });
        b.write_var("i", Constant::I64(0));
        let header = b.create_block("loop-head");
        let body = b.create_block("loop-body");
        let exit = b.create_block("exit");
        b.jump(header);
        b.switch_to(header);
        let i0 = b.read_var("i").unwrap();
        let cond = b.call(Callee::Builtin(Arc::from("Less")), vec![i0, n.into()]);
        b.branch(cond, body, exit);
        b.seal_block(body);

        b.switch_to(body);
        let i1 = b.read_var("i").unwrap();
        let inc = plus(&mut b, i1, Constant::I64(1).into());
        b.write_var("i", inc);
        b.jump(header);
        b.seal_block(header); // backedge now known
        b.seal_block(exit);

        b.switch_to(exit);
        let iout = b.read_var("i").unwrap();
        b.ret(iout);
        let f = b.finish();
        crate::verify::verify_function(&f).unwrap();
        // The loop variable needs a phi in the header.
        let header_phis = f
            .block(header)
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Phi { .. }))
            .count();
        assert_eq!(header_phis, 1);
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn pushing_after_terminator_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(Constant::Null);
        b.push(Instr::AbortCheck);
    }
}
