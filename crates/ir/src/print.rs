//! Textual IR dumps in the paper's appendix format (A.6.2/A.6.3).

use crate::module::{Callee, Constant, Function, InlineValue, Instr, Operand, ProgramModule};
use std::fmt::Write as _;
use wolfram_types::Type;

impl Function {
    /// Renders the function in the paper's textual WIR/TWIR format:
    ///
    /// ```text
    /// Main : (Integer64)->Integer64
    /// start(1):
    ///  2 | %1:I64 = LoadArgument arg
    ///  3 | %7:I64 = Call Native`PrimitiveFunction[...]:(I64,I64)->I64 [%1, 1:I64]
    ///  4 | Return %7
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}::Information={{\"inlineInformation\"->{{\"inlineValue\"->{}, \"isTrivial\"->{}}}, \
             \"ArgumentAlias\"->{}, \"Profile\"->{}, \"AbortHandling\"->{}}}",
            self.name,
            match self.info.inline_value {
                InlineValue::Automatic => "Automatic",
                InlineValue::Never => "Never",
                InlineValue::Always => "Always",
            },
            bool_text(self.info.is_trivial),
            bool_text(self.info.argument_alias),
            bool_text(self.info.profile),
            bool_text(self.info.abort_handling),
        );
        match (&self.return_type, self.param_types_text()) {
            (Some(ret), Some(params)) => {
                let _ = writeln!(out, "{} : ({})->{}", self.name, params, short(ret));
            }
            _ => {
                let _ = writeln!(out, "{}", self.name);
            }
        }
        let mut line = 2usize;
        for (ix, block) in self.blocks.iter().enumerate() {
            let _ = writeln!(out, "{}({}):", block.label, ix + 1);
            for i in &block.instrs {
                let _ = writeln!(out, " {line} | {}", self.instr_text(i));
                line += 1;
            }
        }
        out
    }

    fn param_types_text(&self) -> Option<String> {
        let mut parts = Vec::new();
        for i in self.instrs() {
            if let Instr::LoadArgument { dst, index } = i {
                let ty = self.var_type(*dst)?;
                parts.push((*index, short(ty)));
            }
        }
        if parts.len() != self.arity {
            return (self.arity == 0).then(String::new);
        }
        parts.sort_by_key(|(ix, _)| *ix);
        Some(
            parts
                .into_iter()
                .map(|(_, t)| t)
                .collect::<Vec<_>>()
                .join(", "),
        )
    }

    fn var_text(&self, v: crate::module::VarId) -> String {
        match self.var_type(v) {
            Some(t) => format!("%{}:{}", v.0, short(t)),
            None => format!("%{}", v.0),
        }
    }

    fn operand_text(&self, o: &Operand) -> String {
        match o {
            Operand::Var(v) => format!("%{}", v.0),
            Operand::Const(c) => const_text(c),
        }
    }

    /// One instruction in dump form.
    pub fn instr_text(&self, i: &Instr) -> String {
        match i {
            Instr::LoadArgument { dst, index } => {
                let name = self
                    .param_names
                    .get(*index)
                    .cloned()
                    .unwrap_or_else(|| format!("arg{index}"));
                format!("{} = LoadArgument {name}", self.var_text(*dst))
            }
            Instr::LoadConst { dst, value } => {
                format!("{} = Constant {}", self.var_text(*dst), const_text(value))
            }
            Instr::Copy { dst, src } => format!("{} = Copy %{}", self.var_text(*dst), src.0),
            Instr::Call { dst, callee, args } => {
                let args: Vec<String> = args.iter().map(|a| self.operand_text(a)).collect();
                let sig = match callee {
                    Callee::Primitive(_) | Callee::Function { .. } => {
                        match (self.call_sig(args.len()), self.var_type(*dst)) {
                            (Some(sig), Some(_)) => sig,
                            _ => String::new(),
                        }
                    }
                    _ => String::new(),
                };
                format!(
                    "{} = Call {}{} [{}]",
                    self.var_text(*dst),
                    callee.name(),
                    sig,
                    args.join(", ")
                )
            }
            Instr::MakeClosure {
                dst,
                func,
                captures,
            } => {
                let caps: Vec<String> = captures.iter().map(|c| self.operand_text(c)).collect();
                format!(
                    "{} = MakeClosure {func} [{}]",
                    self.var_text(*dst),
                    caps.join(", ")
                )
            }
            Instr::Phi { dst, incoming } => {
                let inc: Vec<String> = incoming
                    .iter()
                    .map(|(b, o)| format!("{}({})", self.operand_text(o), b.0 + 1))
                    .collect();
                format!("{} = Phi [{}]", self.var_text(*dst), inc.join(", "))
            }
            Instr::AbortCheck => "AbortCheck".into(),
            Instr::MemoryAcquire { var } => format!("MemoryAcquire %{}", var.0),
            Instr::MemoryRelease { var } => format!("MemoryRelease %{}", var.0),
            Instr::Jump { target } => format!(
                "Jump {}({})",
                self.blocks[target.0 as usize].label,
                target.0 + 1
            ),
            Instr::Branch {
                cond,
                then_block,
                else_block,
            } => format!(
                "Branch {} ? {}({}) : {}({})",
                self.operand_text(cond),
                self.blocks[then_block.0 as usize].label,
                then_block.0 + 1,
                self.blocks[else_block.0 as usize].label,
                else_block.0 + 1
            ),
            Instr::Return { value } => format!("Return {}", self.operand_text(value)),
        }
    }

    fn call_sig(&self, _nargs: usize) -> Option<String> {
        None // signature suffixes are cosmetic; omitted in instruction dumps
    }
}

fn bool_text(b: bool) -> &'static str {
    if b {
        "True"
    } else {
        "False"
    }
}

fn short(t: &Type) -> String {
    t.short_name()
}

fn const_text(c: &Constant) -> String {
    match c {
        Constant::I64(v) => format!("{v}:I64"),
        Constant::F64(v) => format!("{v}:R64"),
        Constant::Bool(b) => format!("{}:Bool", bool_text(*b)),
        Constant::Complex(re, im) => format!("({re}, {im}):C64"),
        Constant::Str(s) => format!("{s:?}:String"),
        Constant::I64Array(v) => format!("<{} x I64>", v.len()),
        Constant::F64Array(v) => format!("<{} x R64>", v.len()),
        Constant::Expr(e) => format!("<expr {}>", e.to_input_form()),
        Constant::Null => "Null".into(),
    }
}

impl ProgramModule {
    /// Renders every function of the module.
    pub fn to_text(&self) -> String {
        self.functions
            .iter()
            .map(Function::to_text)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::module::{Callee, Constant, Instr};
    use std::sync::Arc;
    use wolfram_types::Type;

    #[test]
    fn paper_style_dump() {
        // The appendix's addOne: %1 = LoadArgument arg; %7 = Call ...
        let mut b = FunctionBuilder::new("Main", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        let sum = b.call(
            Callee::Primitive(Arc::from("checked_binary_plus_Integer64_Integer64")),
            vec![arg.into(), Constant::I64(1).into()],
        );
        b.ret(sum);
        let mut f = b.finish();
        f.param_names = vec!["arg".into()];
        f.var_types.insert(arg, Type::integer64());
        f.var_types.insert(sum, Type::integer64());
        f.return_type = Some(Type::integer64());
        let text = f.to_text();
        assert!(text.contains("Main : (I64)->I64"), "{text}");
        assert!(text.contains("%0:I64 = LoadArgument arg"), "{text}");
        assert!(
            text.contains(
                "Call Native`PrimitiveFunction[checked_binary_plus_Integer64_Integer64] [%0, 1:I64]"
            ),
            "{text}"
        );
        assert!(text.contains("Return %1"), "{text}");
        assert!(text.contains("\"AbortHandling\"->True"), "{text}");
    }

    #[test]
    fn untyped_dump_omits_signature() {
        let mut b = FunctionBuilder::new("Main", 1);
        let arg = b.func.fresh_var();
        b.push(Instr::LoadArgument { dst: arg, index: 0 });
        b.ret(arg);
        let f = b.finish();
        let text = f.to_text();
        assert!(text.contains("%0 = LoadArgument"), "{text}");
        assert!(!text.contains("(I64)"), "{text}");
    }
}
