//! The IR linter (§4.3 footnote: "An IR linter exists to check if the SSA
//! property is maintained when writing passes").

use crate::analysis::{Cfg, Dominators};
use crate::module::{BlockId, Function, Instr, VarId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An SSA well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Checks the SSA property and block structure of a function:
///
/// - every reachable block ends in exactly one terminator, at the end;
/// - every variable has a single definition;
/// - every use is dominated by its definition (phi uses checked at the
///   corresponding predecessor);
/// - phi incoming lists mention exactly the block's predecessors, each
///   exactly once;
/// - phis appear only at block heads;
/// - `MemoryAcquire`/`MemoryRelease` reference a variable that is defined
///   somewhere (their placement is otherwise exempt from dominance: they
///   instrument the storage slot, not the SSA value).
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let cfg = Cfg::new(f);
    let dom = Dominators::new(f, &cfg);
    let reachable: HashSet<BlockId> = cfg.rpo.iter().copied().collect();

    // Single definitions, and def site map.
    let mut def_site: HashMap<VarId, (BlockId, usize)> = HashMap::new();
    for b in f.block_ids() {
        let block = f.block(b);
        let Some(term_ix) = block.instrs.iter().rposition(|i| i.is_terminator()) else {
            if reachable.contains(&b) {
                return Err(VerifyError(format!(
                    "block {b:?} ({}) has no terminator",
                    block.label
                )));
            }
            continue;
        };
        if term_ix + 1 != block.instrs.len() {
            return Err(VerifyError(format!(
                "block {b:?} has instructions after its terminator"
            )));
        }
        for (ix, i) in block.instrs.iter().enumerate() {
            if i.is_terminator() && ix != term_ix {
                return Err(VerifyError(format!("block {b:?} has multiple terminators")));
            }
            if matches!(i, Instr::Phi { .. }) {
                let at_head = block.instrs[..ix]
                    .iter()
                    .all(|p| matches!(p, Instr::Phi { .. }));
                if !at_head {
                    return Err(VerifyError(format!("phi not at head of block {b:?}")));
                }
            }
            if let Some(d) = i.def() {
                if let Some(prev) = def_site.insert(d, (b, ix)) {
                    return Err(VerifyError(format!(
                        "%{} defined twice (blocks {:?} and {b:?})",
                        d.0, prev.0
                    )));
                }
            }
        }
    }

    // Uses dominated by defs; phi shapes.
    for &b in &cfg.rpo {
        let block = f.block(b);
        // Phi incoming lists cover the *reachable* predecessors only;
        // edges from unreachable blocks are ignored (they are pruned by
        // simplify-cfg and never executed).
        let preds: HashSet<BlockId> = cfg.preds[b.0 as usize]
            .iter()
            .copied()
            .filter(|p| reachable.contains(p))
            .collect();
        for (ix, i) in block.instrs.iter().enumerate() {
            if let Instr::Phi { incoming, dst } = i {
                let inc_blocks: HashSet<BlockId> = incoming.iter().map(|(p, _)| *p).collect();
                if inc_blocks.len() != incoming.len() {
                    return Err(VerifyError(format!(
                        "phi %{} in {b:?} has duplicate predecessor entries",
                        dst.0
                    )));
                }
                if inc_blocks != preds {
                    return Err(VerifyError(format!(
                        "phi %{} incoming blocks {inc_blocks:?} != predecessors {preds:?} of {b:?}",
                        dst.0
                    )));
                }
                for (pred, op) in incoming {
                    if let Some(v) = op.as_var() {
                        let Some(&(db, _)) = def_site.get(&v) else {
                            return Err(VerifyError(format!("use of undefined %{}", v.0)));
                        };
                        if reachable.contains(pred) && !dom.dominates(db, *pred) {
                            return Err(VerifyError(format!(
                                "phi operand %{} (defined in {db:?}) does not dominate predecessor {pred:?}",
                                v.0
                            )));
                        }
                    }
                }
                continue;
            }
            // MemoryAcquire/Release are refcount instrumentation on the
            // variable's storage slot (a no-op on not-yet-written slots),
            // not SSA dataflow uses: their placement at live-range
            // boundaries is exempt from the dominance rule. The slot must
            // still belong to a variable that exists.
            if let Instr::MemoryAcquire { var } | Instr::MemoryRelease { var } = i {
                if !def_site.contains_key(var) {
                    return Err(VerifyError(format!(
                        "{} of never-defined %{} in block {b:?}",
                        if matches!(i, Instr::MemoryAcquire { .. }) {
                            "MemoryAcquire"
                        } else {
                            "MemoryRelease"
                        },
                        var.0
                    )));
                }
                continue;
            }
            for v in i.uses() {
                let Some(&(db, dix)) = def_site.get(&v) else {
                    return Err(VerifyError(format!(
                        "use of undefined %{} in block {b:?}",
                        v.0
                    )));
                };
                let ok = if db == b {
                    dix < ix
                } else {
                    dom.dominates(db, b)
                };
                if !ok {
                    return Err(VerifyError(format!(
                        "use of %{} in {b:?}[{ix}] not dominated by its definition in {db:?}[{dix}]",
                        v.0
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Block, Callee, Constant, Operand};
    use std::sync::Arc;

    fn call(dst: u32, args: Vec<Operand>) -> Instr {
        Instr::Call {
            dst: VarId(dst),
            callee: Callee::Builtin(Arc::from("Plus")),
            args,
        }
    }

    #[test]
    fn accepts_valid() {
        let mut f = Function::new("ok", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                call(0, vec![Constant::I64(1).into(), Constant::I64(2).into()]),
                Instr::Return {
                    value: VarId(0).into(),
                },
            ],
        });
        f.next_var = 1;
        verify_function(&f).unwrap();
    }

    #[test]
    fn rejects_double_definition() {
        let mut f = Function::new("bad", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                call(0, vec![]),
                call(0, vec![]),
                Instr::Return {
                    value: VarId(0).into(),
                },
            ],
        });
        assert!(verify_function(&f).unwrap_err().0.contains("defined twice"));
    }

    #[test]
    fn rejects_undefined_use() {
        let mut f = Function::new("bad", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![Instr::Return {
                value: VarId(9).into(),
            }],
        });
        assert!(verify_function(&f).unwrap_err().0.contains("undefined"));
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = Function::new("bad", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![call(0, vec![])],
        });
        assert!(verify_function(&f).unwrap_err().0.contains("no terminator"));
    }

    #[test]
    fn rejects_use_not_dominated() {
        // Two blocks: entry jumps to b1; b1 uses a var defined... nowhere
        // dominating: define in an unreachable block.
        let mut f = Function::new("bad", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![Instr::Jump { target: BlockId(1) }],
        });
        f.blocks.push(Block {
            label: "use".into(),
            instrs: vec![Instr::Return {
                value: VarId(0).into(),
            }],
        });
        f.blocks.push(Block {
            label: "dead".into(),
            instrs: vec![call(0, vec![]), Instr::Jump { target: BlockId(1) }],
        });
        let err = verify_function(&f).unwrap_err();
        assert!(
            err.0.contains("not dominated") || err.0.contains("phi"),
            "{err}"
        );
    }

    #[test]
    fn rejects_memory_instr_on_undefined_var() {
        let mut f = Function::new("bad", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::MemoryAcquire { var: VarId(7) },
                Instr::Return {
                    value: Constant::Null.into(),
                },
            ],
        });
        let err = verify_function(&f).unwrap_err();
        assert!(err.0.contains("never-defined"), "{err}");

        let mut g = Function::new("bad", 0);
        g.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                Instr::MemoryRelease { var: VarId(3) },
                Instr::Return {
                    value: Constant::Null.into(),
                },
            ],
        });
        let err = verify_function(&g).unwrap_err();
        assert!(err.0.contains("MemoryRelease"), "{err}");
    }

    #[test]
    fn rejects_duplicate_phi_predecessor() {
        // entry branches to join twice; the phi lists entry twice.
        let mut f = Function::new("bad", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                call(0, vec![]),
                Instr::Branch {
                    cond: VarId(0).into(),
                    then_block: BlockId(1),
                    else_block: BlockId(1),
                },
            ],
        });
        f.blocks.push(Block {
            label: "join".into(),
            instrs: vec![
                Instr::Phi {
                    dst: VarId(1),
                    incoming: vec![
                        (BlockId(0), Constant::I64(1).into()),
                        (BlockId(0), Constant::I64(2).into()),
                    ],
                },
                Instr::Return {
                    value: VarId(1).into(),
                },
            ],
        });
        let err = verify_function(&f).unwrap_err();
        assert!(err.0.contains("duplicate predecessor"), "{err}");
    }

    #[test]
    fn rejects_phi_mid_block() {
        let mut f = Function::new("bad", 0);
        f.blocks.push(Block {
            label: "start".into(),
            instrs: vec![
                call(0, vec![]),
                Instr::Phi {
                    dst: VarId(1),
                    incoming: vec![],
                },
                Instr::Return {
                    value: VarId(1).into(),
                },
            ],
        });
        assert!(verify_function(&f)
            .unwrap_err()
            .0
            .contains("phi not at head"));
    }
}
